//! Property-based end-to-end tests: for *arbitrary* constraint pairs
//! (not just workload-shaped ones), answering the second query from the
//! first query's cached result must equal computing it from scratch.

use proptest::prelude::*;

use skycache::algos::{Sfs, SkylineAlgorithm};
use skycache::core::{
    missing_points_region, CbcsConfig, CbcsExecutor, Executor, MprMode, QueryRequest,
};
use skycache::geom::{Constraints, Point, PointBlock};
use skycache::storage::{CostModel, Table, TableConfig};

fn coord() -> impl Strategy<Value = f64> {
    (0..=16u8).prop_map(|v| f64::from(v) / 16.0)
}

fn constraints(dims: usize) -> impl Strategy<Value = Constraints> {
    (prop::collection::vec(coord(), dims), prop::collection::vec(coord(), dims)).prop_map(
        |(a, b)| {
            let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
            let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
            Constraints::new(lo, hi).expect("ordered")
        },
    )
}

fn dataset(dims: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(coord(), dims), 1..250)
        .prop_map(|rows| rows.into_iter().map(Point::from).collect())
}

fn reference(points: &[Point], c: &Constraints) -> Vec<Point> {
    let constrained: Vec<Point> = points.iter().filter(|p| c.satisfies(p)).cloned().collect();
    let mut sky = Sfs.compute(constrained).skyline;
    sky.sort_by_key(|p| p.coords().iter().map(|c| c.to_bits()).collect::<Vec<_>>());
    sky
}

/// Builds a fixed-dimensionality block from points that may be empty
/// (unlike `PointBlock::from_points`, which cannot infer dims then).
fn block(points: &[Point], dims: usize) -> PointBlock {
    let mut b = PointBlock::new(dims).unwrap();
    for p in points {
        b.push(p);
    }
    b
}

fn sorted(mut v: Vec<Point>) -> Vec<Point> {
    v.sort_by_key(|p| p.coords().iter().map(|c| c.to_bits()).collect::<Vec<_>>());
    v
}

fn all_distinct(points: &[Point]) -> bool {
    let mut keys: Vec<Vec<u64>> =
        points.iter().map(|p| p.coords().iter().map(|c| c.to_bits()).collect()).collect();
    keys.sort();
    keys.windows(2).all(|w| w[0] != w[1])
}

fn dedup(v: Vec<Point>) -> Vec<Point> {
    let mut v = sorted(v);
    v.dedup();
    v
}

/// Compares skylines under the paper's distinctness assumption: exact
/// multiset equality for distinct data; with duplicates, a duplicate of a
/// cached skyline point may be dropped by the MPR (see DESIGN.md,
/// "Semantics notes"), so equality holds on coordinate *sets*.
fn assert_skyline_eq(
    points: &[Point],
    got: Vec<Point>,
    want: Vec<Point>,
) -> Result<(), TestCaseError> {
    if all_distinct(points) {
        prop_assert_eq!(sorted(got), sorted(want));
    } else {
        prop_assert_eq!(dedup(got), dedup(want));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 6 end to end: answering C′ via the cached C equals the
    /// naive answer, for random data and arbitrary (C, C′) pairs — grid
    /// coordinates force boundary coincidences and duplicate points.
    #[test]
    fn cached_answer_equals_naive(
        points in dataset(3),
        c_old in constraints(3),
        c_new in constraints(3),
        exact in any::<bool>(),
        k in 0..5usize,
    ) {
        let table = Table::build(
            points.clone(),
            TableConfig { cost_model: CostModel::free(), ..Default::default() },
        ).unwrap();
        let mode = if exact { MprMode::Exact } else { MprMode::Approximate { k } };
        let mut cbcs = CbcsExecutor::new(&table, CbcsConfig { mpr: mode, ..Default::default() });

        let r_old = cbcs.execute(&QueryRequest::new(c_old.clone())).unwrap();
        assert_skyline_eq(&points, r_old.skyline, reference(&points, &c_old))?;

        let r_new = cbcs.execute(&QueryRequest::new(c_new.clone())).unwrap();
        assert_skyline_eq(&points, r_new.skyline, reference(&points, &c_new))?;
    }

    /// Theorem 6 at the MPR level, without the engine: the cached skyline
    /// plus the MPR's content determines the new skyline.
    #[test]
    fn mpr_completeness(
        points in dataset(2),
        c_old in constraints(2),
        c_new in constraints(2),
    ) {
        let cached_sky = {
            let constrained: Vec<Point> =
                points.iter().filter(|p| c_old.satisfies(p)).cloned().collect();
            Sfs.compute(constrained).skyline
        };
        let out = missing_points_region(&c_old, &block(&cached_sky, 2), &c_new, MprMode::Exact);

        // Regions are pairwise disjoint...
        prop_assert!(skycache::geom::subtract::pairwise_disjoint(&out.regions));
        // ...and lie inside R_C′.
        let new_region = c_new.region();
        for r in &out.regions {
            prop_assert!(new_region.contains_rect(r), "region escapes R_C′");
        }

        // Merge: retained cached points + points inside the MPR, dedup'd
        // against retained copies (a retained point's own row may fall in
        // an unpruned region only in approximate mode; in exact mode its
        // dominance box removes it, so plain concatenation suffices here
        // minus the points already retained).
        let mut merged = out.retained.to_points();
        for p in &points {
            if out.regions.iter().any(|r| r.contains_point(p)) {
                merged.push(p.clone());
            }
        }
        let got = Sfs.compute(merged).skyline;
        let want = reference(&points, &c_new);
        assert_skyline_eq(&points, got, want)?;
    }

    /// Minimality direction (Theorem 7 flavour): the exact MPR never
    /// contains a point dominated by a retained cached skyline point.
    #[test]
    fn mpr_excludes_dominated_space(
        points in dataset(2),
        c_old in constraints(2),
        c_new in constraints(2),
        probe in prop::collection::vec(coord(), 2),
    ) {
        let cached_sky = {
            let constrained: Vec<Point> =
                points.iter().filter(|p| c_old.satisfies(p)).cloned().collect();
            Sfs.compute(constrained).skyline
        };
        let out = missing_points_region(&c_old, &block(&cached_sky, 2), &c_new, MprMode::Exact);
        let probe = Point::from(probe);
        let in_mpr = out.regions.iter().any(|r| r.contains_point(&probe));
        if in_mpr {
            for u in out.retained.rows() {
                prop_assert!(
                    !skycache::geom::dominance::dominates_raw(u, probe.coords()),
                    "MPR contains space dominated by retained {u:?}"
                );
            }
        }
    }
}
