//! End-to-end differential tests: every executor configuration must
//! produce exactly the same constrained skylines as the naive Baseline on
//! realistic workloads over every data distribution.
//!
//! This is the repository's main correctness gate for the paper pipeline:
//! a bug anywhere in stability classification, the case solutions, MPR
//! splitting, aMPR approximation, caching, strategy selection, storage
//! planning, the R\*-tree, or the skyline algorithms shows up here as a
//! skyline mismatch.

use skycache::core::{
    BaselineExecutor, BbsExecutor, CbcsConfig, CbcsExecutor, Executor, MprMode, QueryRequest,
    SearchStrategy,
};
use skycache::datagen::{
    DimStats, Distribution, IndependentWorkload, InteractiveWorkload, SyntheticGen,
};
use skycache::geom::{Constraints, Point};
use skycache::storage::{CostModel, Table, TableConfig};

fn sort_key(p: &Point) -> Vec<u64> {
    p.coords().iter().map(|c| c.to_bits()).collect()
}

fn sorted(mut v: Vec<Point>) -> Vec<Point> {
    v.sort_by_key(sort_key);
    v
}

fn table_for(dist: Distribution, dims: usize, n: usize, seed: u64) -> Table {
    let points = SyntheticGen::new(dist, dims, seed).generate(n);
    let config = TableConfig { cost_model: CostModel::free(), ..Default::default() };
    Table::build(points, config).unwrap()
}

fn assert_matches_baseline(
    table: &Table,
    queries: &[Constraints],
    mut cbcs: CbcsExecutor<'_>,
    label: &str,
) {
    let mut baseline = BaselineExecutor::new(table);
    for (i, c) in queries.iter().enumerate() {
        let want = sorted(baseline.execute(&QueryRequest::new(c.clone())).unwrap().skyline);
        let got = sorted(cbcs.execute(&QueryRequest::new(c.clone())).unwrap().skyline);
        assert_eq!(
            got.len(),
            want.len(),
            "{label}: query {i} ({c:?}) cardinality {} != {}",
            got.len(),
            want.len()
        );
        assert_eq!(got, want, "{label}: query {i} ({c:?}) skyline mismatch");
    }
}

fn interactive_queries(table: &Table, n: usize, seed: u64) -> Vec<Constraints> {
    let stats = DimStats::compute(table.all_points());
    InteractiveWorkload::new(stats)
        .generate(n, seed)
        .queries()
        .iter()
        .map(|q| q.constraints.clone())
        .collect()
}

fn independent_queries(table: &Table, n: usize, seed: u64) -> Vec<Constraints> {
    let stats = DimStats::compute(table.all_points());
    IndependentWorkload::new(stats)
        .generate(n, seed)
        .queries()
        .iter()
        .map(|q| q.constraints.clone())
        .collect()
}

#[test]
fn cbcs_exact_mpr_matches_baseline_interactive_all_distributions() {
    for dist in [Distribution::Independent, Distribution::Correlated, Distribution::AntiCorrelated]
    {
        let table = table_for(dist, 3, 4_000, 11);
        let queries = interactive_queries(&table, 60, 21);
        let config = CbcsConfig { mpr: MprMode::Exact, ..Default::default() };
        assert_matches_baseline(
            &table,
            &queries,
            CbcsExecutor::new(&table, config),
            &format!("exact-MPR/{dist:?}"),
        );
    }
}

#[test]
fn cbcs_ampr_matches_baseline_for_all_k() {
    let table = table_for(Distribution::Independent, 4, 4_000, 13);
    let queries = interactive_queries(&table, 50, 23);
    for k in [0, 1, 3, 6, 10] {
        let config = CbcsConfig { mpr: MprMode::Approximate { k }, ..Default::default() };
        assert_matches_baseline(
            &table,
            &queries,
            CbcsExecutor::new(&table, config),
            &format!("aMPR({k})"),
        );
    }
}

#[test]
fn cbcs_matches_baseline_under_every_strategy() {
    let table = table_for(Distribution::Independent, 3, 3_000, 17);
    let queries = interactive_queries(&table, 40, 29);
    for strategy in [
        SearchStrategy::Random,
        SearchStrategy::MaxOverlap,
        SearchStrategy::MaxOverlapSP,
        SearchStrategy::Prioritized1D,
        SearchStrategy::prioritized_nd_std(),
        SearchStrategy::prioritized_nd_bad(),
        SearchStrategy::OptimumDistance,
    ] {
        let label = strategy.label();
        let config =
            CbcsConfig { mpr: MprMode::Approximate { k: 2 }, strategy, ..Default::default() };
        assert_matches_baseline(&table, &queries, CbcsExecutor::new(&table, config), &label);
    }
}

#[test]
fn cbcs_matches_baseline_on_independent_workload_with_warm_cache() {
    let table = table_for(Distribution::Independent, 3, 3_000, 19);
    let queries = independent_queries(&table, 80, 31);
    let config = CbcsConfig {
        mpr: MprMode::Approximate { k: 3 },
        strategy: SearchStrategy::prioritized_nd_std(),
        ..Default::default()
    };
    assert_matches_baseline(&table, &queries, CbcsExecutor::new(&table, config), "independent");
}

#[test]
fn bbs_matches_baseline_on_workload() {
    let table = table_for(Distribution::AntiCorrelated, 3, 3_000, 23);
    let queries = interactive_queries(&table, 30, 37);
    let mut baseline = BaselineExecutor::new(&table);
    let mut bbs = BbsExecutor::new(&table);
    for (i, c) in queries.iter().enumerate() {
        let want = sorted(baseline.execute(&QueryRequest::new(c.clone())).unwrap().skyline);
        let got = sorted(bbs.execute(&QueryRequest::new(c.clone())).unwrap().skyline);
        assert_eq!(got, want, "BBS query {i} mismatch");
    }
}

#[test]
fn cbcs_with_bounded_cache_stays_correct() {
    let table = table_for(Distribution::Independent, 3, 2_000, 29);
    let queries = interactive_queries(&table, 60, 41);
    for policy in [skycache::core::ReplacementPolicy::Lru, skycache::core::ReplacementPolicy::Lcu] {
        let config = CbcsConfig { capacity: Some(4), policy, ..Default::default() };
        let cbcs = CbcsExecutor::new(&table, config);
        assert_matches_baseline(&table, &queries, cbcs, &format!("{policy:?}-cap4"));
    }
}

#[test]
fn cbcs_handles_degenerate_and_empty_regions() {
    let table = table_for(Distribution::Independent, 2, 1_000, 31);
    let mut baseline = BaselineExecutor::new(&table);
    let mut cbcs = CbcsExecutor::new(&table, CbcsConfig::default());
    let queries = [
        // Empty region (outside the data space).
        Constraints::from_pairs(&[(2.0, 3.0), (2.0, 3.0)]).unwrap(),
        // Degenerate (zero-width) region.
        Constraints::from_pairs(&[(0.5, 0.5), (0.0, 1.0)]).unwrap(),
        // Full space.
        Constraints::from_pairs(&[(0.0, 1.0), (0.0, 1.0)]).unwrap(),
        // Overlapping the empty region cached earlier.
        Constraints::from_pairs(&[(1.5, 2.5), (1.5, 2.5)]).unwrap(),
    ];
    for (i, c) in queries.iter().enumerate() {
        let want = sorted(baseline.execute(&QueryRequest::new(c.clone())).unwrap().skyline);
        let got = sorted(cbcs.execute(&QueryRequest::new(c.clone())).unwrap().skyline);
        assert_eq!(got, want, "query {i} mismatch");
    }
}

#[test]
fn cbcs_reads_fewer_points_than_baseline_on_refinement_chains() {
    // The paper's headline effect: on interactive chains, CBCS touches far
    // fewer points than Baseline.
    let table = table_for(Distribution::Independent, 3, 20_000, 37);
    let queries = interactive_queries(&table, 100, 43);
    let mut baseline = BaselineExecutor::new(&table);
    let mut cbcs = CbcsExecutor::new(
        &table,
        CbcsConfig { mpr: MprMode::Approximate { k: 1 }, ..Default::default() },
    );
    let mut base_read = 0u64;
    let mut cbcs_read = 0u64;
    for c in &queries {
        base_read += baseline.execute(&QueryRequest::new(c.clone())).unwrap().stats.points_read;
        cbcs_read += cbcs.execute(&QueryRequest::new(c.clone())).unwrap().stats.points_read;
    }
    assert!(
        cbcs_read * 2 < base_read,
        "expected >2x fewer points read: CBCS {cbcs_read} vs Baseline {base_read}"
    );
}
