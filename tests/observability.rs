//! The observability layer must be a pure observer.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Recording is invisible.** Running the same query sequence with
//!    per-query recording on and off produces identical skylines and
//!    identical deterministic statistics, across both execution modes
//!    and the cache search strategies the paper evaluates.
//! 2. **The report format is frozen.** `skyobs-report/1` JSON is pinned
//!    byte-for-byte by a golden file; any change to the rendering is a
//!    schema change and must bump the version tag.

use skycache::core::{
    CbcsConfig, CbcsExecutor, ExecMode, Executor, QueryRequest, QueryStats, SearchStrategy,
};
use skycache::datagen::{DimStats, Distribution, InteractiveWorkload, SyntheticGen};
use skycache::geom::{Constraints, Point};
use skycache::obs::{names, Phase, QueryRecorder, Recorder};
use skycache::storage::{CostModel, Table, TableConfig};

fn sorted(mut v: Vec<Point>) -> Vec<Point> {
    v.sort_by_key(|p| p.coords().iter().map(|c| c.to_bits()).collect::<Vec<u64>>());
    v
}

fn table_for(dims: usize, n: usize, seed: u64) -> Table {
    let points = SyntheticGen::new(Distribution::Independent, dims, seed).generate(n);
    let config = TableConfig { cost_model: CostModel::free(), ..Default::default() };
    Table::build(points, config).unwrap()
}

fn interactive(table: &Table, n: usize, seed: u64) -> Vec<Constraints> {
    let stats = DimStats::compute(table.all_points());
    InteractiveWorkload::new(stats)
        .generate(n, seed)
        .queries()
        .iter()
        .map(|q| q.constraints.clone())
        .collect()
}

/// Every deterministic field of [`QueryStats`] — everything except the
/// wall-clock stage times.
fn deterministic(stats: &QueryStats) -> impl PartialEq + std::fmt::Debug {
    (
        stats.cache_hit,
        stats.case,
        stats.candidates,
        stats.retained_points,
        stats.removed_points,
        (
            stats.points_read,
            stats.heap_fetches,
            stats.range_queries_issued,
            stats.range_queries_executed,
            stats.range_queries_empty,
        ),
        stats.dominance_tests,
        stats.result_size,
    )
}

#[test]
fn recording_is_invisible_across_modes_and_strategies() {
    let table = table_for(3, 3_000, 101);
    let queries = interactive(&table, 40, 103);
    let parallel = ExecMode::Parallel { lanes: 4, dc_threshold: 16 };

    for exec in [ExecMode::Sequential, parallel] {
        for strategy in [
            SearchStrategy::MaxOverlapSP,
            SearchStrategy::Prioritized1D,
            SearchStrategy::prioritized_nd_std(),
        ] {
            let config = CbcsConfig { strategy: strategy.clone(), exec, ..Default::default() };
            let mut plain = CbcsExecutor::new(&table, config.clone());
            let mut recorded = CbcsExecutor::new(&table, config);
            for (i, c) in queries.iter().enumerate() {
                let off = plain.execute(&QueryRequest::new(c.clone())).unwrap();
                let on = recorded.execute(&QueryRequest::new(c.clone()).recorded()).unwrap();
                assert!(off.report.is_none(), "unrecorded request produced a report");
                let report = on.report.expect("recorded request yields a report");

                assert_eq!(
                    sorted(off.skyline),
                    sorted(on.skyline),
                    "{exec:?}/{strategy:?}: query {i} skyline diverged under recording"
                );
                assert_eq!(
                    deterministic(&off.stats),
                    deterministic(&on.stats),
                    "{exec:?}/{strategy:?}: query {i} stats diverged under recording"
                );

                // The report's canonical counters mirror the legacy stats.
                assert_eq!(report.counter(names::FETCH_POINTS_READ), on.stats.points_read);
                assert_eq!(
                    report.counter(names::SKYLINE_DOMINANCE_TESTS),
                    on.stats.dominance_tests
                );
                assert_eq!(
                    report.counter(names::CACHE_HITS) == 1,
                    on.stats.cache_hit,
                    "{exec:?}/{strategy:?}: query {i} hit flag mismatch"
                );
            }
        }
    }
}

/// Pins the `skyobs-report/1` rendering byte-for-byte. Regenerate the
/// golden file with `UPDATE_GOLDEN=1 cargo test --test observability`
/// after a deliberate schema bump.
#[test]
fn report_json_matches_golden_file() {
    use std::time::Duration;

    let mut rec = QueryRecorder::new();
    rec.record_span(Phase::CacheLookup, Duration::from_nanos(1_200));
    rec.record_span(Phase::CaseAnalysis, Duration::from_nanos(800));
    rec.record_span(Phase::MprCompute, Duration::from_nanos(15_000));
    rec.record_span(Phase::Fetch, Duration::from_micros(2_500));
    rec.record_span(Phase::Merge, Duration::from_nanos(4_000));
    rec.record_span(Phase::Skyline, Duration::from_micros(90));
    rec.add_counter(names::CACHE_HITS, 1);
    rec.add_counter(names::CACHE_CANDIDATES, 7);
    rec.add_counter(names::MPR_REGIONS, 3);
    rec.add_counter(names::FETCH_REGIONS, 3);
    rec.add_counter(names::FETCH_POINTS_READ, 420);
    rec.add_counter(names::SKYLINE_DOMINANCE_TESTS, 1_337);
    rec.add_counter(names::SKYLINE_RESULT_SIZE, 17);
    rec.set_gauge(names::LANES_FETCH, 4.0);
    rec.set_gauge(names::LANES_FETCH_IMBALANCE, 1.25);
    rec.observe_value(names::FETCH_LATENCY_NS, 1_000.0);
    rec.observe_value(names::FETCH_LATENCY_NS, 3_000.0);
    rec.observe_value(names::FETCH_LATENCY_NS, 2_000.0);
    rec.observe_value(names::LANES_FETCH_LATENCY_NS, 1_500.0);

    let got = rec.into_report().to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/skyobs_report.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("golden file is writable");
    }
    let want = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        got, want,
        "skyobs-report/1 bytes changed; if deliberate, bump REPORT_SCHEMA \
         and regenerate with UPDATE_GOLDEN=1"
    );
}

/// Merging reports must add phase times and counters — the aggregation
/// the bench's `repro obs` mode relies on.
#[test]
fn merged_reports_aggregate_phases_and_counters() {
    use std::time::Duration;

    let mut a = QueryRecorder::new();
    a.record_span(Phase::Fetch, Duration::from_nanos(100));
    a.add_counter(names::CACHE_HITS, 1);
    let mut b = QueryRecorder::new();
    b.record_span(Phase::Fetch, Duration::from_nanos(250));
    b.add_counter(names::CACHE_MISSES, 1);

    let mut total = a.into_report();
    total.merge(&b.into_report());
    assert_eq!(total.phase_ns(Phase::Fetch), 350);
    assert_eq!(total.counter(names::CACHE_HITS), 1);
    assert_eq!(total.counter(names::CACHE_MISSES), 1);
}
