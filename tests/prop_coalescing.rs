//! Differential property tests for the coalescing fetch planner: for
//! *arbitrary* region sets — overlapping, abutting, nested, or genuine
//! MPR output — the coalesced plan must fetch exactly the rows a naive
//! per-region scan fetches (after deduplication) and yield the same
//! skyline over them.

use proptest::prelude::*;

use skycache::algos::{Sfs, SkylineAlgorithm};
use skycache::core::{missing_points_region, MprMode};
use skycache::geom::{Constraints, HyperRect, Point, PointBlock};
use skycache::storage::{CostModel, FetchPlan, FetchScratch, RowId, Table, TableConfig};

fn coord() -> impl Strategy<Value = f64> {
    (0..=16u8).prop_map(|v| f64::from(v) / 16.0)
}

fn constraints(dims: usize) -> impl Strategy<Value = Constraints> {
    (prop::collection::vec(coord(), dims), prop::collection::vec(coord(), dims)).prop_map(
        |(a, b)| {
            let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
            let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
            Constraints::new(lo, hi).expect("ordered")
        },
    )
}

fn dataset(dims: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(coord(), dims), 1..250)
        .prop_map(|rows| rows.into_iter().map(Point::from).collect())
}

fn build(points: Vec<Point>) -> Table {
    Table::build(points, TableConfig { cost_model: CostModel::free(), ..Default::default() })
        .expect("generated data is valid")
}

fn sorted_points(mut v: Vec<Point>) -> Vec<Point> {
    v.sort_by_key(|p| p.coords().iter().map(|c| c.to_bits()).collect::<Vec<_>>());
    v
}

/// Row ids and points of a naive fetch: one independent range query per
/// region, rows deduplicated by id afterwards.
fn naive_fetch(table: &Table, regions: &[HyperRect]) -> (Vec<RowId>, Vec<Point>) {
    let mut rows: Vec<(RowId, Point)> = regions
        .iter()
        .flat_map(|r| {
            let fetched = table.fetch_plan(&FetchPlan::single(r.clone()));
            fetched.rows.into_iter().map(|row| (row.id, row.point))
        })
        .collect();
    rows.sort_by_key(|(id, _)| *id);
    rows.dedup_by_key(|(id, _)| *id);
    rows.into_iter().unzip()
}

/// Row ids and points of the coalescing planner over the same regions.
fn coalesced_fetch(table: &Table, regions: &[HyperRect]) -> (Vec<RowId>, Vec<Point>) {
    let mut scratch = FetchScratch::new();
    table.fetch_plan_into(&FetchPlan::new(regions.to_vec()).coalesced(), &mut scratch);
    let buf = scratch.rows();
    let mut rows: Vec<(RowId, Point)> = buf
        .ids()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, Point::from(buf.row(i).to_vec())))
        .collect();
    rows.sort_by_key(|(id, _)| *id);
    rows.into_iter().unzip()
}

fn assert_same_rows_and_skyline(
    table: &Table,
    regions: &[HyperRect],
) -> std::result::Result<(), TestCaseError> {
    let (naive_ids, naive_points) = naive_fetch(table, regions);
    let (plan_ids, plan_points) = coalesced_fetch(table, regions);
    // Exact same deduplicated row set: the planner may reorder and must
    // dedup, but it can neither drop nor double-fetch a row.
    prop_assert_eq!(&plan_ids, &naive_ids, "coalesced row ids diverge from naive fetch");

    let naive_sky = sorted_points(Sfs.compute(naive_points).skyline);
    let plan_sky = sorted_points(Sfs.compute(plan_points).skyline);
    prop_assert_eq!(naive_sky, plan_sky, "skyline over fetched rows diverged");
    Ok(())
}

proptest! {
    /// Arbitrary (freely overlapping/abutting/nested) region sets.
    #[test]
    fn coalesced_fetch_matches_naive_on_random_regions(
        points in dataset(3),
        region_boxes in prop::collection::vec(constraints(3), 1..6),
    ) {
        let table = build(points);
        let regions: Vec<HyperRect> = region_boxes.iter().map(Constraints::region).collect();
        assert_same_rows_and_skyline(&table, &regions)?;
    }

    /// Genuine MPR region sets: the planner input the engine actually
    /// produces (pairwise disjoint, often abutting along subtraction
    /// seams — the coalescing planner's main prey).
    #[test]
    fn coalesced_fetch_matches_naive_on_mpr_regions(
        points in dataset(2),
        c_old in constraints(2),
        c_new in constraints(2),
        exact in any::<bool>(),
    ) {
        let table = build(points.clone());
        let cached_sky = {
            let constrained: Vec<Point> =
                points.iter().filter(|p| c_old.satisfies(p)).cloned().collect();
            Sfs.compute(constrained).skyline
        };
        let cached = {
            let mut b = PointBlock::new(2).unwrap();
            for p in &cached_sky {
                b.push(p);
            }
            b
        };
        let mode = if exact { MprMode::Exact } else { MprMode::Approximate { k: 1 } };
        let out = missing_points_region(&c_old, &cached, &c_new, mode);
        assert_same_rows_and_skyline(&table, &out.regions)?;
    }
}
