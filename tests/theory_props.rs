//! Property tests for the paper's theory (Section 4): stability
//! (Definition 4 / Theorem 1), its corollaries, and the four incremental
//! case solutions (Theorems 2–5), checked semantically on random data —
//! i.e., we test the *theorems*, not just our code paths.

use proptest::prelude::*;

use skycache::algos::{Sfs, SkylineAlgorithm};
use skycache::core::{classify, is_stable, Overlap};
use skycache::geom::{dominates, Constraints, Point};

const DIMS: usize = 3;

fn coord() -> impl Strategy<Value = f64> {
    (0..=12u8).prop_map(|v| f64::from(v) / 12.0)
}

fn point() -> impl Strategy<Value = Point> {
    prop::collection::vec(coord(), DIMS).prop_map(Point::from)
}

fn dataset() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(point(), 1..150)
}

fn constraints() -> impl Strategy<Value = Constraints> {
    (prop::collection::vec(coord(), DIMS), prop::collection::vec(coord(), DIMS)).prop_map(
        |(a, b)| {
            let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
            let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
            Constraints::new(lo, hi).expect("ordered")
        },
    )
}

fn sky(points: &[Point], c: &Constraints) -> Vec<Point> {
    Sfs.compute(points.iter().filter(|p| c.satisfies(p)).cloned().collect()).skyline
}

fn contains(haystack: &[Point], needle: &Point) -> bool {
    haystack.iter().any(|p| p == needle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Definition 4 via Theorem 1: when `is_stable(C, C′)` holds, every
    /// point of `Sky(S, C′)` either failed the old constraints or was in
    /// the old skyline — no previously-dominated point resurfaces.
    #[test]
    fn theorem1_stability_is_semantically_sound(
        points in dataset(),
        c_old in constraints(),
        c_new in constraints(),
    ) {
        prop_assume!(is_stable(&c_old, &c_new));
        let old_sky = sky(&points, &c_old);
        let new_sky = sky(&points, &c_new);
        for s in &new_sky {
            let in_old_data = c_old.satisfies(s);
            prop_assert!(
                !in_old_data || contains(&old_sky, s),
                "stable case resurrected {s:?}"
            );
        }
    }

    /// Theorem 1 converse direction on single-bound changes: only raising
    /// a lower bound can make a previously-dominated point enter the new
    /// skyline; for cases (a)-(c) it never happens (checked by
    /// construction of the cases rather than assumed from classify).
    #[test]
    fn cases_abc_never_resurrect(
        points in dataset(),
        c_old in constraints(),
        dim in 0..DIMS,
        delta in (1..=4u8).prop_map(|v| f64::from(v) / 12.0),
        kind in 0..3usize,
    ) {
        let (lo, hi) = (c_old.lo()[dim], c_old.hi()[dim]);
        let c_new = match kind {
            0 => c_old.with_dim(dim, lo - delta, hi),          // case (a)
            1 if hi - delta >= lo => c_old.with_dim(dim, lo, hi - delta), // case (b)
            _ => c_old.with_dim(dim, lo, hi + delta),          // case (c)
        }.expect("valid bounds");
        prop_assume!(c_old != c_new);
        prop_assert!(is_stable(&c_old, &c_new));

        let old_sky = sky(&points, &c_old);
        for s in sky(&points, &c_new) {
            prop_assert!(!c_old.satisfies(&s) || contains(&old_sky, &s));
        }
    }

    /// Theorem 2, case (a): `Sky(S,C′) = Sky(Sky(S,C) ∪ S_ΔC, C′)`.
    #[test]
    fn theorem2_case_a_formula(
        points in dataset(),
        c_old in constraints(),
        dim in 0..DIMS,
        delta in (1..=4u8).prop_map(|v| f64::from(v) / 12.0),
    ) {
        let c_new = c_old
            .with_dim(dim, c_old.lo()[dim] - delta, c_old.hi()[dim])
            .expect("valid");
        let old_sky = sky(&points, &c_old);
        // S_ΔC: satisfies new but not old constraints.
        let delta_points: Vec<Point> = points
            .iter()
            .filter(|p| c_new.satisfies(p) && !c_old.satisfies(p))
            .cloned()
            .collect();
        let input: Vec<Point> = old_sky.into_iter().chain(delta_points).collect();
        let via_theorem = sorted(Sfs.compute(input).skyline);
        let direct = sorted(sky(&points, &c_new));
        prop_assert_eq!(via_theorem, direct);
    }

    /// Theorem 3, case (b): `Sky(S,C′) = Sky(S,C) ∩ S_C′` — as coordinate
    /// sets (multiplicity of duplicates can differ; see DESIGN.md).
    #[test]
    fn theorem3_case_b_formula(
        points in dataset(),
        c_old in constraints(),
        dim in 0..DIMS,
        frac in (1..=10u8).prop_map(|v| f64::from(v) / 10.0),
    ) {
        let (lo, hi) = (c_old.lo()[dim], c_old.hi()[dim]);
        let new_hi = lo + (hi - lo) * frac;
        prop_assume!(new_hi < hi);
        let c_new = c_old.with_dim(dim, lo, new_hi).expect("valid");

        let filtered: Vec<Point> = sky(&points, &c_old)
            .into_iter()
            .filter(|p| c_new.satisfies(p))
            .collect();
        prop_assert_eq!(sorted(filtered), sorted(sky(&points, &c_new)));
    }

    /// Theorem 4, case (c): points of `ΔC` dominated by old skyline points
    /// can be discarded before merging.
    #[test]
    fn theorem4_case_c_formula(
        points in dataset(),
        c_old in constraints(),
        dim in 0..DIMS,
        delta in (1..=4u8).prop_map(|v| f64::from(v) / 12.0),
    ) {
        let c_new = c_old
            .with_dim(dim, c_old.lo()[dim], c_old.hi()[dim] + delta)
            .expect("valid");
        let old_sky = sky(&points, &c_old);
        let pruned_delta: Vec<Point> = points
            .iter()
            .filter(|p| c_new.satisfies(p) && !c_old.satisfies(p))
            .filter(|p| !old_sky.iter().any(|t| dominates(t, p)))
            .cloned()
            .collect();
        let input: Vec<Point> = old_sky.into_iter().chain(pruned_delta).collect();
        prop_assert_eq!(
            sorted(Sfs.compute(input).skyline),
            sorted(sky(&points, &c_new))
        );
    }

    /// Theorem 5, case (d): the retained old skyline plus the re-fetched
    /// invalidated points reconstruct the new skyline. The fetch set is
    /// the theorem's: points of `S_C ∩ S_C′` dominated by some *removed*
    /// skyline point and by no *retained* one — plus everything the old
    /// skyline never covered is unnecessary (R_C′ ⊂ R_C here).
    #[test]
    fn theorem5_case_d_formula(
        points in dataset(),
        c_old in constraints(),
        dim in 0..DIMS,
        frac in (1..=9u8).prop_map(|v| f64::from(v) / 10.0),
    ) {
        let (lo, hi) = (c_old.lo()[dim], c_old.hi()[dim]);
        let new_lo = lo + (hi - lo) * frac;
        prop_assume!(new_lo > lo && new_lo <= hi);
        let c_new = c_old.with_dim(dim, new_lo, hi).expect("valid");

        let old_sky = sky(&points, &c_old);
        let (retained, removed): (Vec<Point>, Vec<Point>) =
            old_sky.into_iter().partition(|p| c_new.satisfies(p));
        let refetched: Vec<Point> = points
            .iter()
            .filter(|p| c_new.satisfies(p))
            .filter(|p| removed.iter().any(|t| dominates(t, p)))
            .filter(|p| !retained.iter().any(|u| dominates(u, p)))
            .cloned()
            .collect();
        let input: Vec<Point> = retained.into_iter().chain(refetched).collect();
        // Set-level equality (duplicate multiplicities may differ).
        prop_assert_eq!(
            dedup(Sfs.compute(input).skyline),
            dedup(sky(&points, &c_new))
        );
    }

    /// `classify` is consistent with `is_stable` on arbitrary pairs.
    #[test]
    fn classify_agrees_with_is_stable(c_old in constraints(), c_new in constraints()) {
        let class = classify(&c_old, &c_new);
        prop_assert_eq!(class.is_stable(), is_stable(&c_old, &c_new));
        if class == Overlap::Exact {
            prop_assert_eq!(&c_old, &c_new);
        }
        if class == Overlap::Disjoint {
            prop_assert!(!c_old.overlaps(&c_new));
        }
    }
}

fn sorted(mut v: Vec<Point>) -> Vec<Point> {
    v.sort_by_key(|p| p.coords().iter().map(|c| c.to_bits()).collect::<Vec<_>>());
    v
}

fn dedup(v: Vec<Point>) -> Vec<Point> {
    let mut v = sorted(v);
    v.dedup();
    v
}
