//! Integration tests for the paper's future-work extensions implemented by
//! this library: multi-item cache exploitation (Section 6.3) and dynamic
//! data (Section 6.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skycache::core::{
    BaselineExecutor, CbcsConfig, CbcsExecutor, DynamicCbcsExecutor, Executor, MprMode,
    QueryRequest, SearchStrategy,
};
use skycache::datagen::{DimStats, Distribution, InteractiveWorkload, SyntheticGen};
use skycache::geom::{Constraints, Point};
use skycache::storage::{CostModel, Table, TableConfig};

fn sorted(mut v: Vec<Point>) -> Vec<Point> {
    v.sort_by_key(|p| p.coords().iter().map(|c| c.to_bits()).collect::<Vec<_>>());
    v
}

fn table_3d(n: usize, seed: u64) -> Table {
    let points = SyntheticGen::new(Distribution::Independent, 3, seed).generate(n);
    let config = TableConfig { cost_model: CostModel::free(), ..Default::default() };
    Table::build(points, config).unwrap()
}

fn workload(table: &Table, n: usize, seed: u64) -> Vec<Constraints> {
    let stats = DimStats::compute(table.all_points());
    InteractiveWorkload::new(stats)
        .generate(n, seed)
        .queries()
        .iter()
        .map(|q| q.constraints.clone())
        .collect()
}

// ---------------------------------------------------------------------------
// Multi-item processing (Section 6.3)
// ---------------------------------------------------------------------------

#[test]
fn multi_item_stays_correct() {
    let table = table_3d(4_000, 3);
    let queries = workload(&table, 80, 7);
    let mut baseline = BaselineExecutor::new(&table);
    for extra in [1usize, 2, 4] {
        let config = CbcsConfig {
            mpr: MprMode::Approximate { k: 2 },
            extra_items: extra,
            ..Default::default()
        };
        let mut cbcs = CbcsExecutor::new(&table, config);
        for (i, c) in queries.iter().enumerate() {
            let want = sorted(baseline.execute(&QueryRequest::new(c.clone())).unwrap().skyline);
            let got = sorted(cbcs.execute(&QueryRequest::new(c.clone())).unwrap().skyline);
            assert_eq!(got, want, "extra_items={extra}, query {i}");
        }
    }
}

#[test]
fn multi_item_never_reads_more_points() {
    // Extra pruning points can only shrink the fetched region, so the
    // total points read must not increase (per-query ties are fine).
    let table = table_3d(20_000, 5);
    let queries = workload(&table, 100, 11);
    let mut single_total = 0u64;
    let mut multi_total = 0u64;
    for (extra, total) in [(0usize, &mut single_total), (3, &mut multi_total)] {
        let config = CbcsConfig {
            mpr: MprMode::Approximate { k: 3 },
            strategy: SearchStrategy::MaxOverlapSP,
            extra_items: extra,
            ..Default::default()
        };
        let mut cbcs = CbcsExecutor::new(&table, config);
        for c in &queries {
            *total += cbcs.execute(&QueryRequest::new(c.clone())).unwrap().stats.points_read;
        }
    }
    assert!(multi_total <= single_total, "multi-item read more: {multi_total} vs {single_total}");
}

// ---------------------------------------------------------------------------
// Dynamic data (Section 6.2)
// ---------------------------------------------------------------------------

#[test]
fn dynamic_executor_matches_recomputation_under_churn() {
    let mut rng = StdRng::seed_from_u64(99);
    let table = table_3d(2_000, 13);
    let queries = workload(&table, 60, 17);
    let mut dynamic = DynamicCbcsExecutor::new(table, CbcsConfig::default());

    let mut live_rows: Vec<u32> = (0..2_000).collect();
    for (i, c) in queries.iter().enumerate() {
        // Interleave churn: a couple of inserts and deletes per query.
        for _ in 0..2 {
            let p = Point::from(vec![
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ]);
            let row = dynamic.insert(p).unwrap();
            live_rows.push(row);
        }
        for _ in 0..2 {
            let pos = rng.gen_range(0..live_rows.len());
            let row = live_rows.swap_remove(pos);
            assert!(dynamic.delete(row).is_some());
        }

        // The cached answer must equal recomputing from the live data.
        let got = sorted(dynamic.execute(&QueryRequest::new(c.clone())).unwrap().skyline);
        let live: Vec<Point> = dynamic.table().live_points().map(|(_, p)| p.clone()).collect();
        let fresh =
            Table::build(live, TableConfig { cost_model: CostModel::free(), ..Default::default() })
                .unwrap();
        let want = sorted(
            BaselineExecutor::new(&fresh).execute(&QueryRequest::new(c.clone())).unwrap().skyline,
        );
        assert_eq!(got, want, "query {i} diverged after churn");
    }
}

#[test]
fn insert_into_cached_region_updates_answers() {
    let table = table_3d(1_000, 19);
    let mut dynamic = DynamicCbcsExecutor::new(table, CbcsConfig::default());
    let c = Constraints::from_pairs(&[(0.2, 0.8); 3]).unwrap();
    let before = dynamic.execute(&QueryRequest::new(c.clone())).unwrap().skyline;

    // A point dominating the whole region becomes the sole skyline point.
    dynamic.insert(Point::from(vec![0.2, 0.2, 0.2])).unwrap();
    let after = dynamic.execute(&QueryRequest::new(c.clone())).unwrap();
    assert_eq!(after.skyline, vec![Point::from(vec![0.2, 0.2, 0.2])]);
    // And it was answered from the (maintained) cache, not recomputed.
    assert!(after.stats.cache_hit);
    assert!(!before.is_empty());
}

#[test]
fn delete_of_skyline_point_invalidates_only_affected_items() {
    let table = table_3d(1_000, 23);
    let mut dynamic = DynamicCbcsExecutor::new(table, CbcsConfig::default());

    // Two disjoint cached regions.
    let c1 = Constraints::from_pairs(&[(0.0, 0.45); 3]).unwrap();
    let c2 = Constraints::from_pairs(&[(0.55, 1.0); 3]).unwrap();
    let r1 = dynamic.execute(&QueryRequest::new(c1.clone())).unwrap().skyline;
    dynamic.execute(&QueryRequest::new(c2.clone())).unwrap();
    assert_eq!(dynamic.cache().len(), 2);

    // Delete a skyline point of region 1.
    let victim = r1[0].clone();
    let row = dynamic
        .table()
        .live_points()
        .find(|(_, p)| **p == victim)
        .map(|(row, _)| row)
        .expect("skyline point exists in table");
    dynamic.delete(row).unwrap();

    // Region 1's item was dropped; region 2's survived.
    assert_eq!(dynamic.cache().len(), 1);

    // Re-querying region 1 is correct (recomputed, then re-cached).
    let got = sorted(dynamic.execute(&QueryRequest::new(c1.clone())).unwrap().skyline);
    let live: Vec<Point> = dynamic.table().live_points().map(|(_, p)| p.clone()).collect();
    let fresh =
        Table::build(live, TableConfig { cost_model: CostModel::free(), ..Default::default() })
            .unwrap();
    let want = sorted(
        BaselineExecutor::new(&fresh).execute(&QueryRequest::new(c1.clone())).unwrap().skyline,
    );
    assert_eq!(got, want);
}
