//! Differential property tests for the kernel generations: the wide
//! (lane-blocked, branch-free) kernels must be *bitwise* equivalent to
//! the scalar early-exit kernels on arbitrary rows — including equal
//! rows, signed zeros, empty and one-row blocks — and the planar d = 2
//! sweep must reproduce the classic SFS filter row for row.

use proptest::prelude::*;

use skycache::algos::{planar_skyline_into, Sfs, SkylineScratch};
use skycache::geom::dominance::{dominance_box_coords, dominated_by_any_rows};
use skycache::geom::{filter_block, retain_nondominated, Constraints, Kernel, PointBlock};

/// Wide enough that every row crosses at least one full lane block plus a
/// remainder when truncated to fewer dims.
const MAX_DIMS: usize = 8;

/// Coordinates on a coarse grid spanning both signs, with the negative
/// zero bit pattern explicitly representable (sentinel −9) so
/// sign-of-zero disagreements between generations would surface.
fn coord() -> impl Strategy<Value = f64> {
    (-9..=8i8).prop_map(|v| if v == -9 { -0.0 } else { f64::from(v) / 4.0 })
}

fn raw_row() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(coord(), MAX_DIMS)
}

fn raw_rows(max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(raw_row(), 0..max)
}

fn truncate(raw: &[f64], dims: usize) -> Vec<f64> {
    raw[..dims].to_vec()
}

fn to_block(raws: &[Vec<f64>], dims: usize) -> PointBlock {
    let mut b = PointBlock::new(dims).expect("nonzero dims");
    for r in raws {
        b.push_row(&r[..dims]);
    }
    b
}

proptest! {
    /// Wide dominance and comparison agree with scalar on every row pair,
    /// equal rows included.
    #[test]
    fn wide_dominates_and_compare_match_scalar(
        dims in 1usize..=MAX_DIMS, a in raw_row(), b in raw_row(), dup in any::<bool>(),
    ) {
        let s = truncate(&a, dims);
        let t = if dup { s.clone() } else { truncate(&b, dims) };
        prop_assert_eq!(Kernel::Wide.dominates(&s, &t), Kernel::Scalar.dominates(&s, &t));
        prop_assert_eq!(Kernel::Wide.dominates(&t, &s), Kernel::Scalar.dominates(&t, &s));
        prop_assert_eq!(Kernel::Wide.compare(&s, &t), Kernel::Scalar.compare(&s, &t));
        // Self-comparison: a row never dominates itself.
        prop_assert!(!Kernel::Wide.dominates(&s, &s));
    }

    /// Wide box membership agrees with scalar for arbitrary (lo, hi, row),
    /// and endpoints are always members.
    #[test]
    fn wide_contains_matches_scalar(
        dims in 1usize..=MAX_DIMS, a in raw_row(), b in raw_row(), probe in raw_row(),
    ) {
        let (a, b) = (truncate(&a, dims), truncate(&b, dims));
        let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
        let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
        let r = truncate(&probe, dims);
        prop_assert_eq!(
            Kernel::Wide.contains(&lo, &hi, &r),
            Kernel::Scalar.contains(&lo, &hi, &r)
        );
        prop_assert!(Kernel::Wide.contains(&lo, &hi, &lo));
        prop_assert!(Kernel::Wide.contains(&lo, &hi, &hi));
    }

    /// Wide dominance-box construction agrees with the scalar routine.
    #[test]
    fn wide_dominance_box_matches_scalar(
        dims in 1usize..=MAX_DIMS, a in raw_row(), b in raw_row(), s in raw_row(),
    ) {
        let (a, b) = (truncate(&a, dims), truncate(&b, dims));
        let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
        let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
        let c = Constraints::new(lo, hi).expect("ordered");
        let s = truncate(&s, dims);
        prop_assert_eq!(Kernel::Wide.dominance_box(&s, &c), dominance_box_coords(&s, &c));
    }

    /// Block-vs-block filtering is generation-independent: identical
    /// survivors in identical order, and identical dominance-test counts
    /// (both generations early-exit at row granularity). Empty and
    /// one-row blocks are in range.
    #[test]
    fn retain_nondominated_generations_agree(
        dims in 1usize..6, cands in raw_rows(20), window in raw_rows(20),
    ) {
        let window = to_block(&window, dims);
        let mut scalar = to_block(&cands, dims);
        let mut wide = scalar.clone();
        let a = filter_block(&mut scalar, &window);
        let b = retain_nondominated(&mut wide, &window, Kernel::Wide);
        prop_assert_eq!(scalar.to_points(), wide.to_points());
        prop_assert_eq!(a.dominance_tests, b.dominance_tests);
        prop_assert_eq!(a.removed, b.removed);
    }

    /// The rows-based any-dominator scan agrees across generations.
    #[test]
    fn dominated_by_any_rows_generations_agree(
        dims in 1usize..6, cands in raw_rows(12), t in raw_row(),
    ) {
        let cands = to_block(&cands, dims);
        let t = truncate(&t, dims);
        prop_assert_eq!(
            dominated_by_any_rows(&t, &cands, Kernel::Wide),
            dominated_by_any_rows(&t, &cands, Kernel::Scalar)
        );
    }

    /// The planar sweep reproduces the classic SFS filter exactly — same
    /// rows, same canonical order — on random d = 2 blocks, and never
    /// runs a pairwise dominance test.
    #[test]
    fn planar_sweep_matches_classic_sfs(pts in raw_rows(60)) {
        let rows: Vec<f64> = pts.iter().flat_map(|r| [r[0], r[1]]).collect();
        let mut scratch = SkylineScratch::new();
        let mut fast = PointBlock::new(2).expect("dims");
        let tests = planar_skyline_into(&rows, &mut scratch, &mut fast);
        prop_assert_eq!(tests, 0);
        let mut scratch2 = SkylineScratch::new();
        let mut classic = PointBlock::new(2).expect("dims");
        Sfs.classic_block_into(&rows, 2, &mut scratch2, &mut classic);
        prop_assert_eq!(fast.to_points(), classic.to_points());
    }

    /// Presorted input (ascending x) is the planar best case — results
    /// must still match the classic filter exactly.
    #[test]
    fn planar_sweep_matches_on_presorted_input(pts in raw_rows(60)) {
        let mut pts: Vec<(f64, f64)> = pts.iter().map(|r| (r[0], r[1])).collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let rows: Vec<f64> = pts.iter().flat_map(|&(x, y)| [x, y]).collect();
        let mut scratch = SkylineScratch::new();
        let mut fast = PointBlock::new(2).expect("dims");
        planar_skyline_into(&rows, &mut scratch, &mut fast);
        let mut scratch2 = SkylineScratch::new();
        let mut classic = PointBlock::new(2).expect("dims");
        Sfs.classic_block_into(&rows, 2, &mut scratch2, &mut classic);
        prop_assert_eq!(fast.to_points(), classic.to_points());
    }
}
