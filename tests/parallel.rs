//! Differential tests for `ExecMode::Parallel`.
//!
//! The parallel pipeline must be invisible in the paper's metrics: the
//! skyline *set* and every fetch-side counter (`points_read`,
//! `heap_fetches`, `range_queries_issued/executed/empty`) are identical
//! to sequential execution — only wall-clock latency and (for
//! `ParallelDc`) `dominance_tests` may differ. The thresholds here force
//! the parallel code paths even on a single-core host.

use std::thread;

use skycache::core::{
    BaselineExecutor, CbcsConfig, CbcsExecutor, ExecMode, Executor, MprMode, QueryRequest,
    QueryStats, Service, ServiceConfig,
};
use skycache::datagen::{DimStats, Distribution, InteractiveWorkload, SyntheticGen};
use skycache::geom::{Constraints, Point};
use skycache::storage::{CostModel, Table, TableConfig};

/// Forces both parallel stages regardless of host core count: >1 fetch
/// lane and a D&C threshold low enough that every non-trivial skyline
/// input takes the threaded path.
const PARALLEL: ExecMode = ExecMode::Parallel { lanes: 4, dc_threshold: 16 };

fn sort_key(p: &Point) -> Vec<u64> {
    p.coords().iter().map(|c| c.to_bits()).collect()
}

fn sorted(mut v: Vec<Point>) -> Vec<Point> {
    v.sort_by_key(sort_key);
    v
}

fn table_for(dist: Distribution, dims: usize, n: usize, seed: u64) -> Table {
    let points = SyntheticGen::new(dist, dims, seed).generate(n);
    let config = TableConfig { cost_model: CostModel::free(), ..Default::default() };
    Table::build(points, config).unwrap()
}

fn interactive_queries(table: &Table, n: usize, seed: u64) -> Vec<Constraints> {
    let stats = DimStats::compute(table.all_points());
    InteractiveWorkload::new(stats)
        .generate(n, seed)
        .queries()
        .iter()
        .map(|q| q.constraints.clone())
        .collect()
}

/// The fetch-side counters that must not change with the execution mode.
fn fetch_metrics(stats: &QueryStats) -> [u64; 5] {
    [
        stats.points_read,
        stats.heap_fetches,
        stats.range_queries_issued,
        stats.range_queries_executed,
        stats.range_queries_empty,
    ]
}

#[test]
fn parallel_cbcs_matches_sequential_skylines_and_fetch_metrics() {
    for dist in [Distribution::Independent, Distribution::Correlated, Distribution::AntiCorrelated]
    {
        let table = table_for(dist, 3, 4_000, 47);
        let queries = interactive_queries(&table, 60, 53);
        let mut seq = CbcsExecutor::new(&table, CbcsConfig::default());
        let mut par =
            CbcsExecutor::new(&table, CbcsConfig { exec: PARALLEL, ..Default::default() });
        for (i, c) in queries.iter().enumerate() {
            let a = seq.execute(&QueryRequest::new(c.clone())).unwrap();
            let b = par.execute(&QueryRequest::new(c.clone())).unwrap();
            assert_eq!(
                sorted(a.skyline),
                sorted(b.skyline),
                "{dist:?}: query {i} skyline mismatch"
            );
            assert_eq!(
                fetch_metrics(&a.stats),
                fetch_metrics(&b.stats),
                "{dist:?}: query {i} fetch metrics diverged"
            );
            assert_eq!(a.stats.cache_hit, b.stats.cache_hit, "{dist:?}: query {i}");
            assert_eq!(a.stats.case, b.stats.case, "{dist:?}: query {i}");
        }
    }
}

#[test]
fn parallel_exact_mpr_matches_sequential() {
    // Exact MPR is the multi-region-fetch-heavy configuration: its plans
    // are what fetch_batch_parallel actually spreads across lanes.
    let table = table_for(Distribution::Independent, 4, 4_000, 59);
    let queries = interactive_queries(&table, 50, 61);
    let seq_cfg = CbcsConfig { mpr: MprMode::Exact, ..Default::default() };
    let par_cfg = CbcsConfig { mpr: MprMode::Exact, exec: PARALLEL, ..Default::default() };
    let mut seq = CbcsExecutor::new(&table, seq_cfg);
    let mut par = CbcsExecutor::new(&table, par_cfg);
    for (i, c) in queries.iter().enumerate() {
        let a = seq.execute(&QueryRequest::new(c.clone())).unwrap();
        let b = par.execute(&QueryRequest::new(c.clone())).unwrap();
        assert_eq!(sorted(a.skyline), sorted(b.skyline), "query {i} skyline mismatch");
        assert_eq!(
            fetch_metrics(&a.stats),
            fetch_metrics(&b.stats),
            "query {i} fetch metrics diverged"
        );
    }
}

#[test]
fn parallel_baseline_matches_sequential() {
    let table = table_for(Distribution::AntiCorrelated, 3, 5_000, 67);
    let queries = interactive_queries(&table, 25, 71);
    let mut seq = BaselineExecutor::new(&table);
    let mut par = BaselineExecutor::new(&table);
    for (i, c) in queries.iter().enumerate() {
        let a = seq.execute(&QueryRequest::new(c.clone())).unwrap();
        let b = par.execute(&QueryRequest::new(c.clone()).with_exec(PARALLEL)).unwrap();
        assert_eq!(sorted(a.skyline), sorted(b.skyline), "query {i} skyline mismatch");
        assert_eq!(
            fetch_metrics(&a.stats),
            fetch_metrics(&b.stats),
            "query {i} fetch metrics diverged"
        );
    }
}

#[test]
fn shared_cache_parallel_executors_stay_correct_under_concurrency() {
    // Several users over one shared cache, each running the parallel
    // pipeline, racing each other: every answer must still equal the
    // Baseline answer for its query.
    let table = table_for(Distribution::Independent, 3, 2_000, 73);
    let queries = interactive_queries(&table, 30, 79);
    let reference: Vec<Vec<Point>> = {
        let mut baseline = BaselineExecutor::new(&table);
        queries
            .iter()
            .map(|c| sorted(baseline.execute(&QueryRequest::new(c.clone())).unwrap().skyline))
            .collect()
    };

    let config = CbcsConfig { exec: PARALLEL, ..Default::default() };
    let service = Service::open(&table, ServiceConfig::with_cbcs(config));
    thread::scope(|s| {
        for worker in 0..4u64 {
            let queries = &queries;
            let reference = &reference;
            let mut session = service.session();
            s.spawn(move || {
                for _round in 0..2 {
                    for (c, want) in queries.iter().zip(reference) {
                        let got =
                            sorted(session.execute(&QueryRequest::new(c.clone())).unwrap().skyline);
                        assert_eq!(&got, want, "worker {worker} diverged on {c:?}");
                    }
                }
            });
        }
    });
    assert!(!service.cache().is_empty());
}
