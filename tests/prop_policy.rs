//! Property tests for the cache-policy layer (DESIGN.md §17): under
//! every replacement policy (LRU, LCU, TinyLFU, cost-aware), with
//! compositional multi-item answering on or off and with admission
//! rejections and evictions firing along the way, a sequence of queries
//! answered through the cache must equal the from-scratch answer.

use proptest::prelude::*;

use skycache::algos::{Sfs, SkylineAlgorithm};
use skycache::core::{CbcsConfig, CbcsExecutor, Executor, QueryRequest, ReplacementPolicy};
use skycache::geom::{Constraints, Point};
use skycache::storage::{CostModel, Table, TableConfig};

fn coord() -> impl Strategy<Value = f64> {
    (0..=16u8).prop_map(|v| f64::from(v) / 16.0)
}

fn constraints(dims: usize) -> impl Strategy<Value = Constraints> {
    (prop::collection::vec(coord(), dims), prop::collection::vec(coord(), dims)).prop_map(
        |(a, b)| {
            let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
            let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
            Constraints::new(lo, hi).expect("ordered")
        },
    )
}

fn dataset(dims: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(coord(), dims), 1..200)
        .prop_map(|rows| rows.into_iter().map(Point::from).collect())
}

/// Dimensionality plus matching dataset and query sequence: the query
/// count exceeds the smallest capacity below, so evictions (and, under
/// TinyLFU, admission rejections) actually fire. Generated at d = 6 and
/// projected down to the sampled dimensionality (the vendored proptest
/// subset has no `prop_flat_map`).
fn scenario() -> impl Strategy<Value = (Vec<Point>, Vec<Constraints>)> {
    (2..=6usize, dataset(6), prop::collection::vec(constraints(6), 2..8)).prop_map(
        |(dims, points, queries)| {
            let points: Vec<Point> =
                points.into_iter().map(|p| Point::from(p.coords()[..dims].to_vec())).collect();
            let queries: Vec<Constraints> = queries
                .into_iter()
                .map(|c| {
                    Constraints::new(c.lo()[..dims].to_vec(), c.hi()[..dims].to_vec())
                        .expect("prefix of an ordered box stays ordered")
                })
                .collect();
            (points, queries)
        },
    )
}

fn policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Lcu),
        Just(ReplacementPolicy::TinyLfu),
        Just(ReplacementPolicy::CostAware),
    ]
}

fn build(points: Vec<Point>) -> Table {
    Table::build(points, TableConfig { cost_model: CostModel::free(), ..Default::default() })
        .expect("generated data is valid")
}

fn reference(points: &[Point], c: &Constraints) -> Vec<Point> {
    let constrained: Vec<Point> = points.iter().filter(|p| c.satisfies(p)).cloned().collect();
    sorted(Sfs.compute(constrained).skyline)
}

fn sorted(mut v: Vec<Point>) -> Vec<Point> {
    v.sort_by_key(|p| p.coords().iter().map(|c| c.to_bits()).collect::<Vec<_>>());
    v
}

fn all_distinct(points: &[Point]) -> bool {
    let mut keys: Vec<Vec<u64>> =
        points.iter().map(|p| p.coords().iter().map(|c| c.to_bits()).collect()).collect();
    keys.sort();
    keys.windows(2).all(|w| w[0] != w[1])
}

fn dedup(v: Vec<Point>) -> Vec<Point> {
    let mut v = sorted(v);
    v.dedup();
    v
}

/// Compares skylines under the paper's distinctness assumption: exact
/// multiset equality for distinct data; with duplicates, a duplicate of
/// a cached skyline point may be dropped by the MPR (see DESIGN.md,
/// "Semantics notes"), so equality holds on coordinate *sets*.
fn assert_skyline_eq(
    points: &[Point],
    got: Vec<Point>,
    want: Vec<Point>,
) -> Result<(), TestCaseError> {
    if all_distinct(points) {
        prop_assert_eq!(sorted(got), sorted(want));
    } else {
        prop_assert_eq!(dedup(got), dedup(want));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every (policy × compose × capacity) cell answers every query in
    /// the sequence exactly like a from-scratch recompute, no matter
    /// which items the policy evicted or rejected in between.
    #[test]
    fn every_policy_and_composition_equals_naive(
        scenario in scenario(),
        policy in policy(),
        compose in any::<bool>(),
        capacity in prop_oneof![Just(None), Just(Some(2usize)), Just(Some(4usize))],
    ) {
        let (points, queries) = scenario;
        let table = build(points.clone());
        let config = CbcsConfig { policy, compose, capacity, ..Default::default() };
        let mut ex = CbcsExecutor::new(&table, config);
        for c in &queries {
            let got = ex.execute(&QueryRequest::new(c.clone())).unwrap().skyline;
            assert_skyline_eq(&points, got, reference(&points, c))?;
        }
    }

    /// The composed path specifically: replay the same query sequence
    /// with composition on and off under the same policy — both runs
    /// must produce bitwise-identical skylines query for query (the two
    /// caches may diverge in *content* once touch order differs, but
    /// never in answers).
    #[test]
    fn composition_is_transparent(
        scenario in scenario(),
        policy in policy(),
    ) {
        let (points, queries) = scenario;
        let table = build(points.clone());
        let base = CbcsConfig { policy, capacity: Some(4), ..Default::default() };
        let mut plain = CbcsExecutor::new(&table, CbcsConfig { compose: false, ..base.clone() });
        let mut composed = CbcsExecutor::new(&table, CbcsConfig { compose: true, ..base });
        for c in &queries {
            let a = plain.execute(&QueryRequest::new(c.clone())).unwrap();
            let b = composed.execute(&QueryRequest::new(c.clone())).unwrap();
            // Same distinctness caveat as above: with duplicate data
            // points, the two paths may keep different duplicate copies.
            assert_skyline_eq(&points, b.skyline, a.skyline)?;
        }
    }
}
