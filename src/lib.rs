//! # skycache — cache-based constrained skyline queries
//!
//! A from-scratch Rust reproduction of *Efficient caching for constrained
//! skyline queries* (Mortensen, Chester, Assent, Magnani — EDBT 2015).
//!
//! This facade crate re-exports the whole workspace so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`geom`] — points, boxes, dominance, region algebra;
//! * [`datagen`] — synthetic datasets and query workloads;
//! * [`storage`] — paged point store with per-dimension indexes and an I/O
//!   cost model (the "PostgreSQL + B-trees" substrate of the paper);
//! * [`rtree`] — an R\*-tree (the "libspatialindex" substrate);
//! * [`algos`] — skyline algorithms: BNL, SFS, divide & conquer, BBS;
//! * [`obs`] — the observability layer: phase spans, the metric registry,
//!   and the versioned per-query [`obs::QueryReport`];
//! * [`core`] — the paper's contribution: stability theory, the four
//!   incremental cases, the (approximate) Missing Points Region, the cache
//!   with its search strategies, and the CBCS engine — plus the
//!   future-work extensions (dynamic data, multi-item pruning, a
//!   thread-safe shared cache for multi-user deployments).
//!
//! ## Quickstart
//!
//! ```
//! use skycache::core::{CbcsConfig, CbcsExecutor, Executor, QueryRequest};
//! use skycache::datagen::{Distribution, SyntheticGen};
//! use skycache::geom::Constraints;
//! use skycache::storage::Table;
//!
//! // 10k independent 3-D points in [0,1]^3.
//! let points = SyntheticGen::new(Distribution::Independent, 3, 42).generate(10_000);
//! let table = Table::build(points, Default::default()).unwrap();
//!
//! let mut cbcs = CbcsExecutor::new(&table, CbcsConfig::default());
//!
//! // First query: cache miss, computed from scratch and cached.
//! let c1 = Constraints::from_pairs(&[(0.1, 0.6), (0.1, 0.6), (0.1, 0.6)]).unwrap();
//! let r1 = cbcs.execute(&QueryRequest::new(c1)).unwrap();
//!
//! // Refined query: answered from the cache via the MPR.
//! let c2 = Constraints::from_pairs(&[(0.1, 0.65), (0.1, 0.6), (0.1, 0.6)]).unwrap();
//! let r2 = cbcs.execute(&QueryRequest::new(c2)).unwrap();
//! assert!(r2.stats.points_read <= r1.stats.points_read);
//! # let _ = (r1, r2);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(rust_2018_idioms)]

pub use skycache_algos as algos;
pub use skycache_core as core;
pub use skycache_datagen as datagen;
pub use skycache_geom as geom;
pub use skycache_obs as obs;
pub use skycache_rtree as rtree;
pub use skycache_storage as storage;
