//! Synthetic stand-in for the Danish real-estate dataset of Section 7.5.
//!
//! The paper evaluates on ~4.2M Danish property records (1.28M after
//! cleaning) with four skyline-suitable dimensions: construction year,
//! size in m², property-tax valuation, and actual sales price. That 2005
//! snapshot is not publicly available, so this module generates a seeded
//! dataset with the same schema and the characteristics that matter to the
//! experiment:
//!
//! * realistic, non-uniform marginals — construction years follow a
//!   mixture of building booms, sizes and prices are log-normal;
//! * strong correlation between size, valuation and price (bigger houses
//!   cost more) with anti-correlated pockets (old central-city properties
//!   are small but expensive), giving the mixed correlation structure real
//!   estate exhibits;
//! * dimensions are emitted in *minimization orientation* (the skyline
//!   convention of this workspace): year and size are negated, so the
//!   skyline prefers new, large, cheap, low-valuation properties.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skycache_geom::Point;

use crate::util::{log_normal, normal};

/// Dimension order of generated records.
pub const DIM_LABELS: [&str; 4] = ["neg_year", "neg_sqm", "valuation", "price"];

/// Seeded generator for property-like 4-D records.
#[derive(Clone, Debug)]
pub struct RealEstateGen {
    seed: u64,
}

impl RealEstateGen {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        RealEstateGen { seed }
    }

    /// Generates `n` records.
    ///
    /// Each record is `(-year, -sqm, valuation_kDKK, price_kDKK)` so that
    /// *smaller is better* in every dimension.
    pub fn generate(&self, n: usize) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.gen_one(&mut rng));
        }
        out
    }

    fn gen_one<R: Rng>(&self, rng: &mut R) -> Point {
        // Construction year: mixture of building booms.
        let year = match rng.gen_range(0..100u32) {
            0..=14 => normal(rng, 1915.0, 12.0), // pre-war urban stock
            15..=39 => normal(rng, 1955.0, 8.0), // post-war expansion
            40..=74 => normal(rng, 1972.0, 6.0), // the 70s boom
            75..=89 => normal(rng, 1990.0, 7.0),
            _ => normal(rng, 2002.0, 2.5), // recent builds
        }
        .clamp(1850.0, 2005.0);

        // Central-city flag: older properties are more likely central.
        let central_p = ((1980.0 - year) / 130.0).clamp(0.05, 0.8);
        let central = rng.gen_bool(central_p);

        // Size: log-normal; central properties skew smaller.
        let sqm_mu = if central { 4.45 } else { 4.90 };
        let sqm = log_normal(rng, sqm_mu, 0.35).clamp(18.0, 900.0);

        // Valuation (thousand DKK): driven by size, recency, and a strong
        // location premium — this premium is what creates the
        // anti-correlated pocket (small+old but expensive).
        let recency = ((year - 1850.0) / 155.0).clamp(0.0, 1.0);
        let location_mult = if central {
            log_normal(rng, 0.55, 0.25) // central premium
        } else {
            log_normal(rng, 0.0, 0.30)
        };
        let base = 6.5 * sqm * (0.6 + 0.8 * recency);
        let valuation = (base * location_mult).clamp(50.0, 30_000.0);

        // Sales price tracks valuation with market noise.
        let price = (valuation * rng.gen_range(0.75..1.35) * log_normal(rng, 0.0, 0.08))
            .clamp(40.0, 40_000.0);

        Point::new_unchecked(vec![-year, -sqm, valuation, price])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(points: &[Point], a: usize, b: usize) -> f64 {
        let n = points.len() as f64;
        let ma = points.iter().map(|p| p[a]).sum::<f64>() / n;
        let mb = points.iter().map(|p| p[b]).sum::<f64>() / n;
        let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
        for p in points {
            cov += (p[a] - ma) * (p[b] - mb);
            va += (p[a] - ma).powi(2);
            vb += (p[b] - mb).powi(2);
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn deterministic_and_4d() {
        let g = RealEstateGen::new(11);
        let a = g.generate(500);
        assert_eq!(a, g.generate(500));
        assert!(a.iter().all(|p| p.dims() == 4));
    }

    #[test]
    fn ranges_plausible() {
        let pts = RealEstateGen::new(1).generate(5_000);
        for p in &pts {
            let year = -p[0];
            let sqm = -p[1];
            assert!((1850.0..=2005.0).contains(&year), "year {year}");
            assert!((18.0..=900.0).contains(&sqm), "sqm {sqm}");
            assert!(p[2] > 0.0 && p[3] > 0.0);
        }
    }

    #[test]
    fn price_tracks_valuation() {
        let pts = RealEstateGen::new(2).generate(10_000);
        let r = pearson(&pts, 2, 3);
        assert!(r > 0.9, "price/valuation correlation {r}");
    }

    #[test]
    fn bigger_houses_cost_more() {
        let pts = RealEstateGen::new(3).generate(10_000);
        // neg_sqm vs price: bigger house (more negative dim 1) → higher
        // price, so the correlation on the stored values is negative.
        let r = pearson(&pts, 1, 3);
        assert!(r < -0.4, "size/price correlation {r}");
    }

    #[test]
    fn anti_correlated_pocket_exists() {
        // Among small old houses, a meaningful share is still expensive:
        // the central-premium pocket the experiment needs.
        let pts = RealEstateGen::new(4).generate(20_000);
        let mut small_old = 0usize;
        let mut small_old_expensive = 0usize;
        for p in &pts {
            let (year, sqm, price) = (-p[0], -p[1], p[3]);
            if year < 1940.0 && sqm < 90.0 {
                small_old += 1;
                if price > 600.0 {
                    small_old_expensive += 1;
                }
            }
        }
        assert!(small_old > 200, "sample too small: {small_old}");
        let frac = small_old_expensive as f64 / small_old as f64;
        assert!(frac > 0.15, "expensive fraction among small+old: {frac}");
    }
}
