//! Synthetic datasets and query workloads for constrained skyline
//! experiments.
//!
//! This crate reproduces the data side of the paper's evaluation
//! (Section 7):
//!
//! * [`SyntheticGen`] — the standard skyline benchmark generator of
//!   Börzsönyi et al. (independent, correlated and anti-correlated
//!   distributions over `[0,1]^|D|`);
//! * [`real_estate`] — a seeded substitute for the non-public Danish
//!   property dataset (4 dimensions: construction year, size, tax
//!   valuation, sales price);
//! * [`workload`] — the paper's two query workloads (Section 7.1): chains
//!   of incrementally refined *interactive exploratory search* queries,
//!   and *independent* single queries of a multi-user system.
//!
//! All generators are deterministic given a seed.
//!
//! ```
//! use skycache_datagen::{DimStats, Distribution, InteractiveWorkload, SyntheticGen};
//!
//! let data = SyntheticGen::new(Distribution::AntiCorrelated, 3, 7).generate(1_000);
//! let stats = DimStats::compute(&data);
//! let workload = InteractiveWorkload::new(stats).generate(25, 42);
//! assert_eq!(workload.len(), 25);
//! // Chains refine one bound at a time, exactly as in the paper's §7.1.
//! assert_eq!(workload.queries()[0].step, 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(rust_2018_idioms)]

pub mod real_estate;
mod synthetic;
pub mod workload;

pub use real_estate::RealEstateGen;
pub use synthetic::{Distribution, SyntheticGen};
pub use workload::{
    DimStats, IndependentWorkload, InteractiveWorkload, QuerySpec, Workload, ZipfWorkload,
};

pub(crate) mod util {
    use rand::Rng;

    /// Standard-normal sample via the Box–Muller transform; `rand` 0.8
    /// ships no distributions beyond uniform, so we roll our own.
    pub fn normal<R: Rng>(rng: &mut R, mean: f64, std: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std * z
    }

    /// Log-normal sample.
    pub fn log_normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
        normal(rng, mu, sigma).exp()
    }
}
