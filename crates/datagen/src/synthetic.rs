use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skycache_geom::{Point, PointBlock};

use crate::util::normal;

/// The three standard skyline benchmark distributions of Börzsönyi,
/// Kossmann & Stocker (ICDE 2001).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Attribute values drawn independently and uniformly from `[0,1]`.
    Independent,
    /// Points clustered around the main diagonal: a point good in one
    /// dimension tends to be good in the others (small skylines).
    Correlated,
    /// Points clustered around the anti-diagonal plane `Σ x_i ≈ |D|/2`:
    /// a point good in one dimension tends to be bad in the others
    /// (large skylines — the hard case).
    AntiCorrelated,
}

impl Distribution {
    /// Short lowercase label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            Distribution::Independent => "independent",
            Distribution::Correlated => "correlated",
            Distribution::AntiCorrelated => "anti-correlated",
        }
    }
}

/// Seeded generator for the standard synthetic skyline benchmarks.
///
/// The construction follows the original `randdataset` generator:
/// correlated points are sampled on the diagonal with small normal
/// perpendicular spread, anti-correlated points on a hyperplane of
/// constant coordinate sum with uniform redistribution between pairs of
/// dimensions. All coordinates fall in `[0,1]`.
#[derive(Clone, Debug)]
pub struct SyntheticGen {
    dist: Distribution,
    dims: usize,
    seed: u64,
}

impl SyntheticGen {
    /// Creates a generator for `dims`-dimensional data.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dist: Distribution, dims: usize, seed: u64) -> Self {
        assert!(dims > 0, "zero-dimensional data is not meaningful");
        SyntheticGen { dist, dims, seed }
    }

    /// Distribution produced by the generator.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// Dimensionality of generated points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Generates `n` points deterministically.
    pub fn generate(&self, n: usize) -> Vec<Point> {
        self.generate_block(n).rows().map(|row| Point::new_unchecked(row.to_vec())).collect()
    }

    /// Generates `n` points deterministically into one flat
    /// [`PointBlock`]: a single coordinate allocation plus a reused
    /// scratch row, instead of one heap allocation per point. Consumes
    /// the RNG identically to [`SyntheticGen::generate`], so the two
    /// produce the same coordinates for the same seed.
    pub fn generate_block(&self, n: usize) -> PointBlock {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // skylint: allow(no-panic-paths) — SyntheticGen::new asserts dims >= 1.
        let mut block = PointBlock::with_capacity(self.dims, n).expect("dims > 0");
        let mut row = Vec::with_capacity(self.dims);
        for _ in 0..n {
            match self.dist {
                Distribution::Independent => self.fill_independent(&mut rng, &mut row),
                Distribution::Correlated => self.fill_correlated(&mut rng, &mut row),
                Distribution::AntiCorrelated => self.fill_anti_correlated(&mut rng, &mut row),
            }
            block.push_row(&row);
        }
        block
    }

    fn fill_independent<R: Rng>(&self, rng: &mut R, row: &mut Vec<f64>) {
        row.clear();
        row.extend((0..self.dims).map(|_| rng.gen_range(0.0..1.0)));
    }

    fn fill_correlated<R: Rng>(&self, rng: &mut R, row: &mut Vec<f64>) {
        // A peaked position on the diagonal plus small perpendicular noise.
        loop {
            row.clear();
            // Sum of two uniforms: triangular distribution peaked at 0.5.
            let v = 0.5 * (rng.gen_range(0.0..1.0) + rng.gen_range(0.0..1.0));
            row.extend((0..self.dims).map(|_| v + normal(rng, 0.0, 0.05)));
            if row.iter().all(|c| (0.0..=1.0).contains(c)) {
                return;
            }
        }
    }

    fn fill_anti_correlated<R: Rng>(&self, rng: &mut R, row: &mut Vec<f64>) {
        // Points near the plane Σ x_i = |D|/2: start all dimensions at a
        // normally distributed v, then shift mass between random pairs of
        // dimensions, keeping the coordinate sum constant.
        loop {
            let v = normal(rng, 0.5, 0.1);
            if !(0.0..=1.0).contains(&v) {
                continue;
            }
            row.clear();
            row.resize(self.dims, v);
            if self.dims == 1 {
                return;
            }
            for _ in 0..self.dims {
                let i = rng.gen_range(0..self.dims);
                let mut j = rng.gen_range(0..self.dims);
                while j == i {
                    j = rng.gen_range(0..self.dims);
                }
                // Transferable mass keeping both coordinates in [0,1].
                let max_shift = (1.0 - row[j]).min(row[i]);
                if max_shift <= 0.0 {
                    continue;
                }
                let shift = rng.gen_range(0.0..max_shift);
                row[i] -= shift;
                row[j] += shift;
            }
            if row.iter().all(|c| (0.0..=1.0).contains(c)) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_per_dim(points: &[Point], dims: usize) -> Vec<f64> {
        let mut m = vec![0.0; dims];
        for p in points {
            for (i, &c) in p.coords().iter().enumerate() {
                m[i] += c;
            }
        }
        for v in &mut m {
            *v /= points.len() as f64;
        }
        m
    }

    fn pearson(points: &[Point], a: usize, b: usize) -> f64 {
        let n = points.len() as f64;
        let ma = points.iter().map(|p| p[a]).sum::<f64>() / n;
        let mb = points.iter().map(|p| p[b]).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for p in points {
            cov += (p[a] - ma) * (p[b] - mb);
            va += (p[a] - ma).powi(2);
            vb += (p[b] - mb).powi(2);
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn block_generation_matches_point_generation() {
        for dist in
            [Distribution::Independent, Distribution::Correlated, Distribution::AntiCorrelated]
        {
            let g = SyntheticGen::new(dist, 4, 11);
            let block = g.generate_block(500);
            assert_eq!(block.len(), 500);
            assert_eq!(block.dims(), 4);
            assert_eq!(block.to_points(), g.generate(500), "{dist:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = SyntheticGen::new(Distribution::Independent, 4, 7);
        assert_eq!(g.generate(100), g.generate(100));
        let g2 = SyntheticGen::new(Distribution::Independent, 4, 8);
        assert_ne!(g.generate(100), g2.generate(100));
    }

    #[test]
    fn all_coords_in_unit_cube() {
        for dist in
            [Distribution::Independent, Distribution::Correlated, Distribution::AntiCorrelated]
        {
            let pts = SyntheticGen::new(dist, 5, 1).generate(2_000);
            assert_eq!(pts.len(), 2_000);
            for p in &pts {
                assert!(p.coords().iter().all(|c| (0.0..=1.0).contains(c)), "{dist:?}: {p:?}");
            }
        }
    }

    #[test]
    fn independent_is_roughly_uniform() {
        let pts = SyntheticGen::new(Distribution::Independent, 3, 2).generate(20_000);
        for m in mean_per_dim(&pts, 3) {
            assert!((m - 0.5).abs() < 0.02, "mean {m}");
        }
        let r = pearson(&pts, 0, 1);
        assert!(r.abs() < 0.05, "correlation {r}");
    }

    #[test]
    fn correlated_has_positive_correlation() {
        let pts = SyntheticGen::new(Distribution::Correlated, 3, 3).generate(10_000);
        let r = pearson(&pts, 0, 2);
        assert!(r > 0.7, "correlation {r}");
    }

    #[test]
    fn anti_correlated_has_negative_correlation() {
        let pts = SyntheticGen::new(Distribution::AntiCorrelated, 2, 4).generate(10_000);
        let r = pearson(&pts, 0, 1);
        assert!(r < -0.5, "correlation {r}");
    }

    #[test]
    fn anti_correlated_sum_concentrated() {
        let pts = SyntheticGen::new(Distribution::AntiCorrelated, 4, 5).generate(5_000);
        let mean_sum = pts.iter().map(Point::coord_sum).sum::<f64>() / pts.len() as f64;
        assert!((mean_sum - 2.0).abs() < 0.1, "mean coord sum {mean_sum}");
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn zero_dims_panics() {
        let _ = SyntheticGen::new(Distribution::Independent, 0, 0);
    }

    #[test]
    fn labels() {
        assert_eq!(Distribution::Independent.label(), "independent");
        assert_eq!(Distribution::Correlated.label(), "correlated");
        assert_eq!(Distribution::AntiCorrelated.label(), "anti-correlated");
    }
}
