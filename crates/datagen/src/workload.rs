//! Query workload generation (paper Section 7.1).
//!
//! The paper evaluates with two workloads over the same query generator:
//!
//! 1. **Interactive exploratory search** — a user poses an initial query
//!    and then refines it 1–10 times, each refinement changing a single
//!    randomly chosen dimension and direction by 5–10%. Chains are
//!    concatenated until the desired number of queries is reached.
//! 2. **Independent queries** — every query is generated like an initial
//!    query (a fresh "user").
//!
//! Initial constraints are drawn per dimension with `C̲[i]` and `C̄[i]`
//! "set randomly between 0 and 3 standard deviations from the mean of
//! dimension i": each bound is drawn uniformly from
//! `[mean − 3σ, mean + 3σ]` and the two draws are ordered, modelling that
//! average-valued items are the most likely search targets (and matching
//! the query selectivities the paper reports, e.g. Baseline reading ~3% of
//! a 5-D dataset in its Figure 8a).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skycache_geom::{Constraints, Point};

/// Per-dimension mean and standard deviation of a dataset, the anchor for
/// workload generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DimStats {
    /// Arithmetic mean of the dimension.
    pub mean: f64,
    /// Standard deviation of the dimension.
    pub std: f64,
}

impl DimStats {
    /// Computes per-dimension statistics of a non-empty dataset.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn compute(points: &[Point]) -> Vec<DimStats> {
        assert!(!points.is_empty(), "cannot profile an empty dataset");
        let dims = points[0].dims();
        let n = points.len() as f64;
        let mut mean = vec![0.0; dims];
        for p in points {
            for (i, &c) in p.coords().iter().enumerate() {
                mean[i] += c;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dims];
        for p in points {
            for (i, &c) in p.coords().iter().enumerate() {
                var[i] += (c - mean[i]) * (c - mean[i]);
            }
        }
        mean.into_iter().zip(var).map(|(mean, v)| DimStats { mean, std: (v / n).sqrt() }).collect()
    }
}

/// One query of a workload, annotated with its position in a refinement
/// chain (`step == 0` is the chain's initial query).
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The constraints to query.
    pub constraints: Constraints,
    /// Index of the refinement chain this query belongs to.
    pub chain: usize,
    /// Position within the chain; 0 for the initial query.
    pub step: usize,
}

/// A generated sequence of queries.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    queries: Vec<QuerySpec>,
}

impl Workload {
    /// The queries in issue order.
    pub fn queries(&self) -> &[QuerySpec] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Shared knobs of both workload generators.
#[derive(Clone, Debug)]
struct GenParams {
    /// Constrain only the first `constrained_dims` dimensions; the rest are
    /// unbounded (used by the dimensionality experiment, Fig. 7).
    constrained_dims: usize,
    /// Half-width multiplier: bounds drawn within `0..sigma_span` standard
    /// deviations of the mean.
    sigma_span: f64,
}

fn initial_constraints<R: Rng>(rng: &mut R, stats: &[DimStats], params: &GenParams) -> Constraints {
    let dims = stats.len();
    let mut lo = vec![f64::NEG_INFINITY; dims];
    let mut hi = vec![f64::INFINITY; dims];
    for (i, s) in stats.iter().enumerate().take(params.constrained_dims) {
        // Degenerate dimensions still get a non-empty box.
        let spread = if s.std > 0.0 { s.std } else { s.mean.abs().max(1.0) * 0.01 };
        let a = s.mean + rng.gen_range(-params.sigma_span..params.sigma_span) * spread;
        let b = s.mean + rng.gen_range(-params.sigma_span..params.sigma_span) * spread;
        lo[i] = a.min(b);
        hi[i] = a.max(b);
    }
    // skylint: allow(no-panic-paths) — lo/hi are min/max of the same two samples.
    Constraints::new(lo, hi).expect("lo <= hi by construction")
}

/// The four possible single-bound refinements, matching the cases of
/// Section 4.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Refinement {
    DecreaseLower,
    DecreaseUpper,
    IncreaseUpper,
    IncreaseLower,
}

const REFINEMENTS: [Refinement; 4] = [
    Refinement::DecreaseLower,
    Refinement::DecreaseUpper,
    Refinement::IncreaseUpper,
    Refinement::IncreaseLower,
];

fn refine<R: Rng>(
    rng: &mut R,
    c: &Constraints,
    stats: &[DimStats],
    params: &GenParams,
) -> Constraints {
    // Retry until a refinement yields a valid, changed box (shrinking moves
    // on an almost-empty dimension are clamped and may be rejected).
    for _ in 0..64 {
        let dim = rng.gen_range(0..params.constrained_dims);
        let kind = REFINEMENTS[rng.gen_range(0..4)];
        let (lo, hi) = (c.lo()[dim], c.hi()[dim]);
        // 5–10% of the current constraint width; for unbounded dimensions
        // fall back to the dimension's spread.
        let base_width =
            if lo.is_finite() && hi.is_finite() { hi - lo } else { 6.0 * stats[dim].std };
        let delta = base_width.max(f64::MIN_POSITIVE) * rng.gen_range(0.05..0.10);
        let (new_lo, new_hi) = match kind {
            Refinement::DecreaseLower => (lo - delta, hi),
            Refinement::IncreaseLower => ((lo + delta).min(hi), hi),
            Refinement::DecreaseUpper => (lo, (hi - delta).max(lo)),
            Refinement::IncreaseUpper => (lo, hi + delta),
        };
        if new_lo > new_hi || (new_lo == lo && new_hi == hi) {
            continue;
        }
        if let Ok(next) = c.with_dim(dim, new_lo, new_hi) {
            return next;
        }
    }
    c.clone()
}

/// Generator for the interactive exploratory search workload.
#[derive(Clone, Debug)]
pub struct InteractiveWorkload {
    stats: Vec<DimStats>,
    params: GenParams,
}

impl InteractiveWorkload {
    /// Creates a generator anchored on the dataset statistics.
    pub fn new(stats: Vec<DimStats>) -> Self {
        let constrained_dims = stats.len();
        InteractiveWorkload { stats, params: GenParams { constrained_dims, sigma_span: 3.0 } }
    }

    /// Constrains only the first `k` dimensions (Fig. 7 setup); the rest
    /// stay unbounded in every generated query.
    pub fn constrained_dims(mut self, k: usize) -> Self {
        assert!(k > 0 && k <= self.stats.len());
        self.params.constrained_dims = k;
        self
    }

    /// Generates chains of refined queries until `total` queries exist.
    ///
    /// Each chain is an initial query followed by 1–10 refinements, per
    /// the paper's generator.
    pub fn generate(&self, total: usize, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queries = Vec::with_capacity(total);
        let mut chain = 0usize;
        while queries.len() < total {
            let mut current = initial_constraints(&mut rng, &self.stats, &self.params);
            queries.push(QuerySpec { constraints: current.clone(), chain, step: 0 });
            let refinements = rng.gen_range(1..=10usize);
            for step in 1..=refinements {
                if queries.len() >= total {
                    break;
                }
                current = refine(&mut rng, &current, &self.stats, &self.params);
                queries.push(QuerySpec { constraints: current.clone(), chain, step });
            }
            chain += 1;
        }
        Workload { queries }
    }
}

/// Generator for the independent (multi-user) workload: every query is an
/// initial query from a fresh "user".
#[derive(Clone, Debug)]
pub struct IndependentWorkload {
    stats: Vec<DimStats>,
    params: GenParams,
}

impl IndependentWorkload {
    /// Creates a generator anchored on the dataset statistics.
    pub fn new(stats: Vec<DimStats>) -> Self {
        let constrained_dims = stats.len();
        IndependentWorkload { stats, params: GenParams { constrained_dims, sigma_span: 3.0 } }
    }

    /// Constrains only the first `k` dimensions.
    pub fn constrained_dims(mut self, k: usize) -> Self {
        assert!(k > 0 && k <= self.stats.len());
        self.params.constrained_dims = k;
        self
    }

    /// Generates `total` independent queries.
    pub fn generate(&self, total: usize, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..total)
            .map(|chain| QuerySpec {
                constraints: initial_constraints(&mut rng, &self.stats, &self.params),
                chain,
                step: 0,
            })
            .collect();
        Workload { queries }
    }
}

/// Generator for a Zipf-skewed, session-correlated workload: a fixed
/// pool of base queries is drawn up front, and every issued query picks
/// a base by Zipf rank (`weight(r) ∝ 1/rᔆ` over the pool ordered by
/// rank), so a handful of "hot" regions dominate the stream — the
/// popularity skew real multi-user traffic shows and the regime where
/// frequency-aware cache replacement (TinyLFU admission, cost-aware
/// eviction) separates from pure recency.
///
/// With probability [`ZipfWorkload::refine_prob`], an issued query is
/// additionally refined once (same single-bound mutation as the
/// interactive workload) to model session drift around a hot region;
/// the refinement perturbs the issued copy only, never the pool.
///
/// With [`ZipfWorkload::rotate_every`] set, the rank→base assignment
/// additionally shifts by a quarter of the pool every period, so the
/// *identity* of the hot queries drifts over the stream (trending
/// traffic). Popularity drift is the regime where frequency *aging*
/// matters: a policy that never forgets (use-count eviction) pins
/// formerly-hot items, while TinyLFU's periodic halving adapts.
///
/// [`QuerySpec::chain`] carries the pool index of the base query
/// (equal to the Zipf rank while rotation is off) and
/// [`QuerySpec::step`] is 0 for verbatim pool queries, 1 for drifted
/// ones.
#[derive(Clone, Debug)]
pub struct ZipfWorkload {
    stats: Vec<DimStats>,
    params: GenParams,
    pool: usize,
    exponent: f64,
    refine_prob: f64,
    rotate_every: usize,
}

impl ZipfWorkload {
    /// Creates a generator anchored on the dataset statistics with a
    /// pool of 200 base queries, exponent 1.1 and 5% drift.
    pub fn new(stats: Vec<DimStats>) -> Self {
        let constrained_dims = stats.len();
        ZipfWorkload {
            stats,
            params: GenParams { constrained_dims, sigma_span: 3.0 },
            pool: 200,
            exponent: 1.1,
            refine_prob: 0.05,
            rotate_every: 0,
        }
    }

    /// Constrains only the first `k` dimensions.
    pub fn constrained_dims(mut self, k: usize) -> Self {
        assert!(k > 0 && k <= self.stats.len());
        self.params.constrained_dims = k;
        self
    }

    /// Sets the base-query pool size (must be nonzero).
    pub fn pool(mut self, pool: usize) -> Self {
        assert!(pool > 0, "pool must be nonzero");
        self.pool = pool;
        self
    }

    /// Sets the Zipf exponent `s` (`weight(r) ∝ 1/rᔆ`; larger = more
    /// skew; must be finite and non-negative).
    pub fn exponent(mut self, s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and non-negative");
        self.exponent = s;
        self
    }

    /// Sets the probability that an issued query drifts one refinement
    /// away from its base (must lie in `[0, 1]`).
    pub fn refine_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.refine_prob = p;
        self
    }

    /// Shifts which pool entries are hot every `period` issued queries
    /// (`0` disables rotation, the default): each period moves the
    /// rank→base assignment forward by `pool / 4` (minimum 1), so the
    /// popular set drifts deterministically over the stream.
    pub fn rotate_every(mut self, period: usize) -> Self {
        self.rotate_every = period;
        self
    }

    /// Generates `total` Zipf-distributed queries.
    pub fn generate(&self, total: usize, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let bases: Vec<Constraints> = (0..self.pool)
            .map(|_| initial_constraints(&mut rng, &self.stats, &self.params))
            .collect();
        // Cumulative Zipf weights over ranks 1..=pool; a uniform draw in
        // [0, cum.last()) binary-searches to its rank.
        let mut cum = Vec::with_capacity(self.pool);
        let mut acc = 0.0f64;
        for rank in 1..=self.pool {
            acc += (rank as f64).powf(-self.exponent);
            cum.push(acc);
        }
        let queries = (0..total)
            .map(|i| {
                let u: f64 = rng.gen_range(0.0..acc);
                let rank = cum.partition_point(|&c| c <= u);
                let offset =
                    i.checked_div(self.rotate_every).map_or(0, |r| r * (self.pool / 4).max(1));
                let idx = (rank + offset) % self.pool;
                // skylint: allow(no-panic-paths) — rank < pool (partition_point over the pool-sized table) and the offset is reduced mod pool.
                let base = bases.get(idx).expect("index stays inside the pool");
                if rng.gen_bool(self.refine_prob) {
                    let drifted = refine(&mut rng, base, &self.stats, &self.params);
                    QuerySpec { constraints: drifted, chain: idx, step: 1 }
                } else {
                    QuerySpec { constraints: base.clone(), chain: idx, step: 0 }
                }
            })
            .collect();
        Workload { queries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distribution, SyntheticGen};

    fn stats_3d() -> Vec<DimStats> {
        let pts = SyntheticGen::new(Distribution::Independent, 3, 9).generate(5_000);
        DimStats::compute(&pts)
    }

    #[test]
    fn dim_stats_on_known_data() {
        let pts = vec![
            Point::from(vec![0.0, 10.0]),
            Point::from(vec![2.0, 10.0]),
            Point::from(vec![4.0, 10.0]),
        ];
        let s = DimStats::compute(&pts);
        assert!((s[0].mean - 2.0).abs() < 1e-12);
        assert!((s[0].std - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s[1].mean, 10.0);
        assert_eq!(s[1].std, 0.0);
    }

    #[test]
    fn interactive_reaches_total_and_is_deterministic() {
        let gen = InteractiveWorkload::new(stats_3d());
        let w = gen.generate(100, 42);
        assert_eq!(w.len(), 100);
        let w2 = gen.generate(100, 42);
        for (a, b) in w.queries().iter().zip(w2.queries()) {
            assert_eq!(a.constraints, b.constraints);
        }
    }

    #[test]
    fn interactive_chains_change_one_dim_per_step() {
        let gen = InteractiveWorkload::new(stats_3d());
        let w = gen.generate(200, 7);
        for pair in w.queries().windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a.chain != b.chain {
                continue; // new chain, fresh initial query
            }
            assert_eq!(b.step, a.step + 1);
            let mut changed = 0;
            for i in 0..3 {
                let lo_diff = a.constraints.lo()[i] != b.constraints.lo()[i];
                let hi_diff = a.constraints.hi()[i] != b.constraints.hi()[i];
                if lo_diff || hi_diff {
                    changed += 1;
                    // Only one bound of the dimension changes.
                    assert!(lo_diff != hi_diff, "both bounds changed in dim {i}");
                }
            }
            assert_eq!(changed, 1, "exactly one dimension per refinement");
        }
    }

    #[test]
    fn refinement_magnitude_is_5_to_10_percent() {
        let gen = InteractiveWorkload::new(stats_3d());
        let w = gen.generate(300, 3);
        for pair in w.queries().windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a.chain != b.chain {
                continue;
            }
            for i in 0..3 {
                let width = a.constraints.hi()[i] - a.constraints.lo()[i];
                let lo_d = (a.constraints.lo()[i] - b.constraints.lo()[i]).abs();
                let hi_d = (a.constraints.hi()[i] - b.constraints.hi()[i]).abs();
                let d = lo_d.max(hi_d);
                if d > 0.0 && width > 0.0 {
                    let pct = d / width;
                    assert!((0.049..0.101).contains(&pct), "refinement changed dim {i} by {pct}");
                }
            }
        }
    }

    #[test]
    fn independent_queries_are_fresh_per_query() {
        let gen = IndependentWorkload::new(stats_3d());
        let w = gen.generate(50, 5);
        assert_eq!(w.len(), 50);
        assert!(w.queries().iter().all(|q| q.step == 0));
        // Chains all distinct.
        let chains: std::collections::HashSet<_> = w.queries().iter().map(|q| q.chain).collect();
        assert_eq!(chains.len(), 50);
    }

    #[test]
    fn constrained_dims_leaves_rest_unbounded() {
        let pts = SyntheticGen::new(Distribution::Independent, 8, 10).generate(2_000);
        let stats = DimStats::compute(&pts);
        let w = InteractiveWorkload::new(stats).constrained_dims(5).generate(60, 1);
        for q in w.queries() {
            for i in 5..8 {
                assert_eq!(q.constraints.lo()[i], f64::NEG_INFINITY);
                assert_eq!(q.constraints.hi()[i], f64::INFINITY);
            }
            for i in 0..5 {
                assert!(q.constraints.lo()[i].is_finite());
                assert!(q.constraints.hi()[i].is_finite());
            }
        }
    }

    #[test]
    fn zipf_is_deterministic_and_skewed() {
        let gen = ZipfWorkload::new(stats_3d()).pool(50).exponent(1.2).refine_prob(0.1);
        let w = gen.generate(1_000, 11);
        assert_eq!(w.len(), 1_000);
        let w2 = gen.generate(1_000, 11);
        for (a, b) in w.queries().iter().zip(w2.queries()) {
            assert_eq!(a.constraints, b.constraints);
            assert_eq!((a.chain, a.step), (b.chain, b.step));
        }
        // Skew: rank 0 must dominate any deep-tail rank by a wide margin.
        let count = |rank: usize| w.queries().iter().filter(|q| q.chain == rank).count();
        assert!(count(0) >= 5 * count(40).max(1), "rank 0: {}, rank 40: {}", count(0), count(40));
        // All ranks index the pool.
        assert!(w.queries().iter().all(|q| q.chain < 50));
    }

    #[test]
    fn zipf_repeats_base_queries_verbatim_and_drifts_some() {
        let gen = ZipfWorkload::new(stats_3d()).pool(20).refine_prob(0.25);
        let w = gen.generate(400, 3);
        let verbatim: Vec<_> = w.queries().iter().filter(|q| q.step == 0).collect();
        let drifted = w.queries().iter().filter(|q| q.step == 1).count();
        assert!(drifted > 40 && drifted < 180, "drift count {drifted} outside ~25% band");
        // Every verbatim issue of the same rank is the identical box —
        // the exact-hit repetition the cache feeds on.
        for q in &verbatim {
            let twin = verbatim.iter().find(|p| p.chain == q.chain).unwrap();
            assert_eq!(twin.constraints, q.constraints);
        }
    }

    #[test]
    fn zipf_rotation_shifts_the_hot_base() {
        let gen =
            ZipfWorkload::new(stats_3d()).pool(16).exponent(1.5).refine_prob(0.0).rotate_every(100);
        let w = gen.generate(200, 7);
        let hot = |qs: &[QuerySpec]| {
            let mut counts = [0usize; 16];
            for q in qs {
                counts[q.chain] += 1;
            }
            (0..16).max_by_key(|&i| counts[i]).unwrap()
        };
        // Rank 0 dominates each period; the period offset is pool/4 = 4.
        let first = hot(&w.queries()[..100]);
        let second = hot(&w.queries()[100..]);
        assert_eq!(first, 0, "rank 0 maps to base 0 before any rotation");
        assert_eq!(second, 4, "one rotation shifts the hot base by pool/4");
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let gen = ZipfWorkload::new(stats_3d()).pool(10).exponent(0.0).refine_prob(0.0);
        let w = gen.generate(2_000, 9);
        for rank in 0..10 {
            let n = w.queries().iter().filter(|q| q.chain == rank).count();
            assert!((120..=280).contains(&n), "rank {rank} drawn {n} times under uniform weights");
        }
    }

    #[test]
    fn initial_bounds_within_three_sigma_of_mean() {
        let stats = stats_3d();
        let w = IndependentWorkload::new(stats.clone()).generate(100, 2);
        let mut brackets_mean = 0usize;
        for q in w.queries() {
            for (i, s) in stats.iter().enumerate() {
                assert!(q.constraints.lo()[i] <= q.constraints.hi()[i]);
                assert!(q.constraints.lo()[i] >= s.mean - 3.0 * s.std);
                assert!(q.constraints.hi()[i] <= s.mean + 3.0 * s.std);
                if q.constraints.lo()[i] <= s.mean && s.mean <= q.constraints.hi()[i] {
                    brackets_mean += 1;
                }
            }
        }
        // Both bounds are independent draws, so roughly half the boxes
        // straddle the mean — not all of them.
        assert!(brackets_mean > 50 && brackets_mean < 290, "{brackets_mean}");
    }
}
