//! Property tests for the data and workload generators: every generated
//! query must be well-formed, every refinement must be a legal
//! single-bound change of the paper's four kinds, and generation must be
//! a pure function of the seed.

use proptest::prelude::*;

use skycache_datagen::{
    DimStats, Distribution, IndependentWorkload, InteractiveWorkload, RealEstateGen, SyntheticGen,
};

fn dist() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        Just(Distribution::Independent),
        Just(Distribution::Correlated),
        Just(Distribution::AntiCorrelated),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All synthetic data lies in the unit cube and generation is
    /// seed-deterministic.
    #[test]
    fn synthetic_points_well_formed(d in dist(), dims in 1..6usize, seed in any::<u64>()) {
        let g = SyntheticGen::new(d, dims, seed);
        let pts = g.generate(300);
        prop_assert_eq!(pts.len(), 300);
        for p in &pts {
            prop_assert_eq!(p.dims(), dims);
            prop_assert!(p.coords().iter().all(|c| (0.0..=1.0).contains(c)));
        }
        prop_assert_eq!(pts, g.generate(300));
    }

    /// Real-estate records stay in their documented ranges for any seed.
    #[test]
    fn real_estate_well_formed(seed in any::<u64>()) {
        for p in RealEstateGen::new(seed).generate(200) {
            prop_assert_eq!(p.dims(), 4);
            let (year, sqm) = (-p[0], -p[1]);
            prop_assert!((1850.0..=2005.0).contains(&year));
            prop_assert!((18.0..=900.0).contains(&sqm));
            prop_assert!(p[2] > 0.0 && p[3] > 0.0);
        }
    }

    /// Interactive chains: every query box is valid, every refinement
    /// changes exactly one bound of one constrained dimension, and the
    /// magnitude stays in the paper's 5–10% window.
    #[test]
    fn interactive_chains_are_legal(
        d in dist(),
        dims in 2..5usize,
        seed in any::<u64>(),
        total in 20..80usize,
    ) {
        let pts = SyntheticGen::new(d, dims, seed ^ 0xABCD).generate(1_000);
        let stats = DimStats::compute(&pts);
        let w = InteractiveWorkload::new(stats).generate(total, seed);
        prop_assert_eq!(w.len(), total);

        for pair in w.queries().windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            for i in 0..dims {
                prop_assert!(b.constraints.lo()[i] <= b.constraints.hi()[i]);
            }
            if a.chain != b.chain {
                prop_assert_eq!(b.step, 0);
                continue;
            }
            let mut changed_bounds = 0;
            for i in 0..dims {
                let width = a.constraints.hi()[i] - a.constraints.lo()[i];
                let lo_d = (a.constraints.lo()[i] - b.constraints.lo()[i]).abs();
                let hi_d = (a.constraints.hi()[i] - b.constraints.hi()[i]).abs();
                if lo_d > 0.0 {
                    changed_bounds += 1;
                    if width > 0.0 {
                        let pct = lo_d / width;
                        prop_assert!((0.049..0.101).contains(&pct), "lo moved {pct}");
                    }
                }
                if hi_d > 0.0 {
                    changed_bounds += 1;
                    if width > 0.0 {
                        let pct = hi_d / width;
                        prop_assert!((0.049..0.101).contains(&pct), "hi moved {pct}");
                    }
                }
            }
            prop_assert!(changed_bounds <= 1, "multiple bounds changed in one step");
        }
    }

    /// Independent workloads: fresh chain ids, bounded by 3σ, valid boxes.
    #[test]
    fn independent_workload_well_formed(dims in 1..5usize, seed in any::<u64>()) {
        let pts = SyntheticGen::new(Distribution::Independent, dims, seed ^ 0x5A5A)
            .generate(1_000);
        let stats = DimStats::compute(&pts);
        let w = IndependentWorkload::new(stats.clone()).generate(40, seed);
        for (i, q) in w.queries().iter().enumerate() {
            prop_assert_eq!(q.chain, i);
            prop_assert_eq!(q.step, 0);
            for (d, s) in stats.iter().enumerate() {
                prop_assert!(q.constraints.lo()[d] >= s.mean - 3.0 * s.std - 1e-9);
                prop_assert!(q.constraints.hi()[d] <= s.mean + 3.0 * s.std + 1e-9);
            }
        }
    }
}
