//! Property-based tests for the geometric kernel.
//!
//! The MPR computation is only correct if the underlying region algebra is:
//! subtraction must tile (cover exactly, without overlap), intersection must
//! be commutative and shrinking, and dominance must be a strict partial
//! order. These invariants are checked on random geometry here.

use proptest::prelude::*;
use skycache_geom::dominance::{
    compare, dominated_by_any, dominated_by_any_rows, dominates, DomRelation,
};
use skycache_geom::subtract::{disjoint_union, pairwise_disjoint, subtract_box};
use skycache_geom::{Aabb, HyperRect, Kernel, Point, PointBlock};

const DIMS: usize = 3;

fn coord() -> impl Strategy<Value = f64> {
    // Coarse grid so that boundary coincidences (the hard cases) actually occur.
    (0..=20u8).prop_map(|v| f64::from(v) / 4.0)
}

fn point() -> impl Strategy<Value = Point> {
    prop::collection::vec(coord(), DIMS).prop_map(Point::from)
}

fn aabb() -> impl Strategy<Value = Aabb> {
    (prop::collection::vec(coord(), DIMS), prop::collection::vec(coord(), DIMS)).prop_map(
        |(a, b)| {
            let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
            let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
            Aabb::new(lo, hi).expect("ordered bounds")
        },
    )
}

proptest! {
    /// s ≺ t is irreflexive and asymmetric; `compare` agrees with `dominates`.
    #[test]
    fn dominance_is_strict_partial_order(s in point(), t in point()) {
        prop_assert!(!dominates(&s, &s));
        if dominates(&s, &t) {
            prop_assert!(!dominates(&t, &s));
            prop_assert_eq!(compare(&s, &t), DomRelation::Dominates);
        }
        if s == t {
            prop_assert_eq!(compare(&s, &t), DomRelation::Equal);
        }
    }

    /// Dominance is transitive on random triples.
    #[test]
    fn dominance_is_transitive(a in point(), b in point(), c in point()) {
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    /// Subtraction tiles: every probe point of r is either in d or in
    /// exactly one output piece, and pieces are pairwise disjoint.
    #[test]
    fn subtract_box_tiles(r in aabb(), d in aabb(), probe in point()) {
        let rect = r.to_rect();
        let pieces = subtract_box(&rect, &d);
        prop_assert!(pairwise_disjoint(&pieces));
        if rect.contains_point(&probe) {
            let covered = pieces.iter().filter(|p| p.contains_point(&probe)).count();
            let expected = usize::from(!d.contains_point(&probe));
            prop_assert_eq!(covered, expected);
        } else {
            // No piece may leak outside r.
            prop_assert!(pieces.iter().all(|p| !p.contains_point(&probe)
                || rect.contains_point(&probe)));
        }
    }

    /// Subtraction preserves volume: |r \ d| = |r| - |r ∩ d|.
    #[test]
    fn subtract_box_preserves_volume(r in aabb(), d in aabb()) {
        let rect = r.to_rect();
        let pieces = subtract_box(&rect, &d);
        let got: f64 = pieces.iter().map(HyperRect::volume).sum();
        let want = rect.volume() - r.intersection(&d).map_or(0.0, |b| b.area());
        prop_assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
    }

    /// Disjoint union covers each probe point exactly once iff it is in
    /// some input box.
    #[test]
    fn disjoint_union_covers_once(boxes in prop::collection::vec(aabb(), 1..5), probe in point()) {
        let pieces = disjoint_union(&boxes);
        prop_assert!(pairwise_disjoint(&pieces));
        let in_union = boxes.iter().any(|b| b.contains_point(&probe));
        let covered = pieces.iter().filter(|p| p.contains_point(&probe)).count();
        prop_assert_eq!(covered, usize::from(in_union));
    }

    /// Box intersection is commutative and contained in both operands.
    #[test]
    fn intersection_properties(a in aabb(), b in aabb()) {
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(&x, &y);
                prop_assert!(a.contains_box(&x));
                prop_assert!(b.contains_box(&x));
                prop_assert!(x.area() <= a.area() + 1e-12);
            }
            (None, None) => {}
            _ => prop_assert!(false, "intersection not commutative"),
        }
    }

    /// min_dist_sq is zero exactly for contained points and otherwise
    /// bounded by the squared distance to any corner.
    #[test]
    fn min_dist_consistency(b in aabb(), p in point()) {
        let d = b.min_dist_sq(p.coords());
        prop_assert_eq!(d == 0.0, b.contains_point(&p));
        let corner = Point::from(b.lo().to_vec());
        prop_assert!(d <= p.dist_sq(&corner) + 1e-12);
    }

    /// dominated_by_any and its rows-based twin agree with a naive scan
    /// under both kernel generations.
    #[test]
    fn dominated_by_any_matches_scan(t in point(), cands in prop::collection::vec(point(), 0..8)) {
        let naive = cands.iter().any(|s| dominates(s, &t));
        prop_assert_eq!(dominated_by_any(&t, &cands), naive);
        let mut block = PointBlock::new(DIMS).expect("nonzero dims");
        for s in &cands {
            block.push_row(s.coords());
        }
        prop_assert_eq!(dominated_by_any_rows(t.coords(), &block, Kernel::Scalar), naive);
        prop_assert_eq!(dominated_by_any_rows(t.coords(), &block, Kernel::Wide), naive);
    }
}
