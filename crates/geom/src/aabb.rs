use std::fmt;

use crate::{GeomError, HyperRect, Interval, Point, Result};

/// A closed axis-aligned bounding box `[lo, hi]`.
///
/// This is the workhorse of the R\*-tree (node bounding rectangles, window
/// queries) and of the cache (minimum bounding rectangles of cached
/// skylines). Unlike [`HyperRect`], all faces are closed, which matches
/// both R-tree semantics and the paper's constraint definition.
#[derive(Clone, PartialEq)]
pub struct Aabb {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Aabb {
    /// Creates a box, validating dimensionality, NaN-freedom and `lo <= hi`.
    pub fn new(lo: impl Into<Box<[f64]>>, hi: impl Into<Box<[f64]>>) -> Result<Self> {
        let (lo, hi) = (lo.into(), hi.into());
        if lo.is_empty() {
            return Err(GeomError::ZeroDimensions);
        }
        if lo.len() != hi.len() {
            return Err(GeomError::DimensionMismatch { expected: lo.len(), actual: hi.len() });
        }
        for (dim, (l, h)) in lo.iter().zip(hi.iter()).enumerate() {
            if l.is_nan() || h.is_nan() {
                return Err(GeomError::NotANumber { dim });
            }
            if l > h {
                return Err(GeomError::InvertedBounds { dim });
            }
        }
        Ok(Aabb { lo, hi })
    }

    /// Creates a box without validation (debug-checked).
    pub fn new_unchecked(lo: impl Into<Box<[f64]>>, hi: impl Into<Box<[f64]>>) -> Self {
        let (lo, hi) = (lo.into(), hi.into());
        debug_assert_eq!(lo.len(), hi.len());
        debug_assert!(lo.iter().zip(hi.iter()).all(|(l, h)| l <= h));
        Aabb { lo, hi }
    }

    /// The degenerate box containing exactly one point.
    pub fn from_point(p: &Point) -> Self {
        Aabb { lo: p.coords().into(), hi: p.coords().into() }
    }

    /// Smallest box containing every point of a non-empty slice.
    pub fn bounding(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let mut lo = first.coords().to_vec();
        let mut hi = lo.clone();
        for p in &points[1..] {
            for (i, &c) in p.coords().iter().enumerate() {
                if c < lo[i] {
                    lo[i] = c;
                }
                if c > hi[i] {
                    hi[i] = c;
                }
            }
        }
        Some(Aabb { lo: lo.into(), hi: hi.into() })
    }

    /// Smallest box containing every coordinate row of a non-empty
    /// iterator — the zero-copy twin of [`Aabb::bounding`] for rows
    /// coming out of a [`crate::PointBlock`].
    pub fn bounding_rows<'a>(mut rows: impl Iterator<Item = &'a [f64]>) -> Option<Self> {
        let first = rows.next()?;
        let mut lo = first.to_vec();
        let mut hi = first.to_vec();
        for row in rows {
            for (i, &c) in row.iter().enumerate() {
                if c < lo[i] {
                    lo[i] = c;
                }
                if c > hi[i] {
                    hi[i] = c;
                }
            }
        }
        Some(Aabb { lo: lo.into(), hi: hi.into() })
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Membership test for a point (closed on all faces).
    pub fn contains_point(&self, p: &Point) -> bool {
        self.contains_coords(p.coords())
    }

    /// Bare-row membership: the zero-copy twin of
    /// [`Aabb::contains_point`] for coordinate slices coming out of a
    /// [`crate::PointBlock`].
    pub fn contains_coords(&self, row: &[f64]) -> bool {
        debug_assert_eq!(self.dims(), row.len());
        self.lo.iter().zip(self.hi.iter()).zip(row).all(|((l, h), c)| l <= c && c <= h)
    }

    /// Kernel-dispatched twin of [`Aabb::contains_coords`]:
    /// membership-test loops hoist [`crate::Kernel::for_dims`] once and
    /// pass it here per row.
    #[inline]
    pub fn contains_coords_k(&self, kernel: crate::Kernel, row: &[f64]) -> bool {
        debug_assert_eq!(self.dims(), row.len());
        kernel.contains(&self.lo, &self.hi, row)
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_box(&self, other: &Aabb) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo.iter().zip(&other.lo).all(|(a, b)| a <= b)
            && self.hi.iter().zip(&other.hi).all(|(a, b)| a >= b)
    }

    /// Whether the two closed boxes share at least one point.
    pub fn intersects(&self, other: &Aabb) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(other.lo.iter().zip(other.hi.iter()))
            .all(|((al, ah), (bl, bh))| al <= bh && bl <= ah)
    }

    /// Intersection box, or `None` when disjoint.
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        if !self.intersects(other) {
            return None;
        }
        let lo: Vec<f64> = self.lo.iter().zip(&other.lo).map(|(a, b)| a.max(*b)).collect();
        let hi: Vec<f64> = self.hi.iter().zip(&other.hi).map(|(a, b)| a.min(*b)).collect();
        Some(Aabb { lo: lo.into(), hi: hi.into() })
    }

    /// Smallest box enclosing both.
    pub fn union(&self, other: &Aabb) -> Aabb {
        debug_assert_eq!(self.dims(), other.dims());
        let lo: Vec<f64> = self.lo.iter().zip(&other.lo).map(|(a, b)| a.min(*b)).collect();
        let hi: Vec<f64> = self.hi.iter().zip(&other.hi).map(|(a, b)| a.max(*b)).collect();
        Aabb { lo: lo.into(), hi: hi.into() }
    }

    /// Grows `self` in place to enclose `other`.
    pub fn merge(&mut self, other: &Aabb) {
        debug_assert_eq!(self.dims(), other.dims());
        for i in 0..self.lo.len() {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// Hyper-volume (product of side lengths).
    pub fn area(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| h - l).product()
    }

    /// Sum of side lengths (the R\*-tree "margin").
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| h - l).sum()
    }

    /// Volume of the intersection with `other` (0 when disjoint).
    ///
    /// Allocation-free — equivalent to `intersection(other)` followed by
    /// [`Aabb::area`], but computed per dimension without materializing
    /// the intersection box, so comparator-position callers (cache
    /// cover-ordering, R\*-tree split heuristics) stay off the allocator.
    pub fn overlap_area(&self, other: &Aabb) -> f64 {
        if !self.intersects(other) {
            return 0.0;
        }
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(other.lo.iter().zip(other.hi.iter()))
            .map(|((al, ah), (bl, bh))| ah.min(*bh) - al.max(*bl))
            .product()
    }

    /// Squared minimum distance from a coordinate vector to the box
    /// (0 when the point is inside) — the `MINDIST` of BBS and kNN search.
    pub fn min_dist_sq(&self, coords: &[f64]) -> f64 {
        debug_assert_eq!(self.dims(), coords.len());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(coords)
            .map(|((l, h), c)| {
                let d = if c < l {
                    l - c
                } else if c > h {
                    c - h
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Center coordinates.
    ///
    /// Infinity-safe: a dimension unbounded on both sides centers at 0,
    /// and one unbounded on a single side clamps to ±`f64::MAX` — so the
    /// result is never NaN even for boxes of unbounded query regions
    /// (which the cache stores for partially-constrained queries).
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| {
                let c = 0.5 * (l + h);
                if c.is_nan() {
                    0.0 // (-inf + inf) / 2: treat the dimension as centered
                } else {
                    c.clamp(-f64::MAX, f64::MAX)
                }
            })
            .collect()
    }

    /// Sum of lower-corner coordinates: the `mindist` ordering key used by
    /// BBS for `L1` preference towards the origin of a minimization skyline.
    pub fn mindist_l1(&self, origin: &[f64]) -> f64 {
        debug_assert_eq!(self.dims(), origin.len());
        self.lo.iter().zip(origin).map(|(l, o)| (l - o).max(0.0)).sum()
    }

    /// Converts to a closed [`HyperRect`].
    pub fn to_rect(&self) -> HyperRect {
        HyperRect::from_intervals(
            self.lo
                .iter()
                .zip(self.hi.iter())
                .map(|(&l, &h)| Interval::closed(l, h))
                .collect::<Vec<_>>(),
        )
    }
}

impl fmt::Debug for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Aabb[{:?} .. {:?}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: &[f64], hi: &[f64]) -> Aabb {
        Aabb::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Aabb::new(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(Aabb::new(vec![2.0], vec![1.0]).is_err());
        assert!(Aabb::new(vec![f64::NAN], vec![1.0]).is_err());
        assert!(Aabb::new(Vec::<f64>::new(), Vec::<f64>::new()).is_err());
        assert!(Aabb::new(vec![0.0, 0.0], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn contains_and_intersects() {
        let a = b(&[0.0, 0.0], &[2.0, 2.0]);
        let inner = b(&[0.5, 0.5], &[1.5, 1.5]);
        let touching = b(&[2.0, 0.0], &[3.0, 2.0]);
        let disjoint = b(&[3.0, 3.0], &[4.0, 4.0]);
        assert!(a.contains_box(&inner));
        assert!(a.intersects(&inner));
        assert!(a.intersects(&touching)); // closed boxes share a face
        assert!(!a.intersects(&disjoint));
        assert!(a.contains_point(&Point::from(vec![2.0, 2.0])));
        assert!(!a.contains_point(&Point::from(vec![2.1, 2.0])));
    }

    #[test]
    fn union_intersection_area() {
        let a = b(&[0.0, 0.0], &[2.0, 2.0]);
        let c = b(&[1.0, 1.0], &[3.0, 3.0]);
        assert_eq!(a.union(&c), b(&[0.0, 0.0], &[3.0, 3.0]));
        assert_eq!(a.intersection(&c).unwrap(), b(&[1.0, 1.0], &[2.0, 2.0]));
        assert_eq!(a.area(), 4.0);
        assert_eq!(a.margin(), 4.0);
        assert_eq!(a.overlap_area(&c), 1.0);
    }

    #[test]
    fn min_dist_sq_cases() {
        let a = b(&[1.0, 1.0], &[2.0, 2.0]);
        assert_eq!(a.min_dist_sq(&[1.5, 1.5]), 0.0); // inside
        assert_eq!(a.min_dist_sq(&[0.0, 1.5]), 1.0); // left
        assert_eq!(a.min_dist_sq(&[0.0, 0.0]), 2.0); // corner
    }

    #[test]
    fn bounding_covers_all_points() {
        let pts = vec![
            Point::from(vec![1.0, 5.0]),
            Point::from(vec![3.0, 2.0]),
            Point::from(vec![2.0, 7.0]),
        ];
        let mbr = Aabb::bounding(&pts).unwrap();
        assert_eq!(mbr, b(&[1.0, 2.0], &[3.0, 7.0]));
        assert!(Aabb::bounding(&[]).is_none());
    }

    #[test]
    fn center_is_infinity_safe() {
        let b = Aabb::new_unchecked(
            vec![f64::NEG_INFINITY, f64::NEG_INFINITY, 1.0],
            vec![f64::INFINITY, 4.0, f64::INFINITY],
        );
        let c = b.center();
        assert!(c.iter().all(|v| !v.is_nan()), "{c:?}");
        assert_eq!(c[0], 0.0);
        assert_eq!(c[1], -f64::MAX);
        assert_eq!(c[2], f64::MAX);
    }

    #[test]
    fn merge_in_place() {
        let mut a = b(&[0.0, 0.0], &[1.0, 1.0]);
        a.merge(&b(&[-1.0, 0.5], &[0.5, 2.0]));
        assert_eq!(a, b(&[-1.0, 0.0], &[1.0, 2.0]));
    }
}
