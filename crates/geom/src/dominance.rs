//! Pareto dominance tests and dominance regions.
//!
//! Dominance is the paper's Definition in Section 3: `s ≺ t` iff
//! `∀i: s[i] ≤ t[i]` and `∃i: s[i] < t[i]` (minimization in all
//! dimensions). The *dominance region* `DR(s)` of a point (Definition 2)
//! is the set of points it dominates — geometrically the closed box
//! `[s, ∞)` minus `s` itself; constrained to `C` it becomes
//! `DR(s, C) = [s, C̄] \ {s}` for `s` satisfying `C`.

use crate::{Aabb, Constraints, Kernel, Point};

/// The outcome of comparing two points under Pareto dominance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DomRelation {
    /// The left point dominates the right one.
    Dominates,
    /// The right point dominates the left one.
    DominatedBy,
    /// Identical coordinate vectors (neither dominates).
    Equal,
    /// Neither dominates the other.
    Incomparable,
}

/// Raw-slice form of [`dominates`]: operates on bare coordinate rows so
/// that flat [`crate::PointBlock`] storage can test dominance without
/// materializing `Point`s.
#[inline]
pub fn dominates_raw(s: &[f64], t: &[f64]) -> bool {
    debug_assert_eq!(s.len(), t.len());
    let mut strict = false;
    for (a, b) in s.iter().zip(t) {
        if a > b {
            return false;
        }
        if a < b {
            strict = true;
        }
    }
    strict
}

/// Raw-slice form of [`dominates_weak`].
#[inline]
pub fn dominates_weak_raw(s: &[f64], t: &[f64]) -> bool {
    debug_assert_eq!(s.len(), t.len());
    s.iter().zip(t).all(|(a, b)| a <= b)
}

/// Raw-slice form of [`compare`].
pub fn compare_raw(s: &[f64], t: &[f64]) -> DomRelation {
    debug_assert_eq!(s.len(), t.len());
    let (mut s_less, mut t_less) = (false, false);
    for (a, b) in s.iter().zip(t) {
        if a < b {
            s_less = true;
        } else if b < a {
            t_less = true;
        }
        if s_less && t_less {
            return DomRelation::Incomparable;
        }
    }
    match (s_less, t_less) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => unreachable!("early-returned above"),
    }
}

/// Returns `true` iff `s ≺ t`: `s` is at least as small as `t` on every
/// dimension and strictly smaller on at least one.
#[inline]
pub fn dominates(s: &Point, t: &Point) -> bool {
    debug_assert_eq!(s.dims(), t.dims());
    dominates_raw(s.coords(), t.coords())
}

/// Weak dominance: `s[i] ≤ t[i]` for all `i` (allows equality everywhere).
#[inline]
pub fn dominates_weak(s: &Point, t: &Point) -> bool {
    debug_assert_eq!(s.dims(), t.dims());
    dominates_weak_raw(s.coords(), t.coords())
}

/// Single-pass comparison classifying the relation between two points.
pub fn compare(s: &Point, t: &Point) -> DomRelation {
    debug_assert_eq!(s.dims(), t.dims());
    compare_raw(s.coords(), t.coords())
}

/// The constrained dominance region `DR(s, C)` as a closed box
/// `[s, C̄]`, or `None` when `s` exceeds `C̄` in some dimension (then no
/// point satisfying `C` is dominated by `s`... except none, the region is
/// empty).
///
/// Note the closed box over-approximates `DR(s, C)` by exactly one point:
/// `s` itself, which is not dominated by `s`. All callers in this
/// workspace keep `s` available from the cache, so the over-approximation
/// never loses information (see DESIGN.md, "Semantics notes").
pub fn dominance_box(s: &Point, c: &Constraints) -> Option<Aabb> {
    dominance_box_coords(s.coords(), c)
}

/// Bare-row variant of [`dominance_box`] for coordinate slices coming
/// out of a [`crate::PointBlock`] — same semantics, no owned `Point`
/// required.
pub fn dominance_box_coords(s: &[f64], c: &Constraints) -> Option<Aabb> {
    debug_assert_eq!(s.len(), c.dims());
    if s.iter().zip(c.hi()).any(|(a, b)| a > b) {
        return None;
    }
    // Clamp the lower corner to the constraint region so the box is the
    // portion of DR(s) inside R_C even when s itself lies below C̲.
    let lo: Vec<f64> = s.iter().zip(c.lo()).map(|(a, b)| a.max(*b)).collect();
    Some(Aabb::new_unchecked(lo, c.hi().to_vec()))
}

/// Whether any point of `candidates` dominates `t`.
pub fn dominated_by_any(t: &Point, candidates: &[Point]) -> bool {
    candidates.iter().any(|s| dominates(s, t))
}

/// Rows-based twin of [`dominated_by_any`]: scans a [`crate::PointBlock`]'s
/// rows directly, so callers holding SoA storage need not materialize
/// `Point`s, with the row test dispatched to the chosen kernel
/// generation.
#[inline]
pub fn dominated_by_any_rows(t: &[f64], candidates: &crate::PointBlock, kernel: Kernel) -> bool {
    candidates.rows().any(|s| kernel.dominates(s, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::from(c.to_vec())
    }

    #[test]
    fn strict_dominance() {
        assert!(dominates(&p(&[1.0, 2.0]), &p(&[1.0, 3.0])));
        assert!(dominates(&p(&[0.0, 0.0]), &p(&[1.0, 1.0])));
        assert!(!dominates(&p(&[1.0, 2.0]), &p(&[1.0, 2.0]))); // equal
        assert!(!dominates(&p(&[1.0, 3.0]), &p(&[2.0, 2.0]))); // incomparable
    }

    #[test]
    fn weak_dominance_allows_equality() {
        assert!(dominates_weak(&p(&[1.0, 2.0]), &p(&[1.0, 2.0])));
        assert!(!dominates_weak(&p(&[1.0, 3.0]), &p(&[1.0, 2.0])));
    }

    #[test]
    fn compare_classifies() {
        assert_eq!(compare(&p(&[1.0, 1.0]), &p(&[2.0, 2.0])), DomRelation::Dominates);
        assert_eq!(compare(&p(&[2.0, 2.0]), &p(&[1.0, 1.0])), DomRelation::DominatedBy);
        assert_eq!(compare(&p(&[1.0, 2.0]), &p(&[2.0, 1.0])), DomRelation::Incomparable);
        assert_eq!(compare(&p(&[1.0, 2.0]), &p(&[1.0, 2.0])), DomRelation::Equal);
    }

    #[test]
    fn dominance_box_clamps_and_rejects() {
        let c = Constraints::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap();
        let b = dominance_box(&p(&[2.0, 3.0]), &c).unwrap();
        assert_eq!(b.lo(), &[2.0, 3.0]);
        assert_eq!(b.hi(), &[10.0, 10.0]);

        // Point below the constraint region: box clamped to R_C.
        let b2 = dominance_box(&p(&[-5.0, 3.0]), &c).unwrap();
        assert_eq!(b2.lo(), &[0.0, 3.0]);

        // Point beyond the upper constraints: empty region.
        assert!(dominance_box(&p(&[11.0, 3.0]), &c).is_none());
    }

    #[test]
    fn dominated_by_any_scans() {
        let cands = vec![p(&[5.0, 5.0]), p(&[1.0, 1.0])];
        assert!(dominated_by_any(&p(&[2.0, 2.0]), &cands));
        assert!(!dominated_by_any(&p(&[0.5, 0.5]), &cands));
    }

    #[test]
    fn dominated_by_any_rows_matches_point_form() {
        let cands = vec![p(&[5.0, 5.0]), p(&[1.0, 1.0])];
        let block = crate::PointBlock::from_points(&cands).unwrap();
        for t in [p(&[2.0, 2.0]), p(&[0.5, 0.5]), p(&[1.0, 1.0])] {
            let want = dominated_by_any(&t, &cands);
            for k in [Kernel::Scalar, Kernel::Wide] {
                assert_eq!(dominated_by_any_rows(t.coords(), &block, k), want, "{t:?} {k:?}");
            }
        }
        let empty = crate::PointBlock::new(2).unwrap();
        assert!(!dominated_by_any_rows(&[0.0, 0.0], &empty, Kernel::Wide));
    }
}
