use std::fmt;

use crate::{Aabb, Interval, Point};

/// A hyper-rectangle: the Cartesian product of per-dimension [`Interval`]s,
/// each face independently open or closed.
///
/// `HyperRect` is the currency of the MPR computation: Algorithm 1
/// manipulates a working set `H` of these, and each surviving rectangle is
/// ultimately issued to storage as one range query. Openness matters there:
/// two rectangles produced by splitting at a coordinate `v` share the value
/// `v` on the boundary, and exactly one of them may include it.
#[derive(Clone, PartialEq)]
pub struct HyperRect {
    dims: Box<[Interval]>,
}

impl HyperRect {
    /// Builds a rectangle from per-dimension intervals.
    pub fn from_intervals(dims: impl Into<Box<[Interval]>>) -> Self {
        let dims = dims.into();
        debug_assert!(!dims.is_empty());
        HyperRect { dims }
    }

    /// The closed rectangle `[lo, hi]`.
    pub fn closed(lo: &[f64], hi: &[f64]) -> Self {
        debug_assert_eq!(lo.len(), hi.len());
        HyperRect {
            dims: lo
                .iter()
                .zip(hi)
                .map(|(&l, &h)| Interval::closed(l, h))
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension intervals.
    #[inline]
    pub fn intervals(&self) -> &[Interval] {
        &self.dims
    }

    /// The interval of dimension `i`.
    #[inline]
    pub fn interval(&self, i: usize) -> &Interval {
        &self.dims[i]
    }

    /// Replaces the interval of dimension `i`, returning the new rectangle.
    pub fn with_interval(&self, i: usize, iv: Interval) -> HyperRect {
        let mut dims = self.dims.clone();
        dims[i] = iv;
        HyperRect { dims }
    }

    /// A rectangle is empty when any of its intervals is.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Interval::is_empty)
    }

    /// Point membership.
    pub fn contains_point(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dims(), p.dims());
        self.dims.iter().zip(p.coords()).all(|(iv, &c)| iv.contains(c))
    }

    /// Bare-row membership: the zero-copy twin of
    /// [`HyperRect::contains_point`] for coordinate slices coming from a
    /// [`crate::PointBlock`] or a columnar fetch buffer.
    pub fn contains_coords(&self, row: &[f64]) -> bool {
        debug_assert_eq!(self.dims(), row.len());
        self.dims.iter().zip(row).all(|(iv, &c)| iv.contains(c))
    }

    /// Kernel-dispatched twin of [`HyperRect::contains_coords`]. The wide
    /// generation evaluates every dimension with a branch-free boolean
    /// accumulate (openness folded into the comparison selection, which is
    /// loop-invariant per interval) instead of early-exiting, so fetch
    /// membership scans stay autovectorizer-friendly.
    #[inline]
    pub fn contains_coords_k(&self, kernel: crate::Kernel, row: &[f64]) -> bool {
        debug_assert_eq!(self.dims(), row.len());
        match kernel {
            crate::Kernel::Scalar => self.contains_coords(row),
            crate::Kernel::Wide => {
                let mut ok = true;
                for (iv, &c) in self.dims.iter().zip(row) {
                    let above_lo = if iv.lo_open() { c > iv.lo() } else { c >= iv.lo() };
                    let below_hi = if iv.hi_open() { c < iv.hi() } else { c <= iv.hi() };
                    ok &= above_lo & below_hi;
                }
                ok
            }
        }
    }

    /// Whether two rectangles share at least one point.
    pub fn intersects(&self, other: &HyperRect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.dims.iter().zip(other.dims.iter()).all(|(a, b)| a.intersects(b))
    }

    /// Intersection rectangle, `None` when disjoint.
    pub fn intersection(&self, other: &HyperRect) -> Option<HyperRect> {
        debug_assert_eq!(self.dims(), other.dims());
        let dims: Vec<Interval> =
            self.dims.iter().zip(other.dims.iter()).map(|(a, b)| a.intersect(b)).collect();
        if dims.iter().any(Interval::is_empty) {
            None
        } else {
            Some(HyperRect { dims: dims.into() })
        }
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_rect(&self, other: &HyperRect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.dims.iter().zip(other.dims.iter()).all(|(a, b)| a.contains_interval(b))
    }

    /// Hyper-volume.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.dims.iter().map(Interval::width).product()
    }

    /// The smallest closed box covering this rectangle. Used when handing a
    /// rectangle to closed-box consumers (e.g., R-tree window queries);
    /// consumers that care about strictness must re-filter with
    /// [`HyperRect::contains_point`].
    pub fn to_aabb(&self) -> Aabb {
        let lo: Vec<f64> = self.dims.iter().map(Interval::lo).collect();
        let hi: Vec<f64> = self.dims.iter().map(Interval::hi).collect();
        Aabb::new_unchecked(lo, hi)
    }
}

impl fmt::Debug for HyperRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_rect_contains_boundary() {
        let r = HyperRect::closed(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(r.contains_point(&Point::from(vec![0.0, 1.0])));
        assert!(!r.contains_point(&Point::from(vec![1.1, 0.5])));
        assert!(!r.is_empty());
    }

    #[test]
    fn open_face_excludes_boundary() {
        let r = HyperRect::closed(&[0.0, 0.0], &[1.0, 1.0])
            .with_interval(0, Interval::new(0.0, 1.0, false, true));
        assert!(!r.contains_point(&Point::from(vec![1.0, 0.5])));
        assert!(r.contains_point(&Point::from(vec![0.999, 0.5])));
    }

    #[test]
    fn intersection_and_containment() {
        let a = HyperRect::closed(&[0.0, 0.0], &[2.0, 2.0]);
        let b = HyperRect::closed(&[1.0, 1.0], &[3.0, 3.0]);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, HyperRect::closed(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(a.contains_rect(&i));
        assert!(b.contains_rect(&i));
        let disjoint = HyperRect::closed(&[5.0, 5.0], &[6.0, 6.0]);
        assert!(a.intersection(&disjoint).is_none());
        assert!(!a.intersects(&disjoint));
    }

    #[test]
    fn volume_of_empty_is_zero() {
        let r = HyperRect::closed(&[0.0, 0.0], &[2.0, 3.0]);
        assert_eq!(r.volume(), 6.0);
        let empty = r.with_interval(0, Interval::new(1.0, 1.0, true, false));
        assert!(empty.is_empty());
        assert_eq!(empty.volume(), 0.0);
    }

    #[test]
    fn to_aabb_closes_faces() {
        let r = HyperRect::from_intervals(vec![
            Interval::new(0.0, 1.0, true, true),
            Interval::closed(2.0, 3.0),
        ]);
        let b = r.to_aabb();
        assert_eq!(b.lo(), &[0.0, 2.0]);
        assert_eq!(b.hi(), &[1.0, 3.0]);
    }
}
