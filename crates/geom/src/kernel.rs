//! Kernel generations for the dominance-heavy inner loops.
//!
//! The SoA [`crate::PointBlock`] layout stores coordinates as flat
//! `&[f64]` rows precisely so the dominance tests can run without
//! pointer chasing — this module adds a second *generation* of those
//! tests that exploits the layout. Every scalar kernel
//! ([`crate::dominance::dominates_raw`], [`crate::dominance::compare_raw`],
//! [`Aabb::contains_coords`], …) early-exits per element, which is
//! optimal when the first coordinate already decides the outcome but
//! costs a data-dependent branch per element; on random data roughly
//! half of those branches mispredict. The **wide** generation instead
//! processes rows in fixed-size lane blocks with branch-free boolean
//! accumulation — exactly the shape the autovectorizer turns into packed
//! `f64` compares plus a movmsk — and branches at most once per row.
//!
//! The two generations are *bitwise equivalent*: each wide kernel
//! accumulates precisely the predicates its scalar twin tests (`a > b`,
//! `a < b`, …), so even exotic inputs (signed zeros, infinities, equal
//! rows) classify identically. `tests/prop_kernels.rs` pins this
//! differentially.
//!
//! Selection is runtime, not compile-time, and *adaptive by
//! dimensionality*: hot loops hoist [`Kernel::for_dims`] once per loop,
//! which picks the wide generation at [`WIDE_MIN_DIMS`] dimensions and
//! up — where lane blocks amortize — and the scalar generation below,
//! where the early exit usually fires within the first couple of
//! elements and branch-free full-row scans only waste work (measured:
//! wide is ≥ 1.3× faster on the d = 6 block-filter microbench but loses
//! up to 25% end-to-end on the d = 4 paper workloads). The
//! `SKYCACHE_KERNEL` environment variable (`"scalar"` / `"wide"`) pins
//! one generation for the whole process, overriding the heuristic;
//! benchmarks pin in-process through [`Kernel::set_active`] and restore
//! with [`Kernel::reset_to_env`].

use std::sync::OnceLock;

// Shim atomic: identical to `std::sync::atomic` in production,
// schedulable under a `skycheck::Explorer` model run (see DESIGN.md §15).
use skycheck::sync::{AtomicU8, Ordering};

use crate::dominance::{compare_raw, dominance_box_coords, dominates_raw, DomRelation};
use crate::{Aabb, Constraints};

/// Number of `f64` lanes each wide-kernel block processes branch-free.
/// Matches one AVX2 register (4 × 64 bit); on narrower targets the
/// autovectorizer splits the block into two 128-bit halves.
pub const WIDE_LANES: usize = 4;

/// A dominance-kernel generation: which implementation of the row-level
/// geometric predicates the hot loops run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Per-element loops with early exit (the original generation).
    Scalar,
    /// Lane-blocked, branch-free accumulation (autovectorizer-friendly).
    Wide,
}

/// Dimensionality at and above which [`Kernel::for_dims`] auto-selects
/// the wide generation. Calibrated on the paper workloads: at d ≤ 4 the
/// scalar early exit decides most row pairs within two comparisons and
/// wins end-to-end; from d = 5 the lane-blocked scan amortizes its
/// branch-free full-row cost.
pub const WIDE_MIN_DIMS: usize = 5;

/// 0 = not yet resolved, 1 = pinned scalar, 2 = pinned wide,
/// 3 = auto (no `SKYCACHE_KERNEL` pin; select by dimensionality).
static ACTIVE: AtomicU8 = AtomicU8::new(0);

impl Kernel {
    /// Short identifier used in benchmark output and `SKYCACHE_KERNEL`.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Wide => "wide",
        }
    }

    /// Parses a generation name (case-insensitive `"scalar"` / `"wide"`).
    pub fn from_name(name: &str) -> Option<Kernel> {
        if name.eq_ignore_ascii_case("scalar") {
            Some(Kernel::Scalar)
        } else if name.eq_ignore_ascii_case("wide") {
            Some(Kernel::Wide)
        } else {
            None
        }
    }

    /// Reads and parses the `SKYCACHE_KERNEL` pin, exactly once per
    /// process. The sole ambient-environment read in the library (the
    /// designated `env-read-confinement` site in `skylint.toml`):
    /// caching the first answer means a mid-run mutation of the
    /// variable can never flip kernel generations between two loops of
    /// the same process.
    fn env_pin() -> Option<Kernel> {
        static PIN: OnceLock<Option<Kernel>> = OnceLock::new();
        *PIN.get_or_init(|| {
            std::env::var("SKYCACHE_KERNEL").ok().and_then(|v| Kernel::from_name(&v))
        })
    }

    /// The generation pinned by the `SKYCACHE_KERNEL` environment
    /// variable, or `None` when unset or unrecognized (auto selection).
    /// The variable is read once on first use and the answer is cached
    /// for the life of the process.
    pub fn from_env() -> Option<Kernel> {
        Kernel::env_pin()
    }

    /// The generation the hot loops should run for `dims`-dimensional
    /// rows: the process-wide pin (environment or [`Kernel::set_active`])
    /// when one is set, otherwise wide at [`WIDE_MIN_DIMS`] and up and
    /// scalar below. The environment is resolved on first use; one
    /// acquire atomic load afterwards (pairing with the release stores in
    /// [`Kernel::set_active`] / [`Kernel::reset_to_env`], so a worker
    /// spawned after a pin is guaranteed to observe it), and callers
    /// hoist the result once per loop rather than per row.
    #[inline]
    pub fn for_dims(dims: usize) -> Kernel {
        match ACTIVE.load(Ordering::Acquire) {
            1 => Kernel::Scalar,
            2 => Kernel::Wide,
            3 => Kernel::auto(dims),
            _ => {
                Kernel::reset_to_env();
                Kernel::for_dims(dims)
            }
        }
    }

    /// The dimensionality heuristic alone, ignoring any pin.
    #[inline]
    fn auto(dims: usize) -> Kernel {
        if dims >= WIDE_MIN_DIMS {
            Kernel::Wide
        } else {
            Kernel::Scalar
        }
    }

    /// Pins the process-wide generation (benchmark harnesses measure
    /// both generations in one process; tests pin one). Undo with
    /// [`Kernel::reset_to_env`].
    pub fn set_active(kernel: Kernel) {
        let v = match kernel {
            Kernel::Scalar => 1,
            Kernel::Wide => 2,
        };
        // Release: pairs with the acquire load in `for_dims` so threads
        // spawned after the pin observe it.
        ACTIVE.store(v, Ordering::Release);
    }

    /// Restores the selection state to the environment: pinned when
    /// `SKYCACHE_KERNEL` names a generation, auto otherwise.
    pub fn reset_to_env() {
        let v = match Kernel::from_env() {
            Some(Kernel::Scalar) => 1,
            Some(Kernel::Wide) => 2,
            None => 3,
        };
        // Release: pairs with the acquire load in `for_dims`.
        ACTIVE.store(v, Ordering::Release);
    }

    /// Kernel-dispatched strict Pareto dominance `s ≺ t`.
    #[inline]
    pub fn dominates(self, s: &[f64], t: &[f64]) -> bool {
        match self {
            Kernel::Scalar => dominates_raw(s, t),
            Kernel::Wide => dominates_wide(s, t),
        }
    }

    /// Kernel-dispatched single-pass dominance classification.
    #[inline]
    pub fn compare(self, s: &[f64], t: &[f64]) -> DomRelation {
        match self {
            Kernel::Scalar => compare_raw(s, t),
            Kernel::Wide => compare_wide(s, t),
        }
    }

    /// Kernel-dispatched closed-box membership `lo ≤ row ≤ hi`.
    #[inline]
    pub fn contains(self, lo: &[f64], hi: &[f64], row: &[f64]) -> bool {
        match self {
            Kernel::Scalar => lo.iter().zip(hi).zip(row).all(|((l, h), c)| l <= c && c <= h),
            Kernel::Wide => contains_coords_wide(lo, hi, row),
        }
    }

    /// Kernel-dispatched constrained dominance box `DR(s, C)` (see
    /// [`crate::dominance::dominance_box_coords`]).
    #[inline]
    pub fn dominance_box(self, s: &[f64], c: &Constraints) -> Option<Aabb> {
        match self {
            Kernel::Scalar => dominance_box_coords(s, c),
            Kernel::Wide => dominance_box_coords_wide(s, c),
        }
    }
}

/// Wide generation of [`dominates_raw`]: accumulates `any(s[i] > t[i])`
/// and `any(s[i] < t[i])` over [`WIDE_LANES`]-element blocks with no
/// per-element branch, then decides once: `s ≺ t ⇔ ¬any_gt ∧ any_lt`.
#[inline]
pub fn dominates_wide(s: &[f64], t: &[f64]) -> bool {
    debug_assert_eq!(s.len(), t.len());
    let mut any_gt = false;
    let mut any_lt = false;
    let mut sc = s.chunks_exact(WIDE_LANES);
    let mut tc = t.chunks_exact(WIDE_LANES);
    for (a, b) in sc.by_ref().zip(tc.by_ref()) {
        let mut gt = false;
        let mut lt = false;
        for l in 0..WIDE_LANES {
            gt |= a[l] > b[l];
            lt |= a[l] < b[l];
        }
        any_gt |= gt;
        any_lt |= lt;
    }
    for (a, b) in sc.remainder().iter().zip(tc.remainder()) {
        any_gt |= a > b;
        any_lt |= a < b;
    }
    !any_gt && any_lt
}

/// Wide generation of [`compare_raw`]: same lane-blocked accumulation of
/// the `s[i] < t[i]` / `t[i] < s[i]` witnesses, classified once at the
/// end instead of early-returning `Incomparable` mid-row.
#[inline]
pub fn compare_wide(s: &[f64], t: &[f64]) -> DomRelation {
    debug_assert_eq!(s.len(), t.len());
    let mut s_less = false;
    let mut t_less = false;
    let mut sc = s.chunks_exact(WIDE_LANES);
    let mut tc = t.chunks_exact(WIDE_LANES);
    for (a, b) in sc.by_ref().zip(tc.by_ref()) {
        let mut sl = false;
        let mut tl = false;
        for l in 0..WIDE_LANES {
            sl |= a[l] < b[l];
            tl |= b[l] < a[l];
        }
        s_less |= sl;
        t_less |= tl;
    }
    for (a, b) in sc.remainder().iter().zip(tc.remainder()) {
        s_less |= a < b;
        t_less |= b < a;
    }
    match (s_less, t_less) {
        (true, true) => DomRelation::Incomparable,
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
    }
}

/// Wide generation of [`Aabb::contains_coords`] /
/// [`Constraints::satisfies_coords`]: accumulates the same
/// `lo[i] ≤ row[i] ∧ row[i] ≤ hi[i]` conjunction branch-free.
#[inline]
pub fn contains_coords_wide(lo: &[f64], hi: &[f64], row: &[f64]) -> bool {
    debug_assert_eq!(lo.len(), row.len());
    debug_assert_eq!(hi.len(), row.len());
    let mut inside = true;
    let mut lc = lo.chunks_exact(WIDE_LANES);
    let mut hc = hi.chunks_exact(WIDE_LANES);
    let mut rc = row.chunks_exact(WIDE_LANES);
    for ((l, h), r) in lc.by_ref().zip(hc.by_ref()).zip(rc.by_ref()) {
        let mut ok = true;
        for i in 0..WIDE_LANES {
            ok &= l[i] <= r[i] && r[i] <= h[i];
        }
        inside &= ok;
    }
    for ((l, h), r) in lc.remainder().iter().zip(hc.remainder()).zip(rc.remainder()) {
        inside &= l <= r && r <= h;
    }
    inside
}

/// Wide generation of [`dominance_box_coords`]: the `s[i] > C̄[i]`
/// emptiness scan runs lane-blocked; box construction is unchanged (it
/// allocates the corner vectors either way and is not loop-hot).
pub fn dominance_box_coords_wide(s: &[f64], c: &Constraints) -> Option<Aabb> {
    debug_assert_eq!(s.len(), c.dims());
    let hi = c.hi();
    let mut beyond = false;
    let mut sc = s.chunks_exact(WIDE_LANES);
    let mut hc = hi.chunks_exact(WIDE_LANES);
    for (a, b) in sc.by_ref().zip(hc.by_ref()) {
        let mut gt = false;
        for l in 0..WIDE_LANES {
            gt |= a[l] > b[l];
        }
        beyond |= gt;
    }
    for (a, b) in sc.remainder().iter().zip(hc.remainder()) {
        beyond |= a > b;
    }
    if beyond {
        return None;
    }
    let lo: Vec<f64> = s.iter().zip(c.lo()).map(|(a, b)| a.max(*b)).collect();
    Some(Aabb::new_unchecked(lo, hi.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for k in [Kernel::Scalar, Kernel::Wide] {
            assert_eq!(Kernel::from_name(k.label()), Some(k));
        }
        assert_eq!(Kernel::from_name("WIDE"), Some(Kernel::Wide));
        assert_eq!(Kernel::from_name("avx512"), None);
    }

    #[test]
    fn pin_and_auto_selection() {
        // A pin overrides the dimensionality heuristic everywhere...
        Kernel::set_active(Kernel::Scalar);
        assert_eq!(Kernel::for_dims(WIDE_MIN_DIMS + 2), Kernel::Scalar);
        Kernel::set_active(Kernel::Wide);
        assert_eq!(Kernel::for_dims(1), Kernel::Wide);
        // ...and resetting restores the env pin or the auto heuristic.
        Kernel::reset_to_env();
        match Kernel::from_env() {
            Some(k) => {
                assert_eq!(Kernel::for_dims(2), k);
                assert_eq!(Kernel::for_dims(WIDE_MIN_DIMS), k);
            }
            None => {
                assert_eq!(Kernel::for_dims(WIDE_MIN_DIMS - 1), Kernel::Scalar);
                assert_eq!(Kernel::for_dims(WIDE_MIN_DIMS), Kernel::Wide);
            }
        }
    }

    /// Hand-picked rows covering every classification plus the equal /
    /// signed-zero / long-row edges; the bulk differential coverage
    /// lives in `tests/prop_kernels.rs`.
    #[test]
    fn wide_matches_scalar_on_edge_rows() {
        let rows: [&[f64]; 8] = [
            &[1.0, 2.0, 3.0, 4.0, 5.0],
            &[1.0, 2.0, 3.0, 4.0, 5.0],
            &[0.0, 2.0, 3.0, 4.0, 5.0],
            &[1.0, 2.0, 3.0, 4.0, 6.0],
            &[-0.0, 2.0, 3.0, 4.0, 5.0],
            &[0.0, -0.0, 3.0, 4.0, 5.0],
            &[f64::NEG_INFINITY, 2.0, 3.0, 4.0, f64::INFINITY],
            &[5.0, 4.0, 3.0, 2.0, 1.0],
        ];
        for s in rows {
            for t in rows {
                assert_eq!(dominates_wide(s, t), dominates_raw(s, t), "{s:?} vs {t:?}");
                assert_eq!(compare_wide(s, t), compare_raw(s, t), "{s:?} vs {t:?}");
            }
        }
        // Short rows exercise the pure-remainder path.
        assert!(dominates_wide(&[1.0], &[2.0]));
        assert!(!dominates_wide(&[1.0], &[1.0]));
        assert_eq!(compare_wide(&[2.0], &[1.0]), DomRelation::DominatedBy);
        // Empty rows: nothing is strictly smaller, so Equal / no dominance.
        assert!(!dominates_wide(&[], &[]));
        assert_eq!(compare_wide(&[], &[]), DomRelation::Equal);
    }

    #[test]
    fn contains_wide_matches_aabb() {
        let lo = [0.0, 0.0, 0.0, 0.0, 0.0];
        let hi = [1.0, 1.0, 1.0, 1.0, 1.0];
        let aabb = Aabb::new(lo.to_vec(), hi.to_vec()).unwrap();
        let rows: [&[f64]; 5] = [
            &[0.5, 0.5, 0.5, 0.5, 0.5],
            &[0.0, 1.0, 0.0, 1.0, 0.0],
            &[-0.0, 0.5, 0.5, 0.5, 1.0],
            &[0.5, 0.5, 0.5, 0.5, 1.1],
            &[-0.1, 0.5, 0.5, 0.5, 0.5],
        ];
        for r in rows {
            assert_eq!(contains_coords_wide(&lo, &hi, r), aabb.contains_coords(r), "{r:?}");
            for k in [Kernel::Scalar, Kernel::Wide] {
                assert_eq!(k.contains(&lo, &hi, r), aabb.contains_coords(r), "{k:?} {r:?}");
            }
        }
    }

    #[test]
    fn dominance_box_wide_matches_scalar() {
        let c = Constraints::new(vec![0.0; 5], vec![10.0; 5]).unwrap();
        let rows: [&[f64]; 4] = [
            &[2.0, 3.0, 4.0, 5.0, 6.0],
            &[-5.0, 3.0, 4.0, 5.0, 6.0],
            &[2.0, 3.0, 4.0, 5.0, 11.0],
            &[0.0, -0.0, 0.0, 0.0, 0.0],
        ];
        for s in rows {
            let want = dominance_box_coords(s, &c);
            let got = dominance_box_coords_wide(s, &c);
            assert_eq!(got.is_some(), want.is_some(), "{s:?}");
            if let (Some(a), Some(b)) = (got, want) {
                assert_eq!(a.lo(), b.lo());
                assert_eq!(a.hi(), b.hi());
            }
        }
    }
}
