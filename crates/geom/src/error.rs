use std::fmt;

/// Errors produced by fallible geometric constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// Two arguments had differing dimensionality.
    DimensionMismatch {
        /// Dimensionality of the first argument.
        expected: usize,
        /// Dimensionality of the offending argument.
        actual: usize,
    },
    /// A box was constructed with `lo[i] > hi[i]` in some dimension.
    InvertedBounds {
        /// Dimension in which the bounds are inverted.
        dim: usize,
    },
    /// A coordinate was NaN; ordered geometry requires totally ordered values.
    NotANumber {
        /// Dimension holding the NaN.
        dim: usize,
    },
    /// Zero-dimensional geometry is not meaningful for skyline queries.
    ZeroDimensions,
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            GeomError::InvertedBounds { dim } => {
                write!(f, "inverted bounds in dimension {dim} (lo > hi)")
            }
            GeomError::NotANumber { dim } => write!(f, "NaN coordinate in dimension {dim}"),
            GeomError::ZeroDimensions => write!(f, "zero-dimensional geometry"),
        }
    }
}

impl std::error::Error for GeomError {}
