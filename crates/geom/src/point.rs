use std::fmt;
use std::ops::Index;

use crate::{GeomError, Result};

/// An owned point in `R^|D|`.
///
/// Coordinates are finite `f64`s; constructors reject NaN so that every
/// comparison in the crate is a total order. Points are the unit of data in
/// the whole workspace: the storage engine stores them in pages, skyline
/// algorithms compare them, and cache items hold them as results.
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point, validating that it is non-empty and NaN-free.
    pub fn new(coords: impl Into<Box<[f64]>>) -> Result<Self> {
        let coords = coords.into();
        if coords.is_empty() {
            return Err(GeomError::ZeroDimensions);
        }
        if let Some(dim) = coords.iter().position(|c| c.is_nan()) {
            return Err(GeomError::NotANumber { dim });
        }
        Ok(Point { coords })
    }

    /// Creates a point without validation.
    ///
    /// Intended for hot paths (data generators, storage reads) where the
    /// invariants are structurally guaranteed. Debug builds still check.
    pub fn new_unchecked(coords: impl Into<Box<[f64]>>) -> Self {
        let coords = coords.into();
        debug_assert!(!coords.is_empty());
        debug_assert!(coords.iter().all(|c| !c.is_nan()));
        Point { coords }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Squared Euclidean distance to another point.
    ///
    /// # Panics
    /// Panics in debug builds if dimensionalities differ.
    pub fn dist_sq(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        self.coords.iter().zip(other.coords.iter()).map(|(a, b)| (a - b) * (a - b)).sum()
    }

    /// Sum of coordinates — the monotone scoring function used by SFS
    /// presorting (a point with smaller sum can never be dominated by one
    /// with a larger sum).
    pub fn coord_sum(&self) -> f64 {
        self.coords.iter().sum()
    }

    /// The "entropy" score `Σ ln(1 + s[i])` of Chomicki et al., also
    /// monotone with respect to dominance for non-negative data.
    pub fn entropy_score(&self) -> f64 {
        self.coords.iter().map(|c| (1.0 + c.max(0.0)).ln()).sum()
    }
}

impl Index<usize> for Point {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl From<Vec<f64>> for Point {
    /// Converts from a coordinate vector, validating in debug builds only.
    fn from(v: Vec<f64>) -> Self {
        Point::new_unchecked(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty() {
        assert_eq!(Point::new(vec![]), Err(GeomError::ZeroDimensions));
    }

    #[test]
    fn new_rejects_nan() {
        assert_eq!(Point::new(vec![1.0, f64::NAN]), Err(GeomError::NotANumber { dim: 1 }));
    }

    #[test]
    fn accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(p.dims(), 3);
        assert_eq!(p[1], 2.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
        assert_eq!(p.coord_sum(), 6.0);
    }

    #[test]
    fn dist_sq_is_squared_l2() {
        let a = Point::new(vec![0.0, 0.0]).unwrap();
        let b = Point::new(vec![3.0, 4.0]).unwrap();
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn entropy_score_monotone_under_dominance() {
        let a = Point::new(vec![0.1, 0.2]).unwrap();
        let b = Point::new(vec![0.3, 0.2]).unwrap();
        assert!(a.entropy_score() < b.entropy_score());
    }
}
