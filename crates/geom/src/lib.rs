//! Geometric kernel for constrained skyline processing.
//!
//! This crate provides the spatial vocabulary shared by every other
//! `skycache` crate:
//!
//! * [`Point`] — an owned, fixed-dimensionality coordinate vector;
//! * [`Interval`] — a 1-D range with *per-endpoint inclusivity*, needed
//!   because the MPR algorithm (Algorithm 1 of the paper) splits regions
//!   with strict inequalities so that the emitted range queries stay
//!   pairwise disjoint;
//! * [`HyperRect`] — a product of intervals (a possibly half-open box);
//! * [`Aabb`] — a closed axis-aligned box with the area/margin/mindist
//!   algebra required by the R\*-tree;
//! * [`Constraints`] — a closed box with query semantics, the `C = ⟨C̲, C̄⟩`
//!   of the paper;
//! * [`dominance`] — Pareto dominance tests and dominance regions;
//! * [`subtract`] — box subtraction and disjoint decomposition, the kernel
//!   of the Missing Points Region computation.
//!
//! All skylines in this workspace **minimize** every dimension, matching the
//! paper; a preference for maximization is handled by negating the attribute.

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(rust_2018_idioms)]

mod aabb;
/// Flat structure-of-arrays point storage for allocation-free hot loops.
pub mod block;
mod constraints;
/// Pareto dominance tests and dominance regions.
pub mod dominance;
mod error;
/// Explicit float-comparison helpers (exact vs. tolerance semantics).
pub mod float;
mod interval;
/// Kernel generations (scalar vs. wide) for the dominance inner loops.
pub mod kernel;
mod point;
mod rect;
/// Box subtraction and disjoint decomposition (the MPR kernel).
pub mod subtract;

pub use aabb::Aabb;
pub use block::{filter_block, retain_nondominated, BlockFilter, PointBlock};
pub use constraints::Constraints;
pub use dominance::{dominated_by_any_rows, dominates, dominates_weak, DomRelation};
pub use error::GeomError;
pub use interval::Interval;
pub use kernel::Kernel;
pub use point::Point;
pub use rect::HyperRect;

/// Convenience alias: results of fallible geometric constructors.
pub type Result<T> = std::result::Result<T, GeomError>;
