use std::fmt;

use crate::float::exact_eq;

/// A 1-D range with per-endpoint inclusivity.
///
/// Algorithm 1 of the paper splits hyper-rectangles with strict
/// inequalities so that the resulting range queries are *pairwise
/// disjoint* (Section 5.2: "This assumption can be removed by setting
/// either inequality to be strict"). An interval therefore records, for
/// each endpoint, whether it is open or closed.
#[derive(Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
    lo_open: bool,
    hi_open: bool,
}

impl Interval {
    /// Closed interval `[lo, hi]`.
    #[inline]
    pub fn closed(lo: f64, hi: f64) -> Self {
        Interval { lo, hi, lo_open: false, hi_open: false }
    }

    /// Fully-specified interval.
    #[inline]
    pub fn new(lo: f64, hi: f64, lo_open: bool, hi_open: bool) -> Self {
        Interval { lo, hi, lo_open, hi_open }
    }

    /// Lower endpoint value.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint value.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Whether the lower endpoint is excluded.
    #[inline]
    pub fn lo_open(&self) -> bool {
        self.lo_open
    }

    /// Whether the upper endpoint is excluded.
    #[inline]
    pub fn hi_open(&self) -> bool {
        self.hi_open
    }

    /// An interval is empty when it contains no real number.
    #[inline]
    pub fn is_empty(&self) -> bool {
        // Endpoints are only ever copied, never recomputed, so exact
        // comparison is the correct tie test (see crate::float).
        self.lo > self.hi || (exact_eq(self.lo, self.hi) && (self.lo_open || self.hi_open))
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        let above_lo = if self.lo_open { x > self.lo } else { x >= self.lo };
        let below_hi = if self.hi_open { x < self.hi } else { x <= self.hi };
        above_lo && below_hi
    }

    /// Intersection of two intervals (may be empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        // total_cmp never panics; endpoints are NaN-free by construction
        // (Aabb/Constraints validate), so its -0.0 < 0.0 refinement only
        // affects which bit pattern of a numeric tie is kept.
        let (lo, lo_open) = match self.lo.total_cmp(&other.lo) {
            std::cmp::Ordering::Greater => (self.lo, self.lo_open),
            std::cmp::Ordering::Less => (other.lo, other.lo_open),
            std::cmp::Ordering::Equal => (self.lo, self.lo_open || other.lo_open),
        };
        let (hi, hi_open) = match self.hi.total_cmp(&other.hi) {
            std::cmp::Ordering::Less => (self.hi, self.hi_open),
            std::cmp::Ordering::Greater => (other.hi, other.hi_open),
            std::cmp::Ordering::Equal => (self.hi, self.hi_open || other.hi_open),
        };
        Interval { lo, hi, lo_open, hi_open }
    }

    /// Whether the two intervals share at least one real number.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        if other.is_empty() {
            return true;
        }
        let lo_ok =
            self.lo < other.lo || (exact_eq(self.lo, other.lo) && (!self.lo_open || other.lo_open));
        let hi_ok =
            self.hi > other.hi || (exact_eq(self.hi, other.hi) && (!self.hi_open || other.hi_open));
        lo_ok && hi_ok
    }

    /// The part of `self` strictly below `at` (`x < at`), or below-or-equal
    /// when `open` is false.
    pub fn below(&self, at: f64, open: bool) -> Interval {
        self.intersect(&Interval::new(f64::NEG_INFINITY, at, true, open))
    }

    /// The part of `self` above `at` (`x > at` when `open`, else `x >= at`).
    pub fn above(&self, at: f64, open: bool) -> Interval {
        self.intersect(&Interval::new(at, f64::INFINITY, open, true))
    }

    /// Width of the interval (`hi - lo`, clamped at zero when empty).
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}, {}{}",
            if self.lo_open { '(' } else { '[' },
            self.lo,
            self.hi,
            if self.hi_open { ')' } else { ']' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emptiness() {
        assert!(!Interval::closed(0.0, 0.0).is_empty());
        assert!(Interval::new(0.0, 0.0, true, false).is_empty());
        assert!(Interval::new(0.0, 0.0, false, true).is_empty());
        assert!(Interval::closed(1.0, 0.0).is_empty());
    }

    #[test]
    fn contains_respects_openness() {
        let i = Interval::new(0.0, 1.0, true, false);
        assert!(!i.contains(0.0));
        assert!(i.contains(0.5));
        assert!(i.contains(1.0));
        assert!(!i.contains(1.5));
    }

    #[test]
    fn intersect_merges_openness_on_ties() {
        let a = Interval::new(0.0, 1.0, false, true);
        let b = Interval::new(0.0, 1.0, true, false);
        let c = a.intersect(&b);
        assert!(c.lo_open());
        assert!(c.hi_open());
    }

    #[test]
    fn intersect_picks_tighter_bounds() {
        let a = Interval::closed(0.0, 5.0);
        let b = Interval::closed(3.0, 8.0);
        let c = a.intersect(&b);
        assert_eq!((c.lo(), c.hi()), (3.0, 5.0));
        assert!(!c.is_empty());
        assert!(a.intersects(&b));
        assert!(!a.intersects(&Interval::closed(6.0, 7.0)));
    }

    #[test]
    fn touching_closed_intervals_intersect() {
        let a = Interval::closed(0.0, 1.0);
        let b = Interval::closed(1.0, 2.0);
        assert!(a.intersects(&b));
        let b_open = Interval::new(1.0, 2.0, true, false);
        assert!(!a.intersects(&b_open));
    }

    #[test]
    fn below_above_partition() {
        let i = Interval::closed(0.0, 10.0);
        let lo = i.below(4.0, true); // [0, 4)
        let hi = i.above(4.0, false); // [4, 10]
        assert!(lo.contains(0.0) && lo.contains(3.999) && !lo.contains(4.0));
        assert!(hi.contains(4.0) && hi.contains(10.0));
        assert!(!lo.intersects(&hi));
    }

    #[test]
    fn containment() {
        let outer = Interval::closed(0.0, 10.0);
        assert!(outer.contains_interval(&Interval::closed(0.0, 10.0)));
        assert!(outer.contains_interval(&Interval::new(0.0, 10.0, true, true)));
        let inner_open = Interval::new(0.0, 5.0, true, false);
        assert!(inner_open.contains_interval(&Interval::closed(1.0, 5.0)));
        assert!(!inner_open.contains_interval(&Interval::closed(0.0, 5.0)));
    }
}
