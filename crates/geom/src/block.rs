//! Flat structure-of-arrays point storage for dominance-heavy kernels.
//!
//! A [`PointBlock`] stores `len` points of fixed dimensionality `dims` in
//! one contiguous `Vec<f64>` with stride `dims`. Skyline inner loops
//! (BNL/SFS windows, the parallel divide-and-conquer merge) operate on
//! bare `&[f64]` rows via [`crate::dominance::dominates_raw`], so the hot
//! path performs no per-point allocation and walks memory linearly —
//! unlike `Vec<Point>`, where every comparison chases a separate `Box`.

use crate::{GeomError, Kernel, Point, Result};

/// A dense block of equal-dimensionality points (structure-of-arrays).
#[derive(Clone, Debug, PartialEq)]
pub struct PointBlock {
    coords: Vec<f64>,
    dims: usize,
}

impl PointBlock {
    /// Creates an empty block for `dims`-dimensional points.
    pub fn new(dims: usize) -> Result<Self> {
        if dims == 0 {
            return Err(GeomError::ZeroDimensions);
        }
        Ok(PointBlock { coords: Vec::new(), dims }) // skylint: allow(hot-path-alloc) — constructs the buffer itself
    }

    /// Creates an empty block with room for `capacity` points.
    pub fn with_capacity(dims: usize, capacity: usize) -> Result<Self> {
        if dims == 0 {
            return Err(GeomError::ZeroDimensions);
        }
        Ok(PointBlock { coords: Vec::with_capacity(dims * capacity), dims })
    }

    /// Builds a block from points, which must be non-empty (the block
    /// takes its dimensionality from the first point).
    ///
    /// # Panics
    /// Panics in debug builds if dimensionalities are mixed.
    pub fn from_points(points: &[Point]) -> Result<Self> {
        let dims = points.first().map_or(0, Point::dims);
        let mut block = PointBlock::with_capacity(dims, points.len())?;
        for p in points {
            block.push(p); // skylint: allow(hot-path-alloc) — fills the pre-sized buffer from with_capacity
        }
        Ok(block)
    }

    /// Number of points stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dims
    }

    /// Whether the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality of every stored point.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The coordinate row of point `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dims..(i + 1) * self.dims]
    }

    /// The whole backing buffer (row-major, stride [`Self::dims`]).
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.coords
    }

    /// Iterates over coordinate rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.coords.chunks_exact(self.dims)
    }

    /// Appends a point.
    ///
    /// # Panics
    /// Panics in debug builds on dimensionality mismatch.
    #[inline]
    pub fn push(&mut self, p: &Point) {
        self.push_row(p.coords());
    }

    /// Appends a bare coordinate row.
    ///
    /// # Panics
    /// Panics in debug builds on dimensionality mismatch.
    #[inline]
    pub fn push_row(&mut self, row: &[f64]) {
        debug_assert_eq!(row.len(), self.dims);
        self.coords.extend_from_slice(row);
    }

    /// Removes row `i` by moving the last row into its place (O(dims)).
    pub fn swap_remove(&mut self, i: usize) {
        let last = self.len() - 1;
        if i != last {
            let (head, tail) = self.coords.split_at_mut(last * self.dims);
            head[i * self.dims..(i + 1) * self.dims].copy_from_slice(tail);
        }
        self.coords.truncate(last * self.dims);
    }

    /// Removes all points.
    pub fn clear(&mut self) {
        self.coords.clear();
    }

    /// Keeps only the rows for which `pred` returns `true`, preserving
    /// order. In-place compaction: no allocation, O(len · dims).
    pub fn retain_rows(&mut self, mut pred: impl FnMut(&[f64]) -> bool) {
        let dims = self.dims;
        let mut write = 0;
        for read in 0..self.len() {
            let keep = pred(&self.coords[read * dims..(read + 1) * dims]);
            if keep {
                if write != read {
                    self.coords.copy_within(read * dims..(read + 1) * dims, write * dims);
                }
                write += 1;
            }
        }
        self.coords.truncate(write * dims);
    }

    /// Materializes the block as owned [`Point`]s.
    pub fn to_points(&self) -> Vec<Point> {
        // skylint: allow(hot-path-alloc) — explicit SoA→AoS materialization boundary
        self.rows().map(|r| Point::new_unchecked(r.to_vec())).collect()
    }
}

impl From<&[Point]> for PointBlock {
    /// Converts from a non-empty point slice.
    ///
    /// # Panics
    /// Panics if `points` is empty (no dimensionality to infer); use
    /// [`PointBlock::new`] for empty blocks.
    fn from(points: &[Point]) -> Self {
        // skylint: allow(no-panic-paths) — documented `# Panics` contract above.
        PointBlock::from_points(points).expect("cannot infer dims of an empty point slice")
    }
}

/// Result of a block dominance filter: how much work it did. Survivors
/// are compacted into the candidate block itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockFilter {
    /// Number of pairwise dominance tests performed.
    pub dominance_tests: u64,
    /// Number of candidate rows removed as dominated.
    pub removed: usize,
}

/// Removes from `candidates` every row strictly dominated by some row of
/// `window`, compacting survivors in place (stable order, no per-point
/// allocation), under the scalar kernel generation.
///
/// Thin wrapper over [`retain_nondominated`] kept for callers that pin
/// the scalar generation (and for its exact early-exit
/// `dominance_tests` accounting, which both generations share).
pub fn filter_block(candidates: &mut PointBlock, window: &PointBlock) -> BlockFilter {
    retain_nondominated(candidates, window, Kernel::Scalar)
}

/// Block-vs-block dominance filter: removes from `candidates` every row
/// strictly dominated by some row of `window` in one pass, compacting
/// survivors in place (stable order, no per-point allocation), with the
/// row-level dominance test dispatched to the chosen [`Kernel`]
/// generation.
///
/// Both generations perform the same per-candidate window scan with the
/// same early exit on the first dominating window row, so `dominance_tests`
/// and the survivor set are generation-independent — only the cost of each
/// row-pair test changes.
///
/// `window` and `candidates` may be the same data copied into two blocks,
/// but aliasing one block for both roles is impossible by construction
/// (`&mut` vs `&`), which is what makes the in-place compaction sound.
pub fn retain_nondominated(
    candidates: &mut PointBlock,
    window: &PointBlock,
    kernel: Kernel,
) -> BlockFilter {
    debug_assert_eq!(candidates.dims(), window.dims());
    let dims = candidates.dims;
    let mut stats = BlockFilter::default();
    let mut write = 0usize;
    for read in 0..candidates.len() {
        let row = candidates.row(read);
        let mut dominated = false;
        for w in window.rows() {
            stats.dominance_tests += 1;
            if kernel.dominates(w, row) {
                dominated = true;
                break;
            }
        }
        if dominated {
            stats.removed += 1;
        } else {
            if write != read {
                candidates.coords.copy_within(read * dims..(read + 1) * dims, write * dims);
            }
            write += 1;
        }
    }
    candidates.coords.truncate(write * dims);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(rows: &[&[f64]]) -> PointBlock {
        let mut b = PointBlock::new(rows[0].len()).unwrap();
        for r in rows {
            b.push_row(r);
        }
        b
    }

    #[test]
    fn new_rejects_zero_dims() {
        assert!(PointBlock::new(0).is_err());
        assert!(PointBlock::with_capacity(0, 8).is_err());
    }

    #[test]
    fn push_and_access() {
        let b = block(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.dims(), 2);
        assert_eq!(b.row(1), &[3.0, 4.0]);
        assert_eq!(b.as_flat(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.rows().count(), 2);
    }

    #[test]
    fn round_trips_through_points() {
        let pts = vec![
            Point::new(vec![1.0, 2.0, 3.0]).unwrap(),
            Point::new(vec![4.0, 5.0, 6.0]).unwrap(),
        ];
        let b = PointBlock::from_points(&pts).unwrap();
        assert_eq!(b.to_points(), pts);
    }

    #[test]
    fn swap_remove_moves_last_row() {
        let mut b = block(&[&[1.0], &[2.0], &[3.0]]);
        b.swap_remove(0);
        assert_eq!(b.to_points(), vec![Point::from(vec![3.0]), Point::from(vec![2.0])]);
        b.swap_remove(1);
        assert_eq!(b.len(), 1);
        b.swap_remove(0);
        assert!(b.is_empty());
    }

    #[test]
    fn filter_block_matches_naive() {
        let window = block(&[&[1.0, 1.0], &[0.0, 3.0]]);
        // Dominated by (1,1); incomparable; equal to a window row
        // (equality does not dominate); dominated by (0,3).
        let mut cands = block(&[&[2.0, 2.0], &[0.5, 1.5], &[1.0, 1.0], &[0.0, 4.0]]);
        let stats = filter_block(&mut cands, &window);
        assert_eq!(
            cands.to_points(),
            vec![Point::from(vec![0.5, 1.5]), Point::from(vec![1.0, 1.0]),]
        );
        assert_eq!(stats.removed, 2);
        // Row 1: 2 tests (no hit); row 2: 2 tests; rows 0 and 3: early
        // exit after 1 and 2 tests respectively.
        assert_eq!(stats.dominance_tests, 1 + 2 + 2 + 2);
    }

    #[test]
    fn retain_nondominated_generations_agree() {
        let window = block(&[&[1.0, 1.0, 5.0], &[0.0, 3.0, 0.5]]);
        let rows: &[&[f64]] =
            &[&[2.0, 2.0, 6.0], &[0.5, 1.5, 0.25], &[1.0, 1.0, 5.0], &[0.0, 4.0, 0.75]];
        let mut scalar = block(rows);
        let mut wide = block(rows);
        let a = retain_nondominated(&mut scalar, &window, Kernel::Scalar);
        let b = retain_nondominated(&mut wide, &window, Kernel::Wide);
        assert_eq!(scalar, wide);
        assert_eq!(a, b, "same tests and removals under both generations");
    }

    #[test]
    fn filter_block_empty_window_keeps_all() {
        let window = PointBlock::new(2).unwrap();
        let mut cands = block(&[&[9.0, 9.0], &[0.0, 0.0]]);
        let stats = filter_block(&mut cands, &window);
        assert_eq!(cands.len(), 2);
        assert_eq!(stats, BlockFilter::default());
    }
}
