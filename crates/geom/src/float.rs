//! Explicit float-comparison helpers.
//!
//! The `determinism` lint (see DESIGN.md §9) forbids raw `==`/`!=` on
//! `f64` values in geometry code: a bare comparison does not say whether
//! the author wanted *tolerance* semantics (measured quantities that may
//! carry rounding error) or *exact bit-level* semantics (interval
//! endpoints copied around by the region algebra, where `0.1 + 0.2 ≠ 0.3`
//! must stay unequal or Algorithm 1's disjointness guarantee breaks).
//! Routing every comparison through one of these helpers makes the choice
//! auditable.
//!
//! * [`exact_eq`] / [`exact_ne`] — IEEE-754 equality. The right choice for
//!   endpoint bookkeeping: the MPR construction only ever *copies* bounds
//!   (never recomputes them), so equal endpoints are bit-equal and a
//!   tolerance would merge regions that must stay disjoint.
//! * [`approx_eq`] / [`approx_ne`] — absolute-epsilon equality for derived
//!   quantities (areas, distances) where rounding noise is expected.

/// Default absolute tolerance for [`approx_eq`].
///
/// The benchmarks' coordinates live in `[0, 1]`; 1e-12 is ~4 decimal
/// orders above `f64` ulp at that scale and far below any data spacing.
pub const EPS: f64 = 1e-12;

/// Exact IEEE-754 equality, spelled out so the intent is visible.
///
/// Use for interval/constraint endpoints: region subtraction copies
/// bounds verbatim, and the disjointness of the emitted range queries
/// relies on copied bounds comparing equal *exactly*.
#[inline]
pub fn exact_eq(a: f64, b: f64) -> bool {
    // Deliberately spelled raw: this helper IS the audited comparison site.
    a == b
}

/// Negation of [`exact_eq`].
#[inline]
pub fn exact_ne(a: f64, b: f64) -> bool {
    !exact_eq(a, b)
}

/// Absolute-epsilon equality with the default tolerance [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, EPS)
}

/// Negation of [`approx_eq`].
#[inline]
pub fn approx_ne(a: f64, b: f64) -> bool {
    !approx_eq(a, b)
}

/// Absolute-epsilon equality with a caller-chosen tolerance.
///
/// Infinities compare equal to themselves (their difference is NaN, which
/// fails the `<=` test, so they are special-cased); NaN is equal to
/// nothing, matching IEEE semantics.
#[inline]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    if exact_eq(a, b) {
        return true; // covers equal infinities and all bit-equal values
    }
    (a - b).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_ieee() {
        assert!(exact_eq(0.5, 0.5));
        assert!(exact_ne(0.1 + 0.2, 0.3)); // the motivating example
        assert!(exact_eq(f64::INFINITY, f64::INFINITY));
        assert!(exact_ne(f64::NAN, f64::NAN));
        assert!(exact_eq(0.0, -0.0));
    }

    #[test]
    fn approx_absorbs_rounding_noise() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(approx_ne(0.3, 0.3 + 1e-9));
        assert!(approx_eq_eps(0.3, 0.3 + 1e-9, 1e-6));
    }

    #[test]
    fn approx_handles_non_finite() {
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(approx_ne(f64::INFINITY, f64::NEG_INFINITY));
        assert!(approx_ne(f64::NAN, f64::NAN));
        assert!(approx_ne(f64::INFINITY, 1.0));
    }
}
