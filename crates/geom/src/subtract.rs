//! Region algebra: box subtraction and disjoint decomposition.
//!
//! These operations are the computational kernel of the Missing Points
//! Region (Algorithm 1 of the paper). Subtracting a box `d` from a
//! rectangle `r` corresponds to one full pass of the algorithm's
//! per-dimension splitting loop for a single pruning point: the rectangle
//! is carved into at most `2·|D|` disjoint pieces lying outside `d`, and
//! the part inside `d` (the "dominated" part) is discarded.

use crate::{Aabb, HyperRect, Interval};

/// Subtracts closed box `d` from rectangle `r`, pushing the disjoint
/// remainder pieces onto `out`. Pieces are carved dimension by dimension:
/// for each dimension the parts of `r` strictly below `d.lo[i]` and
/// strictly above `d.hi[i]` are emitted, then `r` is narrowed to `d`'s
/// footprint in that dimension. The pieces plus `r ∩ d` exactly tile `r`.
///
/// When `r` and `d` are disjoint, `r` itself is pushed unchanged.
pub fn subtract_box_into(r: &HyperRect, d: &Aabb, out: &mut Vec<HyperRect>) {
    debug_assert_eq!(r.dims(), d.dims());
    if r.is_empty() {
        return;
    }
    let d_rect = d.to_rect();
    if !r.intersects(&d_rect) {
        out.push(r.clone());
        return;
    }
    let mut remaining = r.clone();
    for i in 0..r.dims() {
        let iv = *remaining.interval(i);
        // Part strictly below d.lo[i]: x < d.lo[i].
        let below = iv.below(d.lo()[i], true);
        if !below.is_empty() {
            out.push(remaining.with_interval(i, below));
        }
        // Part strictly above d.hi[i]: x > d.hi[i].
        let above = iv.above(d.hi()[i], true);
        if !above.is_empty() {
            out.push(remaining.with_interval(i, above));
        }
        // Narrow to d's footprint in dimension i and continue.
        let inner = iv.intersect(&Interval::closed(d.lo()[i], d.hi()[i]));
        debug_assert!(!inner.is_empty());
        remaining = remaining.with_interval(i, inner);
    }
    // `remaining` is now r ∩ d — the discarded (covered) part.
}

/// Convenience wrapper around [`subtract_box_into`].
pub fn subtract_box(r: &HyperRect, d: &Aabb) -> Vec<HyperRect> {
    let mut out = Vec::new();
    subtract_box_into(r, d, &mut out);
    out
}

/// Subtracts `d` from every rectangle in `rects`, returning the disjoint
/// remainder. The output rectangles remain pairwise disjoint if the input
/// ones were.
pub fn subtract_box_from_all(rects: Vec<HyperRect>, d: &Aabb) -> Vec<HyperRect> {
    let mut out = Vec::with_capacity(rects.len());
    for r in &rects {
        subtract_box_into(r, d, &mut out);
    }
    out
}

/// Decomposes the union of closed boxes into pairwise-disjoint
/// hyper-rectangles.
///
/// Used for the unstable-case invalidated region: the union of the
/// (clipped) dominance regions of removed skyline points must be turned
/// into disjoint range queries. Complexity is `O(n² · |D|)` in the number
/// of boxes, fine for the small removed-point sets the paper observes
/// ("the extent of invalidation is limited", Section 7.3.1).
pub fn disjoint_union(boxes: &[Aabb]) -> Vec<HyperRect> {
    let mut out: Vec<HyperRect> = Vec::new();
    for (k, b) in boxes.iter().enumerate() {
        let mut pieces = vec![b.to_rect()];
        for prev in &boxes[..k] {
            pieces = subtract_box_from_all(pieces, prev);
            if pieces.is_empty() {
                break;
            }
        }
        out.extend(pieces);
    }
    out
}

/// True iff no two rectangles in the slice share a point. `O(n²)`;
/// intended for tests and debug assertions.
pub fn pairwise_disjoint(rects: &[HyperRect]) -> bool {
    for (i, a) in rects.iter().enumerate() {
        for b in &rects[i + 1..] {
            if a.intersects(b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn aabb(lo: &[f64], hi: &[f64]) -> Aabb {
        Aabb::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn subtract_disjoint_returns_original() {
        let r = HyperRect::closed(&[0.0, 0.0], &[1.0, 1.0]);
        let d = aabb(&[2.0, 2.0], &[3.0, 3.0]);
        let out = subtract_box(&r, &d);
        assert_eq!(out, vec![r]);
    }

    #[test]
    fn subtract_covering_returns_nothing() {
        let r = HyperRect::closed(&[1.0, 1.0], &[2.0, 2.0]);
        let d = aabb(&[0.0, 0.0], &[3.0, 3.0]);
        assert!(subtract_box(&r, &d).is_empty());
    }

    #[test]
    fn subtract_corner_produces_disjoint_cover() {
        // Remove the upper-right quadrant of the unit square.
        let r = HyperRect::closed(&[0.0, 0.0], &[1.0, 1.0]);
        let d = aabb(&[0.5, 0.5], &[2.0, 2.0]);
        let out = subtract_box(&r, &d);
        assert_eq!(out.len(), 2);
        assert!(pairwise_disjoint(&out));
        // Total volume preserved: 1 - 0.25 = 0.75.
        let vol: f64 = out.iter().map(HyperRect::volume).sum();
        assert!((vol - 0.75).abs() < 1e-12);
        // Boundary points on the cut belong to exactly the removed side.
        let on_cut = Point::from(vec![0.5, 0.5]);
        assert!(!out.iter().any(|p| p.contains_point(&on_cut)));
        let below_cut = Point::from(vec![0.49999, 0.9]);
        assert_eq!(out.iter().filter(|p| p.contains_point(&below_cut)).count(), 1);
    }

    #[test]
    fn subtract_inner_box_produces_2d_ring() {
        let r = HyperRect::closed(&[0.0, 0.0], &[3.0, 3.0]);
        let d = aabb(&[1.0, 1.0], &[2.0, 2.0]);
        let out = subtract_box(&r, &d);
        assert_eq!(out.len(), 4);
        assert!(pairwise_disjoint(&out));
        let vol: f64 = out.iter().map(HyperRect::volume).sum();
        assert!((vol - 8.0).abs() < 1e-12);
    }

    #[test]
    fn subtract_3d_box_counts() {
        let r = HyperRect::closed(&[0.0; 3], &[3.0; 3]);
        let d = aabb(&[1.0; 3], &[2.0; 3]);
        let out = subtract_box(&r, &d);
        assert_eq!(out.len(), 6);
        assert!(pairwise_disjoint(&out));
        let vol: f64 = out.iter().map(HyperRect::volume).sum();
        assert!((vol - 26.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_union_of_overlapping_boxes() {
        let boxes = vec![
            aabb(&[0.0, 0.0], &[2.0, 2.0]),
            aabb(&[1.0, 1.0], &[3.0, 3.0]),
            aabb(&[0.5, 0.5], &[1.5, 1.5]), // fully covered by the union above
        ];
        let out = disjoint_union(&boxes);
        assert!(pairwise_disjoint(&out));
        let vol: f64 = out.iter().map(HyperRect::volume).sum();
        // |A ∪ B| = 4 + 4 - 1 = 7.
        assert!((vol - 7.0).abs() < 1e-12);
        // Every source-box corner sample must be covered exactly once.
        for probe in [[0.1, 0.1], [2.5, 2.5], [1.2, 1.2], [1.0, 2.5]] {
            let p = Point::from(probe.to_vec());
            assert_eq!(out.iter().filter(|r| r.contains_point(&p)).count(), 1, "probe {probe:?}");
        }
    }

    #[test]
    fn subtract_preserves_membership_semantics() {
        // Any point in r is either inside d or in exactly one output piece.
        let r = HyperRect::closed(&[0.0, 0.0, 0.0], &[4.0, 4.0, 4.0]);
        let d = aabb(&[1.0, 2.0, 0.5], &[3.0, 5.0, 3.5]);
        let out = subtract_box(&r, &d);
        assert!(pairwise_disjoint(&out));
        let mut x = 0.05_f64;
        for _ in 0..200 {
            // Deterministic pseudo-random probes in r.
            x = (x * 97.31).fract();
            let y = (x * 57.17).fract();
            let z = (x * 31.73).fract();
            let p = Point::from(vec![x * 4.0, y * 4.0, z * 4.0]);
            let in_d = d.contains_point(&p);
            let covered = out.iter().filter(|rr| rr.contains_point(&p)).count();
            assert_eq!(covered, usize::from(!in_d), "probe {p:?}");
        }
    }
}
