use std::fmt;

use crate::{Aabb, GeomError, HyperRect, Point, Result};

/// Orthogonal range constraints `C = ⟨C̲, C̄⟩` (Section 3 of the paper).
///
/// A constraints object is a closed box: a point `s` satisfies `C` iff
/// `C̲[i] ≤ s[i] ≤ C̄[i]` for every dimension `i`. The *constraint region*
/// `R_C` is the set of all such (potential) points and the *constrained
/// data* `S_C` the subset of the dataset inside it.
#[derive(Clone, PartialEq)]
pub struct Constraints {
    bounds: Aabb,
}

impl Constraints {
    /// Creates constraints from lower and upper corner vectors.
    pub fn new(lo: impl Into<Box<[f64]>>, hi: impl Into<Box<[f64]>>) -> Result<Self> {
        Ok(Constraints { bounds: Aabb::new(lo, hi)? })
    }

    /// Creates constraints from per-dimension `(lo, hi)` pairs.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Result<Self> {
        let lo: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let hi: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        Constraints::new(lo, hi)
    }

    /// Completely unconstrained box over `dims` dimensions.
    pub fn unbounded(dims: usize) -> Result<Self> {
        if dims == 0 {
            return Err(GeomError::ZeroDimensions);
        }
        Ok(Constraints {
            bounds: Aabb::new_unchecked(vec![f64::NEG_INFINITY; dims], vec![f64::INFINITY; dims]),
        })
    }

    /// Wraps an existing closed box.
    pub fn from_aabb(bounds: Aabb) -> Self {
        Constraints { bounds }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.bounds.dims()
    }

    /// Lower constraint vector `C̲`.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        self.bounds.lo()
    }

    /// Upper constraint vector `C̄`.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        self.bounds.hi()
    }

    /// The underlying closed box.
    #[inline]
    pub fn aabb(&self) -> &Aabb {
        &self.bounds
    }

    /// The constraint region `R_C` as a closed [`HyperRect`].
    pub fn region(&self) -> HyperRect {
        self.bounds.to_rect()
    }

    /// Whether point `s` satisfies the constraints (`s ∈ S_C` membership).
    #[inline]
    pub fn satisfies(&self, s: &Point) -> bool {
        self.bounds.contains_point(s)
    }

    /// Bare-row membership: the zero-copy twin of
    /// [`Constraints::satisfies`] for coordinate slices coming out of a
    /// [`crate::PointBlock`].
    #[inline]
    pub fn satisfies_coords(&self, row: &[f64]) -> bool {
        self.bounds.contains_coords(row)
    }

    /// Kernel-dispatched twin of [`Constraints::satisfies_coords`]:
    /// membership-test loops hoist [`crate::Kernel::for_dims`] once and
    /// pass it here per row.
    #[inline]
    pub fn satisfies_coords_k(&self, kernel: crate::Kernel, row: &[f64]) -> bool {
        kernel.contains(self.lo(), self.hi(), row)
    }

    /// Whether the two constraint regions overlap (`R_C ∩ R_C′ ≠ ∅`).
    pub fn overlaps(&self, other: &Constraints) -> bool {
        self.bounds.intersects(&other.bounds)
    }

    /// The overlap region `R_C ∩ R_C′`, if any.
    pub fn overlap_region(&self, other: &Constraints) -> Option<Aabb> {
        self.bounds.intersection(&other.bounds)
    }

    /// Volume of the overlap region (the `MaxOverlap` strategy's score).
    pub fn overlap_volume(&self, other: &Constraints) -> f64 {
        self.bounds.overlap_area(&other.bounds)
    }

    /// Whether `other`'s region is fully contained in `self`'s.
    pub fn contains(&self, other: &Constraints) -> bool {
        self.bounds.contains_box(&other.bounds)
    }

    /// Returns a copy with dimension `dim`'s bounds replaced.
    ///
    /// This is the "incremental change" operation of Section 4: the paper's
    /// cases (a)–(d) each modify exactly one bound of one dimension.
    pub fn with_dim(&self, dim: usize, lo: f64, hi: f64) -> Result<Self> {
        if lo > hi {
            return Err(GeomError::InvertedBounds { dim });
        }
        let mut new_lo = self.lo().to_vec();
        let mut new_hi = self.hi().to_vec();
        new_lo[dim] = lo;
        new_hi[dim] = hi;
        Constraints::new(new_lo, new_hi)
    }

    /// Squared distance between the lower corners of two constraint sets —
    /// the score of the `OptimumDistance` cache search strategy.
    pub fn lower_corner_dist_sq(&self, other: &Constraints) -> f64 {
        self.lo().iter().zip(other.lo()).map(|(a, b)| (a - b) * (a - b)).sum()
    }
}

impl fmt::Debug for Constraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C⟨{:?}, {:?}⟩", self.lo(), self.hi())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(lo: &[f64], hi: &[f64]) -> Constraints {
        Constraints::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn satisfies_is_closed() {
        let cc = c(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(cc.satisfies(&Point::from(vec![0.0, 1.0])));
        assert!(!cc.satisfies(&Point::from(vec![-0.1, 0.5])));
    }

    #[test]
    fn unbounded_satisfies_everything() {
        let cc = Constraints::unbounded(3).unwrap();
        assert!(cc.satisfies(&Point::from(vec![1e300, -1e300, 0.0])));
        assert!(Constraints::unbounded(0).is_err());
    }

    #[test]
    fn with_dim_changes_one_dimension() {
        let cc = c(&[0.0, 0.0], &[1.0, 1.0]);
        let cc2 = cc.with_dim(1, 0.25, 0.75).unwrap();
        assert_eq!(cc2.lo(), &[0.0, 0.25]);
        assert_eq!(cc2.hi(), &[1.0, 0.75]);
        assert!(cc.with_dim(0, 2.0, 1.0).is_err());
    }

    #[test]
    fn overlap_math() {
        let a = c(&[0.0, 0.0], &[2.0, 2.0]);
        let b = c(&[1.0, 1.0], &[3.0, 3.0]);
        assert!(a.overlaps(&b));
        assert_eq!(a.overlap_volume(&b), 1.0);
        let o = a.overlap_region(&b).unwrap();
        assert_eq!(o.lo(), &[1.0, 1.0]);
        assert_eq!(o.hi(), &[2.0, 2.0]);
        assert!(a.contains(&c(&[0.5, 0.5], &[1.5, 1.5])));
    }

    #[test]
    fn lower_corner_distance() {
        let a = c(&[0.0, 0.0], &[2.0, 2.0]);
        let b = c(&[3.0, 4.0], &[5.0, 6.0]);
        assert_eq!(a.lower_corner_dist_sq(&b), 25.0);
    }
}
