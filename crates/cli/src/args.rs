//! A small, dependency-free flag parser: `--key value`, `--flag`, and
//! positional arguments, with typed accessors and unknown-flag detection.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, Vec<String>>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Errors from argument parsing or typed access.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// `--flag` appeared without its required value.
    MissingValue(String),
    /// A required flag was absent.
    Required(String),
    /// A value failed to parse.
    Invalid {
        /// The flag name.
        flag: String,
        /// The offending raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Flags that no command recognizes.
    Unknown(Vec<String>),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} requires a value"),
            ArgError::Required(flag) => write!(f, "missing required --{flag}"),
            ArgError::Invalid { flag, value, expected } => {
                write!(f, "--{flag} {value:?}: expected {expected}")
            }
            ArgError::Unknown(flags) => {
                write!(f, "unknown flag(s): ")?;
                for (i, fl) in flags.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "--{fl}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["real-estate", "help", "full"];

impl Args {
    /// Parses raw arguments (excluding program name and subcommand).
    pub fn parse(raw: &[String]) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    args.flags.entry(name.to_owned()).or_default().push(String::new());
                } else {
                    let value = it.next().ok_or_else(|| ArgError::MissingValue(name.to_owned()))?;
                    args.flags.entry(name.to_owned()).or_default().push(value.clone());
                }
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    fn raw(&self, flag: &str) -> Option<&String> {
        self.consumed.borrow_mut().push(flag.to_owned());
        self.flags.get(flag).and_then(|v| v.last())
    }

    /// Whether a boolean flag was given.
    pub fn has(&self, flag: &str) -> bool {
        self.consumed.borrow_mut().push(flag.to_owned());
        self.flags.contains_key(flag)
    }

    /// Optional string flag.
    pub fn get(&self, flag: &str) -> Option<String> {
        self.raw(flag).cloned()
    }

    /// Required string flag.
    pub fn require(&self, flag: &str) -> Result<String, ArgError> {
        self.get(flag).ok_or_else(|| ArgError::Required(flag.to_owned()))
    }

    /// Optional typed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.raw(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::Invalid {
                flag: flag.to_owned(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Rejects flags that were never consumed by the command.
    pub fn finish(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<String> =
            self.flags.keys().filter(|k| !consumed.contains(k)).cloned().collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgError::Unknown(unknown))
        }
    }
}

/// Parses a range list `lo:hi,lo:hi,...` (dimensions in order; `*` or an
/// empty side means unbounded).
pub fn parse_ranges(spec: &str) -> Result<Vec<(f64, f64)>, ArgError> {
    let invalid = |value: &str| ArgError::Invalid {
        flag: "range".to_owned(),
        value: value.to_owned(),
        expected: "lo:hi[,lo:hi...] with numbers or *",
    };
    let side = |s: &str| -> Result<Option<f64>, ArgError> {
        if s.is_empty() || s == "*" {
            return Ok(None);
        }
        s.parse::<f64>().map(Some).map_err(|_| invalid(s))
    };
    let mut out = Vec::new();
    for part in spec.split(',') {
        let (lo, hi) = part.split_once(':').ok_or_else(|| invalid(part))?;
        let lo = side(lo)?.unwrap_or(f64::NEG_INFINITY);
        let hi = side(hi)?.unwrap_or(f64::INFINITY);
        if lo > hi {
            return Err(invalid(part));
        }
        out.push((lo, hi));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, ArgError> {
        let raw: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        Args::parse(&raw)
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse(&["data.skyc", "--n", "1000", "--real-estate"]).unwrap();
        assert_eq!(a.positional(), &["data.skyc"]);
        assert_eq!(a.get_or("n", 0usize).unwrap(), 1000);
        assert!(a.has("real-estate"));
        assert!(a.finish().is_ok());
    }

    #[test]
    fn missing_value_is_reported() {
        assert_eq!(parse(&["--n"]).unwrap_err(), ArgError::MissingValue("n".into()));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let a = parse(&["--bogus", "1"]).unwrap();
        let _ = a.get("n");
        assert_eq!(a.finish().unwrap_err(), ArgError::Unknown(vec!["bogus".into()]));
    }

    #[test]
    fn typed_defaults_and_errors() {
        let a = parse(&["--seed", "nope"]).unwrap();
        assert!(matches!(a.get_or("seed", 0u64), Err(ArgError::Invalid { .. })));
        let b = parse(&[]).unwrap();
        assert_eq!(b.get_or("seed", 7u64).unwrap(), 7);
        assert!(matches!(b.require("out"), Err(ArgError::Required(_))));
    }

    #[test]
    fn range_parsing() {
        assert_eq!(parse_ranges("0.1:0.5,2:3").unwrap(), vec![(0.1, 0.5), (2.0, 3.0)]);
        assert_eq!(
            parse_ranges("*:5,1:*").unwrap(),
            vec![(f64::NEG_INFINITY, 5.0), (1.0, f64::INFINITY)]
        );
        assert_eq!(parse_ranges(":*").unwrap(), vec![(f64::NEG_INFINITY, f64::INFINITY)]);
        assert!(parse_ranges("5:1").is_err());
        assert!(parse_ranges("abc").is_err());
        assert!(parse_ranges("1:x").is_err());
    }
}
