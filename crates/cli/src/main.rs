//! `skycache` — command-line front end for the constrained-skyline cache
//! library: generate datasets, inspect them, pose queries, and compare
//! the paper's methods.

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "skycache — cache-based constrained skyline queries (EDBT 2015 reproduction)

usage: skycache <command> [args]

commands:
  generate   create a dataset and save it
             --dist independent|correlated|anti | --real-estate
             --dims N (synthetic only)  --n COUNT  --seed S  --out FILE
  info       print a dataset summary
             skycache info FILE
  query      answer one constrained skyline query
             skycache query FILE --range lo:hi[,lo:hi...]
             [--method baseline|bbs|cbcs]  [--limit ROWS]
  workload   run a generated workload through CBCS
             skycache workload FILE [--interactive N | --independent N]
             [--seed S] [--k NN] [--strategy NAME] [--extra-items M]
  compare    run the same workload through Baseline, BBS and CBCS
             skycache compare FILE [--queries N] [--seed S] [--k NN]

strategies: random, maxoverlap, maxoverlapsp, prioritized1d,
            prioritizednd-std, prioritizednd-bad, optimumdistance";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let parsed = match args::Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = match command.as_str() {
        "generate" => commands::generate(&parsed),
        "info" => commands::info(&parsed),
        "query" => commands::query(&parsed),
        "workload" => commands::workload(&parsed),
        "compare" => commands::compare(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command: {other}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
