//! The CLI subcommands.

use std::error::Error;
use std::time::Instant;

use skycache_core::{
    BaselineExecutor, BbsExecutor, CbcsConfig, CbcsExecutor, Executor, MprMode, QueryRequest,
    SearchStrategy,
};
use skycache_datagen::{
    DimStats, Distribution, IndependentWorkload, InteractiveWorkload, RealEstateGen, SyntheticGen,
};
use skycache_geom::{Constraints, Point};
use skycache_storage::{Table, TableConfig};

use crate::args::{parse_ranges, Args};

type CmdResult = Result<(), Box<dyn Error>>;

fn load_table(args: &Args) -> Result<Table, Box<dyn Error>> {
    let path = args
        .positional()
        .first()
        .ok_or("expected a dataset file (created with `skycache generate`)")?;
    Ok(Table::load(path)?)
}

/// `skycache generate`
pub fn generate(args: &Args) -> CmdResult {
    let n: usize = args.get_or("n", 100_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let out = args.require("out")?;

    let points: Vec<Point> = if args.has("real-estate") {
        println!("generating {n} real-estate records (seed {seed})...");
        RealEstateGen::new(seed).generate(n)
    } else {
        let dims: usize = args.get_or("dims", 3)?;
        let dist = match args.get("dist").as_deref() {
            None | Some("independent") => Distribution::Independent,
            Some("correlated") => Distribution::Correlated,
            Some("anti") | Some("anti-correlated") => Distribution::AntiCorrelated,
            Some(other) => return Err(format!("unknown distribution: {other}").into()),
        };
        println!("generating {n} {} points, {dims} dimensions (seed {seed})...", dist.label());
        SyntheticGen::new(dist, dims, seed).generate(n)
    };
    args.finish()?;

    let table = Table::build(points, TableConfig::default())?;
    table.save(&out)?;
    println!("wrote {} points to {out}", table.len());
    Ok(())
}

/// `skycache info`
pub fn info(args: &Args) -> CmdResult {
    let table = load_table(args)?;
    args.finish()?;
    println!("points:     {}", table.len());
    println!("dimensions: {}", table.dims());
    let stats = DimStats::compute(table.all_points());
    println!("{:<6} {:>14} {:>14}", "dim", "mean", "std");
    for (i, s) in stats.iter().enumerate() {
        println!("{i:<6} {:>14.4} {:>14.4}", s.mean, s.std);
    }
    Ok(())
}

fn constraints_from_flag(args: &Args, dims: usize) -> Result<Constraints, Box<dyn Error>> {
    let spec = args.require("range")?;
    let ranges = parse_ranges(&spec)?;
    if ranges.len() != dims {
        return Err(
            format!("--range has {} dimensions but the dataset has {dims}", ranges.len()).into()
        );
    }
    Ok(Constraints::from_pairs(&ranges)?)
}

/// `skycache query`
pub fn query(args: &Args) -> CmdResult {
    let table = load_table(args)?;
    let c = constraints_from_flag(args, table.dims())?;
    let method = args.get("method").unwrap_or_else(|| "baseline".into());
    let limit: usize = args.get_or("limit", 20)?;
    args.finish()?;

    let t0 = Instant::now();
    let req = QueryRequest::new(c.clone());
    let result = match method.as_str() {
        "baseline" => BaselineExecutor::new(&table).execute(&req)?.into_result(),
        "bbs" => {
            println!("building BBS R-tree...");
            BbsExecutor::new(&table).execute(&req)?.into_result()
        }
        "cbcs" => CbcsExecutor::new(&table, CbcsConfig::default()).execute(&req)?.into_result(),
        other => return Err(format!("unknown method: {other}").into()),
    };
    let wall = t0.elapsed();

    println!(
        "skyline: {} points   (points read: {}, dominance tests: {}, \
         simulated+measured: {:.1?}, wall: {wall:.1?})",
        result.skyline.len(),
        result.stats.points_read,
        result.stats.dominance_tests,
        result.stats.stages.total(),
    );
    let mut sky = result.skyline;
    sky.sort_by(|a, b| a.coord_sum().partial_cmp(&b.coord_sum()).expect("NaN-free"));
    for p in sky.iter().take(limit) {
        let coords: Vec<String> = p.coords().iter().map(|c| format!("{c:.4}")).collect();
        println!("  ({})", coords.join(", "));
    }
    if sky.len() > limit {
        println!("  ... and {} more (raise --limit to see them)", sky.len() - limit);
    }
    Ok(())
}

fn strategy_from_flag(args: &Args) -> Result<SearchStrategy, Box<dyn Error>> {
    Ok(match args.get("strategy").as_deref() {
        None | Some("maxoverlapsp") => SearchStrategy::MaxOverlapSP,
        Some("random") => SearchStrategy::Random,
        Some("maxoverlap") => SearchStrategy::MaxOverlap,
        Some("prioritized1d") => SearchStrategy::Prioritized1D,
        Some("prioritizednd-std") => SearchStrategy::prioritized_nd_std(),
        Some("prioritizednd-bad") => SearchStrategy::prioritized_nd_bad(),
        Some("optimumdistance") => SearchStrategy::OptimumDistance,
        Some(other) => return Err(format!("unknown strategy: {other}").into()),
    })
}

fn cbcs_config(args: &Args) -> Result<CbcsConfig, Box<dyn Error>> {
    Ok(CbcsConfig {
        mpr: MprMode::Approximate { k: args.get_or("k", 1usize)? },
        strategy: strategy_from_flag(args)?,
        extra_items: args.get_or("extra-items", 0usize)?,
        seed: args.get_or("seed", 0xC0FFEE)?,
        ..Default::default()
    })
}

fn build_workload(args: &Args, table: &Table) -> Result<Vec<Constraints>, Box<dyn Error>> {
    let seed: u64 = args.get_or("seed", 17)?;
    let stats = DimStats::compute(table.all_points());
    let queries = if let Some(n) = args.get("independent") {
        let n: usize = n.parse().map_err(|_| "--independent expects a count")?;
        IndependentWorkload::new(stats).generate(n, seed)
    } else {
        let n: usize = args.get_or("interactive", 100usize)?;
        InteractiveWorkload::new(stats).generate(n, seed)
    };
    Ok(queries.queries().iter().map(|q| q.constraints.clone()).collect())
}

/// `skycache workload`
pub fn workload(args: &Args) -> CmdResult {
    let table = load_table(args)?;
    let queries = build_workload(args, &table)?;
    let config = cbcs_config(args)?;
    args.finish()?;

    let mut ex = CbcsExecutor::new(&table, config);
    let mut total_pts = 0u64;
    let mut total_time = 0.0f64;
    let mut hits = 0usize;
    println!("{:<6} {:>10} {:>10} {:>8} {:>18}", "query", "|skyline|", "pts read", "rq", "case");
    for (i, c) in queries.iter().enumerate() {
        let r = ex.execute(&QueryRequest::new(c.clone()))?;
        total_pts += r.stats.points_read;
        total_time += r.stats.stages.total().as_secs_f64();
        if r.stats.cache_hit {
            hits += 1;
        }
        println!(
            "{i:<6} {:>10} {:>10} {:>8} {:>18}",
            r.skyline.len(),
            r.stats.points_read,
            r.stats.range_queries_issued,
            r.stats.case.map_or("miss", |c| c.label()),
        );
    }
    let n = queries.len() as f64;
    println!(
        "\n{} queries: avg time {:.1}ms, avg points read {:.0}, hit rate {:.0}%",
        queries.len(),
        total_time / n * 1e3,
        total_pts as f64 / n,
        hits as f64 / n * 100.0,
    );
    Ok(())
}

/// `skycache compare`
pub fn compare(args: &Args) -> CmdResult {
    let table = load_table(args)?;
    let n: usize = args.get_or("queries", 50usize)?;
    let seed: u64 = args.get_or("seed", 17)?;
    let stats = DimStats::compute(table.all_points());
    let queries: Vec<Constraints> = InteractiveWorkload::new(stats)
        .generate(n, seed)
        .queries()
        .iter()
        .map(|q| q.constraints.clone())
        .collect();
    let config = cbcs_config(args)?;
    args.finish()?;

    println!("building BBS R-tree...");
    let mut methods: Vec<(&str, Box<dyn Executor>)> = vec![
        ("Baseline", Box::new(BaselineExecutor::new(&table))),
        ("BBS", Box::new(BbsExecutor::new(&table))),
        ("CBCS (aMPR)", Box::new(CbcsExecutor::new(&table, config))),
    ];

    println!("\n{:<14} {:>12} {:>12} {:>14}", "method", "avg time", "pts read", "dom. tests");
    let mut reference: Option<Vec<usize>> = None;
    for (name, ex) in &mut methods {
        let (mut time, mut pts, mut dom) = (0.0f64, 0u64, 0u64);
        let mut sizes = Vec::with_capacity(queries.len());
        for c in &queries {
            let r = ex.execute(&QueryRequest::new(c.clone()))?;
            time += r.stats.stages.total().as_secs_f64();
            pts += r.stats.points_read;
            dom += r.stats.dominance_tests;
            sizes.push(r.skyline.len());
        }
        // All methods must agree on every result cardinality.
        match &reference {
            None => reference = Some(sizes),
            Some(want) => {
                if *want != sizes {
                    return Err(format!("{name} disagrees with Baseline").into());
                }
            }
        }
        println!(
            "{name:<14} {:>10.1}ms {:>12.0} {:>14.0}",
            time / queries.len() as f64 * 1e3,
            pts as f64 / queries.len() as f64,
            dom as f64 / queries.len() as f64,
        );
    }
    println!("\n(all methods returned identical skyline cardinalities on all {n} queries)");
    Ok(())
}
