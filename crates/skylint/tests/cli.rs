//! End-to-end CLI tests: exit codes and output shapes of the `skylint`
//! binary over the fixture trees. Every semantic rule family has a
//! bad/clean tree pair here, and the two hard-error paths (malformed
//! annotations, unknown config keys) are pinned to exit code 2.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use skylint::rules::RULE_IDS;

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rel)
}

fn skylint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_skylint")).args(args).output().expect("run skylint")
}

/// Runs `check` over a fixture tree and returns (exit code, stdout, stderr).
fn check_tree(tree: &str) -> (Option<i32>, String, String) {
    let root = fixture(tree);
    let out = skylint(&["check", "--root", root.to_str().expect("utf-8 path")]);
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A bad tree must exit 1 and name `rule` in its findings.
fn assert_bad(tree: &str, rule: &str) -> String {
    let (code, stdout, stderr) = check_tree(tree);
    assert_eq!(code, Some(1), "{tree}: stdout: {stdout}stderr: {stderr}");
    assert!(stdout.contains(rule), "{tree}: expected a {rule} finding in:\n{stdout}");
    stdout
}

/// A clean tree must exit 0 with no findings.
fn assert_clean(tree: &str) {
    let (code, stdout, stderr) = check_tree(tree);
    assert_eq!(code, Some(0), "{tree}: stdout: {stdout}stderr: {stderr}");
    assert!(stdout.contains("clean"), "{tree}: {stdout}");
}

#[test]
fn check_exits_nonzero_on_the_bad_tree() {
    let (code, stdout, stderr) = check_tree("bad_tree");
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stdout.contains("no-panic-paths"), "{stdout}");
    assert!(stdout.contains("api-hygiene"), "{stdout}");
    assert!(stdout.contains("src/lib.rs"), "{stdout}");
}

#[test]
fn check_exits_zero_on_the_clean_tree() {
    assert_clean("clean_tree");
}

// ---------------------------------------------------------------------------
// Semantic rule families: one bad/clean tree pair each
// ---------------------------------------------------------------------------

#[test]
fn lock_order_cycle_tree_is_flagged() {
    let stdout = assert_bad("lock_cycle_bad", "lock-order");
    assert!(stdout.contains("cycle"), "expected a lock-cycle finding in:\n{stdout}");
    assert!(stdout.contains("read") && stdout.contains("write"), "{stdout}");
}

#[test]
fn lock_order_consistent_tree_is_clean() {
    assert_clean("lock_cycle_clean");
}

#[test]
fn transitive_panic_tree_is_flagged_at_the_public_api() {
    let stdout = assert_bad("panic_transitive_bad", "panic-reachability");
    // The finding lands on the public API and names the private chain.
    assert!(stdout.contains("`api`"), "{stdout}");
    assert!(stdout.contains("mid") && stdout.contains("deep"), "{stdout}");
}

#[test]
fn total_call_chain_tree_is_clean() {
    assert_clean("panic_transitive_clean");
}

#[test]
fn hot_path_allocation_tree_is_flagged_with_a_witness() {
    let stdout = assert_bad("hot_alloc_bad", "hot-path-alloc");
    assert!(stdout.contains("kernel"), "{stdout}");
    assert!(stdout.contains("stage"), "expected the witness path in:\n{stdout}");
}

#[test]
fn in_place_kernel_tree_is_clean() {
    assert_clean("hot_alloc_clean");
}

#[test]
fn stale_allow_tree_is_flagged() {
    let stdout = assert_bad("dead_allow_bad", "dead-allow");
    assert!(stdout.contains("no-panic-paths"), "{stdout}");
}

#[test]
fn exercised_allow_tree_is_clean() {
    assert_clean("dead_allow_clean");
}

#[test]
fn guard_span_tree_is_flagged_with_witness_chains() {
    let stdout = assert_bad("guard_span_bad", "guard-hold-span");
    // Direct expensive call under a read guard…
    assert!(stdout.contains("read guard"), "{stdout}");
    assert!(stdout.contains("`expensive_fetch`"), "{stdout}");
    // …and a transitive one under a write guard, with the chain named.
    assert!(stdout.contains("write guard"), "{stdout}");
    assert!(stdout.contains("`refresh` → `expensive_fetch`"), "{stdout}");
}

#[test]
fn copy_drop_compute_tree_is_clean() {
    assert_clean("guard_span_clean");
}

#[test]
fn capture_race_tree_is_flagged() {
    let stdout = assert_bad("capture_race_bad", "capture-race");
    assert!(stdout.contains("`count`"), "{stdout}");
    assert!(stdout.contains("spawn"), "{stdout}");
}

#[test]
fn synchronized_capture_tree_is_clean() {
    assert_clean("capture_race_clean");
}

#[test]
fn scattered_env_read_tree_is_flagged() {
    let stdout = assert_bad("env_read_bad", "env-read-confinement");
    // Both the path form and the macro form are findings; the pin
    // function itself is exempt.
    assert!(stdout.contains("`env::var`"), "{stdout}");
    assert!(stdout.contains("`env::option_env`"), "{stdout}");
    assert!(stdout.contains("pinned_mode"), "{stdout}");
    assert!(!stdout.contains("fn `pinned_mode`"), "{stdout}");
}

#[test]
fn pinned_env_read_tree_is_clean() {
    assert_clean("env_read_clean");
}

#[test]
fn unvalidated_decoded_length_tree_is_flagged() {
    let stdout = assert_bad("range_taint_bad", "range-taint");
    // The direct flow and the propagated one, each naming its origin.
    assert!(stdout.contains("receives `n`"), "{stdout}");
    assert!(stdout.contains("receives `padded`"), "{stdout}");
    assert!(stdout.contains("tainted by `get_u32_le`"), "{stdout}");
}

#[test]
fn validated_decoded_length_tree_is_clean() {
    assert_clean("range_taint_clean");
}

#[test]
fn raw_sync_primitive_tree_is_flagged() {
    let stdout = assert_bad("sync_confine_bad", "sync-confinement");
    // All three forms: parking_lot, std::sync and std::thread.
    assert!(stdout.contains("parking_lot"), "{stdout}");
    assert!(stdout.contains("std::sync::Mutex"), "{stdout}");
    assert!(stdout.contains("skycheck::sync::thread"), "{stdout}");
    // The Arc import and the capability probe stay unflagged.
    assert!(!stdout.contains("available_parallelism"), "{stdout}");
    assert!(!stdout.contains("Arc"), "{stdout}");
}

#[test]
fn shimmed_sync_tree_is_clean() {
    assert_clean("sync_confine_clean");
}

#[test]
fn escaping_lock_guard_tree_is_flagged() {
    let stdout = assert_bad("sync_confine_guard_bad", "sync-confinement");
    // All three escaping signatures, including the pub(crate) one and
    // the multi-line one, each naming the guard type.
    assert!(stdout.contains("`pub fn read_handle`"), "{stdout}");
    assert!(stdout.contains("`pub fn write_handle`"), "{stdout}");
    assert!(stdout.contains("`pub fn side_handle`"), "{stdout}");
    assert!(stdout.contains("RwLockReadGuard"), "{stdout}");
    assert!(stdout.contains("RwLockWriteGuard"), "{stdout}");
    assert!(stdout.contains("MutexGuard"), "{stdout}");
    // The closure API, the private helper and the value read stay clean.
    assert!(!stdout.contains("with_read"), "{stdout}");
    assert!(!stdout.contains("`pub fn value`"), "{stdout}");
}

#[test]
fn sealed_guard_tree_is_clean() {
    assert_clean("sync_confine_guard_clean");
}

#[test]
fn relaxed_cross_thread_static_tree_is_flagged() {
    let stdout = assert_bad("atomic_ordering_bad", "atomic-ordering");
    // Both sides are findings, each carrying the thread witness path.
    assert!(stdout.contains("`ACTIVE`"), "{stdout}");
    assert!(stdout.contains("worker_lane → current"), "{stdout}");
    assert!(stdout.contains("Ordering::Release"), "{stdout}");
    assert!(stdout.contains("Ordering::Acquire"), "{stdout}");
}

#[test]
fn release_acquire_static_tree_is_clean() {
    // Release/Acquire on the pin; Relaxed only on the lane-local tally.
    assert_clean("atomic_ordering_clean");
}

#[test]
fn recursive_shared_reads_tree_is_clean() {
    // Shared → shared re-entry on one lock is safe under the shim RwLock.
    assert_clean("recursive_read_clean");
}

// ---------------------------------------------------------------------------
// --fix-dead-allows: dry-run previews, the real thing rewrites
// ---------------------------------------------------------------------------

/// Copies a fixture tree into the target tmpdir so the fixer can write.
fn scratch_copy(tree: &str, dest_name: &str) -> PathBuf {
    let src = fixture(tree);
    let dest = Path::new(env!("CARGO_TARGET_TMPDIR")).join(dest_name);
    std::fs::remove_dir_all(&dest).ok();
    std::fs::create_dir_all(dest.join("src")).expect("mkdir");
    for rel in ["skylint.toml", "src/lib.rs"] {
        std::fs::copy(src.join(rel), dest.join(rel)).expect("copy fixture file");
    }
    dest
}

#[test]
fn fix_dead_allows_dry_run_prints_a_diff_and_writes_nothing() {
    let tree = scratch_copy("dead_allow_bad", "fix_dry_run");
    let before = std::fs::read_to_string(tree.join("src/lib.rs")).expect("read");
    let out = skylint(&[
        "check",
        "--root",
        tree.to_str().expect("utf-8 path"),
        "--fix-dead-allows",
        "--dry-run",
    ]);
    // Dry-run keeps check semantics: the dead-allow still counts.
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("- "), "expected a -/+ diff in:\n{stdout}");
    assert!(stdout.contains("skylint: allow(no-panic-paths)"), "{stdout}");
    let after = std::fs::read_to_string(tree.join("src/lib.rs")).expect("read");
    assert_eq!(before, after, "--dry-run must not modify the tree");
}

#[test]
fn fix_dead_allows_rewrites_the_tree_to_clean() {
    let tree = scratch_copy("dead_allow_bad", "fix_apply");
    let root = tree.to_str().expect("utf-8 path");
    let out = skylint(&["check", "--root", root, "--fix-dead-allows"]);
    // Repaired dead-allows no longer count as violations.
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("removed 1 stale allow"), "{stdout}");
    let after = std::fs::read_to_string(tree.join("src/lib.rs")).expect("read");
    assert!(!after.contains("skylint: allow"), "annotation must be gone:\n{after}");
    // The rewritten tree now checks clean end to end.
    let recheck = skylint(&["check", "--root", root]);
    assert_eq!(recheck.status.code(), Some(0));
}

#[test]
fn dry_run_without_fix_flag_is_a_usage_error() {
    let root = fixture("clean_tree");
    let out = skylint(&["check", "--root", root.to_str().expect("utf-8 path"), "--dry-run"]);
    assert_eq!(out.status.code(), Some(2));
}

// ---------------------------------------------------------------------------
// Hard errors: exit 2 before any findings are produced
// ---------------------------------------------------------------------------

#[test]
fn malformed_annotation_is_a_hard_error() {
    let (code, stdout, stderr) = check_tree("malformed_tree");
    assert_eq!(code, Some(2), "stdout: {stdout}stderr: {stderr}");
    assert!(stderr.contains("made-up-rule"), "{stderr}");
    assert!(stdout.is_empty(), "no findings expected on a policy error: {stdout}");
}

#[test]
fn unknown_config_section_is_a_hard_error() {
    let (code, stdout, stderr) = check_tree("bad_config_tree");
    assert_eq!(code, Some(2), "stdout: {stdout}stderr: {stderr}");
    assert!(stderr.contains("frobnicate"), "{stderr}");
}

// ---------------------------------------------------------------------------
// Report formats
// ---------------------------------------------------------------------------

#[test]
fn json_output_is_a_versioned_report_object() {
    let root = fixture("bad_tree");
    let out = skylint(&["check", "--json", "--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"schema\": \"skylint-report/3\""), "{stdout}");
    assert!(stdout.contains("\"rule\""), "{stdout}");
    assert!(stdout.contains("\"line\""), "{stdout}");
    assert!(stdout.contains("\"functions_analyzed\""), "{stdout}");
}

#[test]
fn json_report_matches_the_golden_file() {
    let root = fixture("bad_tree");
    let out = skylint(&["check", "--json", "--root", root.to_str().expect("utf-8 path")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let golden = include_str!("golden/bad_tree.json");
    assert_eq!(
        stdout, golden,
        "the --json report drifted from tests/golden/bad_tree.json; \
         if the schema changed intentionally, bump REPORT_SCHEMA and \
         regenerate the golden file"
    );
}

#[test]
fn bench_out_writes_a_record() {
    let root = fixture("clean_tree");
    let bench = Path::new(env!("CARGO_TARGET_TMPDIR")).join("BENCH_skylint_test.json");
    let out = skylint(&[
        "check",
        "--quiet",
        "--root",
        root.to_str().expect("utf-8 path"),
        "--bench-out",
        bench.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let record = std::fs::read_to_string(&bench).expect("bench record written");
    assert!(record.contains("\"skylint-bench/3\""), "{record}");
    assert!(record.contains("\"files_scanned\""), "{record}");
    assert!(record.contains("\"wall_ms\""), "{record}");
    assert!(record.contains("\"findings_per_rule\""), "{record}");
}

#[test]
fn explain_and_rules_subcommands() {
    let rules = skylint(&["rules"]);
    assert_eq!(rules.status.code(), Some(0));
    let listed = String::from_utf8_lossy(&rules.stdout);
    for rule in RULE_IDS {
        assert!(listed.contains(rule), "{listed}");
        let explained = skylint(&["explain", rule]);
        assert_eq!(explained.status.code(), Some(0), "explain {rule}");
        assert!(!explained.stdout.is_empty(), "explain {rule} printed nothing");
    }
    assert_eq!(skylint(&["explain", "bogus"]).status.code(), Some(2));
    assert_eq!(skylint(&["frobnicate"]).status.code(), Some(2));
}
