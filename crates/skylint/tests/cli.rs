//! End-to-end CLI tests: exit codes and output shapes of the `skylint`
//! binary over the fixture trees.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rel)
}

fn skylint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_skylint")).args(args).output().expect("run skylint")
}

#[test]
fn check_exits_nonzero_on_the_bad_tree() {
    let root = fixture("bad_tree");
    let out = skylint(&["check", "--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no-panic-paths"), "{stdout}");
    assert!(stdout.contains("api-hygiene"), "{stdout}");
    assert!(stdout.contains("src/lib.rs"), "{stdout}");
}

#[test]
fn check_exits_zero_on_the_clean_tree() {
    let root = fixture("clean_tree");
    let out = skylint(&["check", "--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn json_output_lists_findings() {
    let root = fixture("bad_tree");
    let out = skylint(&["check", "--json", "--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.contains("\"rule\""), "{stdout}");
    assert!(stdout.contains("\"line\""), "{stdout}");
}

#[test]
fn bench_out_writes_a_record() {
    let root = fixture("clean_tree");
    let bench = Path::new(env!("CARGO_TARGET_TMPDIR")).join("BENCH_skylint_test.json");
    let out = skylint(&[
        "check",
        "--quiet",
        "--root",
        root.to_str().expect("utf-8 path"),
        "--bench-out",
        bench.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let record = std::fs::read_to_string(&bench).expect("bench record written");
    assert!(record.contains("\"files_scanned\""), "{record}");
    assert!(record.contains("\"wall_ms\""), "{record}");
}

#[test]
fn explain_and_rules_subcommands() {
    let rules = skylint(&["rules"]);
    assert_eq!(rules.status.code(), Some(0));
    let listed = String::from_utf8_lossy(&rules.stdout);
    for rule in ["no-panic-paths", "determinism", "concurrency-hygiene", "api-hygiene"] {
        assert!(listed.contains(rule), "{listed}");
        let explained = skylint(&["explain", rule]);
        assert_eq!(explained.status.code(), Some(0), "explain {rule}");
        assert!(!explained.stdout.is_empty(), "explain {rule} printed nothing");
    }
    assert_eq!(skylint(&["explain", "bogus"]).status.code(), Some(2));
    assert_eq!(skylint(&["frobnicate"]).status.code(), Some(2));
}
