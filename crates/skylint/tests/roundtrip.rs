//! Parser round-trip selftest: lex → parse → re-emit must reproduce every
//! `.rs` file in the workspace token-for-token. This is the property that
//! makes the AST trustworthy — a parse error that silently dropped a span
//! would silently exempt that span from every semantic rule.

use std::path::{Path, PathBuf};

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == ".git" {
                continue;
            }
            collect(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn parser_reemits_every_workspace_file_losslessly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    collect(&root, &mut files);
    files.sort();
    assert!(files.len() > 80, "suspiciously few .rs files found ({})", files.len());

    for path in &files {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let tokens = skylint::lexer::lex(&src);
        let file = skylint::parser::parse(&tokens);
        let order = skylint::parser::reemit(&file);

        let lost = order.len() != tokens.len()
            || order.iter().enumerate().any(|(expect, &got)| got != expect);
        if lost {
            let first_bad = order
                .iter()
                .enumerate()
                .find(|&(expect, &got)| got != expect)
                .map(|(expect, _)| expect)
                .unwrap_or(order.len().min(tokens.len()));
            panic!(
                "lossy parse of {}: {} tokens in, {} re-emitted, first divergence at \
                 token {} (line {})",
                path.display(),
                tokens.len(),
                order.len(),
                first_bad,
                tokens.get(first_bad).map(|t| t.line).unwrap_or(0),
            );
        }
    }
}
