//! Fixture tests: every rule fires on its known-bad fixture and stays
//! silent on the known-clean ones.
//!
//! Fixtures live under `tests/fixtures/` and are scanned in memory with
//! [`skylint::scan_source`] under a synthetic policy whose path lists
//! point at a fake `lib/src/` tree, so the tests are independent of the
//! real repository policy in `skylint.toml`.

use skylint::{scan_source, Finding, Policy};

/// Policy for the fake `lib/` crate the fixtures pretend to live in.
fn policy() -> Policy {
    Policy {
        include: vec!["lib".into()],
        exclude: vec![],
        library_paths: vec!["lib".into()],
        index_strict_files: vec!["lib/src/strict.rs".into()],
        time_idents: vec!["Instant".into(), "SystemTime".into()],
        hash_idents: vec!["HashMap".into(), "HashSet".into()],
        float_files: vec!["lib/src/geom.rs".into()],
        float_fields: vec!["lo".into(), "hi".into()],
        spawn_allowed: vec!["lib/src/par.rs".into()],
        lock_files: vec!["lib/src/shared.rs".into()],
        lock_phases: vec!["read".into(), "write".into()],
        required_headers: vec!["#![warn(missing_docs)]".into()],
        doc_paths: vec!["lib/src".into()],
        lock_graph_files: vec!["lib/src/shared.rs".into()],
        panic_sources: vec!["unwrap".into(), "expect".into(), "panic-macro".into()],
        alloc_kernels: vec!["kernel".into()],
        alloc_scope_files: vec!["lib/src".into()],
        alloc_calls: vec![
            "Vec::new".into(),
            "Box::new".into(),
            "push".into(),
            "clone".into(),
            "to_vec".into(),
            "to_owned".into(),
            "to_string".into(),
            "collect".into(),
            "extend".into(),
        ],
        alloc_macros: vec!["vec".into(), "format".into()],
        recorder_idents: vec![
            "record_span".into(),
            "add_counter".into(),
            "set_gauge".into(),
            "observe_value".into(),
            "record_into".into(),
        ],
        guard_span_files: vec!["lib/src".into()],
        expensive_calls: vec!["expensive_fetch".into()],
        expensive_exempt: vec![],
        sync_types: vec!["Mutex".into(), "RwLock".into(), "Atomic".into(), "mpsc".into()],
        env_allowed_fns: vec!["pinned_mode".into()],
        env_allowed_files: vec![],
        taint_files: vec!["lib/src".into()],
        taint_sources: vec!["get_u32_le".into(), "parse".into()],
        taint_sinks: vec!["with_capacity".into(), "locate".into()],
        taint_validators: vec!["clamped".into()],
        sync_confine_files: vec!["lib/src/confined.rs".into()],
        atomic_files: vec!["lib/src".into()],
    }
}

fn findings(path: &str, src: &str) -> Vec<Finding> {
    scan_source(path, src, &policy()).expect("fixture annotations are well-formed")
}

/// Asserts every finding carries `rule` and that there are `count` of them.
fn assert_only(found: &[Finding], rule: &str, count: usize) {
    let pretty: Vec<String> =
        found.iter().map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message)).collect();
    assert_eq!(found.len(), count, "expected {count} findings, got:\n{}", pretty.join("\n"));
    for f in found {
        assert_eq!(f.rule, rule, "unexpected rule in:\n{}", pretty.join("\n"));
    }
}

// ---------------------------------------------------------------------------
// no-panic-paths
// ---------------------------------------------------------------------------

#[test]
fn bad_panics_fixture_is_flagged() {
    let found = findings("lib/src/panics.rs", include_str!("fixtures/bad/panics.rs"));
    // unwrap + expect + todo! + panic!
    assert_only(&found, "no-panic-paths", 4);
}

#[test]
fn bad_indexing_fixture_is_flagged_only_in_strict_files() {
    let src = include_str!("fixtures/bad/indexing.rs");
    let strict = findings("lib/src/strict.rs", src);
    assert_only(&strict, "no-panic-paths", 1);
    assert!(strict[0].message.contains("bracket indexing"), "{:?}", strict[0]);
    // The same source outside the index-strict list is clean.
    assert_only(&findings("lib/src/other.rs", src), "no-panic-paths", 0);
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

#[test]
fn bad_wall_clock_fixture_is_flagged() {
    let found = findings("lib/src/timing.rs", include_str!("fixtures/bad/wall_clock.rs"));
    assert!(!found.is_empty());
    assert!(found.iter().all(|f| f.rule == "determinism"), "{found:?}");
    assert!(found.iter().any(|f| f.message.contains("wall clock")), "{found:?}");
}

#[test]
fn bad_hash_collections_fixture_is_flagged() {
    let found = findings("lib/src/dedup.rs", include_str!("fixtures/bad/hash_collections.rs"));
    // use-line HashMap + HashSet, the two type ascriptions, HashMap::new.
    assert_only(&found, "determinism", 5);
}

#[test]
fn bad_float_eq_fixture_is_flagged() {
    let found = findings("lib/src/geom.rs", include_str!("fixtures/bad/float_eq.rs"));
    // lo == hi, lo == 0.0, hi != 1.0.
    assert_only(&found, "determinism", 3);
    // Outside the float-strict list, raw float equality is not checked.
    assert_only(
        &findings("lib/src/elsewhere.rs", include_str!("fixtures/bad/float_eq.rs")),
        "determinism",
        0,
    );
}

// ---------------------------------------------------------------------------
// concurrency-hygiene
// ---------------------------------------------------------------------------

#[test]
fn bad_spawn_fixture_is_flagged_outside_the_lanes() {
    let src = include_str!("fixtures/bad/spawn.rs");
    let found = findings("lib/src/spawn.rs", src);
    assert_only(&found, "concurrency-hygiene", 1);
    // The sanctioned lane may spawn.
    assert_only(&findings("lib/src/par.rs", src), "concurrency-hygiene", 0);
}

#[test]
fn bad_unsafe_fixture_is_flagged() {
    let found = findings("lib/src/raw.rs", include_str!("fixtures/bad/unsafe_block.rs"));
    assert_only(&found, "concurrency-hygiene", 1);
    assert!(found[0].message.contains("SAFETY"), "{:?}", found[0]);
}

#[test]
fn bad_lock_order_fixture_is_flagged() {
    let found = findings("lib/src/shared.rs", include_str!("fixtures/bad/lock_order.rs"));
    // Unannotated acquisition, undeclared phase, write-before-read.
    assert_only(&found, "concurrency-hygiene", 3);
    assert!(found.iter().any(|f| f.message.contains("without a `// lock-order:")), "{found:?}");
    assert!(found.iter().any(|f| f.message.contains("not declared")), "{found:?}");
    assert!(found.iter().any(|f| f.message.contains("violates the declared order")), "{found:?}");
}

// ---------------------------------------------------------------------------
// api-hygiene
// ---------------------------------------------------------------------------

#[test]
fn bad_crate_root_fixture_is_flagged() {
    let found = findings("lib/src/lib.rs", include_str!("fixtures/bad/crate_root.rs"));
    // Missing required header + missing `//!` crate docs.
    assert_only(&found, "api-hygiene", 2);
}

#[test]
fn bad_undocumented_fixture_is_flagged() {
    let found = findings("lib/src/api.rs", include_str!("fixtures/bad/undocumented.rs"));
    // pub fn, pub struct, pub const — each undocumented.
    assert_only(&found, "api-hygiene", 3);
}

// ---------------------------------------------------------------------------
// Clean fixtures and exemptions
// ---------------------------------------------------------------------------

#[test]
fn allow_annotations_suppress_findings() {
    let found = findings("lib/src/allowed.rs", include_str!("fixtures/clean/allowed.rs"));
    assert_only(&found, "-", 0);
}

#[test]
fn cfg_test_regions_are_exempt() {
    let found = findings("lib/src/tested.rs", include_str!("fixtures/clean/test_region.rs"));
    assert_only(&found, "-", 0);
}

#[test]
fn float_field_method_calls_are_not_float_equality() {
    // Regression for the `hi.len() != lo.len()` false positive: a
    // float-field identifier followed by `.` is an access, not a value.
    let found = findings("lib/src/geom.rs", include_str!("fixtures/clean/geom.rs"));
    assert_only(&found, "-", 0);
}

#[test]
fn ordered_annotated_locks_are_clean() {
    let found = findings("lib/src/shared.rs", include_str!("fixtures/clean/shared.rs"));
    assert_only(&found, "-", 0);
}

#[test]
fn test_paths_are_exempt_from_library_rules() {
    // The worst fixture, relocated under tests/: nothing fires.
    let found = findings("lib/tests/panics.rs", include_str!("fixtures/bad/panics.rs"));
    assert_only(&found, "-", 0);
}

#[test]
fn recorder_calls_reachable_from_kernels_are_flagged() {
    // `kernel` → `helper` → `rec.record_span(...)`: observability leaked
    // into the kernel's reachable call tree.
    let src = r#"//! Fixture.
/// Kernel.
pub fn kernel(rec: &mut R, xs: &[f64]) -> f64 {
    helper(rec, xs)
}

fn helper(rec: &mut R, xs: &[f64]) -> f64 {
    rec.record_span(xs.len());
    0.0
}
"#;
    let found = findings("lib/src/kern.rs", src);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, "hot-path-alloc");
    assert!(found[0].message.contains("record_span"), "{}", found[0].message);
    assert!(found[0].message.contains("kernel"), "{}", found[0].message);
}

#[test]
fn recorder_calls_outside_kernel_reach_are_clean() {
    // The same Recorder call in a function the kernels never reach is
    // the engine's job and must not fire.
    let src = r#"//! Fixture.
/// Kernel: allocation-free and recorder-free.
pub fn kernel(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Engine-side publication — out of the kernels' call tree.
pub fn publish(rec: &mut R, n: u64) {
    rec.add_counter(n);
}
"#;
    let found = findings("lib/src/kern.rs", src);
    assert_only(&found, "-", 0);
}

// ---------------------------------------------------------------------------
// guard-hold-span
// ---------------------------------------------------------------------------

#[test]
fn expensive_call_under_live_guard_is_flagged_with_witness() {
    let src = r#"//! Fixture.
/// Designated expensive call.
pub fn expensive_fetch() -> u64 {
    42
}

/// Indirection the fixpoint must see through.
pub fn refresh() -> u64 {
    expensive_fetch()
}

/// BAD: the read guard on `lock` is live across the transitive call.
pub fn fetch_under_guard(lock: &L) -> u64 {
    let g = lock.read();
    let v = refresh();
    drop(g);
    v
}
"#;
    let found = findings("lib/src/store.rs", src);
    assert_only(&found, "guard-hold-span", 1);
    assert!(found[0].message.contains("read guard"), "{}", found[0].message);
    assert!(found[0].message.contains("`refresh` → `expensive_fetch`"), "{}", found[0].message);
}

#[test]
fn expensive_call_after_guard_drop_is_clean() {
    let src = r#"//! Fixture.
/// Designated expensive call.
pub fn expensive_fetch() -> u64 {
    42
}

/// Clean: the guard dies at `drop` before the expensive call.
pub fn drop_then_fetch(lock: &L) -> u64 {
    let g = lock.read();
    drop(g);
    expensive_fetch()
}
"#;
    let found = findings("lib/src/store.rs", src);
    assert_only(&found, "-", 0);
}

// ---------------------------------------------------------------------------
// capture-race
// ---------------------------------------------------------------------------

#[test]
fn mutated_capture_read_after_spawn_is_flagged() {
    let src = r#"//! Fixture.
/// Spawn stand-in with the callable shape the analyzer keys on.
pub fn spawn<F: FnOnce()>(f: F) {
    f();
}

/// BAD: `count` is mutated inside the spawned closure and read after.
pub fn tally() -> u64 {
    let mut count = 0u64;
    spawn(|| {
        count += 1;
    });
    count
}
"#;
    let found = findings("lib/src/par.rs", src);
    assert_only(&found, "capture-race", 1);
    assert!(found[0].message.contains("count"), "{}", found[0].message);
}

#[test]
fn synchronized_capture_is_clean() {
    let src = r#"//! Fixture.
/// Spawn stand-in with the callable shape the analyzer keys on.
pub fn spawn<F: FnOnce()>(f: F) {
    f();
}

/// Clean: the captured accumulator is a declared sync type.
pub fn tally_synced() -> u64 {
    let count = AtomicU64::new(0);
    spawn(|| {
        count += 1;
    });
    count
}
"#;
    let found = findings("lib/src/par.rs", src);
    assert_only(&found, "-", 0);
}

// ---------------------------------------------------------------------------
// env-read-confinement
// ---------------------------------------------------------------------------

#[test]
fn scattered_env_read_is_flagged() {
    let src = r#"//! Fixture.
/// BAD: ambient environment read outside the sanctioned accessor.
pub fn scattered() -> Option<String> {
    std::env::var("MODE").ok()
}
"#;
    let found = findings("lib/src/config.rs", src);
    assert_only(&found, "env-read-confinement", 1);
    assert!(found[0].message.contains("scattered"), "{}", found[0].message);
}

#[test]
fn env_read_inside_the_allowed_fn_is_clean() {
    let src = r#"//! Fixture.
/// The one sanctioned ambient read.
pub fn pinned_mode() -> Option<String> {
    std::env::var("MODE").ok()
}
"#;
    let found = findings("lib/src/config.rs", src);
    assert_only(&found, "-", 0);
}

// ---------------------------------------------------------------------------
// range-taint
// ---------------------------------------------------------------------------

#[test]
fn unvalidated_decoded_length_reaching_a_sink_is_flagged() {
    let src = r#"//! Fixture.
/// BAD: the decoded `n` reaches the allocation sink unvalidated.
pub fn load(cur: &mut Cursor) -> Vec<u8> {
    let n = cur.get_u32_le() as usize;
    Vec::with_capacity(n)
}
"#;
    let found = findings("lib/src/decode.rs", src);
    assert_only(&found, "range-taint", 1);
    assert!(found[0].message.contains("get_u32_le"), "{}", found[0].message);
}

#[test]
fn length_validated_at_birth_is_clean() {
    let src = r#"//! Fixture.
/// Clean: the decode statement itself passes the validator.
pub fn load(cur: &mut Cursor) -> Vec<u8> {
    let n = clamped(cur.get_u32_le() as usize);
    Vec::with_capacity(n)
}
"#;
    let found = findings("lib/src/decode.rs", src);
    assert_only(&found, "-", 0);
}

// ---------------------------------------------------------------------------
// sync-confinement
// ---------------------------------------------------------------------------

#[test]
fn raw_primitives_in_a_confined_file_are_flagged() {
    let src = r#"//! Fixture.
use parking_lot::Mutex;
use std::sync::RwLock;

/// BAD: an unshimmed thread operation.
pub fn pause() {
    std::thread::yield_now();
}

/// Allowed: a pure capability probe.
pub fn lanes() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Allowed: `Arc` carries no schedule point.
pub fn share(v: u64) -> std::sync::Arc<u64> {
    std::sync::Arc::new(v)
}
"#;
    // The parking_lot import, the std::sync::RwLock import and the
    // yield_now call; Arc and available_parallelism stay clean.
    let found = findings("lib/src/confined.rs", src);
    assert_only(&found, "sync-confinement", 3);
    // The same source outside the confined list is not checked.
    assert_only(&findings("lib/src/free.rs", src), "sync-confinement", 0);
}

// ---------------------------------------------------------------------------
// atomic-ordering
// ---------------------------------------------------------------------------

#[test]
fn relaxed_cross_thread_static_is_flagged_on_both_sides() {
    let src = r#"//! Fixture (lives in the spawn lane, so accesses are threaded).
use std::sync::atomic::{AtomicU8, Ordering};

static PIN: AtomicU8 = AtomicU8::new(0);

/// BAD: relaxed publication.
pub fn set_pin(v: u8) {
    PIN.store(v, Ordering::Relaxed);
}

/// BAD: relaxed observation.
pub fn get_pin() -> u8 {
    PIN.load(Ordering::Relaxed)
}
"#;
    let found = findings("lib/src/par.rs", src);
    assert_only(&found, "atomic-ordering", 2);
    assert!(found.iter().any(|f| f.message.contains("Ordering::Release")), "{found:?}");
    assert!(found.iter().any(|f| f.message.contains("Ordering::Acquire")), "{found:?}");
    assert!(found.iter().all(|f| f.message.contains("thread witness")), "{found:?}");
}

#[test]
fn release_acquire_and_single_sided_statics_are_clean() {
    let src = r#"//! Fixture.
use std::sync::atomic::{AtomicU8, AtomicU64, Ordering};

static PIN: AtomicU8 = AtomicU8::new(0);
static PROBES: AtomicU64 = AtomicU64::new(0);

/// Clean: release publication.
pub fn set_pin(v: u8) {
    PIN.store(v, Ordering::Release);
}

/// Clean: acquire observation; the relaxed load below is single-sided
/// (PROBES is never stored to), so it cannot race a publication.
pub fn get_pin() -> u8 {
    let _ = PROBES.load(Ordering::Relaxed);
    PIN.load(Ordering::Acquire)
}
"#;
    let found = findings("lib/src/par.rs", src);
    assert_only(&found, "-", 0);
}
