//! Self-test: the repository must scan clean under its own committed
//! policy. Running inside `cargo test` makes lint cleanliness part of the
//! tier-1 gate, not just a separate CI step.

use std::path::Path;

#[test]
fn repository_is_skylint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_src = std::fs::read_to_string(root.join("skylint.toml")).expect("read skylint.toml");
    let cfg = skylint::Config::parse(&cfg_src).expect("parse skylint.toml");
    let config_errors = skylint::engine::validate_config(&cfg);
    assert!(
        config_errors.is_empty(),
        "skylint.toml failed strict validation:\n{}",
        config_errors.join("\n")
    );
    let policy = skylint::Policy::from_config(&cfg);

    let outcome = skylint::scan(&root, &policy).expect("scan repository");
    assert!(
        outcome.files_scanned > 50,
        "suspiciously few files scanned ({}) — is the include list broken?",
        outcome.files_scanned
    );

    let report: Vec<String> = outcome
        .findings
        .iter()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        outcome.findings.is_empty(),
        "the tree has skylint violations — run `cargo run -p skylint -- check`:\n{}",
        report.join("\n")
    );
}
