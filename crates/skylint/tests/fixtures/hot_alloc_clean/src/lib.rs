//! Hot-path-alloc clean fixture: the designated kernel folds in place,
//! and the allocating staging helper exists but is not reachable from
//! the kernel — reachability scoping, not file scoping, decides.
//! `skylint check` must exit 0.

/// The designated allocation-free kernel: a plain in-place fold.
pub fn kernel(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Cold-path staging helper; allocates freely because [`kernel`] never
/// calls it.
pub fn assemble(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}
