//! Range-taint bad fixture: decoded lengths flow into allocation sizes
//! without passing the designated validator, both directly and through
//! a derived binding. `skylint check` must exit 1 with `range-taint`
//! findings.

/// Byte-cursor stand-in with the decoder shape the analyzer keys on.
pub struct Cursor(u32);

impl Cursor {
    /// Decodes an untrusted little-endian length.
    pub fn get_u32_le(&mut self) -> u32 {
        self.0
    }
}

/// BAD: the decoded `n` reaches `Vec::with_capacity` unvalidated.
pub fn load(cur: &mut Cursor) -> Vec<u8> {
    let n = cur.get_u32_le() as usize;
    Vec::with_capacity(n)
}

/// BAD: taint propagates through the derived `padded` binding into the
/// allocation.
pub fn load_padded(cur: &mut Cursor) -> Vec<u8> {
    let n = cur.get_u32_le() as usize;
    let padded = n + 8;
    Vec::with_capacity(padded)
}
