//! Capture-race clean fixture: spawn closures either mutate bindings
//! declared with a synchronization type or touch nothing the spawner
//! reads afterwards. `skylint check` must exit 0.

use std::sync::atomic::{AtomicU64, Ordering};

/// Stand-in spawn with the API shape the analyzer keys on.
pub fn spawn<F: FnOnce()>(f: F) {
    f();
}

/// Adds one through a mutable borrow.
pub fn bump(c: &mut AtomicU64) {
    *c.get_mut() += 1;
}

/// Clean: the captured accumulator's declaration names an Atomic —
/// cross-thread mutation is sanctioned by the type.
pub fn tally_synced() -> u64 {
    let mut count = AtomicU64::new(0);
    spawn(|| {
        bump(&mut count);
    });
    count.load(Ordering::Relaxed)
}

/// Clean: the closure mutates its own local; nothing escapes to the
/// spawner.
pub fn local_only() {
    spawn(|| {
        let mut acc = 0u64;
        acc += 1;
        let _ = acc;
    });
}

/// Clean: the captured binding is mutated but never read again after
/// the closure body.
pub fn fire_and_forget() {
    let mut scratch = 0u64;
    spawn(move || {
        scratch += 1;
    });
}
