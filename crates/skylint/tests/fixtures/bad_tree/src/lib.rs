// A crate root that violates several policies at once: no `//!` docs,
// no lint headers, an undocumented public item, and a hidden panic path.

pub fn boom(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}
