//! Capture-race bad fixture: a closure handed to `spawn` mutates a
//! plainly-captured binding the spawner reads again afterwards — the
//! classic lost-update shape. `skylint check` must exit 1 with a
//! `capture-race` finding.

/// Stand-in spawn with the API shape the analyzer keys on.
pub fn spawn<F: FnOnce()>(f: F) {
    f();
}

/// BAD: `count` is captured, mutated inside the spawned closure, and
/// read again after the spawn with no synchronization type anywhere in
/// its declaration.
pub fn tally() -> u64 {
    let mut count = 0u64;
    spawn(|| {
        count += 1;
    });
    count
}
