//! Lock-order clean fixture: every function acquires `a` strictly before
//! `b`, reads never upgrade to writes while held, and short-lived guards
//! are chained temporaries that drop at the end of their statement.

/// Toy lock with a `parking_lot`-style guardless API.
pub struct Lock(u64);

impl Lock {
    /// Shared acquisition.
    pub fn read(&self) -> u64 {
        self.0
    }

    /// Exclusive acquisition.
    pub fn write(&self) -> u64 {
        self.0
    }
}

/// Two locks with the documented order `a` before `b`.
pub struct Pair {
    a: Lock,
    b: Lock,
}

impl Pair {
    /// Reads both locks in the documented order.
    pub fn sum(&self) -> u64 {
        let ga = self.a.read(); // lock-order: read
        let gb = self.b.read(); // lock-order: read
        ga + gb
    }

    /// Writes both locks in the same documented order.
    pub fn bump(&self) -> u64 {
        let ga = self.a.write(); // lock-order: write
        let gb = self.b.write(); // lock-order: write
        ga + gb
    }

    /// A chained temporary guard: dropped before the next statement, so
    /// the later `b`-then-`a`-shaped sequence holds nothing across it.
    pub fn peek(&self) -> u64 {
        let late = self.b.read().min(9); // lock-order: read
        let early = self.a.read(); // lock-order: read
        late + early
    }
}
