//! Malformed-annotation fixture: the allow below names a rule that does
//! not exist, which is a policy hard error — `skylint check` must exit 2
//! without producing findings.

/// Identity; the annotation above the body is the defect.
pub fn id(x: u64) -> u64 {
    // skylint: allow(made-up-rule) — typo'd rule name.
    x
}
