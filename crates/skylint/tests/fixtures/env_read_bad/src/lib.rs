//! Env-read-confinement bad fixture: ambient environment reads outside
//! the designated pin function, in both path and macro form.
//! `skylint check` must exit 1 with `env-read-confinement` findings.

/// The designated pin — the one legal ambient read (see skylint.toml).
pub fn pinned_mode() -> Option<String> {
    std::env::var("FIXTURE_MODE").ok()
}

/// BAD: a scattered `env::var` read outside the pin function.
pub fn scattered() -> String {
    std::env::var("FIXTURE_MODE").unwrap_or_default()
}

/// BAD: the macro form reads ambient state too.
pub fn compiled_in() -> Option<&'static str> {
    option_env!("FIXTURE_MODE")
}
