//! Panic-reachability bad fixture: the panic site is two private frames
//! below the public API, so only whole-program propagation can see it.
//! `skylint check` must exit 1 with a `panic-reachability` finding on
//! [`api`] — not on the private helpers.

/// Public entry point; can panic two calls down in [`deep`].
pub fn api(xs: &[u32]) -> u32 {
    mid(xs)
}

fn mid(xs: &[u32]) -> u32 {
    deep(xs)
}

fn deep(xs: &[u32]) -> u32 {
    xs[0]
}
