//! Guard-escape bad fixture: shimmed primitives (so the raw-primitive
//! arm stays quiet), but lock guards leak through the public API.
//! `skylint check` must exit 1 with `sync-confinement` findings on the
//! three escaping signatures, while the closure API and the private
//! helper stay clean.

use skycheck::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Shared protocol state behind shimmed locks.
pub struct Shared {
    state: RwLock<u64>,
    side: Mutex<u64>,
}

impl Shared {
    /// BAD: the read guard escapes to callers.
    pub fn read_handle(&self) -> RwLockReadGuard<'_, u64> {
        self.state.read()
    }

    /// BAD: the write guard escapes, `pub(crate)` counts too.
    pub(crate) fn write_handle(&self) -> RwLockWriteGuard<'_, u64> {
        self.state.write()
    }

    /// BAD: a mutex guard escaping through a multi-line signature.
    pub fn side_handle(
        &self,
    ) -> MutexGuard<'_, u64> {
        self.side.lock()
    }

    /// Allowed: closure confinement — the guard never leaves this fn.
    pub fn with_read<R>(&self, f: impl FnOnce(&u64) -> R) -> R {
        f(&self.state.read())
    }

    /// Allowed: private helpers may pass guards around within the file.
    fn reader(&self) -> RwLockReadGuard<'_, u64> {
        self.state.read()
    }

    /// Allowed: uses the private helper, returns a value, not a guard.
    pub fn value(&self) -> u64 {
        *self.reader()
    }
}
