//! Sync-confinement bad fixture: raw primitives in a confined file, in
//! parking_lot, `std::sync` and `std::thread` form. `skylint check` must
//! exit 1 with `sync-confinement` findings, while the `Arc` import and
//! the `available_parallelism` probe stay clean.

/// Allowed: `Arc` carries no schedule point the model checker needs.
pub use std::sync::Arc;

/// BAD: a parking_lot import — invisible to the model checker.
use parking_lot::RwLock;

/// BAD: a raw std mutex in protocol code.
use std::sync::Mutex;

/// Holds both raw primitives so the imports are exercised.
pub struct Protocol {
    /// Raw reader-writer lock.
    pub state: RwLock<u64>,
    /// Raw mutex.
    pub side: Mutex<u64>,
}

/// Allowed: a pure capability probe, no schedule point.
pub fn lanes() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// BAD: an unshimmed thread operation.
pub fn pause() {
    std::thread::yield_now();
}
