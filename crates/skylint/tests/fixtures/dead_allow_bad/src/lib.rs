//! Dead-allow bad fixture: the escape comment below suppresses nothing —
//! saturating arithmetic cannot panic, so the allow is stale and
//! `skylint check` must exit 1 with a `dead-allow` finding.

/// Saturating increment; total for every input.
pub fn add_one(x: u64) -> u64 {
    // skylint: allow(no-panic-paths) — stale: nothing on this line panics.
    x.saturating_add(1)
}
