//! Range-taint clean fixture: every decoded length passes the
//! designated validator before it reaches an allocation sink — at
//! birth or later along the path. `skylint check` must exit 0.

/// Byte-cursor stand-in with the decoder shape the analyzer keys on.
pub struct Cursor(u32);

impl Cursor {
    /// Decodes an untrusted little-endian length.
    pub fn get_u32_le(&mut self) -> u32 {
        self.0
    }
}

/// Clamps a decoded length to the format's hard cap.
pub fn clamped(n: usize) -> usize {
    n.min(1 << 16)
}

/// Clean: validated at birth — the decode statement itself passes the
/// validator, so the binding is never tainted.
pub fn load(cur: &mut Cursor) -> Vec<u8> {
    let n = clamped(cur.get_u32_le() as usize);
    Vec::with_capacity(n)
}

/// Clean: validated en route — `raw` is tainted, but the taint dies at
/// the `clamped` call before the allocation.
pub fn load_late(cur: &mut Cursor) -> Vec<u8> {
    let raw = cur.get_u32_le() as usize;
    let n = clamped(raw);
    Vec::with_capacity(n)
}
