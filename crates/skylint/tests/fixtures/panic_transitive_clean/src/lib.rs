//! Panic-reachability clean fixture: the same `api → mid → deep` chain as
//! the bad tree, but the deep helper handles the empty slice instead of
//! indexing into it. Nothing propagates; `skylint check` must exit 0.

/// Public entry point; total for every input.
pub fn api(xs: &[u32]) -> u32 {
    mid(xs)
}

fn mid(xs: &[u32]) -> u32 {
    deep(xs)
}

fn deep(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}
