//! The thread lane (spawn-allowed): reaches `current` but never the
//! lane-local counter.

use crate::current;

/// Reads the pin from the worker side of the spawn boundary.
pub fn worker_lane() -> u8 {
    current()
}
