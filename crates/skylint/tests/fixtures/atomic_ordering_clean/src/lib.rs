//! Atomic-ordering clean fixture: the cross-thread pin publishes with
//! `Release` and observes with `Acquire`; the only Relaxed accesses are
//! on a counter never reachable from the thread lane. `skylint check`
//! must exit 0.

pub mod lanes;

use std::sync::atomic::{AtomicU8, AtomicU64, Ordering};

/// The cross-thread pin: written on the control side, read in the lane.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Debug tally confined to the control side — never crosses a spawn.
static LOCAL_TICKS: AtomicU64 = AtomicU64::new(0);

/// Publishes the pin for the next spawned worker.
pub fn set_active(v: u8) {
    ACTIVE.store(v, Ordering::Release);
}

/// Observes the pin on the worker path.
pub fn current() -> u8 {
    ACTIVE.load(Ordering::Acquire)
}

/// Relaxed is fine here: the tally stays on one thread.
pub fn tick() -> u64 {
    LOCAL_TICKS.fetch_add(1, Ordering::Relaxed);
    LOCAL_TICKS.load(Ordering::Relaxed)
}
