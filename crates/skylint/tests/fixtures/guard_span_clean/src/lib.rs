//! Guard-hold-span clean fixture: shared state is copied out under the
//! guard and the guard dies — by block end or by explicit `drop` —
//! before the expensive work runs. `skylint check` must exit 0.

/// Toy lock with a `parking_lot`-style guardless API.
pub struct Lock(u64);

impl Lock {
    /// Shared acquisition.
    pub fn read(&self) -> u64 {
        self.0
    }

    /// Exclusive acquisition.
    pub fn write(&self) -> u64 {
        self.0
    }
}

/// The designated-expensive operation (see skylint.toml).
pub fn expensive_fetch() -> u64 {
    42
}

/// Reaches the expensive operation through one call.
pub fn refresh() -> u64 {
    expensive_fetch()
}

/// Shared state guarded by `lock`.
pub struct Store {
    lock: Lock,
}

impl Store {
    /// Copy under the guard; the block ends the guard before the
    /// expensive call runs.
    pub fn snapshot_then_fetch(&self) -> u64 {
        let copied = {
            let g = self.lock.read(); // lock-order: read
            g
        };
        copied + expensive_fetch()
    }

    /// Explicit `drop` kills the guard on this path before the
    /// transitively expensive call.
    pub fn drop_then_refresh(&self) -> u64 {
        let g = self.lock.write(); // lock-order: write
        let copied = g;
        drop(g);
        copied + refresh()
    }
}
