//! Clean fixture: panicky and hash-ordered code confined to the
//! `#[cfg(test)]` region, where the library rules do not apply.

/// Doubles a value.
pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn doubles() {
        let mut m = HashMap::new();
        m.insert(1u64, super::double(1));
        assert_eq!(*m.get(&1).unwrap(), 2);
    }
}
