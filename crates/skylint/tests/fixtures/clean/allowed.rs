//! Clean fixture: violations suppressed by justified allow annotations,
//! both on the line above and trailing on the same line.

/// Head of a slice the caller has proven non-empty.
pub fn head(xs: &[u64]) -> u64 {
    // skylint: allow(no-panic-paths) — caller checks is_empty first.
    *xs.first().expect("non-empty by contract")
}

/// A wall-clock read at an audited site.
pub fn audited_elapsed() -> u64 {
    let t = std::time::Instant::now(); // skylint: allow(determinism) — audited site.
    t.elapsed().as_nanos() as u64
}
