//! Clean fixture for the float-equality check: comparisons that look
//! adjacent to endpoint equality but are not raw float `==`.

/// An interval whose endpoints are only compared through helpers.
pub struct Iv {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

/// Compares dimension counts, not endpoint values: `lo` and `hi` here are
/// slices, and the method calls must not trip the float-equality check.
pub fn dims_match(lo: &[f64], hi: &[f64]) -> bool {
    lo.len() == hi.len()
}

/// Integer comparisons on non-float identifiers are fine.
pub fn same_card(a: usize, b: usize) -> bool {
    a == b && a != 0
}
