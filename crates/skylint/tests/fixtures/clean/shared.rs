//! Clean fixture: annotated lock acquisitions in declared phase order.

use std::sync::RwLock;

/// Shared state under the read-then-write protocol.
pub struct Shared {
    inner: RwLock<Vec<u64>>,
}

impl Shared {
    /// Reads then writes, in declared phase order.
    pub fn refresh(&self) -> usize {
        let n = self.inner.read().len(); // lock-order: read
        self.inner.write().push(n as u64); // lock-order: write
        n
    }
}
