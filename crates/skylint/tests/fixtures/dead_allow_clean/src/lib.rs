//! Dead-allow clean fixture: the escape comment suppresses a live
//! `no-panic-paths` finding on the `.expect()` below, so it is counted
//! as exercised and `skylint check` must exit 0.

/// First element of a slice the caller guarantees is non-empty.
pub fn head(xs: &[u64]) -> u64 {
    // skylint: allow(no-panic-paths) — caller contract: non-empty input.
    *xs.first().expect("non-empty input")
}
