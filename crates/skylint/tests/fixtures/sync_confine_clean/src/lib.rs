//! Sync-confinement clean fixture: every primitive comes from the
//! `skycheck::sync` shims; the only std mentions are the sanctioned
//! `Arc`, `OnceLock` and `available_parallelism`. `skylint check` must
//! exit 0.

/// Shimmed primitives: schedulable under a model run.
use skycheck::sync::{thread, Mutex, RwLock};

/// Allowed std items: no schedule points to intercept.
use std::sync::{Arc, OnceLock};

/// Shared state behind shimmed locks.
pub struct Protocol {
    /// Shimmed reader-writer lock.
    pub state: Arc<RwLock<u64>>,
    /// Shimmed mutex.
    pub side: Mutex<u64>,
    /// One-time init cell (allowed).
    pub init: OnceLock<u64>,
}

/// Allowed: a pure capability probe, no schedule point.
pub fn lanes() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Shimmed spawn: a schedule point under the model checker.
pub fn fan_out(n: u64) -> u64 {
    thread::scope(|s| {
        let h = s.spawn(move || n + 1);
        h.join().map_or(0, |v| v)
    })
}

#[cfg(test)]
mod tests {
    // Test regions are exempt: raw std threads are fine here.
    #[test]
    fn raw_threads_allowed_in_tests() {
        std::thread::scope(|s| {
            s.spawn(|| ());
        });
    }
}
