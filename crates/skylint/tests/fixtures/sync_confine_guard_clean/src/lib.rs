//! Guard-escape clean fixture: the same lock-protected state as the bad
//! tree, sealed the way `core::shared` seals `SharedCache` — closure
//! APIs and cheap value reads only; no public signature ever names a
//! guard. `skylint check` must exit 0.

use skycheck::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard};

/// Shared protocol state behind shimmed locks.
pub struct Shared {
    state: RwLock<u64>,
    side: Mutex<u64>,
}

impl Shared {
    /// Closure confinement: the read guard lives and dies in here.
    pub fn with_read<R>(&self, f: impl FnOnce(&u64) -> R) -> R {
        f(&self.state.read())
    }

    /// Mutation through a closure, same confinement.
    pub fn with_side<R>(&self, f: impl FnOnce(&mut u64) -> R) -> R {
        f(&mut self.side.lock())
    }

    /// Value reads copy out; no guard crosses the boundary.
    pub fn value(&self) -> u64 {
        *self.reader()
    }

    /// Private helpers may pass guards around within the file.
    fn reader(&self) -> RwLockReadGuard<'_, u64> {
        self.state.read()
    }

    /// Private, and a mutex guard — still file-internal, still fine.
    fn side_guard(&self) -> MutexGuard<'_, u64> {
        self.side.lock()
    }

    /// Exercises the private mutex helper.
    pub fn bump(&self) -> u64 {
        let mut g = self.side_guard();
        *g += 1;
        *g
    }
}
