// Bad fixture: a crate root with no `//!` docs and no lint headers.

/// Documented but homeless.
pub fn noop() {}
