//! Bad fixture: unsafe block without a SAFETY comment.

/// Reads a byte through a raw pointer.
pub fn deref(p: *const u8) -> u8 {
    unsafe { *p }
}
