//! Bad fixture: thread spawn outside the sanctioned lanes.

/// Spawns an unmanaged worker.
pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
