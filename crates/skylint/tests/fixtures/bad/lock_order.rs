//! Bad fixture: lock-protocol violations.

use std::sync::RwLock;

/// Shared state under the read-then-write protocol.
pub struct Shared {
    inner: RwLock<Vec<u64>>,
}

impl Shared {
    /// Unannotated acquisition.
    pub fn count(&self) -> usize {
        self.inner.read().len()
    }

    /// Undeclared phase name.
    pub fn peek(&self) -> Option<u64> {
        self.inner.read().first().copied() // lock-order: browse
    }

    /// Write acquired before read within one function.
    pub fn swap(&self) -> usize {
        self.inner.write().push(1); // lock-order: write
        let extra = 0;
        self.inner.read().len() + extra // lock-order: read
    }
}
