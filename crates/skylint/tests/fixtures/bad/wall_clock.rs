//! Bad fixture: wall-clock reads in library code.

use std::time::Instant;

/// Produces a nondeterministic timestamp.
pub fn stamp() -> Instant {
    Instant::now()
}
