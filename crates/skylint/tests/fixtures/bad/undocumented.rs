//! Bad fixture: an undocumented public surface.

const _SPACER: () = ();

pub fn mystery() -> u64 {
    7
}

pub struct Opaque;

pub const LIMIT: usize = 4;
