//! Bad fixture: raw float equality on interval endpoints.

/// A 1-D interval.
pub struct Iv {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Iv {
    /// Degenerate test, the forbidden way.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Literal comparisons, also forbidden.
    pub fn at_origin(&self) -> bool {
        self.lo == 0.0 && self.hi != 1.0
    }
}
