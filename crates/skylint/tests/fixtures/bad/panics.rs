//! Bad fixture: hidden panic paths in library code.

/// Sums the ends of a slice, panicking on empty input.
pub fn ends(xs: &[u64]) -> u64 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("non-empty");
    head + tail
}

/// Unfinished branches, the forbidden way.
pub fn unfinished(flag: bool) -> u64 {
    if flag {
        todo!("later")
    } else {
        panic!("boom")
    }
}
