//! Bad fixture: hash collections in a result-producing path.

use std::collections::{HashMap, HashSet};

/// Deduplicates with randomized iteration order.
pub fn dedup(xs: &[u64]) -> Vec<u64> {
    let seen: HashSet<u64> = xs.iter().copied().collect();
    let _counts: HashMap<u64, usize> = HashMap::new();
    seen.into_iter().collect()
}
