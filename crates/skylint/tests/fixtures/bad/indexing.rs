//! Bad fixture: bracket indexing in an index-strict file.

/// Reads position `i` the panicky way.
pub fn nth(xs: &[f64], i: usize) -> f64 {
    xs[i]
}
