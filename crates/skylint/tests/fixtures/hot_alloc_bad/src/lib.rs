//! Hot-path-alloc bad fixture: the designated kernel delegates to a
//! helper that builds a staging `Vec` — allocation machinery reachable
//! from the kernel. `skylint check` must exit 1 with `hot-path-alloc`
//! findings that name the `kernel → stage` witness path.

/// The designated allocation-free kernel; the violation is one call down.
pub fn kernel(xs: &[f64]) -> f64 {
    stage(xs)
}

fn stage(xs: &[f64]) -> f64 {
    let mut staging = Vec::new();
    for &x in xs {
        staging.push(x);
    }
    staging.iter().sum()
}
