//! Recursive-read clean fixture: nested shared acquisitions of one lock,
//! both directly and through a `with_read`-style helper. Shared → shared
//! re-entry never deadlocks under the shim RwLock (the model grants a
//! recursive read whenever no writer holds the lock), so `skylint check`
//! must exit 0 — only read → write upgrades are findings.

use skycheck::sync::RwLock;

/// Shared state behind one reader-writer lock.
pub struct Shared {
    inner: RwLock<Vec<u64>>,
}

impl Shared {
    /// Runs a closure with read access to the inner state.
    pub fn with_read<R>(&self, f: impl FnOnce(&Vec<u64>) -> R) -> R {
        f(&self.inner.read()) // lock-order: read
    }

    /// Number of entries (takes a read lock).
    pub fn len(&self) -> usize {
        self.inner.read().len() // lock-order: read
    }

    /// Whether the state is empty (takes a read lock).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Directly nested shared acquisitions of the same lock: safe.
    pub fn nested_counts(&self) -> (usize, usize) {
        let outer = self.inner.read(); // lock-order: read
        let again = self.inner.read(); // lock-order: read
        (outer.len(), again.len())
    }

    /// Re-entrant read through the helper while a guard is live.
    pub fn sum_and_len(&self) -> (u64, usize) {
        let guard = self.inner.read(); // lock-order: read
        let total = guard.iter().sum();
        (total, self.len())
    }
}
