//! A tiny crate that satisfies every policy.

#![warn(missing_docs)]

/// Adds one.
pub fn incr(x: u64) -> u64 {
    x + 1
}
