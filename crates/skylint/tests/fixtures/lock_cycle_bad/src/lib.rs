//! Lock-order bad fixture: two locks acquired in opposite orders across
//! functions (an AB/BA deadlock cycle) plus a same-lock read→write
//! upgrade. `skylint check` must exit 1 with `lock-order` findings.

/// Toy lock with a `parking_lot`-style guardless API; the analyzer keys
/// on `.read()`/`.write()` receiver paths, not on real lock types.
pub struct Lock(u64);

impl Lock {
    /// Shared acquisition.
    pub fn read(&self) -> u64 {
        self.0
    }

    /// Exclusive acquisition.
    pub fn write(&self) -> u64 {
        self.0
    }
}

/// Two locks with no consistent acquisition order.
pub struct Pair {
    a: Lock,
    b: Lock,
}

impl Pair {
    /// Acquires `a` then `b`.
    pub fn ab(&self) -> u64 {
        let ga = self.a.write(); // lock-order: write
        let gb = self.b.write(); // lock-order: write
        ga + gb
    }

    /// Acquires `b` then `a` — the opposite order: a cycle with [`Pair::ab`].
    pub fn ba(&self) -> u64 {
        let gb = self.b.write(); // lock-order: write
        let ga = self.a.write(); // lock-order: write
        gb + ga
    }

    /// Upgrades a held read guard to a write guard on the same lock.
    pub fn upgrade(&self) -> u64 {
        let r = self.a.read(); // lock-order: read
        let w = self.a.write(); // lock-order: write
        r + w
    }
}
