//! Guard-hold-span bad fixture: lock guards stay live across the
//! designated-expensive call, both directly and through a callee.
//! `skylint check` must exit 1 with `guard-hold-span` findings.

/// Toy lock with a `parking_lot`-style guardless API; the analyzer keys
/// on `.read()`/`.write()` receiver paths, not on real lock types.
pub struct Lock(u64);

impl Lock {
    /// Shared acquisition.
    pub fn read(&self) -> u64 {
        self.0
    }

    /// Exclusive acquisition.
    pub fn write(&self) -> u64 {
        self.0
    }
}

/// The designated-expensive operation (see skylint.toml).
pub fn expensive_fetch() -> u64 {
    42
}

/// Reaches the expensive operation through one call — transitively
/// expensive over the call graph.
pub fn refresh() -> u64 {
    expensive_fetch()
}

/// Shared state guarded by `lock`.
pub struct Store {
    lock: Lock,
}

impl Store {
    /// BAD: the read guard is live across a direct expensive call.
    pub fn fetch_under_guard(&self) -> u64 {
        let g = self.lock.read(); // lock-order: read
        let v = expensive_fetch();
        g + v
    }

    /// BAD: the write guard is live across a transitively expensive
    /// call — the witness chain runs through `refresh`.
    pub fn refresh_under_guard(&self) -> u64 {
        let g = self.lock.write(); // lock-order: write
        let v = refresh();
        g + v
    }
}
