//! Env-read-confinement clean fixture: exactly one ambient read, inside
//! the registered pin function; everything downstream takes the value
//! as explicit configuration. `skylint check` must exit 0.

/// The designated pin — the one legal ambient read (see skylint.toml).
pub fn pinned_mode() -> Option<String> {
    std::env::var("FIXTURE_MODE").ok()
}

/// Resolves the effective mode from explicit configuration, falling
/// back to the pin only through the designated function.
pub fn effective(explicit: Option<String>) -> String {
    explicit.or_else(pinned_mode).unwrap_or_default()
}
