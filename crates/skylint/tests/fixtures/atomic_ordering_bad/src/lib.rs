//! Atomic-ordering bad fixture: a kernel pin published and observed with
//! `Ordering::Relaxed` while the load is reachable from the thread lane
//! (src/lanes.rs). `skylint check` must exit 1 with `atomic-ordering`
//! findings carrying the witness path.

pub mod lanes;

use std::sync::atomic::{AtomicU8, Ordering};

/// The cross-thread pin: written on the control side, read in the lane.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// BAD: relaxed publication — a later spawn may still observe 0.
pub fn set_active(v: u8) {
    ACTIVE.store(v, Ordering::Relaxed);
}

/// BAD: relaxed observation on the worker path.
pub fn current() -> u8 {
    ACTIVE.load(Ordering::Relaxed)
}
