//! The thread lane (spawn-allowed): functions here root the
//! cross-thread reachability witness.

use crate::current;

/// Reads the pin from the worker side of the spawn boundary.
pub fn worker_lane() -> u8 {
    current()
}
