//! Bad-config fixture: the source tree is clean; the defect lives in
//! `skylint.toml`, which names an unknown rule section.

/// Identity.
pub fn id(x: u64) -> u64 {
    x
}
