//! `skylint` CLI: `check`, `explain <rule>`, `rules`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use skylint::engine::validate_config;
use skylint::report::{render_bench, render_human, render_json};
use skylint::rules::{explain, RULE_IDS};
use skylint::{scan, Config, Policy};

const USAGE: &str = "\
skylint — static analysis for the skycache workspace

USAGE:
    skylint check [--root PATH] [--config PATH] [--json] [--bench-out PATH] [--quiet]
    skylint explain <rule>
    skylint rules

Exit codes: 0 clean · 1 violations found · 2 usage or I/O error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("explain") => match args.get(1) {
            Some(rule) => match explain(rule) {
                Some(text) => {
                    println!("{text}");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown rule {rule:?}; known rules: {}", RULE_IDS.join(", "));
                    ExitCode::from(2)
                }
            },
            None => {
                eprintln!("usage: skylint explain <rule>");
                ExitCode::from(2)
            }
        },
        Some("rules") => {
            for r in RULE_IDS {
                println!("{r}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut json = false;
    let mut quiet = false;
    let mut bench_out: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_err("--root needs a path"),
            },
            "--config" => match it.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => return usage_err("--config needs a path"),
            },
            "--bench-out" => match it.next() {
                Some(p) => bench_out = Some(PathBuf::from(p)),
                None => return usage_err("--bench-out needs a path"),
            },
            "--json" => json = true,
            "--quiet" => quiet = true,
            other => return usage_err(&format!("unknown argument {other:?}")),
        }
    }

    // Default config: <root>/skylint.toml when present.
    let config_path = config_path.unwrap_or_else(|| root.join("skylint.toml"));
    let cfg = if config_path.exists() {
        match std::fs::read_to_string(&config_path) {
            Ok(src) => match Config::parse(&src) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("skylint: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("skylint: cannot read {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Config::default()
    };
    let config_errors = validate_config(&cfg);
    if !config_errors.is_empty() {
        for e in &config_errors {
            eprintln!("skylint: {e}");
        }
        return ExitCode::from(2);
    }
    let policy = Policy::from_config(&cfg);

    let t0 = Instant::now();
    let outcome = match scan(&root, &policy) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("skylint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    if let Some(path) = bench_out {
        let record = render_bench(&outcome, &RULE_IDS, wall_ms);
        if let Err(e) = std::fs::write(&path, record) {
            eprintln!("skylint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{}", render_json(&outcome, &RULE_IDS));
    } else if !outcome.findings.is_empty() {
        print!("{}", render_human(&outcome.findings));
    } else if !quiet {
        println!(
            "skylint: clean — {} files, {} lines, {} fns, {} call edges, {} rules, {:.1} ms",
            outcome.files_scanned,
            outcome.lines_scanned,
            outcome.functions_analyzed,
            outcome.call_edges,
            RULE_IDS.len(),
            wall_ms
        );
    }

    if outcome.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("skylint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
