//! `skylint` CLI: `check`, `explain <rule>`, `rules`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use skylint::engine::validate_config;
use skylint::report::{render_bench, render_human, render_json};
use skylint::rules::{explain, RULE_IDS};
use skylint::{scan, Config, Policy};

const USAGE: &str = "\
skylint — static analysis for the skycache workspace

USAGE:
    skylint check [--root PATH] [--config PATH] [--json] [--bench-out PATH] [--quiet]
                  [--fix-dead-allows [--dry-run]]
    skylint explain <rule>
    skylint rules

`--fix-dead-allows` rewrites source files to drop `skylint: allow(…)`
annotations the dead-allow rule reports as suppressing nothing; with
`--dry-run` it prints the edits as a -/+ diff and writes nothing.

Exit codes: 0 clean · 1 violations found · 2 usage or I/O error.
With --fix-dead-allows (no --dry-run), repaired dead-allow findings do
not count as violations; anything else still exits 1.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("explain") => match args.get(1) {
            Some(rule) => match explain(rule) {
                Some(text) => {
                    println!("{text}");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown rule {rule:?}; known rules: {}", RULE_IDS.join(", "));
                    ExitCode::from(2)
                }
            },
            None => {
                eprintln!("usage: skylint explain <rule>");
                ExitCode::from(2)
            }
        },
        Some("rules") => {
            for r in RULE_IDS {
                println!("{r}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut json = false;
    let mut quiet = false;
    let mut bench_out: Option<PathBuf> = None;
    let mut fix_dead = false;
    let mut dry_run = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_err("--root needs a path"),
            },
            "--config" => match it.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => return usage_err("--config needs a path"),
            },
            "--bench-out" => match it.next() {
                Some(p) => bench_out = Some(PathBuf::from(p)),
                None => return usage_err("--bench-out needs a path"),
            },
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--fix-dead-allows" => fix_dead = true,
            "--dry-run" => dry_run = true,
            other => return usage_err(&format!("unknown argument {other:?}")),
        }
    }
    if dry_run && !fix_dead {
        return usage_err("--dry-run only makes sense with --fix-dead-allows");
    }

    // Default config: <root>/skylint.toml when present.
    let config_path = config_path.unwrap_or_else(|| root.join("skylint.toml"));
    let cfg = if config_path.exists() {
        match std::fs::read_to_string(&config_path) {
            Ok(src) => match Config::parse(&src) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("skylint: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("skylint: cannot read {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Config::default()
    };
    let config_errors = validate_config(&cfg);
    if !config_errors.is_empty() {
        for e in &config_errors {
            eprintln!("skylint: {e}");
        }
        return ExitCode::from(2);
    }
    let policy = Policy::from_config(&cfg);

    let t0 = Instant::now();
    let mut outcome = match scan(&root, &policy) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("skylint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    if fix_dead {
        match fix_dead_allows(&root, &outcome.findings, dry_run) {
            Ok(fixed) if dry_run => {
                // Preview only: findings (dead-allow included) still count.
                if fixed == 0 && !quiet {
                    println!("skylint: no stale allows to fix");
                }
            }
            Ok(fixed) => {
                if !quiet && fixed > 0 {
                    println!("skylint: removed {fixed} stale allow annotation(s)");
                }
                // The repaired findings are resolved; report the rest.
                outcome.findings.retain(|f| f.rule != "dead-allow");
            }
            Err(e) => {
                eprintln!("skylint: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = bench_out {
        let record = render_bench(&outcome, &RULE_IDS, wall_ms);
        if let Err(e) = std::fs::write(&path, record) {
            eprintln!("skylint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{}", render_json(&outcome, &RULE_IDS));
    } else if !outcome.findings.is_empty() {
        print!("{}", render_human(&outcome.findings));
    } else if !quiet {
        println!(
            "skylint: clean — {} files, {} lines, {} fns, {} call edges, {} rules, {:.1} ms",
            outcome.files_scanned,
            outcome.lines_scanned,
            outcome.functions_analyzed,
            outcome.call_edges,
            RULE_IDS.len(),
            wall_ms
        );
    }

    if outcome.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("skylint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Applies (or previews, with `dry_run`) the dead-allow auto-fix: every
/// `dead-allow` finding names an annotation line whose listed rule
/// suppresses nothing; drop that rule from the annotation, and drop the
/// whole comment (or comment-only line) when no live rule remains.
/// Returns the number of stale rule entries removed.
fn fix_dead_allows(
    root: &std::path::Path,
    findings: &[skylint::report::Finding],
    dry_run: bool,
) -> Result<usize, String> {
    // file → line → stale rules on that line.
    let mut by_file: BTreeMap<&str, BTreeMap<u32, Vec<String>>> = BTreeMap::new();
    for f in findings.iter().filter(|f| f.rule == "dead-allow") {
        let rule = f
            .message
            .split_once("allow(")
            .and_then(|(_, rest)| rest.split_once(')'))
            .map(|(r, _)| r.trim().to_owned())
            .ok_or_else(|| format!("unparsable dead-allow message: {}", f.message))?;
        by_file.entry(&f.file).or_default().entry(f.line).or_default().push(rule);
    }

    let mut removed = 0;
    for (file, lines) in &by_file {
        let path = root.join(file);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let had_trailing_newline = src.ends_with('\n');
        let mut out: Vec<String> = Vec::new();
        let mut diff = String::new();
        for (idx, line) in src.lines().enumerate() {
            let lineno = (idx + 1) as u32;
            let Some(dead) = lines.get(&lineno) else {
                out.push(line.to_owned());
                continue;
            };
            removed += dead.len();
            match strip_allow_rules(line, dead) {
                Some(new_line) => {
                    let _ = writeln!(diff, "{file}:{lineno}\n- {line}\n+ {new_line}");
                    out.push(new_line);
                }
                None => {
                    let _ = writeln!(diff, "{file}:{lineno}\n- {line}");
                }
            }
        }
        if dry_run {
            print!("{diff}");
        } else {
            let mut new_src = out.join("\n");
            if had_trailing_newline {
                new_src.push('\n');
            }
            std::fs::write(&path, new_src)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
    }
    Ok(removed)
}

/// Rewrites one source line, dropping `dead` rules from its
/// `// skylint: allow(…)` annotation. `None` means the whole line goes
/// (the annotation died and nothing but the comment lived there).
fn strip_allow_rules(line: &str, dead: &[String]) -> Option<String> {
    let marker = "// skylint: allow(";
    let start = line.find(marker)?;
    let open = start + marker.len();
    let close = open + line[open..].find(')')?;
    let kept: Vec<&str> = line[open..close]
        .split(',')
        .map(str::trim)
        .filter(|r| !r.is_empty() && !dead.iter().any(|d| d == r))
        .collect();
    if kept.is_empty() {
        let prefix = &line[..start];
        if prefix.trim().is_empty() {
            None
        } else {
            Some(prefix.trim_end().to_owned())
        }
    } else {
        Some(format!("{}{marker}{}{}", &line[..start], kept.join(", "), &line[close..]))
    }
}
