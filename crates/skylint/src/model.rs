//! Per-file source model built on top of the token stream.
//!
//! Rules need three structural facts the raw tokens don't carry:
//!
//! 1. **Test regions** — spans of `#[cfg(test)] mod … { … }` (any
//!    attribute order). Policies forbid panics/nondeterminism in *library*
//!    code; tests are exempt by design.
//! 2. **Allow annotations** — `// skylint: allow(rule-id[, rule-id…]) — why`
//!    comments suppress findings of those rules on the comment's own line
//!    and on the line immediately below, mirroring `#[allow]` placement.
//!    Only plain `//` comments participate; the syntax is validated and a
//!    malformed annotation is a hard configuration error, not a silent
//!    no-op. Every suppression is recorded so the `dead-allow` rule can
//!    report annotations that no longer suppress anything.
//! 3. **Function spans** — which tokens belong to which `fn` body, used by
//!    the lock-order check to reason per function.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, TokKind, Token};

/// A lexed file plus the structural indexes rules consume.
pub struct SourceModel {
    /// Repo-relative path (slash-separated) of the file.
    pub path: String,
    /// Raw source lines, for snippets in findings.
    pub lines: Vec<String>,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// `allow` annotations: line → rule ids suppressed on that line and
    /// the next.
    pub allows: BTreeMap<u32, Vec<String>>,
    /// Malformed `skylint:` annotations: (line, problem description).
    pub malformed_allows: Vec<(u32, String)>,
    /// Inclusive line ranges covered by `#[cfg(test)]` modules.
    pub test_line_ranges: Vec<(u32, u32)>,
    /// Token-index ranges `[start, end)` of function bodies, with the
    /// function name (innermost functions listed after their parents).
    pub fn_spans: Vec<FnSpan>,
    /// `(annotation line, rule)` pairs that suppressed at least one
    /// finding this scan — the complement feeds `dead-allow`.
    pub hits: RefCell<BTreeSet<(u32, String)>>,
}

/// A function body's token range.
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Index of the opening-brace token.
    pub body_start: usize,
    /// Index one past the closing-brace token.
    pub body_end: usize,
}

impl SourceModel {
    /// Lexes and indexes one file.
    pub fn build(path: String, src: &str) -> SourceModel {
        let tokens = lex(src);
        let lines = src.lines().map(str::to_owned).collect();
        let (allows, malformed_allows) = collect_allows(&tokens);
        let test_line_ranges = collect_test_regions(&tokens);
        let fn_spans = collect_fn_spans(&tokens);
        SourceModel {
            path,
            lines,
            tokens,
            allows,
            malformed_allows,
            test_line_ranges,
            fn_spans,
            hits: RefCell::new(BTreeSet::new()),
        }
    }

    /// Whether `line` is inside a `#[cfg(test)]` module.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_line_ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Whether findings of `rule` are suppressed at `line`. A positive
    /// answer marks the annotation as live for `dead-allow`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        let hit = |l: u32| {
            let covers = self.allows.get(&l).is_some_and(|rules| rules.iter().any(|r| r == rule));
            if covers {
                self.hits.borrow_mut().insert((l, rule.to_owned()));
            }
            covers
        };
        // Evaluate both placements so a redundant double annotation does
        // not leave one of them looking dead.
        let same = hit(line);
        let above = line > 1 && hit(line - 1);
        same || above
    }

    /// The trimmed source line for a finding snippet.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }

    /// Returns any comment token ending on `line` or `line - 1` whose text
    /// contains `needle` (used for `// SAFETY:` and `// lock-order:`).
    pub fn comment_near(&self, line: u32, needle: &str) -> Option<&str> {
        // Line comments sit on one line; that is the only shape the
        // annotations use, so a per-line scan of comment tokens suffices.
        // A same-line (trailing) comment wins over one on the line above:
        // the line above may end in the previous statement's own trailing
        // annotation, which must not bleed onto this site.
        let on = |l: u32| {
            self.tokens
                .iter()
                .filter(|t| t.is_comment() && t.line == l)
                .find(|t| t.text.contains(needle))
                .map(|t| t.text.as_str())
        };
        on(line).or_else(|| line.checked_sub(1).and_then(on))
    }
}

/// Extracts `skylint: allow(rule[, rule])` annotations from comments.
///
/// Only plain `//` line comments participate (`///` and `//!` doc text
/// mentioning the syntax is prose, not an annotation), and only when the
/// comment's content *starts with* `skylint:`. Anything after that prefix
/// that is not a well-formed `allow(<kebab-ids>)` — optionally followed
/// by a justification — is reported as malformed, which the engine turns
/// into a hard configuration error.
/// Allow map (line → suppressed rule ids) plus malformed annotations.
type AllowIndex = (BTreeMap<u32, Vec<String>>, Vec<(u32, String)>);

fn collect_allows(tokens: &[Token]) -> AllowIndex {
    let mut map: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut malformed: Vec<(u32, String)> = Vec::new();
    for t in tokens.iter().filter(|t| t.kind == TokKind::LineComment) {
        let body = t.text.strip_prefix("//").unwrap_or(&t.text);
        if body.starts_with('/') || body.starts_with('!') {
            continue; // doc comment — prose, never an annotation
        }
        let Some(rest) = body.trim_start().strip_prefix("skylint:") else { continue };
        match parse_allow_body(rest.trim_start()) {
            Ok(rules) => map.entry(t.line).or_default().extend(rules),
            Err(msg) => malformed.push((t.line, msg)),
        }
    }
    (map, malformed)
}

/// Parses the part after `skylint:` — must be `allow(<ids>)` plus an
/// optional justification tail.
fn parse_allow_body(body: &str) -> Result<Vec<String>, String> {
    let Some(args) = body.strip_prefix("allow(") else {
        return Err(format!(
            "expected `allow(<rule-id>[, <rule-id>…])` after `skylint:`, found `{}`",
            body.trim()
        ));
    };
    let Some(close) = args.find(')') else {
        return Err("unclosed `allow(` — missing `)`".to_owned());
    };
    let list = &args[..close];
    if list.trim().is_empty() {
        return Err("empty rule list in `allow()`".to_owned());
    }
    let mut rules = Vec::new();
    for raw in list.split(',') {
        let rule = raw.trim();
        let kebab = !rule.is_empty()
            && rule.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
            && !rule.starts_with('-')
            && !rule.ends_with('-');
        if !kebab {
            return Err(format!("`{rule}` is not a kebab-case rule id"));
        }
        rules.push(rule.to_owned());
    }
    Ok(rules)
}

/// Finds `#[cfg(test)] … mod name { … }` line spans.
fn collect_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let toks: Vec<(usize, &Token)> =
        tokens.iter().enumerate().filter(|(_, t)| !t.is_comment()).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(&toks, i) {
            // Skip this and any further attributes, then expect `mod`/`fn`.
            let mut j = i;
            while j < toks.len() && toks[j].1.is_op("#") {
                j = skip_attr(&toks, j);
            }
            // Tolerate visibility / keywords before the item keyword.
            let mut k = j;
            while k < toks.len() {
                let t = toks[k].1;
                let skippable = t.is_ident("pub")
                    || t.is_ident("crate")
                    || t.is_ident("in")
                    || t.is_ident("super")
                    || t.is_op("(")
                    || t.is_op(")");
                if !skippable {
                    break;
                }
                k += 1;
            }
            if k < toks.len() && (toks[k].1.is_ident("mod") || toks[k].1.is_ident("fn")) {
                // Find the opening brace, then its match.
                let mut b = k;
                while b < toks.len() && !toks[b].1.is_op("{") {
                    if toks[b].1.is_op(";") {
                        break; // `mod name;` — no inline body
                    }
                    b += 1;
                }
                if b < toks.len() && toks[b].1.is_op("{") {
                    let end = matching_brace(&toks, b);
                    let start_line = toks[i].1.line;
                    let end_line = toks[end.min(toks.len() - 1)].1.line;
                    regions.push((start_line, end_line));
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    regions
}

/// Whether non-comment token index `i` starts `#[cfg(test)]` or
/// `#[cfg(all(test, …))]`-style attributes mentioning `test`.
fn is_cfg_test_attr(toks: &[(usize, &Token)], i: usize) -> bool {
    if !toks[i].1.is_op("#") {
        return false;
    }
    let Some(open) = toks.get(i + 1) else { return false };
    if !open.1.is_op("[") {
        return false;
    }
    if !toks.get(i + 2).is_some_and(|t| t.1.is_ident("cfg")) {
        return false;
    }
    // Scan inside the attribute for the bare ident `test`, rejecting
    // negations so `#[cfg(not(test))]` items stay under the full policy.
    let end = skip_attr(toks, i);
    let attr = &toks[i..end];
    attr.iter().any(|(_, t)| t.is_ident("test")) && !attr.iter().any(|(_, t)| t.is_ident("not"))
}

/// Returns the index one past an attribute starting at `#`.
fn skip_attr(toks: &[(usize, &Token)], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    if j >= toks.len() || !toks[j].1.is_op("[") {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].1.is_op("[") {
            depth += 1;
        } else if toks[j].1.is_op("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Index of the token after the brace matching the `{` at `open`.
fn matching_brace(toks: &[(usize, &Token)], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].1.is_op("{") {
            depth += 1;
        } else if toks[j].1.is_op("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len() - 1
}

/// Collects `fn name(…) … { … }` body token spans (indexes into the *full*
/// token stream, comments included).
fn collect_fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            let name = tokens
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            // Scan to the body `{`, skipping where-clauses etc. A `;`
            // first means a trait method signature — no body.
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut paren = 0i32;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_op("<") {
                    angle += 1;
                } else if t.is_op(">") {
                    angle -= 1;
                } else if t.is_op("(") {
                    paren += 1;
                } else if t.is_op(")") {
                    paren -= 1;
                } else if t.is_op(";") && paren <= 0 {
                    break;
                } else if t.is_op("{") && paren <= 0 && angle <= 0 {
                    // Body found; match braces over the full stream.
                    let mut depth = 0i32;
                    let mut k = j;
                    while k < tokens.len() {
                        if tokens[k].is_op("{") {
                            depth += 1;
                        } else if tokens[k].is_op("}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    spans.push(FnSpan { name, body_start: j, body_end: (k + 1).min(tokens.len()) });
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_detection() {
        let src = r#"
fn library_code() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { helper().unwrap(); }
}
"#;
        let m = SourceModel::build("x.rs".into(), src);
        assert!(!m.in_test_region(2));
        assert!(m.in_test_region(5));
        assert!(m.in_test_region(7));
    }

    #[test]
    fn cfg_test_with_extra_attrs_and_all() {
        let src = "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nmod t {\n let x = 1;\n}\nfn after() {}\n";
        let m = SourceModel::build("x.rs".into(), src);
        assert!(m.in_test_region(4));
        assert!(!m.in_test_region(6));
    }

    #[test]
    fn allow_annotations_cover_same_and_next_line() {
        let src = "// skylint: allow(no-panic-paths) — justified\nfoo().unwrap();\nbar().unwrap(); // skylint: allow(determinism, no-panic-paths)\nbaz().unwrap();\n";
        let m = SourceModel::build("x.rs".into(), src);
        assert!(m.is_allowed("no-panic-paths", 2));
        assert!(m.is_allowed("no-panic-paths", 3));
        assert!(m.is_allowed("determinism", 3));
        // A same-line annotation also covers the following line.
        assert!(m.is_allowed("no-panic-paths", 4));
        assert!(!m.is_allowed("determinism", 2));
        assert!(!m.is_allowed("determinism", 5));
    }

    #[test]
    fn doc_comments_are_not_annotations() {
        let src = "//! escapes use `// skylint: allow(<rule>) — why`\n/// skylint: allow(determinism)\nfn f() {}\n";
        let m = SourceModel::build("x.rs".into(), src);
        assert!(m.allows.is_empty());
        assert!(m.malformed_allows.is_empty());
    }

    #[test]
    fn malformed_annotations_are_reported() {
        let src = "// skylint: allow no-panic-paths\nx();\n// skylint: allow()\ny();\n// skylint: allow(Bad_Case)\nz();\n// skylint: allow(open\n";
        let m = SourceModel::build("x.rs".into(), src);
        let lines: Vec<u32> = m.malformed_allows.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![1, 3, 5, 7]);
        assert!(m.malformed_allows[0].1.contains("expected `allow("));
        assert!(m.malformed_allows[1].1.contains("empty rule list"));
        assert!(m.malformed_allows[2].1.contains("kebab-case"));
        assert!(m.malformed_allows[3].1.contains("missing `)`"));
        assert!(m.allows.is_empty());
    }

    #[test]
    fn suppressions_record_hits_for_dead_allow() {
        let src = "// skylint: allow(no-panic-paths) — ok\nfoo().unwrap();\n// skylint: allow(determinism) — stale\nbar();\n";
        let m = SourceModel::build("x.rs".into(), src);
        assert!(m.is_allowed("no-panic-paths", 2));
        assert!(!m.is_allowed("determinism", 1));
        let hits = m.hits.borrow();
        assert!(hits.contains(&(1, "no-panic-paths".to_owned())));
        assert!(!hits.iter().any(|(l, _)| *l == 3));
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() { inner(); }\nstruct S;\nimpl S {\n    fn b(&self) -> i32 { 1 }\n}\n";
        let m = SourceModel::build("x.rs".into(), src);
        let names: Vec<_> = m.fn_spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        for s in &m.fn_spans {
            assert!(m.tokens[s.body_start].is_op("{"));
            assert!(m.tokens[s.body_end - 1].is_op("}"));
        }
    }

    #[test]
    fn trait_signatures_have_no_span() {
        let src = "trait T { fn sig(&self) -> usize; fn with_body(&self) { } }";
        let m = SourceModel::build("x.rs".into(), src);
        let names: Vec<_> = m.fn_spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["with_body"]);
    }
}
