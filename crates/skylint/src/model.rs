//! Per-file source model built on top of the token stream.
//!
//! Rules need three structural facts the raw tokens don't carry:
//!
//! 1. **Test regions** — spans of `#[cfg(test)] mod … { … }` (any
//!    attribute order). Policies forbid panics/nondeterminism in *library*
//!    code; tests are exempt by design.
//! 2. **Allow annotations** — `// skylint: allow(rule-id[, rule-id…]) — why`
//!    comments suppress findings of those rules on the comment's own line
//!    and on the line immediately below, mirroring `#[allow]` placement.
//! 3. **Function spans** — which tokens belong to which `fn` body, used by
//!    the lock-order check to reason per function.

use std::collections::BTreeMap;

use crate::lexer::{lex, TokKind, Token};

/// A lexed file plus the structural indexes rules consume.
pub struct SourceModel {
    /// Repo-relative path (slash-separated) of the file.
    pub path: String,
    /// Raw source lines, for snippets in findings.
    pub lines: Vec<String>,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// `allow` annotations: line → rule ids suppressed on that line and
    /// the next.
    pub allows: BTreeMap<u32, Vec<String>>,
    /// Inclusive line ranges covered by `#[cfg(test)]` modules.
    pub test_line_ranges: Vec<(u32, u32)>,
    /// Token-index ranges `[start, end)` of function bodies, with the
    /// function name (innermost functions listed after their parents).
    pub fn_spans: Vec<FnSpan>,
}

/// A function body's token range.
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Index of the opening-brace token.
    pub body_start: usize,
    /// Index one past the closing-brace token.
    pub body_end: usize,
}

impl SourceModel {
    /// Lexes and indexes one file.
    pub fn build(path: String, src: &str) -> SourceModel {
        let tokens = lex(src);
        let lines = src.lines().map(str::to_owned).collect();
        let allows = collect_allows(&tokens);
        let test_line_ranges = collect_test_regions(&tokens);
        let fn_spans = collect_fn_spans(&tokens);
        SourceModel { path, lines, tokens, allows, test_line_ranges, fn_spans }
    }

    /// Whether `line` is inside a `#[cfg(test)]` module.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_line_ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Whether findings of `rule` are suppressed at `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        let hit = |l: u32| self.allows.get(&l).is_some_and(|rules| rules.iter().any(|r| r == rule));
        hit(line) || (line > 1 && hit(line - 1))
    }

    /// The trimmed source line for a finding snippet.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }

    /// Returns any comment token ending on `line` or `line - 1` whose text
    /// contains `needle` (used for `// SAFETY:` and `// lock-order:`).
    pub fn comment_near(&self, line: u32, needle: &str) -> Option<&str> {
        // Line comments sit on one line; that is the only shape the
        // annotations use, so a per-line scan of comment tokens suffices.
        self.tokens
            .iter()
            .filter(|t| t.is_comment())
            .filter(|t| t.line == line || t.line + 1 == line)
            .find(|t| t.text.contains(needle))
            .map(|t| t.text.as_str())
    }
}

/// Extracts `skylint: allow(rule[, rule])` annotations from comments.
fn collect_allows(tokens: &[Token]) -> BTreeMap<u32, Vec<String>> {
    let mut map: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let Some(idx) = t.text.find("skylint: allow(") else { continue };
        let rest = &t.text[idx + "skylint: allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        for rule in rest[..close].split(',') {
            map.entry(t.line).or_default().push(rule.trim().to_owned());
        }
    }
    map
}

/// Finds `#[cfg(test)] … mod name { … }` line spans.
fn collect_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let toks: Vec<(usize, &Token)> =
        tokens.iter().enumerate().filter(|(_, t)| !t.is_comment()).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(&toks, i) {
            // Skip this and any further attributes, then expect `mod`/`fn`.
            let mut j = i;
            while j < toks.len() && toks[j].1.is_op("#") {
                j = skip_attr(&toks, j);
            }
            // Tolerate visibility / keywords before the item keyword.
            let mut k = j;
            while k < toks.len() {
                let t = toks[k].1;
                let skippable = t.is_ident("pub")
                    || t.is_ident("crate")
                    || t.is_ident("in")
                    || t.is_ident("super")
                    || t.is_op("(")
                    || t.is_op(")");
                if !skippable {
                    break;
                }
                k += 1;
            }
            if k < toks.len() && (toks[k].1.is_ident("mod") || toks[k].1.is_ident("fn")) {
                // Find the opening brace, then its match.
                let mut b = k;
                while b < toks.len() && !toks[b].1.is_op("{") {
                    if toks[b].1.is_op(";") {
                        break; // `mod name;` — no inline body
                    }
                    b += 1;
                }
                if b < toks.len() && toks[b].1.is_op("{") {
                    let end = matching_brace(&toks, b);
                    let start_line = toks[i].1.line;
                    let end_line = toks[end.min(toks.len() - 1)].1.line;
                    regions.push((start_line, end_line));
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    regions
}

/// Whether non-comment token index `i` starts `#[cfg(test)]` or
/// `#[cfg(all(test, …))]`-style attributes mentioning `test`.
fn is_cfg_test_attr(toks: &[(usize, &Token)], i: usize) -> bool {
    if !toks[i].1.is_op("#") {
        return false;
    }
    let Some(open) = toks.get(i + 1) else { return false };
    if !open.1.is_op("[") {
        return false;
    }
    if !toks.get(i + 2).is_some_and(|t| t.1.is_ident("cfg")) {
        return false;
    }
    // Scan inside the attribute for the bare ident `test`, rejecting
    // negations so `#[cfg(not(test))]` items stay under the full policy.
    let end = skip_attr(toks, i);
    let attr = &toks[i..end];
    attr.iter().any(|(_, t)| t.is_ident("test")) && !attr.iter().any(|(_, t)| t.is_ident("not"))
}

/// Returns the index one past an attribute starting at `#`.
fn skip_attr(toks: &[(usize, &Token)], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    if j >= toks.len() || !toks[j].1.is_op("[") {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].1.is_op("[") {
            depth += 1;
        } else if toks[j].1.is_op("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Index of the token after the brace matching the `{` at `open`.
fn matching_brace(toks: &[(usize, &Token)], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].1.is_op("{") {
            depth += 1;
        } else if toks[j].1.is_op("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len() - 1
}

/// Collects `fn name(…) … { … }` body token spans (indexes into the *full*
/// token stream, comments included).
fn collect_fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            let name = tokens
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            // Scan to the body `{`, skipping where-clauses etc. A `;`
            // first means a trait method signature — no body.
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut paren = 0i32;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_op("<") {
                    angle += 1;
                } else if t.is_op(">") {
                    angle -= 1;
                } else if t.is_op("(") {
                    paren += 1;
                } else if t.is_op(")") {
                    paren -= 1;
                } else if t.is_op(";") && paren <= 0 {
                    break;
                } else if t.is_op("{") && paren <= 0 && angle <= 0 {
                    // Body found; match braces over the full stream.
                    let mut depth = 0i32;
                    let mut k = j;
                    while k < tokens.len() {
                        if tokens[k].is_op("{") {
                            depth += 1;
                        } else if tokens[k].is_op("}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    spans.push(FnSpan { name, body_start: j, body_end: (k + 1).min(tokens.len()) });
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_detection() {
        let src = r#"
fn library_code() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { helper().unwrap(); }
}
"#;
        let m = SourceModel::build("x.rs".into(), src);
        assert!(!m.in_test_region(2));
        assert!(m.in_test_region(5));
        assert!(m.in_test_region(7));
    }

    #[test]
    fn cfg_test_with_extra_attrs_and_all() {
        let src = "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nmod t {\n let x = 1;\n}\nfn after() {}\n";
        let m = SourceModel::build("x.rs".into(), src);
        assert!(m.in_test_region(4));
        assert!(!m.in_test_region(6));
    }

    #[test]
    fn allow_annotations_cover_same_and_next_line() {
        let src = "// skylint: allow(no-panic-paths) — justified\nfoo().unwrap();\nbar().unwrap(); // skylint: allow(determinism, no-panic-paths)\nbaz().unwrap();\n";
        let m = SourceModel::build("x.rs".into(), src);
        assert!(m.is_allowed("no-panic-paths", 2));
        assert!(m.is_allowed("no-panic-paths", 3));
        assert!(m.is_allowed("determinism", 3));
        // A same-line annotation also covers the following line.
        assert!(m.is_allowed("no-panic-paths", 4));
        assert!(!m.is_allowed("determinism", 2));
        assert!(!m.is_allowed("determinism", 5));
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() { inner(); }\nstruct S;\nimpl S {\n    fn b(&self) -> i32 { 1 }\n}\n";
        let m = SourceModel::build("x.rs".into(), src);
        let names: Vec<_> = m.fn_spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        for s in &m.fn_spans {
            assert!(m.tokens[s.body_start].is_op("{"));
            assert!(m.tokens[s.body_end - 1].is_op("}"));
        }
    }

    #[test]
    fn trait_signatures_have_no_span() {
        let src = "trait T { fn sig(&self) -> usize; fn with_body(&self) { } }";
        let m = SourceModel::build("x.rs".into(), src);
        let names: Vec<_> = m.fn_spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["with_body"]);
    }
}
