//! Scan orchestration: policy resolution, file walking, rule dispatch.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::model::SourceModel;
use crate::report::Finding;
use crate::rules::{run_all, FileCtx};

/// Resolved policy: every knob `skylint.toml` can set, with defaults that
/// match this repository's layout.
#[derive(Clone, Debug)]
pub struct Policy {
    /// Path prefixes scanned for Rust sources.
    pub include: Vec<String>,
    /// Path prefixes skipped entirely (vendored code, build output, …).
    pub exclude: Vec<String>,
    /// Crates whose `src/` trees carry the full library policy.
    pub library_paths: Vec<String>,
    /// Files where bracket indexing is forbidden (no-panic-paths).
    pub index_strict_files: Vec<String>,
    /// Wall-clock type names forbidden by `determinism`.
    pub time_idents: Vec<String>,
    /// Hash-collection type names forbidden by `determinism`.
    pub hash_idents: Vec<String>,
    /// Files where float `==`/`!=` is checked.
    pub float_files: Vec<String>,
    /// Identifier names treated as float-valued in those files.
    pub float_fields: Vec<String>,
    /// Files allowed to call `spawn(…)`.
    pub spawn_allowed: Vec<String>,
    /// Files under the lock-order protocol.
    pub lock_files: Vec<String>,
    /// Declared lock phases, in acquisition order.
    pub lock_phases: Vec<String>,
    /// Headers every library crate root must carry.
    pub required_headers: Vec<String>,
    /// Crates whose module-scope `pub` items must carry doc comments.
    pub doc_paths: Vec<String>,
}

impl Policy {
    /// Builds the policy from a parsed config, falling back to built-in
    /// defaults for absent keys.
    pub fn from_config(cfg: &Config) -> Policy {
        let list_or = |key: &str, default: &[&str]| -> Vec<String> {
            if cfg.contains(key) {
                cfg.list(key)
            } else {
                default.iter().map(|s| (*s).to_owned()).collect()
            }
        };
        Policy {
            include: list_or("paths.include", &["crates", "src"]),
            exclude: list_or(
                "paths.exclude",
                &["target", "vendor", "crates/skylint/tests/fixtures"],
            ),
            library_paths: list_or(
                "crates.library",
                &[
                    "crates/geom",
                    "crates/algos",
                    "crates/core",
                    "crates/storage",
                    "crates/rtree",
                    "crates/datagen",
                    "src",
                ],
            ),
            index_strict_files: list_or("rules.no-panic-paths.index-strict-files", &[]),
            time_idents: list_or("rules.determinism.time-idents", &["Instant", "SystemTime"]),
            hash_idents: list_or("rules.determinism.hash-idents", &["HashMap", "HashSet"]),
            float_files: list_or("rules.determinism.float-eq-files", &[]),
            float_fields: list_or("rules.determinism.float-fields", &["lo", "hi"]),
            spawn_allowed: list_or("rules.concurrency-hygiene.spawn-allowed", &[]),
            lock_files: list_or("rules.concurrency-hygiene.lock-protocol-files", &[]),
            lock_phases: list_or("rules.concurrency-hygiene.lock-phases", &["read", "write"]),
            required_headers: list_or("rules.api-hygiene.required-headers", &[]),
            doc_paths: list_or("rules.api-hygiene.doc-paths", &[]),
        }
    }
}

/// Aggregate result of one scan.
pub struct ScanOutcome {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// Total source lines lexed.
    pub lines_scanned: usize,
}

/// Scans `root` under `policy` and returns every finding.
pub fn scan(root: &Path, policy: &Policy) -> std::io::Result<ScanOutcome> {
    let mut files = Vec::new();
    for inc in &policy.include {
        collect_rs_files(root, &root.join(inc), policy, &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut findings = Vec::new();
    let mut lines_scanned = 0usize;
    let files_scanned = files.len();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        lines_scanned += src.lines().count();
        let model = SourceModel::build(rel.clone(), &src);
        let ctx = FileCtx {
            is_library: policy
                .library_paths
                .iter()
                .any(|p| rel == p || rel.starts_with(&format!("{p}/"))),
            is_test_file: is_test_path(rel),
            model: &model,
            policy,
        };
        run_all(&ctx, &mut findings);
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    Ok(ScanOutcome { findings, files_scanned, lines_scanned })
}

/// Lints a single in-memory file (used by the fixture tests).
pub fn scan_source(path: &str, src: &str, policy: &Policy) -> Vec<Finding> {
    let model = SourceModel::build(path.to_owned(), src);
    let ctx = FileCtx {
        is_library: policy
            .library_paths
            .iter()
            .any(|p| path == p || path.starts_with(&format!("{p}/"))),
        is_test_file: is_test_path(path),
        model: &model,
        policy,
    };
    let mut findings = Vec::new();
    run_all(&ctx, &mut findings);
    findings
}

/// Whether a repo-relative path is test/bench/example code, exempt from
/// the library-only rules.
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    policy: &Policy,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let rel_of = |p: &Path| -> String {
        p.strip_prefix(root)
            .unwrap_or(p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/")
    };
    if dir.is_file() {
        let rel = rel_of(dir);
        if rel.ends_with(".rs") && !excluded(&rel, policy) {
            out.push(rel);
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let rel = rel_of(&path);
        if excluded(&rel, policy) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, policy, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn excluded(rel: &str, policy: &Policy) -> bool {
    policy.exclude.iter().any(|p| rel == p || rel.starts_with(&format!("{p}/")))
}
