//! Scan orchestration: policy resolution, config validation, file
//! walking, per-file rule dispatch and the whole-workspace dataflow pass.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::callgraph::Workspace;
use crate::config::Config;
use crate::model::SourceModel;
use crate::parser::parse;
use crate::report::Finding;
use crate::rules::{dead_allow, run_all, run_workspace, FileCtx, RULE_IDS};
use crate::symbols::extract_fns;

/// A scan that could not produce findings: either the filesystem failed
/// or the configuration/annotations are invalid (hard error, exit 2).
#[derive(Debug)]
pub enum ScanError {
    /// Filesystem error while walking or reading sources.
    Io(std::io::Error),
    /// Invalid configuration or malformed/unknown allow annotations.
    /// Each entry is one pointed message.
    Policy(Vec<String>),
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::Io(e) => write!(f, "io error: {e}"),
            ScanError::Policy(msgs) => {
                writeln!(f, "configuration errors:")?;
                for m in msgs {
                    writeln!(f, "  - {m}")?;
                }
                Ok(())
            }
        }
    }
}

impl From<std::io::Error> for ScanError {
    fn from(e: std::io::Error) -> Self {
        ScanError::Io(e)
    }
}

/// Resolved policy: every knob `skylint.toml` can set, with defaults that
/// match this repository's layout.
#[derive(Clone, Debug)]
pub struct Policy {
    /// Path prefixes scanned for Rust sources.
    pub include: Vec<String>,
    /// Path prefixes skipped entirely (vendored code, build output, …).
    pub exclude: Vec<String>,
    /// Crates whose `src/` trees carry the full library policy.
    pub library_paths: Vec<String>,
    /// Files where bracket indexing is forbidden (no-panic-paths).
    pub index_strict_files: Vec<String>,
    /// Wall-clock type names forbidden by `determinism`.
    pub time_idents: Vec<String>,
    /// Hash-collection type names forbidden by `determinism`.
    pub hash_idents: Vec<String>,
    /// Files where float `==`/`!=` is checked.
    pub float_files: Vec<String>,
    /// Identifier names treated as float-valued in those files.
    pub float_fields: Vec<String>,
    /// Files allowed to call `spawn(…)`.
    pub spawn_allowed: Vec<String>,
    /// Files under the lock-order protocol.
    pub lock_files: Vec<String>,
    /// Declared lock phases, in acquisition order.
    pub lock_phases: Vec<String>,
    /// Headers every library crate root must carry.
    pub required_headers: Vec<String>,
    /// Crates whose module-scope `pub` items must carry doc comments.
    pub doc_paths: Vec<String>,
    /// Files/dirs whose functions enter the lock-acquisition graph
    /// (lock-order). Empty disables the rule.
    pub lock_graph_files: Vec<String>,
    /// May-panic fact kinds tracked by panic-reachability: any of
    /// `unwrap`, `expect`, `panic-macro`, `indexing`, `arithmetic`.
    pub panic_sources: Vec<String>,
    /// Kernel designators (`fn` or `Type::fn`) rooting hot-path-alloc
    /// reachability. Empty disables the rule.
    pub alloc_kernels: Vec<String>,
    /// Files/dirs where allocation calls reachable from a kernel are
    /// flagged (keeps shared helpers out of scope).
    pub alloc_scope_files: Vec<String>,
    /// Call names (`push`) and paths (`Vec::new`) counted as allocation
    /// machinery.
    pub alloc_calls: Vec<String>,
    /// Macro names counted as allocation machinery (`vec`, `format`).
    pub alloc_macros: Vec<String>,
    /// Recorder method names forbidden inside the kernels' reachable
    /// call tree (hot-path-alloc): kernels return stats by value, the
    /// engine publishes them. Empty disables the check.
    pub recorder_idents: Vec<String>,
    /// Files/dirs whose functions are checked by guard-hold-span.
    /// Empty disables the rule.
    pub guard_span_files: Vec<String>,
    /// Designators (`fn` or `Type::fn`) of expensive operations a live
    /// lock guard must not span; callees reaching one transitively over
    /// the call graph count too. Empty disables guard-hold-span.
    pub expensive_calls: Vec<String>,
    /// Designators never treated as expensive, cutting transitive
    /// propagation through them: the publish steps a guard *exists* to
    /// cover (and known victims of name-only call resolution).
    pub expensive_exempt: Vec<String>,
    /// Type-name prefixes treated as synchronized when they appear in a
    /// captured binding's declaration (capture-race): `Atomic` covers
    /// AtomicUsize/AtomicU8/…, `Mutex` covers Mutex<T>.
    pub sync_types: Vec<String>,
    /// Function designators allowed to read the process environment
    /// (env-read-confinement): the once-style init/pin functions.
    pub env_allowed_fns: Vec<String>,
    /// Files/dirs additionally allowed to read the process environment.
    pub env_allowed_files: Vec<String>,
    /// Files/dirs checked by range-taint. Empty disables the rule.
    pub taint_files: Vec<String>,
    /// Call names whose results are tainted (range-taint sources:
    /// byte/endpoint decoders and parsers).
    pub taint_sources: Vec<String>,
    /// Call names that must not receive tainted values (range scans and
    /// allocation-size sinks).
    pub taint_sinks: Vec<String>,
    /// Call names that bless a tainted argument (range-taint validators).
    pub taint_validators: Vec<String>,
    /// Files/dirs whose sync primitives must come from the
    /// `skycheck::sync` shims (sync-confinement). Empty disables the rule.
    pub sync_confine_files: Vec<String>,
    /// Files/dirs scanned for static atomics and their access sites
    /// (atomic-ordering). Empty disables the rule.
    pub atomic_files: Vec<String>,
}

impl Policy {
    /// Builds the policy from a parsed config, falling back to built-in
    /// defaults for absent keys.
    pub fn from_config(cfg: &Config) -> Policy {
        let list_or = |key: &str, default: &[&str]| -> Vec<String> {
            if cfg.contains(key) {
                cfg.list(key)
            } else {
                default.iter().map(|s| (*s).to_owned()).collect()
            }
        };
        Policy {
            include: list_or("paths.include", &["crates", "src"]),
            exclude: list_or(
                "paths.exclude",
                &["target", "vendor", "crates/skylint/tests/fixtures"],
            ),
            library_paths: list_or(
                "crates.library",
                &[
                    "crates/geom",
                    "crates/algos",
                    "crates/core",
                    "crates/storage",
                    "crates/rtree",
                    "crates/datagen",
                    "src",
                ],
            ),
            index_strict_files: list_or("rules.no-panic-paths.index-strict-files", &[]),
            time_idents: list_or("rules.determinism.time-idents", &["Instant", "SystemTime"]),
            hash_idents: list_or("rules.determinism.hash-idents", &["HashMap", "HashSet"]),
            float_files: list_or("rules.determinism.float-eq-files", &[]),
            float_fields: list_or("rules.determinism.float-fields", &["lo", "hi"]),
            spawn_allowed: list_or("rules.concurrency-hygiene.spawn-allowed", &[]),
            lock_files: list_or("rules.concurrency-hygiene.lock-protocol-files", &[]),
            lock_phases: list_or("rules.concurrency-hygiene.lock-phases", &["read", "write"]),
            required_headers: list_or("rules.api-hygiene.required-headers", &[]),
            doc_paths: list_or("rules.api-hygiene.doc-paths", &[]),
            lock_graph_files: list_or("rules.lock-order.files", &[]),
            panic_sources: list_or(
                "rules.panic-reachability.sources",
                &["unwrap", "expect", "panic-macro"],
            ),
            alloc_kernels: list_or("rules.hot-path-alloc.kernels", &[]),
            alloc_scope_files: list_or("rules.hot-path-alloc.scope-files", &[]),
            alloc_calls: list_or(
                "rules.hot-path-alloc.calls",
                &[
                    "Vec::new",
                    "Box::new",
                    "push",
                    "clone",
                    "to_vec",
                    "to_owned",
                    "to_string",
                    "collect",
                    "extend",
                ],
            ),
            alloc_macros: list_or("rules.hot-path-alloc.macros", &["vec", "format"]),
            recorder_idents: list_or("rules.hot-path-alloc.recorder-idents", &[]),
            guard_span_files: list_or("rules.guard-hold-span.files", &[]),
            expensive_calls: list_or("rules.guard-hold-span.expensive", &[]),
            expensive_exempt: list_or("rules.guard-hold-span.exempt", &[]),
            sync_types: list_or(
                "rules.capture-race.sync-types",
                &["Mutex", "RwLock", "Atomic", "mpsc", "channel", "Condvar", "Barrier", "Once"],
            ),
            env_allowed_fns: list_or("rules.env-read-confinement.allowed-fns", &[]),
            env_allowed_files: list_or("rules.env-read-confinement.allowed-files", &[]),
            taint_files: list_or("rules.range-taint.files", &[]),
            taint_sources: list_or(
                "rules.range-taint.sources",
                &[
                    "get_u16_le",
                    "get_u32_le",
                    "get_u64_le",
                    "get_f64_le",
                    "from_le_bytes",
                    "from_be_bytes",
                    "parse",
                ],
            ),
            taint_sinks: list_or(
                "rules.range-taint.sinks",
                &["locate", "with_capacity", "reserve"],
            ),
            taint_validators: list_or("rules.range-taint.validators", &[]),
            sync_confine_files: list_or("rules.sync-confinement.files", &[]),
            atomic_files: list_or("rules.atomic-ordering.files", &[]),
        }
    }
}

/// Every `section.key` the config may set. Anything else is a hard error.
const KNOWN_KEYS: [&str; 32] = [
    "paths.include",
    "paths.exclude",
    "crates.library",
    "rules.no-panic-paths.index-strict-files",
    "rules.determinism.time-idents",
    "rules.determinism.hash-idents",
    "rules.determinism.float-eq-files",
    "rules.determinism.float-fields",
    "rules.concurrency-hygiene.spawn-allowed",
    "rules.concurrency-hygiene.lock-protocol-files",
    "rules.concurrency-hygiene.lock-phases",
    "rules.api-hygiene.required-headers",
    "rules.api-hygiene.doc-paths",
    "rules.lock-order.files",
    "rules.panic-reachability.sources",
    "rules.hot-path-alloc.kernels",
    "rules.hot-path-alloc.scope-files",
    "rules.hot-path-alloc.calls",
    "rules.hot-path-alloc.macros",
    "rules.hot-path-alloc.recorder-idents",
    "rules.guard-hold-span.files",
    "rules.guard-hold-span.expensive",
    "rules.guard-hold-span.exempt",
    "rules.capture-race.sync-types",
    "rules.env-read-confinement.allowed-fns",
    "rules.env-read-confinement.allowed-files",
    "rules.range-taint.files",
    "rules.range-taint.sources",
    "rules.range-taint.sinks",
    "rules.range-taint.validators",
    "rules.sync-confinement.files",
    "rules.atomic-ordering.files",
];

/// Panic-fact kinds `[rules.panic-reachability].sources` may name.
const PANIC_SOURCES: [&str; 5] = ["unwrap", "expect", "panic-macro", "indexing", "arithmetic"];

/// Validates a parsed config strictly: unknown keys, unknown rule names
/// in `rules.*` sections and unknown panic sources are all hard errors.
pub fn validate_config(cfg: &Config) -> Vec<String> {
    let mut errors = Vec::new();
    for key in cfg.keys() {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            if let Some(rest) = key.strip_prefix("rules.") {
                let rule = rest.split('.').next().unwrap_or(rest);
                if !RULE_IDS.contains(&rule) {
                    errors.push(format!(
                        "skylint.toml: `[rules.{rule}]` is not a known rule \
                         (known: {})",
                        RULE_IDS.join(", ")
                    ));
                    continue;
                }
            }
            errors.push(format!("skylint.toml: unknown key `{key}`"));
        }
    }
    if cfg.contains("rules.panic-reachability.sources") {
        for s in cfg.list("rules.panic-reachability.sources") {
            if !PANIC_SOURCES.contains(&s.as_str()) {
                errors.push(format!(
                    "skylint.toml: `{s}` is not a panic source (known: {})",
                    PANIC_SOURCES.join(", ")
                ));
            }
        }
    }
    errors
}

/// Aggregate result of one scan.
pub struct ScanOutcome {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// Total source lines lexed.
    pub lines_scanned: usize,
    /// Functions in the call-graph universe (library, non-test).
    pub functions_analyzed: usize,
    /// Resolved call edges in the workspace graph.
    pub call_edges: usize,
}

/// Scans `root` under `policy` and returns every finding.
///
/// Two passes: per-file token rules first, then the whole-workspace
/// dataflow rules over the call graph of library functions, then
/// `dead-allow` last (it needs to see every suppression the earlier
/// rules recorded). Malformed or unknown allow annotations abort the
/// scan with [`ScanError::Policy`].
pub fn scan(root: &Path, policy: &Policy) -> Result<ScanOutcome, ScanError> {
    let mut files = Vec::new();
    for inc in &policy.include {
        collect_rs_files(root, &root.join(inc), policy, &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut models = Vec::new();
    let mut lines_scanned = 0usize;
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        lines_scanned += src.lines().count();
        models.push(SourceModel::build(rel.clone(), &src));
    }
    let outcome = scan_models(&models, policy)?;
    Ok(ScanOutcome { lines_scanned, files_scanned: files.len(), ..outcome })
}

/// Lints a single in-memory file (used by the fixture tests). Runs the
/// per-file rules *and* the workspace rules with this file as the whole
/// universe.
pub fn scan_source(path: &str, src: &str, policy: &Policy) -> Result<Vec<Finding>, ScanError> {
    let models = vec![SourceModel::build(path.to_owned(), src)];
    Ok(scan_models(&models, policy)?.findings)
}

/// The shared second half of [`scan`]/[`scan_source`]: annotation
/// validation, per-file rules, workspace rules, dead-allow.
fn scan_models(models: &[SourceModel], policy: &Policy) -> Result<ScanOutcome, ScanError> {
    let mut errors = Vec::new();
    for m in models {
        for (line, msg) in &m.malformed_allows {
            errors.push(format!("{}:{line}: malformed skylint annotation: {msg}", m.path));
        }
        for (line, rules) in &m.allows {
            for r in rules {
                if !RULE_IDS.contains(&r.as_str()) {
                    errors.push(format!(
                        "{}:{line}: allow annotation names unknown rule `{r}` \
                         (known: {})",
                        m.path,
                        RULE_IDS.join(", ")
                    ));
                }
            }
        }
    }
    if !errors.is_empty() {
        return Err(ScanError::Policy(errors));
    }

    let mut findings = Vec::new();
    for m in models {
        let ctx = FileCtx {
            is_library: in_library(&m.path, policy),
            is_test_file: is_test_path(&m.path),
            model: m,
            policy,
        };
        run_all(&ctx, &mut findings);
    }

    // Whole-workspace pass: library, non-test functions only.
    let mut fns = Vec::new();
    let mut by_path: BTreeMap<&str, &SourceModel> = BTreeMap::new();
    for m in models {
        by_path.insert(m.path.as_str(), m);
        if !in_library(&m.path, policy) || is_test_path(&m.path) {
            continue;
        }
        let file = parse(&m.tokens);
        fns.extend(extract_fns(m, &file).into_iter().filter(|f| !f.in_test));
    }
    let ws = Workspace::build(fns);
    run_workspace(&ws, &by_path, policy, &mut findings);
    dead_allow(models, &by_path, &mut findings);

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    // No dedup: two identical-looking findings on one line are two real
    // sites (`let _: HashMap<_, _> = HashMap::new();` flags twice), and
    // the workspace rules already dedup their own edge/path sets.
    Ok(ScanOutcome {
        findings,
        files_scanned: models.len(),
        lines_scanned: 0,
        functions_analyzed: ws.fns.len(),
        call_edges: ws.edge_count(),
    })
}

fn in_library(rel: &str, policy: &Policy) -> bool {
    policy.library_paths.iter().any(|p| rel == p || rel.starts_with(&format!("{p}/")))
}

/// Whether a repo-relative path is test/bench/example code, exempt from
/// the library-only rules.
pub(crate) fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    policy: &Policy,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let rel_of = |p: &Path| -> String {
        p.strip_prefix(root)
            .unwrap_or(p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/")
    };
    if dir.is_file() {
        let rel = rel_of(dir);
        if rel.ends_with(".rs") && !excluded(&rel, policy) {
            out.push(rel);
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let rel = rel_of(&path);
        if excluded(&rel, policy) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, policy, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn excluded(rel: &str, policy: &Policy) -> bool {
    policy.exclude.iter().any(|p| rel == p || rel.starts_with(&format!("{p}/")))
}
