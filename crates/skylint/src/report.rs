//! Finding types and output formatting (human, JSON, bench record).

use std::fmt::Write as _;

/// One policy violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id (`no-panic-paths`, `determinism`, …).
    pub rule: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// The trimmed offending source line.
    pub snippet: String,
}

/// Renders findings for terminals: `file:line [rule] message` + snippet.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{} [{}] {}", f.file, f.line, f.rule, f.message);
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    | {}", f.snippet);
        }
    }
    let _ = writeln!(
        out,
        "skylint: {} violation{} found",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    out
}

/// Renders findings as a JSON array (stable field order, no deps).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"snippet\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(&f.rule),
            json_str(&f.message),
            json_str(&f.snippet),
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// The `BENCH_skylint.json` record: scan scale and wall time, so future
/// PRs can track the cost of the analysis pass.
pub fn render_bench(
    files_scanned: usize,
    lines_scanned: usize,
    rules: &[&str],
    findings: usize,
    wall_ms: f64,
) -> String {
    let rule_list = rules.iter().map(|r| json_str(r)).collect::<Vec<_>>().join(", ");
    format!(
        "{{\n  \"tool\": \"skylint\",\n  \"files_scanned\": {files_scanned},\n  \
         \"lines_scanned\": {lines_scanned},\n  \"rules_run\": [{rule_list}],\n  \
         \"findings\": {findings},\n  \"wall_ms\": {wall_ms:.2}\n}}\n"
    )
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> Finding {
        Finding {
            rule: "determinism".into(),
            file: "crates/core/src/cache.rs".into(),
            line: 15,
            message: "HashMap has randomized iteration order".into(),
            snippet: "use std::collections::HashMap;".into(),
        }
    }

    #[test]
    fn human_output_has_location_rule_and_snippet() {
        let s = render_human(&[f()]);
        assert!(s.contains("crates/core/src/cache.rs:15 [determinism]"));
        assert!(s.contains("| use std::collections::HashMap;"));
        assert!(s.contains("1 violation found"));
    }

    #[test]
    fn json_escapes_quotes() {
        let mut bad = f();
        bad.message = "a \"quoted\" msg".into();
        let s = render_json(&[bad]);
        assert!(s.contains("a \\\"quoted\\\" msg"));
        assert!(s.trim_end().ends_with(']'));
    }
}
