//! Finding types and output formatting (human, JSON, bench record).
//!
//! The machine-readable report is versioned: the top-level object carries
//! `"schema": "skylint-report/3"` and consumers must check it. Schema
//! history — `/1` was a bare findings array (PR 2); `/2` wrapped it in an
//! object with scan-scale counters (PR 3); `/3` extends the rule universe
//! with the CFG-dataflow families (guard-hold-span, capture-race,
//! env-read-confinement, range-taint), which changes the `rules` list and
//! the per-rule count map in the bench record. The golden-file test under
//! `tests/golden/` pins the exact bytes.

use std::fmt::Write as _;

use crate::engine::ScanOutcome;

/// Version tag of the `--json` report format.
pub const REPORT_SCHEMA: &str = "skylint-report/3";

/// One policy violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id (`no-panic-paths`, `determinism`, …).
    pub rule: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// The trimmed offending source line.
    pub snippet: String,
}

/// Renders findings for terminals: `file:line [rule] message` + snippet.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{} [{}] {}", f.file, f.line, f.rule, f.message);
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    | {}", f.snippet);
        }
    }
    let _ = writeln!(
        out,
        "skylint: {} violation{} found",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    out
}

/// Renders the versioned JSON report object (stable field order, no
/// deps). See the module docs for the schema contract.
pub fn render_json(outcome: &ScanOutcome, rules: &[&str]) -> String {
    let rule_list = rules.iter().map(|r| json_str(r)).collect::<Vec<_>>().join(", ");
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_str(REPORT_SCHEMA));
    let _ = writeln!(out, "  \"files_scanned\": {},", outcome.files_scanned);
    let _ = writeln!(out, "  \"lines_scanned\": {},", outcome.lines_scanned);
    let _ = writeln!(out, "  \"functions_analyzed\": {},", outcome.functions_analyzed);
    let _ = writeln!(out, "  \"call_edges\": {},", outcome.call_edges);
    let _ = writeln!(out, "  \"rules\": [{rule_list}],");
    out.push_str("  \"findings\": [\n");
    for (i, f) in outcome.findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"snippet\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(&f.rule),
            json_str(&f.message),
            json_str(&f.snippet),
        );
        out.push_str(if i + 1 < outcome.findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `BENCH_skylint.json` record: scan scale, per-rule finding counts
/// and wall time, so future PRs can track the cost of the analysis pass.
pub fn render_bench(outcome: &ScanOutcome, rules: &[&str], wall_ms: f64) -> String {
    let rule_list = rules.iter().map(|r| json_str(r)).collect::<Vec<_>>().join(", ");
    let per_rule = rules
        .iter()
        .map(|r| {
            let n = outcome.findings.iter().filter(|f| f.rule == **r).count();
            format!("    {}: {n}", json_str(r))
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"tool\": \"skylint\",\n  \"schema\": \"skylint-bench/3\",\n  \
         \"files_scanned\": {},\n  \"lines_scanned\": {},\n  \
         \"functions_analyzed\": {},\n  \"call_edges\": {},\n  \
         \"rules_run\": [{rule_list}],\n  \"findings_per_rule\": {{\n{per_rule}\n  }},\n  \
         \"findings\": {},\n  \"wall_ms\": {wall_ms:.2}\n}}\n",
        outcome.files_scanned,
        outcome.lines_scanned,
        outcome.functions_analyzed,
        outcome.call_edges,
        outcome.findings.len(),
    )
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> Finding {
        Finding {
            rule: "determinism".into(),
            file: "crates/core/src/cache.rs".into(),
            line: 15,
            message: "HashMap has randomized iteration order".into(),
            snippet: "use std::collections::HashMap;".into(),
        }
    }

    #[test]
    fn human_output_has_location_rule_and_snippet() {
        let s = render_human(&[f()]);
        assert!(s.contains("crates/core/src/cache.rs:15 [determinism]"));
        assert!(s.contains("| use std::collections::HashMap;"));
        assert!(s.contains("1 violation found"));
    }

    #[test]
    fn json_report_is_versioned_and_escapes_quotes() {
        let mut bad = f();
        bad.message = "a \"quoted\" msg".into();
        let outcome = ScanOutcome {
            findings: vec![bad],
            files_scanned: 1,
            lines_scanned: 20,
            functions_analyzed: 3,
            call_edges: 2,
        };
        let s = render_json(&outcome, &["determinism"]);
        assert!(s.starts_with("{\n  \"schema\": \"skylint-report/3\","));
        assert!(s.contains("a \\\"quoted\\\" msg"));
        assert!(s.contains("\"functions_analyzed\": 3"));
        assert!(s.trim_end().ends_with('}'));
    }

    #[test]
    fn bench_record_counts_findings_per_rule() {
        let outcome = ScanOutcome {
            findings: vec![f(), f()],
            files_scanned: 1,
            lines_scanned: 20,
            functions_analyzed: 3,
            call_edges: 2,
        };
        let s = render_bench(&outcome, &["determinism", "lock-order"], 1.5);
        assert!(s.contains("\"determinism\": 2"));
        assert!(s.contains("\"lock-order\": 0"));
        assert!(s.contains("\"schema\": \"skylint-bench/3\""));
    }
}
