//! Per-file symbol extraction: function definitions and the semantic
//! events inside their bodies.
//!
//! The parser gives structure (which tokens belong to which function); this
//! module turns each function body into a flat list of [`Event`]s — method
//! calls with receiver chains, path calls, macro uses, indexing, integer
//! arithmetic, and lock acquisitions with **guard liveness extents**. The
//! call graph (`callgraph.rs`) consumes these events; it never looks at raw
//! tokens again.
//!
//! Guard liveness follows Rust's temporary-drop semantics, which is what
//! makes the lock-order analysis precise enough to run on real code:
//!
//! * a let-bound, un-chained acquisition (`let g = self.inner.read();`)
//!   holds its guard to the end of the enclosing block;
//! * a chained or un-bound acquisition (`self.inner.read().len()`,
//!   `self.clock.write().touch(id);`) is a temporary dropped at the end of
//!   its statement.

use crate::ast::{Block, BlockChild, File, Item, ItemKind};
use crate::cfg::Cfg;
use crate::lexer::{TokKind, Token};
use crate::model::SourceModel;

/// Which way a lock acquisition locks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// `.read()` — shared.
    Read,
    /// `.write()` / `.lock()` — exclusive.
    Write,
}

impl LockKind {
    /// Display name matching the `// lock-order:` annotation vocabulary.
    pub fn as_str(self) -> &'static str {
        match self {
            LockKind::Read => "read",
            LockKind::Write => "write",
        }
    }
}

/// Discriminant plus payload of one body event.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// `recv.name(…)`; `recv` is the dotted identifier chain (possibly
    /// empty for complex receivers like `foo().bar()`).
    Method {
        /// Receiver identifier chain, outermost first (`self`, `cache`, …).
        recv: Vec<String>,
        /// The call has zero arguments.
        args_empty: bool,
    },
    /// `qual::name(…)`; `qual` holds the path segments before the name.
    Path {
        /// Path qualifier segments (`Vec` for `Vec::new`).
        qual: Vec<String>,
    },
    /// `name(…)` with no receiver or path.
    Bare,
    /// `name!(…)` / `name![…]` / `name! {…}`.
    MacroUse,
    /// `expr[…]` indexing in expression position.
    Index,
    /// `+`/`-`/`*` (or compound assignment) with an integer-literal side.
    IntArith,
    /// A zero-argument `.read()`/`.write()`/`.lock()` on a named lock.
    Acquire {
        /// Lock identity: the last receiver segment (`inner`, `clock`).
        lock: String,
        /// Shared or exclusive.
        kind: LockKind,
        /// Token index the guard is live through (inclusive).
        held_until: usize,
        /// The `// lock-order:` phase annotation near the site, if any.
        phase: Option<String>,
    },
}

/// One semantic event inside a function body.
#[derive(Clone, Debug)]
pub struct Event {
    /// Event payload.
    pub kind: EventKind,
    /// Name involved (method/function/macro name; `[`/op text otherwise).
    pub name: String,
    /// Token index of the event's anchor token.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
}

/// One function definition with its extracted body events.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name; empty for free functions.
    pub owner: String,
    /// Enclosing inline-module chain.
    pub module: Vec<String>,
    /// Unrestricted `pub`.
    pub is_pub: bool,
    /// Defined inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// 1-based line of the definition.
    pub line: u32,
    /// Body events in source order (empty for bodiless signatures).
    pub events: Vec<Event>,
    /// Body token span `(lo, hi)`, half-open over the whole `{…}` block.
    pub body_span: Option<(usize, usize)>,
    /// Control-flow graph of the body (trivial entry→exit when bodiless).
    pub cfg: Cfg,
    /// Token spans of every nested block inside the body (scopes, match
    /// bodies, closures) in source order — nested `fn` items excluded.
    pub block_spans: Vec<(usize, usize)>,
}

impl FnDef {
    /// `Owner::name` when owned, plain name otherwise — for messages.
    pub fn qualified(&self) -> String {
        if self.owner.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.owner, self.name)
        }
    }

    /// Whether this definition matches a kernel designator: either a bare
    /// function name or an `Owner::name` pair.
    pub fn matches_designator(&self, d: &str) -> bool {
        match d.split_once("::") {
            Some((owner, name)) => self.owner == owner && self.name == name,
            None => self.name == d,
        }
    }
}

/// Extracts every function definition (with events) from a parsed file.
pub fn extract_fns(model: &SourceModel, file: &File) -> Vec<FnDef> {
    let mut out = Vec::new();
    file.walk_items(&mut |item: &Item, mods: &[String], owner: &str| {
        let ItemKind::Fn(f) = &item.kind else { return };
        let (events, body_span, cfg, block_spans) = match &f.body {
            Some(body) => {
                let mut spans = Vec::new();
                collect_block_spans(body, &mut spans);
                (
                    extract_events(model, body),
                    Some((body.span.lo, body.span.hi)),
                    Cfg::build(&model.tokens, body),
                    spans,
                )
            }
            None => (Vec::new(), None, Cfg::empty(), Vec::new()),
        };
        out.push(FnDef {
            file: model.path.clone(),
            name: f.name.clone(),
            owner: owner.to_owned(),
            module: mods.to_vec(),
            is_pub: item.is_pub,
            in_test: model.in_test_region(item.line),
            line: item.line,
            events,
            body_span,
            cfg,
            block_spans,
        });
    });
    out
}

/// Records the spans of all blocks nested inside `body` (not `body`
/// itself), skipping nested `fn` items whose blocks belong to them.
fn collect_block_spans(body: &Block, out: &mut Vec<(usize, usize)>) {
    for child in &body.children {
        if let BlockChild::Block(b) = child {
            out.push((b.span.lo, b.span.hi));
            collect_block_spans(b, out);
        }
    }
}

/// Keywords that can precede `(` or `[` without being a call/index.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "return"
            | "in"
            | "mut"
            | "ref"
            | "move"
            | "let"
            | "const"
            | "static"
            | "as"
            | "break"
            | "continue"
            | "where"
            | "impl"
            | "dyn"
            | "fn"
            | "for"
            | "while"
            | "loop"
            | "unsafe"
            | "use"
            | "pub"
            | "type"
            | "struct"
            | "enum"
            | "trait"
            | "await"
            | "self"
            | "Self"
            | "super"
            | "crate"
    )
}

fn extract_events(model: &SourceModel, body: &Block) -> Vec<Event> {
    let mut events = Vec::new();
    scan_block(model, body, &mut events);
    events
}

/// Scans one block: loose token ranges directly, child blocks recursively,
/// child items (nested `fn`s) not at all — their events belong to them.
fn scan_block(model: &SourceModel, block: &Block, out: &mut Vec<Event>) {
    let close = block.span.hi.saturating_sub(1);
    let mut i = block.span.lo + 1;
    for child in &block.children {
        let (lo, hi) = match child {
            BlockChild::Block(b) => (b.span.lo, b.span.hi),
            BlockChild::Item(it) => (it.span.lo, it.span.hi),
        };
        scan_range(model, i, lo, close, out);
        if let BlockChild::Block(b) = child {
            scan_block(model, b, out);
        }
        i = hi;
    }
    scan_range(model, i, close, close, out);
}

/// Extracts events from the loose tokens `[lo, hi)` of a block whose
/// closing brace sits at token index `block_close`.
fn scan_range(model: &SourceModel, lo: usize, hi: usize, block_close: usize, out: &mut Vec<Event>) {
    let toks = &model.tokens;
    for i in lo..hi.min(toks.len()) {
        let t = &toks[i];
        if t.is_comment() {
            continue;
        }
        if t.kind == TokKind::Ident {
            ident_event(model, i, block_close, out);
            continue;
        }
        // Indexing in expression position.
        if t.is_op("[")
            && prev_code_idx(toks, i).is_some_and(|p| {
                let pt = &toks[p];
                (pt.kind == TokKind::Ident && !is_expr_keyword(&pt.text))
                    || pt.is_op(")")
                    || pt.is_op("]")
            })
        {
            out.push(Event { kind: EventKind::Index, name: "[".into(), tok: i, line: t.line });
        }
        // Integer arithmetic with a literal side (overflow candidates).
        if t.kind == TokKind::Op && matches!(t.text.as_str(), "+" | "-" | "*" | "+=" | "-=" | "*=")
        {
            let prev = prev_code_idx(toks, i).map(|p| &toks[p]);
            let next = next_code_idx(toks, i).map(|n| &toks[n]);
            let literal_side = prev.is_some_and(|p| p.kind == TokKind::Int)
                || next.is_some_and(|n| n.kind == TokKind::Int);
            let unary =
                prev.is_none_or(|p| p.kind == TokKind::Op && !p.is_op(")") && !p.is_op("]"));
            if literal_side && !unary {
                out.push(Event {
                    kind: EventKind::IntArith,
                    name: t.text.clone(),
                    tok: i,
                    line: t.line,
                });
            }
        }
    }
}

/// Classifies an identifier token: macro use, method/path/bare call, or
/// nothing. Pushes at most two events (a call plus an acquisition).
fn ident_event(model: &SourceModel, i: usize, block_close: usize, out: &mut Vec<Event>) {
    let toks = &model.tokens;
    let t = &toks[i];
    let Some(n1) = next_code_idx(toks, i) else { return };
    if toks[n1].is_op("!") {
        // `name!` — only a macro use when a delimiter follows (`x != y`
        // lexes `!=` as one token, so bare `!` here is already macro-ish,
        // but `!` as unary not-prefix never *follows* an ident).
        let delim = next_code_idx(toks, n1)
            .is_some_and(|d| toks[d].is_op("(") || toks[d].is_op("[") || toks[d].is_op("{"));
        if delim {
            out.push(Event {
                kind: EventKind::MacroUse,
                name: t.text.clone(),
                tok: i,
                line: t.line,
            });
        }
        return;
    }
    // Call opening paren: direct or through a turbofish.
    let open = if toks[n1].is_op("(") {
        Some(n1)
    } else if toks[n1].is_op("::") {
        match next_code_idx(toks, n1) {
            Some(n2) if toks[n2].is_op("<") => {
                let after = skip_angles(toks, n2);
                after.filter(|&a| toks[a].is_op("("))
            }
            _ => None,
        }
    } else {
        None
    };
    let Some(open) = open else { return };
    if is_expr_keyword(&t.text) {
        return;
    }
    let prev = prev_code_idx(toks, i);
    match prev.map(|p| &toks[p]) {
        Some(p) if p.is_op(".") => {
            let recv = receiver_chain(toks, i);
            let args_empty = next_code_idx(toks, open).is_some_and(|a| toks[a].is_op(")"));
            if args_empty && matches!(t.text.as_str(), "read" | "write" | "lock") {
                // Lock identity is the full receiver field path with the
                // leading `self` stripped: `self.cache.inner` and
                // `self.inner` are distinct graph nodes even when the
                // field names collide across types (no type inference).
                let path: Vec<&str> = recv
                    .iter()
                    .enumerate()
                    .filter(|&(j, s)| !(j == 0 && s == "self"))
                    .map(|(_, s)| s.as_str())
                    .collect();
                if !path.is_empty() {
                    let lock = path.join(".");
                    let kind = if t.text == "read" { LockKind::Read } else { LockKind::Write };
                    let held_until = guard_extent(toks, i, open, block_close);
                    let phase = lock_phase_annotation(model, t.line);
                    out.push(Event {
                        kind: EventKind::Acquire { lock, kind, held_until, phase },
                        name: t.text.clone(),
                        tok: i,
                        line: t.line,
                    });
                }
            }
            out.push(Event {
                kind: EventKind::Method { recv, args_empty },
                name: t.text.clone(),
                tok: i,
                line: t.line,
            });
        }
        Some(p) if p.is_op("::") => {
            let qual = path_qualifier(toks, i);
            out.push(Event {
                kind: EventKind::Path { qual },
                name: t.text.clone(),
                tok: i,
                line: t.line,
            });
        }
        _ => {
            // Uppercase initials are tuple-struct/enum constructors
            // (`Some(…)`, `PointBlock(…)`) — types, not calls.
            if !t.text.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                out.push(Event {
                    kind: EventKind::Bare,
                    name: t.text.clone(),
                    tok: i,
                    line: t.line,
                });
            }
        }
    }
}

/// Walks the dotted receiver chain left of a method name, outermost first
/// (`self.cache.inner.read()` → `[self, cache, inner]`). Complex receivers
/// (`foo().read()`) yield an empty chain.
fn receiver_chain(toks: &[Token], method: usize) -> Vec<String> {
    let mut recv = Vec::new();
    let Some(mut dot) = prev_code_idx(toks, method) else { return recv };
    while let Some(p) = prev_code_idx(toks, dot) {
        let pt = &toks[p];
        if pt.kind == TokKind::Ident {
            recv.push(pt.text.clone());
            match prev_code_idx(toks, p) {
                Some(q) if toks[q].is_op(".") => dot = q,
                _ => break,
            }
        } else {
            if pt.is_op(")") || pt.is_op("]") || pt.is_op("?") {
                recv.clear();
            }
            break;
        }
    }
    recv.reverse();
    recv
}

/// Collects the `::`-separated qualifier segments left of a path call
/// (`a::b::name(…)` → `[a, b]`, innermost last).
fn path_qualifier(toks: &[Token], name: usize) -> Vec<String> {
    let mut qual = Vec::new();
    let Some(mut sep) = prev_code_idx(toks, name) else { return qual };
    while let Some(p) = prev_code_idx(toks, sep) {
        let pt = &toks[p];
        if pt.kind == TokKind::Ident {
            qual.push(pt.text.clone());
            match prev_code_idx(toks, p) {
                Some(q) if toks[q].is_op("::") => sep = q,
                _ => break,
            }
        } else {
            break; // turbofish or `<T as Trait>::` qualifier — leave partial
        }
    }
    qual.reverse();
    qual
}

/// How long the guard returned by the acquisition at `method` lives, as a
/// token index (inclusive). See the module docs for the heuristic.
fn guard_extent(toks: &[Token], method: usize, open: usize, block_close: usize) -> usize {
    let close = match_paren(toks, open, block_close);
    let chained = next_code_idx(toks, close).is_some_and(|n| toks[n].is_op("."));
    if !chained && statement_is_let(toks, method) {
        return block_close;
    }
    statement_end(toks, close, block_close)
}

/// Whether the statement containing `at` starts with `let` (naive backward
/// scan to the nearest `;` / `{` / `}`; acquisition prefixes never contain
/// those tokens in this codebase's idiom).
fn statement_is_let(toks: &[Token], at: usize) -> bool {
    let mut i = at;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        if t.is_comment() {
            continue;
        }
        if t.is_op(";") || t.is_op("{") || t.is_op("}") {
            return next_code_idx(toks, i).is_some_and(|n| toks[n].is_ident("let"));
        }
    }
    false
}

/// Token index where the statement containing `from` ends: the `;` at
/// relative depth zero, or wherever a delimiter closes past the starting
/// depth (expression argument inside a macro/call), capped at the block's
/// closing brace.
pub(crate) fn statement_end(toks: &[Token], from: usize, block_close: usize) -> usize {
    let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
    let mut i = from + 1;
    while i <= block_close && i < toks.len() {
        let t = &toks[i];
        if !t.is_comment() {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => brace += 1,
                "}" => brace -= 1,
                ";" if paren == 0 && bracket == 0 && brace == 0 => return i,
                _ => {}
            }
            if paren < 0 || bracket < 0 || brace < 0 {
                return i;
            }
        }
        i += 1;
    }
    block_close
}

/// Reads the `// lock-order: <phase>` annotation on or above `line`.
fn lock_phase_annotation(model: &SourceModel, line: u32) -> Option<String> {
    let comment = model.comment_near(line, "lock-order:")?;
    comment.split("lock-order:").nth(1).and_then(|s| s.split_whitespace().next()).map(str::to_owned)
}

/// Index of the `)` matching the `(` at `open`, capped at `limit`.
pub(crate) fn match_paren(toks: &[Token], open: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i <= limit && i < toks.len() {
        if toks[i].is_op("(") {
            depth += 1;
        } else if toks[i].is_op(")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    limit.min(toks.len().saturating_sub(1))
}

/// Skips `<…>` starting at `open`, returning the index after the match.
fn skip_angles(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Op {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            if depth <= 0 && (t.text == ">" || t.text == ">>") {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

/// Previous non-comment token index.
pub(crate) fn prev_code_idx(toks: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !toks[j].is_comment())
}

/// Next non-comment token index.
pub(crate) fn next_code_idx(toks: &[Token], i: usize) -> Option<usize> {
    (i + 1..toks.len()).find(|&j| !toks[j].is_comment())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn fns(src: &str) -> Vec<FnDef> {
        let model = SourceModel::build("lib/src/x.rs".into(), src);
        let file = parse(&model.tokens);
        extract_fns(&model, &file)
    }

    fn events_of<'a>(defs: &'a [FnDef], name: &str) -> &'a [Event] {
        &defs.iter().find(|d| d.name == name).unwrap_or_else(|| panic!("no fn {name}")).events
    }

    #[test]
    fn method_path_bare_and_macro_events() {
        let defs = fns("fn work(xs: &[u32]) -> Vec<u32> {\n\
                 let mut out = Vec::new();\n\
                 out.push(helper(xs.len()));\n\
                 let v: Vec<u32> = xs.iter().copied().collect::<Vec<u32>>();\n\
                 assert_eq!(v.len(), out.len());\n\
                 out\n\
             }\n\
             fn helper(n: usize) -> u32 { n as u32 }\n");
        let ev = events_of(&defs, "work");
        let names: Vec<(&str, &str)> = ev
            .iter()
            .map(|e| {
                let kind = match &e.kind {
                    EventKind::Method { .. } => "method",
                    EventKind::Path { .. } => "path",
                    EventKind::Bare => "bare",
                    EventKind::MacroUse => "macro",
                    _ => "other",
                };
                (kind, e.name.as_str())
            })
            .collect();
        assert!(names.contains(&("path", "new")), "{names:?}");
        assert!(names.contains(&("method", "push")), "{names:?}");
        assert!(names.contains(&("bare", "helper")), "{names:?}");
        assert!(names.contains(&("method", "collect")), "{names:?}"); // turbofish
        assert!(names.contains(&("macro", "assert_eq")), "{names:?}");
    }

    #[test]
    fn nested_fn_events_stay_with_the_nested_fn() {
        let defs = fns("fn outer() {\n\
                 fn inner(xs: &[u32]) -> u32 { xs[0] }\n\
                 inner(&[1]);\n\
             }\n");
        assert!(events_of(&defs, "outer").iter().all(|e| !matches!(e.kind, EventKind::Index)));
        assert!(events_of(&defs, "inner").iter().any(|e| matches!(e.kind, EventKind::Index)));
    }

    #[test]
    fn owners_modules_and_visibility() {
        let defs = fns("pub mod m {\n\
                 pub struct S;\n\
                 impl S {\n\
                     pub fn open(&self) {}\n\
                     fn hidden(&self) {}\n\
                 }\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() {}\n\
             }\n");
        let open = defs.iter().find(|d| d.name == "open").unwrap();
        assert_eq!(open.owner, "S");
        assert_eq!(open.module, vec!["m"]);
        assert!(open.is_pub);
        assert!(!open.in_test);
        assert!(!defs.iter().find(|d| d.name == "hidden").unwrap().is_pub);
        assert!(defs.iter().find(|d| d.name == "t").unwrap().in_test);
    }

    fn acquires(defs: &[FnDef], name: &str) -> Vec<(String, LockKind, usize)> {
        events_of(defs, name)
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Acquire { lock, kind, held_until, .. } => {
                    Some((lock.clone(), *kind, *held_until))
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn let_bound_guard_lives_to_block_end_chained_guard_is_a_temporary() {
        let defs = fns("impl Shared {\n\
                 fn held(&self) -> usize {\n\
                     let g = self.cache.inner.read(); // lock-order: read\n\
                     g.len()\n\
                 }\n\
                 fn temp(&self) -> usize {\n\
                     let n = self.inner.read().len(); // lock-order: read\n\
                     n + self.other.len()\n\
                 }\n\
             }\n");
        let held = acquires(&defs, "held");
        assert_eq!(held.len(), 1);
        // Lock identity is the receiver path minus `self`, so the nested
        // field is a distinct node from a bare `self.inner`.
        assert_eq!(held[0].0, "cache.inner");
        assert_eq!(held[0].1, LockKind::Read);
        let temp = acquires(&defs, "temp");
        assert_eq!(temp.len(), 1);
        // The chained guard must die at its own statement: its extent must
        // be strictly smaller than the let-bound one relative to each body.
        let held_event =
            events_of(&defs, "held").iter().find(|e| matches!(e.kind, EventKind::Acquire { .. }));
        let temp_event =
            events_of(&defs, "temp").iter().find(|e| matches!(e.kind, EventKind::Acquire { .. }));
        let (Some(h), Some(t)) = (held_event, temp_event) else { panic!("missing acquisitions") };
        let EventKind::Acquire { held_until: h_end, .. } = h.kind else { unreachable!() };
        let EventKind::Acquire { held_until: t_end, .. } = t.kind else { unreachable!() };
        // Let-bound: extends well past the call; temporary: ends at the `;`
        // a few tokens after the chained `.len()`.
        assert!(h_end > h.tok + 8, "let-bound guard too short: {h_end} vs {}", h.tok);
        assert!(t_end < t.tok + 10, "temporary guard too long: {t_end} vs {}", t.tok);
    }

    #[test]
    fn write_and_lock_are_exclusive_and_phases_are_read() {
        let defs = fns("impl S {\n\
                 fn publish(&self) {\n\
                     self.clock.write().touch(1); // lock-order: write\n\
                     let g = self.m.lock(); // lock-order: write\n\
                     g.push(1);\n\
                 }\n\
             }\n");
        let acq = acquires(&defs, "publish");
        assert_eq!(acq.len(), 2);
        assert!(acq.iter().all(|(_, k, _)| *k == LockKind::Write));
        let phases: Vec<Option<String>> = events_of(&defs, "publish")
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Acquire { phase, .. } => Some(phase.clone()),
                _ => None,
            })
            .collect();
        assert!(phases.iter().all(|p| p.as_deref() == Some("write")), "{phases:?}");
    }

    #[test]
    fn io_read_write_with_args_are_not_acquisitions() {
        let defs = fns("fn io(f: &mut File, buf: &mut [u8]) {\n\
                 f.read(buf);\n\
                 f.write(buf);\n\
             }\n");
        assert!(acquires(&defs, "io").is_empty());
    }
}
