//! Lossless recursive-descent parser over the lexer's token stream.
//!
//! The parser recognises exactly the structure the semantic rules need —
//! items, functions, blocks, `impl`/`trait`/`mod` nesting — and leaves
//! everything else (expressions, types, attributes, comments) as loose
//! tokens inside the enclosing node's span. Because every node is a
//! token-index [`Span`] and children tile sub-ranges of their parent,
//! [`reemit`] can reproduce the original token stream exactly; the
//! round-trip selftest (`tests/roundtrip.rs`) pins that property against
//! every `.rs` file in the workspace, so the AST can never silently drop
//! code from analysis.
//!
//! Disambiguation notes (the spots where token-level Rust is tricky):
//!
//! * `fn` inside a block is a nested item only when followed by an
//!   identifier — `as fn(&Scale) -> Vec<f64>` and `let f: fn(u32)` keep
//!   `fn` as a loose type token;
//! * `const` is a qualifier when followed by `fn`/`unsafe`/`async`/
//!   `extern`, an item otherwise;
//! * `impl` self types stop at `where`, and `for<'a>` higher-ranked
//!   binders do not count as the trait/type separator;
//! * `<<`/`>>` are single tokens and bump angle depth by two.

use crate::ast::{Block, BlockChild, File, FnItem, Item, ItemKind, Span};
use crate::lexer::{TokKind, Token};

/// Parses a full token stream into a [`File`].
pub fn parse(tokens: &[Token]) -> File {
    let p = Parser { toks: tokens };
    let items = p.items_in(0, tokens.len());
    File { span: Span { lo: 0, hi: tokens.len() }, items }
}

/// Walks `file` and returns the token indexes in emission order. Lossless
/// parsing means this is exactly `0..tokens.len()`; the round-trip tests
/// assert that.
pub fn reemit(file: &File) -> Vec<usize> {
    let mut out = Vec::new();
    emit_items(file.span, &file.items, &mut out);
    out
}

fn emit_items(span: Span, items: &[Item], out: &mut Vec<usize>) {
    let mut i = span.lo;
    for item in items {
        while i < item.span.lo {
            out.push(i);
            i += 1;
        }
        emit_item(item, out);
        i = item.span.hi;
    }
    while i < span.hi {
        out.push(i);
        i += 1;
    }
}

fn emit_item(item: &Item, out: &mut Vec<usize>) {
    match &item.kind {
        ItemKind::Fn(f) => match &f.body {
            Some(body) => {
                let mut i = item.span.lo;
                while i < body.span.lo {
                    out.push(i);
                    i += 1;
                }
                emit_block(body, out);
                i = body.span.hi;
                while i < item.span.hi {
                    out.push(i);
                    i += 1;
                }
            }
            None => emit_items(item.span, &[], out),
        },
        ItemKind::Mod { items, .. }
        | ItemKind::Impl { items, .. }
        | ItemKind::Trait { items, .. } => emit_items(item.span, items, out),
        ItemKind::Other => emit_items(item.span, &[], out),
    }
}

fn emit_block(block: &Block, out: &mut Vec<usize>) {
    let mut i = block.span.lo;
    for c in &block.children {
        let (lo, hi) = match c {
            BlockChild::Block(b) => (b.span.lo, b.span.hi),
            BlockChild::Item(it) => (it.span.lo, it.span.hi),
        };
        while i < lo {
            out.push(i);
            i += 1;
        }
        match c {
            BlockChild::Block(b) => emit_block(b, out),
            BlockChild::Item(it) => emit_item(it, out),
        }
        i = hi;
    }
    while i < block.span.hi {
        out.push(i);
        i += 1;
    }
}

struct Parser<'a> {
    toks: &'a [Token],
}

impl Parser<'_> {
    /// First non-comment token index in `[i, hi)`.
    fn code_from(&self, i: usize, hi: usize) -> Option<usize> {
        (i..hi).find(|&j| !self.toks[j].is_comment())
    }

    /// Parses items until `hi`, leaving unrecognised tokens loose.
    fn items_in(&self, lo: usize, hi: usize) -> Vec<Item> {
        let mut items = Vec::new();
        let mut i = lo;
        while i < hi {
            let t = &self.toks[i];
            if t.is_comment() {
                i += 1;
                continue;
            }
            if t.is_op("#") {
                i = self.skip_attr(i, hi);
                continue;
            }
            match self.item_at(i, hi) {
                Some(item) => {
                    i = item.span.hi;
                    items.push(item);
                }
                None => i += 1,
            }
        }
        items
    }

    /// Tries to parse one item starting at non-comment token `start`.
    fn item_at(&self, start: usize, hi: usize) -> Option<Item> {
        let line = self.toks[start].line;
        let mut i = start;
        let mut is_pub = false;
        if self.toks[i].is_ident("pub") {
            let mut j = self.code_from(i + 1, hi)?;
            if self.toks[j].is_op("(") {
                // pub(crate) / pub(super) / pub(in path): restricted, not
                // public API.
                j = self.match_delim(j, hi, "(", ")") + 1;
                j = self.code_from(j, hi)?;
            } else {
                is_pub = true;
            }
            i = j;
        }
        // Qualifier keywords before the item keyword.
        loop {
            let t = &self.toks[i];
            if t.kind != TokKind::Ident {
                return None;
            }
            match t.text.as_str() {
                "unsafe" | "async" | "default" => i = self.code_from(i + 1, hi)?,
                "const" => {
                    let j = self.code_from(i + 1, hi)?;
                    if matches!(self.toks[j].text.as_str(), "fn" | "unsafe" | "async" | "extern")
                        && self.toks[j].kind == TokKind::Ident
                    {
                        i = j; // `const fn` qualifier
                    } else {
                        // `const NAME: T = …;` item.
                        let end = self.skip_to_semi(i, hi);
                        return Some(Item {
                            span: Span { lo: start, hi: end },
                            line,
                            is_pub,
                            kind: ItemKind::Other,
                        });
                    }
                }
                "extern" => {
                    let j = self.code_from(i + 1, hi)?;
                    if self.toks[j].kind == TokKind::Literal {
                        let k = self.code_from(j + 1, hi)?;
                        if self.toks[k].is_op("{") {
                            // Foreign module `extern "C" { … }`.
                            let close = self.match_delim(k, hi, "{", "}");
                            return Some(Item {
                                span: Span { lo: start, hi: close + 1 },
                                line,
                                is_pub,
                                kind: ItemKind::Other,
                            });
                        }
                        i = k; // `extern "C" fn`
                    } else {
                        // `extern crate name;`
                        let end = self.skip_to_semi(i, hi);
                        return Some(Item {
                            span: Span { lo: start, hi: end },
                            line,
                            is_pub,
                            kind: ItemKind::Other,
                        });
                    }
                }
                _ => break,
            }
        }
        let t = &self.toks[i];
        match t.text.as_str() {
            "fn" => self.fn_item(start, i, hi, is_pub),
            "mod" => self.mod_item(start, i, hi, is_pub),
            "impl" => self.impl_item(start, i, hi, is_pub),
            "trait" => self.trait_item(start, i, hi, is_pub),
            "struct" | "enum" | "union" => {
                // `union` is contextual: only an item when followed by a name.
                if t.text == "union" {
                    let j = self.code_from(i + 1, hi)?;
                    if self.toks[j].kind != TokKind::Ident {
                        return None;
                    }
                }
                let end = self.skip_type_item(i, hi);
                Some(Item {
                    span: Span { lo: start, hi: end },
                    line,
                    is_pub,
                    kind: ItemKind::Other,
                })
            }
            "use" | "type" | "static" => {
                let end = self.skip_to_semi(i, hi);
                Some(Item {
                    span: Span { lo: start, hi: end },
                    line,
                    is_pub,
                    kind: ItemKind::Other,
                })
            }
            "macro_rules" => {
                let end = self.skip_macro_invocation(i, hi);
                Some(Item {
                    span: Span { lo: start, hi: end },
                    line,
                    is_pub,
                    kind: ItemKind::Other,
                })
            }
            _ => {
                // Item-position macro invocation: `name! { … }` / `name!(…);`.
                let j = self.code_from(i + 1, hi)?;
                if t.kind == TokKind::Ident && self.toks[j].is_op("!") {
                    let end = self.skip_macro_invocation(i, hi);
                    return Some(Item {
                        span: Span { lo: start, hi: end },
                        line,
                        is_pub,
                        kind: ItemKind::Other,
                    });
                }
                None
            }
        }
    }

    fn fn_item(&self, start: usize, kw: usize, hi: usize, is_pub: bool) -> Option<Item> {
        let line = self.toks[start].line;
        let name_i = self.code_from(kw + 1, hi)?;
        if self.toks[name_i].kind != TokKind::Ident {
            return None; // `fn` in type position (`as fn(…)`) — loose token
        }
        let name = self.toks[name_i].text.clone();
        let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
        let mut j = name_i + 1;
        while j < hi {
            let t = &self.toks[j];
            if !t.is_comment() {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "<" if t.kind == TokKind::Op => angle += 1,
                    ">" if t.kind == TokKind::Op => angle -= 1,
                    "<<" if t.kind == TokKind::Op => angle += 2,
                    ">>" if t.kind == TokKind::Op => angle -= 2,
                    ";" if paren == 0 && bracket == 0 => {
                        // Bodiless signature (trait method, foreign fn).
                        let kind = ItemKind::Fn(FnItem { name, body: None });
                        return Some(Item {
                            span: Span { lo: start, hi: j + 1 },
                            line,
                            is_pub,
                            kind,
                        });
                    }
                    "{" if paren == 0 && bracket == 0 && angle <= 0 => {
                        let body = self.block_at(j, hi);
                        let end = body.span.hi;
                        let kind = ItemKind::Fn(FnItem { name, body: Some(body) });
                        return Some(Item {
                            span: Span { lo: start, hi: end },
                            line,
                            is_pub,
                            kind,
                        });
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let kind = ItemKind::Fn(FnItem { name, body: None });
        Some(Item { span: Span { lo: start, hi }, line, is_pub, kind })
    }

    fn mod_item(&self, start: usize, kw: usize, hi: usize, is_pub: bool) -> Option<Item> {
        let line = self.toks[start].line;
        let name_i = self.code_from(kw + 1, hi)?;
        let name = self.toks[name_i].text.clone();
        let next = self.code_from(name_i + 1, hi)?;
        if self.toks[next].is_op("{") {
            let close = self.match_delim(next, hi, "{", "}");
            let items = self.items_in(next + 1, close);
            let kind = ItemKind::Mod { name, items };
            Some(Item { span: Span { lo: start, hi: close + 1 }, line, is_pub, kind })
        } else {
            // Outline `mod name;`.
            let end = self.skip_to_semi(kw, hi);
            Some(Item { span: Span { lo: start, hi: end }, line, is_pub, kind: ItemKind::Other })
        }
    }

    fn impl_item(&self, start: usize, kw: usize, hi: usize, is_pub: bool) -> Option<Item> {
        let line = self.toks[start].line;
        let mut i = self.code_from(kw + 1, hi)?;
        if self.toks[i].is_op("<") || self.toks[i].is_op("<<") {
            i = self.skip_angles(i, hi);
        }
        // Collect top-level path segments of the header until `{`; the self
        // type is the last segment collected — segments after `for` when a
        // trait impl, before it otherwise. `where` ends collection.
        let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
        let mut last_seg = String::new();
        let mut collecting = true;
        while i < hi {
            let t = &self.toks[i];
            if !t.is_comment() {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "<" if t.kind == TokKind::Op => angle += 1,
                    ">" if t.kind == TokKind::Op => angle -= 1,
                    "<<" if t.kind == TokKind::Op => angle += 2,
                    ">>" if t.kind == TokKind::Op => angle -= 2,
                    "{" if paren == 0 && bracket == 0 && angle <= 0 => {
                        let close = self.match_delim(i, hi, "{", "}");
                        let items = self.items_in(i + 1, close);
                        let kind = ItemKind::Impl { self_ty: last_seg, items };
                        return Some(Item {
                            span: Span { lo: start, hi: close + 1 },
                            line,
                            is_pub,
                            kind,
                        });
                    }
                    "where" if t.kind == TokKind::Ident => collecting = false,
                    "for" if t.kind == TokKind::Ident && angle == 0 && paren == 0 => {
                        // `for<'a>` is a binder, not the trait/type separator.
                        let next = self.code_from(i + 1, hi);
                        let hrtb = next.is_some_and(|n| self.toks[n].is_op("<"));
                        if !hrtb {
                            last_seg.clear();
                        }
                    }
                    _ => {
                        if collecting
                            && t.kind == TokKind::Ident
                            && angle == 0
                            && paren == 0
                            && bracket == 0
                            && !matches!(t.text.as_str(), "dyn" | "mut" | "const" | "as")
                        {
                            last_seg = t.text.clone();
                        }
                    }
                }
            }
            i += 1;
        }
        None
    }

    fn trait_item(&self, start: usize, kw: usize, hi: usize, is_pub: bool) -> Option<Item> {
        let line = self.toks[start].line;
        let name_i = self.code_from(kw + 1, hi)?;
        let name = self.toks[name_i].text.clone();
        let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
        let mut i = name_i + 1;
        while i < hi {
            let t = &self.toks[i];
            if !t.is_comment() {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "<" if t.kind == TokKind::Op => angle += 1,
                    ">" if t.kind == TokKind::Op => angle -= 1,
                    "<<" if t.kind == TokKind::Op => angle += 2,
                    ">>" if t.kind == TokKind::Op => angle -= 2,
                    ";" if paren == 0 && bracket == 0 => {
                        // Trait alias `trait A = B;` — no body.
                        return Some(Item {
                            span: Span { lo: start, hi: i + 1 },
                            line,
                            is_pub,
                            kind: ItemKind::Other,
                        });
                    }
                    "{" if paren == 0 && bracket == 0 && angle <= 0 => {
                        let close = self.match_delim(i, hi, "{", "}");
                        let items = self.items_in(i + 1, close);
                        let kind = ItemKind::Trait { name, items };
                        return Some(Item {
                            span: Span { lo: start, hi: close + 1 },
                            line,
                            is_pub,
                            kind,
                        });
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        None
    }

    /// `{ … }` with nested blocks and nested `fn` items as children.
    fn block_at(&self, open: usize, hi: usize) -> Block {
        let mut children = Vec::new();
        let mut i = open + 1;
        while i < hi {
            let t = &self.toks[i];
            if t.is_comment() {
                i += 1;
                continue;
            }
            if t.is_op("{") {
                let b = self.block_at(i, hi);
                i = b.span.hi;
                children.push(BlockChild::Block(b));
            } else if t.is_op("}") {
                return Block { span: Span { lo: open, hi: i + 1 }, children };
            } else if t.is_ident("fn")
                && self.code_from(i + 1, hi).is_some_and(|j| self.toks[j].kind == TokKind::Ident)
            {
                match self.item_at(i, hi) {
                    Some(item) => {
                        i = item.span.hi;
                        children.push(BlockChild::Item(item));
                    }
                    None => i += 1,
                }
            } else {
                i += 1;
            }
        }
        Block { span: Span { lo: open, hi }, children }
    }

    /// `struct`/`enum`/`union`: span ends at `;` (unit/tuple struct) or at
    /// the matching `}` of the body.
    fn skip_type_item(&self, kw: usize, hi: usize) -> usize {
        let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
        let mut i = kw + 1;
        while i < hi {
            let t = &self.toks[i];
            if !t.is_comment() {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "<" if t.kind == TokKind::Op => angle += 1,
                    ">" if t.kind == TokKind::Op => angle -= 1,
                    "<<" if t.kind == TokKind::Op => angle += 2,
                    ">>" if t.kind == TokKind::Op => angle -= 2,
                    ";" if paren == 0 && bracket == 0 => return i + 1,
                    "{" if paren == 0 && bracket == 0 && angle <= 0 => {
                        return self.match_delim(i, hi, "{", "}") + 1;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        hi
    }

    /// Scans to the `;` closing an expression-free item (`use`, `const`,
    /// `static`, `type`, outline `mod`), brace/paren/bracket aware so
    /// `use a::{b, c};` and struct-literal constants survive.
    fn skip_to_semi(&self, from: usize, hi: usize) -> usize {
        let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
        let mut i = from;
        while i < hi {
            let t = &self.toks[i];
            if !t.is_comment() {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" => brace += 1,
                    "}" => brace -= 1,
                    ";" if paren == 0 && bracket == 0 && brace == 0 => return i + 1,
                    _ => {}
                }
            }
            i += 1;
        }
        hi
    }

    /// `name!(…)`, `name![…]` (plus trailing `;`) or `name! { … }`, and
    /// `macro_rules! name { … }`.
    fn skip_macro_invocation(&self, from: usize, hi: usize) -> usize {
        let mut i = from;
        while i < hi {
            let t = &self.toks[i];
            if t.is_op("{") {
                return self.match_delim(i, hi, "{", "}") + 1;
            }
            if t.is_op("(") || t.is_op("[") {
                let (open, close) = if t.is_op("(") { ("(", ")") } else { ("[", "]") };
                let end = self.match_delim(i, hi, open, close) + 1;
                let semi = self.code_from(end, hi);
                return match semi {
                    Some(s) if self.toks[s].is_op(";") => s + 1,
                    _ => end,
                };
            }
            if t.is_op(";") {
                return i + 1;
            }
            i += 1;
        }
        hi
    }

    /// Index of the token matching `open_text` at `open` (depth-counted);
    /// `hi - 1` when unterminated.
    fn match_delim(&self, open: usize, hi: usize, open_text: &str, close_text: &str) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < hi {
            let t = &self.toks[i];
            if t.is_op(open_text) {
                depth += 1;
            } else if t.is_op(close_text) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        hi.saturating_sub(1)
    }

    /// Skips a generic parameter list starting at `<`, returning the index
    /// after the matching `>`.
    fn skip_angles(&self, open: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < hi {
            let t = &self.toks[i];
            if t.kind == TokKind::Op {
                match t.text.as_str() {
                    "<" => depth += 1,
                    "<<" => depth += 2,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                if depth <= 0 && (t.text == ">" || t.text == ">>") {
                    return i + 1;
                }
            }
            i += 1;
        }
        hi
    }

    /// Skips `#[…]` / `#![…]`, returning the index after `]`.
    fn skip_attr(&self, at: usize, hi: usize) -> usize {
        let mut i = at + 1;
        while i < hi && (self.toks[i].is_comment() || self.toks[i].is_op("!")) {
            i += 1;
        }
        if i < hi && self.toks[i].is_op("[") {
            self.match_delim(i, hi, "[", "]") + 1
        } else {
            at + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn roundtrip(src: &str) -> File {
        let toks = lex(src);
        let file = parse(&toks);
        let order = reemit(&file);
        let expect: Vec<usize> = (0..toks.len()).collect();
        assert_eq!(order, expect, "re-emit must be the identity on:\n{src}");
        file
    }

    fn fn_names(items: &[Item]) -> Vec<String> {
        let mut out = Vec::new();
        for it in items {
            match &it.kind {
                ItemKind::Fn(f) => out.push(f.name.clone()),
                ItemKind::Mod { items, .. }
                | ItemKind::Impl { items, .. }
                | ItemKind::Trait { items, .. } => out.extend(fn_names(items)),
                ItemKind::Other => {}
            }
        }
        out
    }

    #[test]
    fn items_functions_and_impls() {
        let file = roundtrip(
            "//! docs\n\
             use std::fmt;\n\
             pub struct S { pub x: u32 }\n\
             impl S {\n    pub fn get(&self) -> u32 { self.x }\n}\n\
             impl fmt::Display for S {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, \"{}\", self.x) }\n}\n\
             pub fn free() {}\n",
        );
        assert_eq!(fn_names(&file.items), vec!["get", "fmt", "free"]);
        let self_tys: Vec<&str> = file
            .items
            .iter()
            .filter_map(|it| match &it.kind {
                ItemKind::Impl { self_ty, .. } => Some(self_ty.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(self_tys, vec!["S", "S"]);
    }

    #[test]
    fn nested_fns_are_items_fn_types_are_not() {
        let file = roundtrip(
            "fn outer() {\n\
                 fn inner(x: u32) -> u32 { x }\n\
                 let g = inner as fn(u32) -> u32;\n\
                 let h: fn(u32) -> u32 = g;\n\
                 inner(h(1));\n\
             }\n",
        );
        assert_eq!(fn_names(&file.items), vec!["outer"]);
        let ItemKind::Fn(f) = &file.items[0].kind else { panic!("not a fn") };
        let body = f.body.as_ref().unwrap();
        let nested: Vec<&str> = body
            .children
            .iter()
            .filter_map(|c| match c {
                BlockChild::Item(it) => match &it.kind {
                    ItemKind::Fn(f) => Some(f.name.as_str()),
                    _ => None,
                },
                BlockChild::Block(_) => None,
            })
            .collect();
        assert_eq!(nested, vec!["inner"]);
    }

    #[test]
    fn traits_mods_and_generics() {
        let file = roundtrip(
            "mod outer {\n\
                 pub mod inner {\n\
                     pub trait T: Clone {\n\
                         fn sig(&self) -> usize;\n\
                         fn dflt(&self) -> usize { self.sig() + 1 }\n\
                     }\n\
                 }\n\
             }\n\
             impl<K: Ord, V> Wrapper<K, V> {\n\
                 fn generic(&self) -> Option<Vec<V>> { None }\n\
             }\n",
        );
        assert_eq!(fn_names(&file.items), vec!["sig", "dflt", "generic"]);
        let ItemKind::Mod { name, items } = &file.items[0].kind else { panic!("not a mod") };
        assert_eq!(name, "outer");
        let ItemKind::Mod { name: inner, .. } = &items[0].kind else { panic!("not a mod") };
        assert_eq!(inner, "inner");
    }

    #[test]
    fn impl_self_ty_with_trait_generics_and_where() {
        let src = "impl<T> Index<usize> for Grid<T> where T: Copy { fn index(&self, _: usize) -> &T { &self.0 } }";
        let file = roundtrip(src);
        let ItemKind::Impl { self_ty, .. } = &file.items[0].kind else { panic!("not an impl") };
        assert_eq!(self_ty, "Grid");
    }

    #[test]
    fn const_static_use_macros_are_spanned_items() {
        roundtrip(
            "const LIMIT: usize = compute([1, 2].len());\n\
             static TABLE: [u8; 2] = [0, 1];\n\
             use a::{b, c};\n\
             macro_rules! m { ($x:expr) => { $x + 1 }; }\n\
             thread_local! { static TL: u32 = 0; }\n\
             vec_like!(a, b);\n\
             fn after() {}\n",
        );
    }

    #[test]
    fn fn_with_angle_heavy_signature() {
        let file = roundtrip(
            "fn shifty(x: Vec<Vec<u8>>) -> Result<Vec<u8>, Box<dyn std::error::Error>> {\n\
                 let y = 1 << 2;\n\
                 x.into_iter().next().ok_or_else(|| \"e\".into())\n\
             }\n",
        );
        assert_eq!(fn_names(&file.items), vec!["shifty"]);
    }
}
