//! Workspace call graph and the dataflow analyses on top of it.
//!
//! Call edges are resolved **by name**, not by type — skylint has no type
//! inference. A method call `x.len()` therefore resolves to *every*
//! workspace method named `len`; a bare call to every free function of
//! that name; a path call `Q::f` to functions whose owner type, module or
//! file stem matches `Q`. That over-approximation is sound for the
//! analyses built here (reachability of panics, allocations and lock
//! acquisitions can only be over-reported, never missed within the
//! universe), and the universe is kept small on purpose: the engine feeds
//! in only library-crate, non-test functions.
//!
//! Three analyses:
//!
//! * [`Workspace::may_panic`] — fixpoint propagation of may-panic facts
//!   with a witness chain, skipping facts justified by allow annotations;
//! * [`Workspace::reachable_with_paths`] — BFS from designated kernel
//!   roots, remembering one call path per reached function;
//! * [`Workspace::lock_edges`] — the inter-procedural lock-acquisition
//!   graph: an edge `A → B` means `B` is acquired (directly, or anywhere
//!   inside a callee) while a guard on `A` is live.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::symbols::{Event, EventKind, FnDef, LockKind};

/// The resolved call graph over one scan's function universe.
pub struct Workspace {
    /// All function definitions, indexed by id.
    pub fns: Vec<FnDef>,
    /// Resolved callee ids per function, sorted and deduplicated.
    pub callees: Vec<Vec<usize>>,
    methods: BTreeMap<String, Vec<usize>>,
    free: BTreeMap<String, Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// A may-panic verdict for one function: how the panic is reached and
/// where the underlying fact lives.
#[derive(Clone, Debug)]
pub struct PanicInfo {
    /// Callee chain from this function (exclusive) to the sink.
    pub chain: Vec<usize>,
    /// What panics (`.unwrap()`, `panic!`, `bracket indexing`, …).
    pub desc: String,
    /// File of the panic site.
    pub file: String,
    /// Line of the panic site.
    pub line: u32,
}

/// One lock-acquisition site, as used in graph edges and messages.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockSite {
    /// Lock identity (receiver field name).
    pub lock: String,
    /// Shared or exclusive.
    pub kind: LockKind,
    /// Declared `// lock-order:` phase, if annotated.
    pub phase: Option<String>,
    /// File of the acquisition.
    pub file: String,
    /// Line of the acquisition.
    pub line: u32,
}

impl PartialOrd for LockKind {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LockKind {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

/// An edge of the lock-acquisition graph: `to` is acquired while a guard
/// on `from` is live in `holder`.
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// The held lock.
    pub from: LockSite,
    /// The lock acquired under it.
    pub to: LockSite,
    /// Qualified name of the function holding `from`.
    pub holder: String,
    /// Qualified callee name when the acquisition is inside a callee.
    pub via: Option<String>,
}

impl Workspace {
    /// Builds the graph from extracted definitions.
    pub fn build(fns: Vec<FnDef>) -> Workspace {
        let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            if f.owner.is_empty() {
                free.entry(f.name.clone()).or_default().push(i);
            } else {
                methods.entry(f.name.clone()).or_default().push(i);
            }
        }
        let mut ws = Workspace { fns, callees: Vec::new(), methods, free, by_name };
        ws.callees = (0..ws.fns.len())
            .map(|i| {
                let mut out: Vec<usize> = ws.fns[i]
                    .events
                    .iter()
                    .flat_map(|e| ws.resolve(i, e))
                    .filter(|&c| c != i)
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        ws
    }

    /// Total resolved call edges.
    pub fn edge_count(&self) -> usize {
        self.callees.iter().map(Vec::len).sum()
    }

    /// Candidate callee ids for one call event of `caller`.
    pub fn resolve(&self, caller: usize, e: &Event) -> Vec<usize> {
        match &e.kind {
            EventKind::Method { .. } => self.methods.get(&e.name).cloned().unwrap_or_default(),
            EventKind::Bare => self.free.get(&e.name).cloned().unwrap_or_default(),
            EventKind::Path { qual } => {
                let Some(q) = qual.last() else {
                    return self.free.get(&e.name).cloned().unwrap_or_default();
                };
                let q: &str =
                    if q == "Self" { self.fns[caller].owner.as_str() } else { q.as_str() };
                self.by_name
                    .get(&e.name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&c| {
                                let f = &self.fns[c];
                                f.owner == q
                                    || file_stem(&f.file) == q
                                    || f.module.iter().any(|m| m == q)
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            }
            _ => Vec::new(),
        }
    }

    /// Computes, per function, whether a panic is reachable and how.
    /// `sources` selects the fact kinds (`unwrap`, `expect`, `panic-macro`,
    /// `indexing`, `arithmetic`); `justified` reports whether the fact at
    /// a given line carries an accepted allow annotation.
    pub fn may_panic(
        &self,
        sources: &[String],
        justified: &dyn Fn(&FnDef, u32) -> bool,
    ) -> Vec<Option<PanicInfo>> {
        let has = |s: &str| sources.iter().any(|x| x == s);
        let mut info: Vec<Option<PanicInfo>> = self
            .fns
            .iter()
            .map(|f| {
                for e in &f.events {
                    let desc = match &e.kind {
                        EventKind::Method { .. } | EventKind::Bare
                            if (e.name == "unwrap" && has("unwrap"))
                                || (e.name == "expect" && has("expect")) =>
                        {
                            Some(format!(".{}()", e.name))
                        }
                        EventKind::MacroUse
                            if has("panic-macro")
                                && matches!(
                                    e.name.as_str(),
                                    "panic" | "todo" | "unimplemented"
                                ) =>
                        {
                            Some(format!("{}!", e.name))
                        }
                        EventKind::Index if has("indexing") => Some("bracket indexing".to_owned()),
                        EventKind::IntArith if has("arithmetic") => {
                            Some(format!("unchecked integer `{}`", e.name))
                        }
                        _ => None,
                    };
                    if let Some(desc) = desc {
                        if !justified(f, e.line) {
                            return Some(PanicInfo {
                                chain: Vec::new(),
                                desc,
                                file: f.file.clone(),
                                line: e.line,
                            });
                        }
                    }
                }
                None
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                if info[i].is_some() {
                    continue;
                }
                for &c in &self.callees[i] {
                    if let Some(pi) = info[c].clone() {
                        let mut chain = vec![c];
                        chain.extend(pi.chain.iter().copied());
                        info[i] =
                            Some(PanicInfo { chain, desc: pi.desc, file: pi.file, line: pi.line });
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        info
    }

    /// BFS over call edges from `roots`; the value is one call path
    /// (function ids, root first) reaching each function.
    pub fn reachable_with_paths(&self, roots: &[usize]) -> BTreeMap<usize, Vec<usize>> {
        let mut paths: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut sorted: Vec<usize> = roots.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for r in sorted {
            paths.insert(r, vec![r]);
            queue.push_back(r);
        }
        while let Some(i) = queue.pop_front() {
            let base = paths.get(&i).cloned().unwrap_or_default();
            for &c in &self.callees[i] {
                if let std::collections::btree_map::Entry::Vacant(v) = paths.entry(c) {
                    let mut p = base.clone();
                    p.push(c);
                    v.insert(p);
                    queue.push_back(c);
                }
            }
        }
        paths
    }

    /// Direct acquisition sites of each function, as [`LockSite`]s.
    fn own_sites(&self) -> Vec<Vec<LockSite>> {
        self.fns
            .iter()
            .map(|f| {
                f.events
                    .iter()
                    .filter_map(|e| match &e.kind {
                        EventKind::Acquire { lock, kind, phase, .. } => Some(LockSite {
                            lock: lock.clone(),
                            kind: *kind,
                            phase: phase.clone(),
                            file: f.file.clone(),
                            line: e.line,
                        }),
                        _ => None,
                    })
                    .collect()
            })
            .collect()
    }

    /// The inter-procedural lock-acquisition graph, for functions defined
    /// in files under the `lock_files` prefixes. Edges are deduplicated by
    /// (locks, kinds, holder, via).
    pub fn lock_edges(&self, lock_files: &[String]) -> Vec<LockEdge> {
        let in_scope =
            |file: &str| lock_files.iter().any(|p| file == p || file.starts_with(&format!("{p}/")));
        let own = self.own_sites();
        // Transitive acquisition sets: what ends up locked anywhere below
        // each function. Deduplicate by (lock, kind) to bound the fixpoint.
        let mut trans = own.clone();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let mut add: Vec<LockSite> = Vec::new();
                for &c in &self.callees[i] {
                    for site in &trans[c] {
                        let dup = |s: &LockSite| s.lock == site.lock && s.kind == site.kind;
                        if !trans[i].iter().any(dup) && !add.iter().any(dup) {
                            add.push(site.clone());
                        }
                    }
                }
                if !add.is_empty() {
                    trans[i].extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut edges = Vec::new();
        let mut seen: BTreeSet<(String, LockKind, String, LockKind, String, Option<String>)> =
            BTreeSet::new();
        for (i, f) in self.fns.iter().enumerate() {
            if !in_scope(&f.file) {
                continue;
            }
            for a in &f.events {
                let EventKind::Acquire { lock, kind, held_until, phase } = &a.kind else {
                    continue;
                };
                let from = LockSite {
                    lock: lock.clone(),
                    kind: *kind,
                    phase: phase.clone(),
                    file: f.file.clone(),
                    line: a.line,
                };
                for e in &f.events {
                    if e.tok <= a.tok || e.tok > *held_until {
                        continue;
                    }
                    match &e.kind {
                        EventKind::Acquire { lock: l2, kind: k2, phase: p2, .. } => {
                            let to = LockSite {
                                lock: l2.clone(),
                                kind: *k2,
                                phase: p2.clone(),
                                file: f.file.clone(),
                                line: e.line,
                            };
                            let key = (
                                from.lock.clone(),
                                from.kind,
                                to.lock.clone(),
                                to.kind,
                                f.qualified(),
                                None,
                            );
                            if seen.insert(key) {
                                edges.push(LockEdge {
                                    from: from.clone(),
                                    to,
                                    holder: f.qualified(),
                                    via: None,
                                });
                            }
                        }
                        EventKind::Method { .. } | EventKind::Bare | EventKind::Path { .. } => {
                            for c in self.resolve(i, e) {
                                for site in &trans[c] {
                                    let via = Some(self.fns[c].qualified());
                                    let key = (
                                        from.lock.clone(),
                                        from.kind,
                                        site.lock.clone(),
                                        site.kind,
                                        f.qualified(),
                                        via.clone(),
                                    );
                                    if seen.insert(key) {
                                        edges.push(LockEdge {
                                            from: from.clone(),
                                            to: site.clone(),
                                            holder: f.qualified(),
                                            via,
                                        });
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        edges
    }
}

/// Finds directed cycles among *distinct* locks in the edge set; each
/// cycle is reported once, as the lock names in path order starting from
/// the lexicographically smallest.
pub fn lock_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        if e.from.lock != e.to.lock {
            adj.entry(&e.from.lock).or_default().insert(&e.to.lock);
        }
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack: Vec<&str> = vec![start];
        let mut iters: Vec<Vec<&str>> =
            vec![adj.get(start).map(|s| s.iter().copied().collect()).unwrap_or_default()];
        while let Some(next_set) = iters.last_mut() {
            match next_set.pop() {
                Some(n) => {
                    if let Some(pos) = stack.iter().position(|&s| s == n) {
                        let cycle: Vec<&str> = stack[pos..].to_vec();
                        found.insert(canonical_cycle(&cycle));
                    } else if stack.len() < nodes.len() {
                        stack.push(n);
                        iters.push(
                            adj.get(n).map(|s| s.iter().copied().collect()).unwrap_or_default(),
                        );
                    }
                }
                None => {
                    stack.pop();
                    iters.pop();
                }
            }
        }
    }
    found.into_iter().collect()
}

/// Rotates a cycle so it starts at its smallest lock name.
fn canonical_cycle(cycle: &[&str]) -> Vec<String> {
    let min = cycle.iter().enumerate().min_by_key(|(_, s)| **s).map(|(i, _)| i).unwrap_or(0);
    cycle[min..].iter().chain(cycle[..min].iter()).map(|s| (*s).to_owned()).collect()
}

fn file_stem(file: &str) -> &str {
    file.rsplit('/').next().unwrap_or(file).trim_end_matches(".rs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceModel;
    use crate::parser::parse;
    use crate::symbols::extract_fns;

    fn workspace(files: &[(&str, &str)]) -> Workspace {
        let mut fns = Vec::new();
        for (path, src) in files {
            let model = SourceModel::build((*path).to_owned(), src);
            let file = parse(&model.tokens);
            fns.extend(extract_fns(&model, &file).into_iter().filter(|f| !f.in_test));
        }
        Workspace::build(fns)
    }

    fn id(ws: &Workspace, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn transitive_panic_with_witness_chain() {
        let ws = workspace(&[(
            "lib/src/a.rs",
            "pub fn api(xs: &[u32]) -> u32 { mid(xs) }\n\
             fn mid(xs: &[u32]) -> u32 { deep(xs) }\n\
             fn deep(xs: &[u32]) -> u32 { xs.first().unwrap().wrapping_add(1) }\n",
        )]);
        let info = ws.may_panic(&["unwrap".to_owned()], &|_, _| false);
        let api = info[id(&ws, "api")].as_ref().expect("api must reach a panic");
        assert_eq!(api.desc, ".unwrap()");
        let names: Vec<&str> = api.chain.iter().map(|&c| ws.fns[c].name.as_str()).collect();
        assert_eq!(names, vec!["mid", "deep"]);
        assert_eq!(api.line, 3);
    }

    #[test]
    fn justified_facts_do_not_propagate() {
        let ws = workspace(&[(
            "lib/src/a.rs",
            "pub fn api(xs: &[u32]) -> u32 { deep(xs) }\n\
             fn deep(xs: &[u32]) -> u32 { *xs.first().unwrap() }\n",
        )]);
        let info = ws.may_panic(&["unwrap".to_owned()], &|_, _| true);
        assert!(info.iter().all(Option::is_none));
    }

    #[test]
    fn kernel_reachability_records_a_path() {
        let ws = workspace(&[(
            "lib/src/k.rs",
            "pub fn kernel(xs: &mut Vec<f64>) { stage(xs); }\n\
             fn stage(xs: &mut Vec<f64>) { finish(xs); }\n\
             fn finish(xs: &mut Vec<f64>) { xs.clear(); }\n\
             fn unrelated() {}\n",
        )]);
        let reach = ws.reachable_with_paths(&[id(&ws, "kernel")]);
        assert!(reach.contains_key(&id(&ws, "finish")));
        assert!(!reach.contains_key(&id(&ws, "unrelated")));
        let path = &reach[&id(&ws, "finish")];
        let names: Vec<&str> = path.iter().map(|&c| ws.fns[c].name.as_str()).collect();
        assert_eq!(names, vec!["kernel", "stage", "finish"]);
    }

    #[test]
    fn lock_edges_intra_and_inter_procedural() {
        let ws = workspace(&[(
            "lib/src/shared.rs",
            "impl Pair {\n\
                 pub fn ab(&self) {\n\
                     let ga = self.a.read(); // lock-order: read\n\
                     let gb = self.b.read(); // lock-order: read\n\
                     drop((ga, gb));\n\
                 }\n\
                 pub fn holds_a_calls_locker(&self) {\n\
                     let ga = self.a.read(); // lock-order: read\n\
                     self.lock_b();\n\
                     drop(ga);\n\
                 }\n\
                 fn lock_b(&self) {\n\
                     let gb = self.b.write(); // lock-order: write\n\
                     drop(gb);\n\
                 }\n\
             }\n",
        )]);
        let edges = ws.lock_edges(&["lib/src".to_owned()]);
        assert!(edges.iter().any(|e| e.from.lock == "a" && e.to.lock == "b" && e.via.is_none()));
        assert!(edges.iter().any(|e| e.from.lock == "a"
            && e.to.lock == "b"
            && e.via.as_deref() == Some("Pair::lock_b")));
    }

    #[test]
    fn cycle_detection_across_functions() {
        let ws = workspace(&[(
            "lib/src/shared.rs",
            "impl Pair {\n\
                 pub fn ab(&self) {\n\
                     let ga = self.a.write(); // lock-order: write\n\
                     let gb = self.b.write(); // lock-order: write\n\
                     drop((ga, gb));\n\
                 }\n\
                 pub fn ba(&self) {\n\
                     let gb = self.b.write(); // lock-order: write\n\
                     let ga = self.a.write(); // lock-order: write\n\
                     drop((ga, gb));\n\
                 }\n\
             }\n",
        )]);
        let cycles = lock_cycles(&ws.lock_edges(&["lib/src".to_owned()]));
        assert_eq!(cycles, vec![vec!["a".to_owned(), "b".to_owned()]]);
    }

    #[test]
    fn temporary_guards_produce_no_edges() {
        let ws = workspace(&[(
            "lib/src/shared.rs",
            "impl S {\n\
                 pub fn counts(&self) -> (usize, usize) {\n\
                     let n = self.a.read().len(); // lock-order: read\n\
                     let m = self.b.read().len(); // lock-order: read\n\
                     (n, m)\n\
                 }\n\
             }\n",
        )]);
        assert!(ws.lock_edges(&["lib/src".to_owned()]).is_empty());
    }
}
