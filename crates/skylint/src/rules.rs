//! The policy rule families.
//!
//! Every rule reports findings as `(rule-id, line, message)` against a
//! [`SourceModel`]; the engine handles allow-annotations, test-region
//! exemptions and path scoping before a finding becomes user-visible.
//!
//! Per-file token rules:
//!
//! | id                    | guards                                           |
//! |-----------------------|--------------------------------------------------|
//! | `no-panic-paths`      | typed-error discipline in library crates         |
//! | `determinism`         | byte-reproducible results across plans/modes     |
//! | `concurrency-hygiene` | thread/lock discipline of the parallel lanes     |
//! | `api-hygiene`         | lint headers + documented public surface         |
//! | `sync-confinement`    | raw sync primitives stay behind skycheck shims   |
//!
//! Whole-workspace dataflow rules (AST + call graph):
//!
//! | id                    | guards                                           |
//! |-----------------------|--------------------------------------------------|
//! | `lock-order`          | acyclic, annotation-consistent lock graph        |
//! | `panic-reachability`  | no transitive panic behind a public API          |
//! | `hot-path-alloc`      | allocation-free designated kernels               |
//! | `atomic-ordering`     | no Relaxed on cross-thread statics (w/ witness)  |
//! | `dead-allow`          | every allow annotation still suppresses          |
//!
//! CFG + guard-liveness dataflow rules (v3, see `cfg.rs`):
//!
//! | id                     | guards                                          |
//! |------------------------|-------------------------------------------------|
//! | `guard-hold-span`      | no lock guard live across expensive calls       |
//! | `capture-race`         | no unsynchronized mutable captures in spawns    |
//! | `env-read-confinement` | `std::env` reads only in designated pin fns     |
//! | `range-taint`          | decoded sizes/endpoints validated before sinks  |
//!
//! Run `skylint explain <rule>` for the full rationale of each rule.

use std::collections::BTreeMap;

use crate::callgraph::{lock_cycles, Workspace};
use crate::cfg::{FactDef, Liveness};
use crate::engine::Policy;
use crate::lexer::{TokKind, Token};
use crate::model::SourceModel;
use crate::report::Finding;
use crate::symbols::{match_paren, next_code_idx, statement_end, EventKind, LockKind};

/// All rule ids, in reporting order.
pub const RULE_IDS: [&str; 14] = [
    "no-panic-paths",
    "determinism",
    "concurrency-hygiene",
    "api-hygiene",
    "sync-confinement",
    "lock-order",
    "panic-reachability",
    "hot-path-alloc",
    "guard-hold-span",
    "capture-race",
    "env-read-confinement",
    "range-taint",
    "atomic-ordering",
    "dead-allow",
];

/// Long-form `explain` text for a rule id, if known.
pub fn explain(rule: &str) -> Option<&'static str> {
    match rule {
        "no-panic-paths" => Some(
            "no-panic-paths — library crates must not contain hidden panic paths.\n\
             \n\
             Forbidden in library code (crates listed under [crates].library),\n\
             outside #[cfg(test)] modules:\n\
               * `.unwrap()` and `.expect(…)` method calls\n\
               * `panic!`, `todo!`, `unimplemented!` macro invocations\n\
               * bracket indexing (`xs[i]`) in files listed under\n\
                 [rules.no-panic-paths].index-strict-files — use `.get(i)`\n\
             \n\
             Rationale: the CBCS engine is meant to serve shared, long-lived\n\
             caches (ROADMAP: production-scale, heavy traffic). A panic in a\n\
             library crate kills the worker thread mid-query; callers hold\n\
             typed error channels (GeomError / StorageError / CoreError) that\n\
             every fallible path must use instead. `assert!`-style contract\n\
             checks with documented `# Panics` sections remain permitted: they\n\
             guard API misuse, not data-dependent failures.\n\
             \n\
             Escape hatch: `// skylint: allow(no-panic-paths) — <why safe>`\n\
             on (or directly above) the offending line, for invariants the\n\
             type system cannot carry (e.g. re-raising a worker panic after\n\
             `JoinHandle::join`).",
        ),
        "determinism" => Some(
            "determinism — cached plans must be byte-for-byte reproducible.\n\
             \n\
             Forbidden in library code outside #[cfg(test)] modules:\n\
               * `std::time::Instant` / `SystemTime` (any mention) — wall\n\
                 clocks fork behaviour between runs; the one audited site is\n\
                 core/src/clock.rs, which carries the allow annotation\n\
               * `HashMap` / `HashSet` — iteration order is randomized per\n\
                 process; every result-producing path must use BTreeMap /\n\
                 BTreeSet / sorted vectors instead\n\
               * float `==` / `!=` in files listed under\n\
                 [rules.determinism].float-eq-files — comparisons on raw f64\n\
                 expressions must go through skycache_geom::float helpers\n\
                 (approx_eq / exact_eq), making every float comparison an\n\
                 audited decision\n\
             \n\
             Rationale: the paper's stability theory (Thm. 1, Cors. 1–2) and\n\
             MPR minimality (Thms. 6–7) assume a cached plan replayed under\n\
             any ExecMode yields the identical skyline. HashMap iteration\n\
             order leaking into eviction order, R-tree insertion order or\n\
             result assembly silently breaks that; so does any wall-clock\n\
             value feeding planning.\n\
             \n\
             Escape hatch: `// skylint: allow(determinism) — <why benign>`.",
        ),
        "concurrency-hygiene" => Some(
            "concurrency-hygiene — thread and lock discipline.\n\
             \n\
             Checks:\n\
               * `spawn(…)` (std::thread::spawn, scope.spawn, …) is permitted\n\
                 only in the files listed under\n\
                 [rules.concurrency-hygiene].spawn-allowed — today the two\n\
                 parallel lanes: algos/src/parallel.rs and\n\
                 storage/src/table.rs. Tests may spawn freely.\n\
               * In lock-protocol files ([rules.concurrency-hygiene]\n\
                 .lock-protocol-files), every `.read()` / `.write()` /\n\
                 `.lock()` acquisition must carry a `// lock-order: <phase>`\n\
                 annotation naming a declared phase, and within one function\n\
                 phases must appear in declared order (read before write in\n\
                 core/src/shared.rs) — enforcing the documented\n\
                 search → compute-unlocked → publish protocol.\n\
               * Every `unsafe {` block needs a `// SAFETY:` comment on or\n\
                 directly above the line.\n\
             \n\
             Rationale: the shared multi-user cache (core/src/shared.rs)\n\
             stays deadlock-free because no code path upgrades read → write\n\
             while holding a guard; annotating each acquisition keeps the\n\
             protocol reviewable and lets the linter reject regressions.",
        ),
        "api-hygiene" => Some(
            "api-hygiene — library crates keep a warnings-clean surface.\n\
             \n\
             Checks:\n\
               * each library crate root (src/lib.rs) starts with `//!` crate\n\
                 docs and carries every header listed under\n\
                 [rules.api-hygiene].required-headers (the\n\
                 `#![deny(warnings)]`-compatible lint set)\n\
               * public items at module scope in the crates listed under\n\
                 [rules.api-hygiene].doc-paths carry `///` doc comments\n\
                 (compile-time `#![warn(missing_docs)]` also covers impl\n\
                 bodies; the lint runs without compiling)\n\
             \n\
             Rationale: CI promotes clippy/rustfmt to required jobs; the\n\
             headers keep every crate compatible with `-D warnings`, and the\n\
             documented public surface is what makes the cache reusable as a\n\
             library (ROADMAP north star).",
        ),
        "lock-order" => Some(
            "lock-order — the inferred lock-acquisition graph must be a DAG\n\
             consistent with the `// lock-order:` annotations.\n\
             \n\
             For every function in the files under [rules.lock-order].files,\n\
             skylint parses the AST, extracts each `.read()`/`.write()`/\n\
             `.lock()` acquisition with the live range of its guard\n\
             (let-bound guards live to end of block; chained temporaries to\n\
             end of statement, matching Rust drop semantics), and builds the\n\
             inter-procedural graph: lock A → lock B when B is acquired —\n\
             directly or anywhere inside a callee — while a guard on A is\n\
             live. Flagged:\n\
               * read → write or write → anything re-entry on the *same*\n\
                 lock (self-deadlock / upgrade; read → read shared guards\n\
                 are permitted)\n\
               * cycles among distinct locks (classic AB/BA deadlock)\n\
               * acquisitions whose declared phases contradict the declared\n\
                 order while one guard is held\n\
               * annotations whose phase disagrees with the acquisition\n\
                 kind (`read` on `.write()`, …)\n\
             \n\
             Rationale: PR 2 trusted the shared.rs annotations; this rule\n\
             verifies them against the code, so the shared-cache protocol\n\
             (search → compute-unlocked → publish) is checked, not declared.\n\
             Call edges resolve by name (no type inference), which can only\n\
             over-approximate the graph — a clean result is therefore sound.",
        ),
        "panic-reachability" => Some(
            "panic-reachability — no public library API may transitively\n\
             reach an unjustified panic.\n\
             \n\
             May-panic facts ([rules.panic-reachability].sources — unwrap,\n\
             expect, panic-macro, optionally indexing and arithmetic) are\n\
             collected per function and propagated over the workspace call\n\
             graph to a fixpoint. A `pub fn` in a library crate whose callee\n\
             chain reaches such a fact is flagged, with the full witness\n\
             chain (api → helper → sink) in the message. Facts carrying a\n\
             `skylint: allow(no-panic-paths)` or `allow(panic-reachability)`\n\
             justification do not propagate. Direct (same-function) panics\n\
             are left to no-panic-paths to avoid double-reporting.\n\
             \n\
             Rationale: a panic one call deep behind `SharedCbcsExecutor::\n\
             query` still kills a worker lane mid-fetch; single-line token\n\
             patterns cannot see it, the call graph can.\n\
             \n\
             Escape hatch: `// skylint: allow(panic-reachability) — <why>`\n\
             on the public fn or on the panic site.",
        ),
        "hot-path-alloc" => Some(
            "hot-path-alloc — designated kernels stay allocation-free.\n\
             \n\
             Roots are the kernels named in [rules.hot-path-alloc].kernels\n\
             (`fn` or `Type::fn` designators). Every function reachable from\n\
             a root over the call graph and defined under\n\
             [rules.hot-path-alloc].scope-files is checked for allocation\n\
             machinery: the calls in .calls (Vec::new, push, clone, to_vec,\n\
             collect, …) and the macros in .macros (vec!, format!). The\n\
             method names in .recorder-idents (record_span, add_counter, …)\n\
             are flagged the same way: kernels return stats by value, the\n\
             engine records them — a reachable Recorder call means\n\
             observability leaked into a kernel. Findings carry the call\n\
             path from the kernel as a witness.\n\
             \n\
             Rationale: PR 1's SoA fast paths (geom::block dominance\n\
             kernels, algos::parallel merge lanes, storage bulk fetch) win\n\
             by staying allocation-free per point; one stray `clone()` in a\n\
             helper re-introduces per-tuple heap traffic that the benches\n\
             only catch after the regression lands. Deliberate staging\n\
             buffers carry `// skylint: allow(hot-path-alloc) — <why>`.",
        ),
        "guard-hold-span" => Some(
            "guard-hold-span — no lock guard may be live across a call into\n\
             the designated expensive set.\n\
             \n\
             For every function in the files under [rules.guard-hold-span]\n\
             .files, skylint builds the per-function control-flow graph\n\
             (if/else, loops, match arms, early return/`?`) and runs a\n\
             forward guard-liveness dataflow: each `.read()`/`.write()`/\n\
             `.lock()` acquisition generates a fact that dies at the guard's\n\
             drop point (explicit `drop(g)`, end of statement for chained\n\
             temporaries, end of block for let-bound guards — Rust drop\n\
             semantics). A call executed while any guard fact is live is\n\
             flagged when its callee is *expensive*: it matches a designator\n\
             in [rules.guard-hold-span].expensive (`fn` or `Type::fn`), or\n\
             transitively calls one over the workspace call graph. Findings\n\
             carry the witness chain to the expensive sink.\n\
             \n\
             Rationale: the shared multi-user cache only scales if lookups\n\
             never serialize behind long computations (ROADMAP item 1).\n\
             Holding the cache RwLock across MPR planning, fetching, skyline\n\
             compute or Recorder I/O turns every concurrent query into a\n\
             convoy. The sanctioned protocol is: search and *copy out* under\n\
             a short read guard, compute unlocked, re-acquire write only to\n\
             publish. Name-only call resolution over-approximates, so a\n\
             clean result is sound.\n\
             \n\
             Escape hatch: `// skylint: allow(guard-hold-span) — <why>` on\n\
             the call line, for calls that are cheap despite their name.",
        ),
        "capture-race" => Some(
            "capture-race — closures handed to `spawn` must not mutate\n\
             state that is also read outside the closure without a\n\
             synchronization type.\n\
             \n\
             At every `spawn(…)` call site in library code skylint inspects\n\
             the closure argument's body for writes to captured bindings:\n\
             `x = …`, compound assignment (`x += …`), or taking `&mut x`.\n\
             A write is flagged when the binding is declared with `let`\n\
             *outside* the closure, its declaration does not involve one of\n\
             the types in [rules.capture-race].sync-types (Mutex, RwLock,\n\
             Atomic*, mpsc, …), and the binding is read again after the\n\
             closure body — the classic pattern where scoped-thread results\n\
             race instead of being returned through join handles or\n\
             channels.\n\
             \n\
             Rationale: rustc rejects most capture races, but `thread::scope`\n\
             plus interior mutability (Cell/RefCell in a single-threaded\n\
             type, raw pointers in unsafe blocks) and per-iteration re-borrow\n\
             patterns can compile and still be logically racy or become racy\n\
             on refactor. The parallel lanes return values through join\n\
             handles; this rule keeps that discipline mechanical.\n\
             \n\
             Escape hatch: `// skylint: allow(capture-race) — <why>` on the\n\
             mutation line.",
        ),
        "env-read-confinement" => Some(
            "env-read-confinement — process-environment reads are confined\n\
             to designated init/pin functions.\n\
             \n\
             Any `std::env::*` call (var, vars, temp_dir, …) or `env!`/\n\
             `option_env!` macro in a library, non-test function is flagged\n\
             unless the enclosing function matches a designator in\n\
             [rules.env-read-confinement].allowed-fns or the file is listed\n\
             in .allowed-files. Tool crates (cli, bench, skylint) are not\n\
             library crates and may read the environment freely.\n\
             \n\
             Rationale: ambient environment reads are hidden inputs — they\n\
             fork behaviour between runs (determinism) and between the\n\
             serving threads of one process (a worker re-reading\n\
             SKYCACHE_KERNEL mid-flight could select a different dominance\n\
             kernel than the one the cached plan was built with). The\n\
             sanctioned pattern is one once-style pin function that reads\n\
             the variable a single time and caches the decision; everything\n\
             else takes configuration explicitly.\n\
             \n\
             Escape hatch: `// skylint: allow(env-read-confinement) — <why>`.",
        ),
        "range-taint" => Some(
            "range-taint — decoded or parsed values must pass a validator\n\
             before reaching range scans or allocation sizes.\n\
             \n\
             Within the files under [rules.range-taint].files, a `let`\n\
             binding whose initializer calls a source in .sources\n\
             (get_u64_le, from_le_bytes, parse, …) is tainted; taint\n\
             propagates through later `let` bindings that mention a tainted\n\
             variable. A call to a validator in .validators with the\n\
             tainted variable as argument kills the taint (guard-liveness\n\
             dataflow over the CFG, so a validation on one branch clears\n\
             only that branch). A sink in .sinks (ColumnIndex::locate,\n\
             Vec::with_capacity, reserve, …) receiving a still-tainted\n\
             variable is a finding. A binding validated at birth\n\
             (`let n = checked_len(buf.get_u64_le(), max)?;`) is never\n\
             tainted.\n\
             \n\
             Rationale: the future query server feeds client-supplied\n\
             constraint endpoints into ColumnIndex::locate scans, and the\n\
             persist loader turns file bytes into allocation sizes — an\n\
             unvalidated 8-byte length is a remote OOM. Input hardening\n\
             must be checkable, not reviewed.\n\
             \n\
             Escape hatch: `// skylint: allow(range-taint) — <why bounded>`.",
        ),
        "sync-confinement" => Some(
            "sync-confinement — concurrency primitives in the shared-cache\n\
             protocol code must come from the `skycheck::sync` shims.\n\
             \n\
             Within the files listed under [rules.sync-confinement].files\n\
             (library code, outside #[cfg(test)] modules), any mention of:\n\
               * `parking_lot` (imports or paths)\n\
               * `std::sync::{Mutex, RwLock, Condvar, Barrier, Once, mpsc,\n\
                 atomic}` paths\n\
               * `std::thread` paths, except\n\
                 `std::thread::available_parallelism`\n\
             is a finding. `std::sync::Arc`, `OnceLock` and the shim\n\
             re-exports are fine.\n\
             \n\
             Additionally, a `pub fn` whose signature returns a lock\n\
             guard (`MutexGuard`, `RwLockReadGuard`, `RwLockWriteGuard`)\n\
             is a finding: a guard that escapes the file unseals the\n\
             lock protocol — callers can hold it across arbitrary code,\n\
             invisible to the lock-order and guard-hold-span analyses.\n\
             Expose `with_…(f: impl FnOnce(&T) -> R)` closure APIs, or\n\
             publish immutable snapshots, instead. Private helpers may\n\
             still pass guards around within the file.\n\
             \n\
             Rationale: skycheck's deterministic model checker can only\n\
             explore interleavings of operations it can see. The shims in\n\
             `skycheck::sync` compile to the real `std` primitives in\n\
             production and become schedule points under an Explorer run;\n\
             a raw `std::sync::RwLock` or `std::thread::spawn` in protocol\n\
             code is invisible to the checker, so the model-checked\n\
             invariants silently stop covering it.\n\
             \n\
             Escape hatch: `// skylint: allow(sync-confinement) — <why the\n\
             primitive is out of model scope>`.",
        ),
        "atomic-ordering" => Some(
            "atomic-ordering — no `Ordering::Relaxed` on statics shared\n\
             across threads.\n\
             \n\
             Within the files listed under [rules.atomic-ordering].files,\n\
             a `static X: Atomic…` that has both load and store/RMW sites,\n\
             at least one of which is reachable (over the call graph) from\n\
             a function in a spawn-allowed file\n\
             ([rules.concurrency-hygiene].spawn-allowed — the thread\n\
             lanes), is cross-thread. Every access to such a static that\n\
             passes `Ordering::Relaxed` is a finding, with a witness call\n\
             path from the thread lane to the access.\n\
             \n\
             Rationale: Relaxed guarantees atomicity but no ordering — a\n\
             worker spawned after `set_active` stored a kernel choice with\n\
             Relaxed may still observe the old value and select a\n\
             different dominance kernel than the one the cached plan was\n\
             built with. Cross-thread publication must be\n\
             Release (store) / Acquire (load) or SeqCst; Relaxed is only\n\
             acceptable for single-thread or counter-only statics, which\n\
             this rule's reachability test excludes.\n\
             \n\
             Escape hatch: `// skylint: allow(atomic-ordering) — <why\n\
             ordering is irrelevant here>`.",
        ),
        "dead-allow" => Some(
            "dead-allow — `// skylint: allow(…)` escapes must still earn\n\
             their keep.\n\
             \n\
             Every suppression is recorded during the scan; after all other\n\
             rules ran, any allow annotation (outside tests) that suppressed\n\
             nothing is reported. Stale escapes are deleted, not kept as\n\
             decoration — otherwise the next real finding on that line is\n\
             silently swallowed.\n\
             \n\
             Note the annotation must also be well-formed and name known\n\
             rules; malformed or unknown-rule annotations are hard errors\n\
             (exit 2), not findings.",
        ),
        _ => None,
    }
}

/// Context handed to each rule for one file.
pub struct FileCtx<'a> {
    /// Lexed + indexed source.
    pub model: &'a SourceModel,
    /// File belongs to a library crate's `src/` tree.
    pub is_library: bool,
    /// File lives under `tests/`, `benches/` or `examples/`.
    pub is_test_file: bool,
    /// Resolved policy configuration.
    pub policy: &'a Policy,
}

impl FileCtx<'_> {
    fn lib_code_at(&self, line: u32) -> bool {
        self.is_library && !self.is_test_file && !self.model.in_test_region(line)
    }

    fn path_in(&self, list: &[String]) -> bool {
        list.iter().any(|p| self.model.path == *p || self.model.path.starts_with(p.as_str()))
    }
}

/// Runs every rule over one file.
pub fn run_all(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    no_panic_paths(ctx, out);
    determinism(ctx, out);
    concurrency_hygiene(ctx, out);
    api_hygiene(ctx, out);
    sync_confinement(ctx, out);
}

fn push(ctx: &FileCtx<'_>, out: &mut Vec<Finding>, rule: &str, line: u32, message: String) {
    if ctx.model.is_allowed(rule, line) {
        return;
    }
    out.push(Finding {
        rule: rule.to_owned(),
        file: ctx.model.path.clone(),
        line,
        message,
        snippet: ctx.model.snippet(line),
    });
}

// ---------------------------------------------------------------------------
// no-panic-paths
// ---------------------------------------------------------------------------

fn no_panic_paths(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "no-panic-paths";
    let toks = &ctx.model.tokens;
    let index_strict = ctx.path_in(&ctx.policy.index_strict_files);
    for (i, t) in toks.iter().enumerate() {
        if t.is_comment() || !ctx.lib_code_at(t.line) {
            continue;
        }
        // `.unwrap()` / `.expect(` method calls.
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && prev_code(toks, i).is_some_and(|p| p.is_op("."))
            && next_code(toks, i).is_some_and(|n| n.is_op("("))
        {
            push(
                ctx,
                out,
                RULE,
                t.line,
                format!(
                    ".{}() panics on the error path — return a typed error \
                     or annotate the invariant",
                    t.text
                ),
            );
        }
        // panic!/todo!/unimplemented! macros.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && next_code(toks, i).is_some_and(|n| n.is_op("!"))
        {
            push(
                ctx,
                out,
                RULE,
                t.line,
                format!("{}! in library code — return a typed error instead", t.text),
            );
        }
        // Index-without-get in strict files: `expr[` where expr is an
        // identifier, `)` or `]` (expression position, not a type, attr or
        // macro like vec![…]).
        if index_strict
            && t.is_op("[")
            && prev_code(toks, i).is_some_and(|p| {
                p.kind == TokKind::Ident && !is_keyword(&p.text) || p.is_op(")") || p.is_op("]")
            })
        {
            push(
                ctx,
                out,
                RULE,
                t.line,
                "bracket indexing can panic out-of-bounds — use .get(i) \
                 (index-strict file)"
                    .to_owned(),
            );
        }
    }
}

/// Keywords that can precede `[` without forming an index expression
/// (`if let Some(x) = …`, `return [a, b]`, `in [1, 2]`, …).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "return"
            | "in"
            | "mut"
            | "ref"
            | "move"
            | "let"
            | "const"
            | "static"
            | "as"
            | "break"
            | "continue"
            | "where"
            | "impl"
            | "dyn"
            | "fn"
            | "for"
            | "while"
            | "loop"
            | "unsafe"
            | "use"
            | "pub"
            | "type"
            | "struct"
            | "enum"
            | "trait"
    )
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

fn determinism(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "determinism";
    let toks = &ctx.model.tokens;
    let float_strict = ctx.path_in(&ctx.policy.float_files);
    for (i, t) in toks.iter().enumerate() {
        if t.is_comment() || !ctx.lib_code_at(t.line) {
            continue;
        }
        if t.kind == TokKind::Ident && ctx.policy.time_idents.contains(&t.text) {
            push(
                ctx,
                out,
                RULE,
                t.line,
                format!(
                    "{} reads the wall clock — route timing through \
                     core/src/clock.rs (the audited site)",
                    t.text
                ),
            );
        }
        if t.kind == TokKind::Ident && ctx.policy.hash_idents.contains(&t.text) {
            push(
                ctx,
                out,
                RULE,
                t.line,
                format!(
                    "{} has randomized iteration order — use BTreeMap/BTreeSet \
                     or a sorted Vec in result-producing paths",
                    t.text
                ),
            );
        }
        // Float equality in geometry code.
        if float_strict && (t.is_op("==") || t.is_op("!=")) {
            let float_side = |tok: Option<&Token>| -> bool {
                tok.is_some_and(|n| {
                    n.kind == TokKind::Float
                        || (n.kind == TokKind::Ident && ctx.policy.float_fields.contains(&n.text))
                })
            };
            // Look left at the previous code token; look right skipping
            // unary borrows/parens/negation. A float-field ident followed
            // by `.` is a method/field access (`hi.len()`), not the raw
            // field value, and does not count.
            let left = prev_code(toks, i);
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|n| n.is_comment() || n.is_op("&") || n.is_op("(") || n.is_op("-"))
            {
                j += 1;
            }
            let right = toks.get(j).filter(|_| !toks.get(j + 1).is_some_and(|n| n.is_op(".")));
            if float_side(left) || float_side(right) {
                push(
                    ctx,
                    out,
                    RULE,
                    t.line,
                    format!(
                        "float `{}` in geometry code — use \
                         skycache_geom::float::{{approx_eq, exact_eq}} so the \
                         comparison mode is explicit",
                        t.text
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// concurrency-hygiene
// ---------------------------------------------------------------------------

fn concurrency_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "concurrency-hygiene";
    let toks = &ctx.model.tokens;
    let spawn_ok = ctx.path_in(&ctx.policy.spawn_allowed);
    for (i, t) in toks.iter().enumerate() {
        if t.is_comment() {
            continue;
        }
        // spawn() outside the sanctioned lanes.
        if !spawn_ok
            && ctx.lib_code_at(t.line)
            && t.is_ident("spawn")
            && next_code(toks, i).is_some_and(|n| n.is_op("("))
        {
            push(
                ctx,
                out,
                RULE,
                t.line,
                "spawn() outside the sanctioned parallel lanes \
                 (algos/src/parallel.rs, storage/src/table.rs) — route \
                 parallelism through those modules"
                    .to_owned(),
            );
        }
        // unsafe blocks need SAFETY comments (everywhere, tests included —
        // unsound test code is still unsound).
        if t.is_ident("unsafe")
            && next_code(toks, i).is_some_and(|n| n.is_op("{"))
            && ctx.model.comment_near(t.line, "SAFETY:").is_none()
        {
            push(
                ctx,
                out,
                RULE,
                t.line,
                "unsafe block without a `// SAFETY:` comment on or above \
                 the line"
                    .to_owned(),
            );
        }
    }
    // Lock protocol, per function.
    if ctx.path_in(&ctx.policy.lock_files) {
        lock_protocol(ctx, out);
    }
}

fn lock_protocol(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "concurrency-hygiene";
    let toks = &ctx.model.tokens;
    let phases = &ctx.policy.lock_phases;
    for span in &ctx.model.fn_spans {
        let mut last_phase: Option<usize> = None;
        for i in span.body_start..span.body_end.min(toks.len()) {
            let t = &toks[i];
            if t.is_comment() || ctx.model.in_test_region(t.line) {
                continue;
            }
            let is_acquisition = t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "read" | "write" | "lock" | "try_lock")
                && prev_code(toks, i).is_some_and(|p| p.is_op("."))
                && next_code(toks, i).is_some_and(|n| n.is_op("("));
            if !is_acquisition {
                continue;
            }
            let Some(comment) = ctx.model.comment_near(t.line, "lock-order:") else {
                push(
                    ctx,
                    out,
                    RULE,
                    t.line,
                    format!(
                        ".{}() lock acquisition without a `// lock-order: \
                         <phase>` annotation (declared phases: {})",
                        t.text,
                        phases.join(" < ")
                    ),
                );
                continue;
            };
            let annotated = comment
                .split("lock-order:")
                .nth(1)
                .map(|s| s.split_whitespace().next().unwrap_or("").to_owned())
                .unwrap_or_default();
            let Some(pos) = phases.iter().position(|p| *p == annotated) else {
                push(
                    ctx,
                    out,
                    RULE,
                    t.line,
                    format!(
                        "lock-order phase {annotated:?} is not declared \
                         (declared: {})",
                        phases.join(" < ")
                    ),
                );
                continue;
            };
            if let Some(prev) = last_phase {
                if pos < prev {
                    push(
                        ctx,
                        out,
                        RULE,
                        t.line,
                        format!(
                            "lock phase {:?} acquired after {:?} in fn {} — \
                             violates the declared order {}",
                            phases[pos],
                            phases[prev],
                            span.name,
                            phases.join(" < ")
                        ),
                    );
                }
            }
            last_phase = Some(pos.max(last_phase.unwrap_or(0)));
        }
    }
}

// ---------------------------------------------------------------------------
// api-hygiene
// ---------------------------------------------------------------------------

fn api_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "api-hygiene";
    if !ctx.is_library || ctx.is_test_file {
        return;
    }
    let m = ctx.model;
    // Crate roots: required headers + crate docs.
    if m.path.ends_with("src/lib.rs") {
        let src = m.lines.join("\n");
        for header in &ctx.policy.required_headers {
            if !src.contains(header.as_str()) {
                push(
                    ctx,
                    out,
                    RULE,
                    1,
                    format!("crate root is missing the required header `{header}`"),
                );
            }
        }
        if !m
            .tokens
            .first()
            .is_some_and(|t| t.kind == TokKind::LineComment && t.text.starts_with("//!"))
        {
            push(ctx, out, RULE, 1, "crate root must open with `//!` crate documentation".into());
        }
    }
    // Documented public items at module scope.
    if ctx.path_in(&ctx.policy.doc_paths) {
        undocumented_pub_items(ctx, out);
    }
}

/// Flags `pub fn/struct/enum/trait/type/const/static/mod` items at module
/// scope (brace depth 0, or inside non-test `mod` blocks — approximated by
/// "not inside any fn body") lacking a preceding doc comment.
fn undocumented_pub_items(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "api-hygiene";
    let toks = &ctx.model.tokens;
    let in_fn_body =
        |i: usize| ctx.model.fn_spans.iter().any(|s| s.body_start < i && i < s.body_end);
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("pub") || ctx.model.in_test_region(t.line) || in_fn_body(i) {
            continue;
        }
        // Skip visibility qualifiers: pub(crate), pub(super), pub(in …).
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_op("(")) {
            continue; // pub(crate)/pub(super) items are not public API
        }
        while toks.get(j).is_some_and(|n| n.is_comment()) {
            j += 1;
        }
        let Some(item) = toks.get(j) else { continue };
        let kind = item.text.as_str();
        if !matches!(
            kind,
            "fn" | "struct" | "enum" | "trait" | "type" | "const" | "static" | "mod" | "union"
        ) {
            continue; // pub use re-exports need no doc of their own
        }
        // Inside an impl block, missing_docs governs; the lexical check
        // covers module scope only. Heuristic: an item whose enclosing
        // brace context is an impl is preceded (searching back) by an
        // `impl` at lower depth — approximate by checking whether any
        // `impl` token appears before `i` with an unclosed brace.
        if inside_impl(toks, i) {
            continue;
        }
        if !has_doc_before(toks, i) {
            push(ctx, out, RULE, t.line, format!("public `{kind}` lacks a doc comment (///)"));
        }
    }
}

/// Whether token `i` sits inside an `impl … { … }` body.
fn inside_impl(toks: &[Token], i: usize) -> bool {
    // Track a stack of open braces, noting which were opened by impl/mod.
    let mut stack: Vec<bool> = Vec::new(); // true = impl brace
    let mut pending_impl = false;
    for t in &toks[..i] {
        if t.is_comment() {
            continue;
        }
        if t.is_ident("impl") {
            pending_impl = true;
        } else if t.is_op("{") {
            stack.push(pending_impl);
            pending_impl = false;
        } else if t.is_op("}") {
            stack.pop();
        } else if t.is_op(";") {
            pending_impl = false;
        }
    }
    stack.iter().any(|&b| b)
}

/// Whether the item starting at token `i` has a doc comment or doc
/// attribute directly above (skipping other attributes like #[derive]).
fn has_doc_before(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokKind::LineComment if t.text.starts_with("///") || t.text.starts_with("//!") => {
                return true
            }
            TokKind::BlockComment if t.text.starts_with("/**") || t.text.starts_with("/*!") => {
                return true
            }
            TokKind::LineComment | TokKind::BlockComment => continue,
            // Walk over attributes: `]` closes one; skip to its `#`.
            TokKind::Op if t.text == "]" => {
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if toks[j].is_op("]") {
                        depth += 1;
                    } else if toks[j].is_op("[") {
                        depth -= 1;
                    }
                }
                // Check for a doc attribute #[doc = "…"].
                if toks[j..i].iter().any(|t| t.is_ident("doc")) {
                    return true;
                }
                if j > 0 && toks[j - 1].is_op("#") {
                    j -= 1;
                }
            }
            _ => return false,
        }
    }
    false
}

/// Previous non-comment token.
fn prev_code(toks: &[Token], i: usize) -> Option<&Token> {
    toks[..i].iter().rev().find(|t| !t.is_comment())
}

/// Next non-comment token.
fn next_code(toks: &[Token], i: usize) -> Option<&Token> {
    toks[i + 1..].iter().find(|t| !t.is_comment())
}

// ---------------------------------------------------------------------------
// sync-confinement
// ---------------------------------------------------------------------------

/// `std::sync::*` items banned from sync-confined files. `Arc` and
/// `OnceLock` are absent on purpose: they carry no schedule point the
/// model checker needs to intercept.
const CONFINED_SYNC_ITEMS: [&str; 7] =
    ["Mutex", "RwLock", "Condvar", "Barrier", "Once", "mpsc", "atomic"];

fn sync_confinement(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "sync-confinement";
    if ctx.policy.sync_confine_files.is_empty() || !ctx.path_in(&ctx.policy.sync_confine_files) {
        return;
    }
    guard_escape(ctx, out);
    let toks = &ctx.model.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.is_comment() || t.kind != TokKind::Ident || !ctx.lib_code_at(t.line) {
            continue;
        }
        // Any `parking_lot` mention: the import line is the chokepoint —
        // after `use parking_lot::RwLock;` the bare uses are lexically
        // indistinguishable from the shim, so the import carries the flag.
        if t.text == "parking_lot" {
            push(
                ctx,
                out,
                RULE,
                t.line,
                "`parking_lot` primitive in a sync-confined file — import the \
                 `skycheck::sync` shim instead, so model runs can schedule it"
                    .to_owned(),
            );
            continue;
        }
        if t.text != "std" {
            continue;
        }
        let Some(seg1) = path_segment_after(toks, i) else { continue };
        match toks[seg1].text.as_str() {
            "sync" => {
                let Some(seg2) = path_segment_after(toks, seg1) else { continue };
                let item = toks[seg2].text.as_str();
                if CONFINED_SYNC_ITEMS.contains(&item) {
                    push(
                        ctx,
                        out,
                        RULE,
                        t.line,
                        format!(
                            "`std::sync::{item}` in a sync-confined file — use the \
                             `skycheck::sync` shim so model runs can schedule it"
                        ),
                    );
                }
            }
            "thread" => {
                // `available_parallelism` is a pure capability probe with
                // no schedule point; everything else (spawn/scope/park/…)
                // must go through the shimmed `skycheck::sync::thread`.
                let exempt = path_segment_after(toks, seg1)
                    .is_some_and(|j| toks[j].text == "available_parallelism");
                if !exempt {
                    push(
                        ctx,
                        out,
                        RULE,
                        t.line,
                        "`std::thread` in a sync-confined file — use \
                         `skycheck::sync::thread` so spawns and joins are \
                         schedule points under the model checker"
                            .to_owned(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Lock-guard types that must not cross a sync-confined file's public
/// API boundary.
const ESCAPING_GUARD_TYPES: [&str; 3] = ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// Guard-escape arm of sync-confinement: a `pub fn` whose signature
/// mentions a lock guard after a return arrow hands callers a live
/// guard, so lock scopes stop being confined to the file that owns the
/// lock — the `with_…` closure APIs exist precisely to prevent that.
/// Private helpers may still pass guards around within the file.
fn guard_escape(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "sync-confinement";
    let toks = &ctx.model.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "fn" || !ctx.lib_code_at(t.line) {
            continue;
        }
        if !visibility_is_pub(toks, i) {
            continue;
        }
        let name = next_code(toks, i).map_or_else(String::new, |n| n.text.clone());
        // Scan the signature up to the body/semicolon; a guard type
        // after any `->` is a return position (a closure parameter that
        // *produces* a guard escapes it just the same).
        let mut seen_arrow = false;
        for tok in &toks[i + 1..] {
            if tok.is_comment() {
                continue;
            }
            if tok.is_op("{") || tok.is_op(";") {
                break;
            }
            if tok.is_op("->") {
                seen_arrow = true;
            } else if seen_arrow
                && tok.kind == TokKind::Ident
                && ESCAPING_GUARD_TYPES.contains(&tok.text.as_str())
            {
                push(
                    ctx,
                    out,
                    RULE,
                    t.line,
                    format!(
                        "`pub fn {name}` returns a lock guard (`{}`) from a sync-confined \
                         file — guards must not escape the file that owns the lock; expose \
                         a `with_…(f: impl FnOnce(&T) -> R)` closure API instead",
                        tok.text
                    ),
                );
                break;
            }
        }
    }
}

/// Whether the `fn` at `i` is `pub` (including restricted forms like
/// `pub(crate)`), looking back over the qualifier keywords (`const`,
/// `unsafe`, `async`, `extern "…"`).
fn visibility_is_pub(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    loop {
        let Some(p) = prev_code_idx(toks, j) else { return false };
        if toks[p].is_op(")") {
            // A visibility restriction like `pub(crate)`: walk back to
            // its opening paren, then look for the `pub` before it.
            let mut depth = 0usize;
            let mut k = p;
            loop {
                if toks[k].is_op(")") {
                    depth += 1;
                } else if toks[k].is_op("(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return false;
                }
                k -= 1;
            }
            j = k;
            continue;
        }
        match (toks[p].kind, toks[p].text.as_str()) {
            (TokKind::Ident, "const" | "unsafe" | "async" | "extern") => j = p,
            (TokKind::Literal, _) => j = p, // extern ABI string
            (TokKind::Ident, "pub") => return true,
            _ => return false,
        }
    }
}

/// Previous non-comment token's index.
fn prev_code_idx(toks: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !toks[j].is_comment())
}

/// Token index of the path segment following `i`, if the next code token
/// is `::` and the one after it an identifier.
fn path_segment_after(toks: &[Token], i: usize) -> Option<usize> {
    let j = next_code_idx(toks, i)?;
    if !toks[j].is_op("::") {
        return None;
    }
    let k = next_code_idx(toks, j)?;
    (toks[k].kind == TokKind::Ident).then_some(k)
}

// ---------------------------------------------------------------------------
// Whole-workspace dataflow rules
// ---------------------------------------------------------------------------

/// Runs the call-graph rules after every per-file rule has run.
pub fn run_workspace(
    ws: &Workspace,
    models: &BTreeMap<&str, &SourceModel>,
    policy: &Policy,
    out: &mut Vec<Finding>,
) {
    if !policy.lock_graph_files.is_empty() {
        lock_order(ws, models, policy, out);
    }
    panic_reachability(ws, models, policy, out);
    if !policy.alloc_kernels.is_empty() {
        hot_path_alloc(ws, models, policy, out);
    }
    if !policy.guard_span_files.is_empty() && !policy.expensive_calls.is_empty() {
        guard_hold_span(ws, models, policy, out);
    }
    capture_race(ws, models, policy, out);
    env_read_confinement(ws, models, policy, out);
    if !policy.taint_files.is_empty() {
        range_taint(ws, models, policy, out);
    }
    if !policy.atomic_files.is_empty() {
        atomic_ordering(ws, models, policy, out);
    }
}

/// Emits one workspace finding unless an allow annotation covers it.
fn push_ws(
    models: &BTreeMap<&str, &SourceModel>,
    out: &mut Vec<Finding>,
    rule: &str,
    file: &str,
    line: u32,
    message: String,
) {
    let mut snippet = String::new();
    if let Some(m) = models.get(file) {
        if m.is_allowed(rule, line) {
            return;
        }
        snippet = m.snippet(line);
    }
    out.push(Finding { rule: rule.to_owned(), file: file.to_owned(), line, message, snippet });
}

fn lock_order(
    ws: &Workspace,
    models: &BTreeMap<&str, &SourceModel>,
    policy: &Policy,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "lock-order";
    let edges = ws.lock_edges(&policy.lock_graph_files);
    let phase_pos = |p: &Option<String>| -> Option<usize> {
        p.as_ref().and_then(|p| policy.lock_phases.iter().position(|q| q == p))
    };
    for e in &edges {
        let via = e.via.as_ref().map(|v| format!(" (inside callee `{v}`)")).unwrap_or_default();
        if e.from.lock == e.to.lock {
            // Same lock: shared → shared re-entry is fine; anything that
            // involves an exclusive guard deadlocks or upgrades.
            let bad = matches!(
                (e.from.kind, e.to.kind),
                (LockKind::Read, LockKind::Write) | (LockKind::Write, _)
            );
            if bad {
                push_ws(
                    models,
                    out,
                    RULE,
                    &e.from.file,
                    e.from.line,
                    format!(
                        "`{}` is {}-acquired{via} while fn `{}` already holds \
                         it for {} — self-deadlock / guard upgrade",
                        e.to.lock,
                        e.to.kind.as_str(),
                        e.holder,
                        e.from.kind.as_str(),
                    ),
                );
            }
        } else if e.via.is_none() {
            // Declared-phase contradictions are checked on intra-procedural
            // edges only: those guard extents are precise, while via-callee
            // edges inherit the name-resolution over-approximation and
            // would flag phases of callees that cannot actually be reached.
            let (Some(pf), Some(pt)) = (phase_pos(&e.from.phase), phase_pos(&e.to.phase)) else {
                continue;
            };
            if pt < pf {
                push_ws(
                    models,
                    out,
                    RULE,
                    &e.from.file,
                    e.from.line,
                    format!(
                        "fn `{}` acquires `{}` (phase {:?}){via} while holding \
                         `{}` (phase {:?}) — contradicts the declared order {}",
                        e.holder,
                        e.to.lock,
                        policy.lock_phases[pt],
                        e.from.lock,
                        policy.lock_phases[pf],
                        policy.lock_phases.join(" < "),
                    ),
                );
            }
        }
    }
    for cycle in lock_cycles(&edges) {
        // Anchor the finding at the first edge of the cycle.
        let anchor = edges
            .iter()
            .find(|e| e.from.lock == cycle[0])
            .expect("cycle nodes come from the edge set");
        push_ws(
            models,
            out,
            RULE,
            &anchor.from.file,
            anchor.from.line,
            format!(
                "lock-acquisition cycle {} → {} — deadlock when the \
                 functions interleave (first edge held in fn `{}`)",
                cycle.join(" → "),
                cycle[0],
                anchor.holder,
            ),
        );
    }
    // Annotation/kind consistency on every in-scope acquisition.
    let in_scope = |file: &str| {
        policy.lock_graph_files.iter().any(|p| file == p || file.starts_with(&format!("{p}/")))
    };
    for f in ws.fns.iter().filter(|f| in_scope(&f.file)) {
        for e in &f.events {
            let EventKind::Acquire { lock, kind, phase: Some(phase), .. } = &e.kind else {
                continue;
            };
            let consistent = match kind {
                LockKind::Read => phase != "write",
                LockKind::Write => phase != "read",
            };
            if !consistent {
                push_ws(
                    models,
                    out,
                    RULE,
                    &f.file,
                    e.line,
                    format!(
                        "`{}` acquisition of `{lock}` is annotated \
                         `lock-order: {phase}` — annotation contradicts the \
                         acquisition kind",
                        kind.as_str(),
                    ),
                );
            }
        }
    }
}

fn panic_reachability(
    ws: &Workspace,
    models: &BTreeMap<&str, &SourceModel>,
    policy: &Policy,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "panic-reachability";
    let justified = |f: &crate::symbols::FnDef, line: u32| {
        models
            .get(f.file.as_str())
            .is_some_and(|m| m.is_allowed("no-panic-paths", line) || m.is_allowed(RULE, line))
    };
    let info = ws.may_panic(&policy.panic_sources, &justified);
    for (i, f) in ws.fns.iter().enumerate() {
        if !f.is_pub {
            continue;
        }
        let Some(pi) = &info[i] else { continue };
        if pi.chain.is_empty() {
            continue; // direct panic — no-panic-paths already reports the site
        }
        let chain: Vec<String> =
            pi.chain.iter().map(|&c| format!("`{}`", ws.fns[c].qualified())).collect();
        push_ws(
            models,
            out,
            RULE,
            &f.file,
            f.line,
            format!(
                "pub fn `{}` can reach {} at {}:{} via {}",
                f.qualified(),
                pi.desc,
                pi.file,
                pi.line,
                chain.join(" → "),
            ),
        );
    }
}

fn hot_path_alloc(
    ws: &Workspace,
    models: &BTreeMap<&str, &SourceModel>,
    policy: &Policy,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "hot-path-alloc";
    let roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| policy.alloc_kernels.iter().any(|k| f.matches_designator(k)))
        .map(|(i, _)| i)
        .collect();
    let reach = ws.reachable_with_paths(&roots);
    let in_scope = |file: &str| {
        policy.alloc_scope_files.is_empty()
            || policy
                .alloc_scope_files
                .iter()
                .any(|p| file == p || file.starts_with(&format!("{p}/")))
    };
    for (&i, path) in &reach {
        let f = &ws.fns[i];
        if !in_scope(&f.file) {
            continue;
        }
        let witness = || -> String {
            path.iter().map(|&c| ws.fns[c].name.clone()).collect::<Vec<_>>().join(" → ")
        };
        for e in &f.events {
            // Recorder calls are forbidden on kernel hot paths outright:
            // kernels return their stats by value and the engine
            // publishes them, so a reachable `record_span`/`add_counter`
            // means observability leaked into a kernel.
            if matches!(e.kind, EventKind::Method { .. } | EventKind::Bare)
                && policy.recorder_idents.contains(&e.name)
            {
                push_ws(
                    models,
                    out,
                    RULE,
                    &f.file,
                    e.line,
                    format!(
                        "Recorder call `.{}()` on a kernel hot path (reached via \
                         {}) — kernels return stats by value; record in the engine",
                        e.name,
                        witness(),
                    ),
                );
                continue;
            }
            let what = match &e.kind {
                EventKind::Method { .. } | EventKind::Bare
                    if policy.alloc_calls.contains(&e.name) =>
                {
                    Some(format!(".{}()", e.name))
                }
                EventKind::Path { qual } => {
                    let full = qual
                        .last()
                        .map(|q| format!("{q}::{}", e.name))
                        .unwrap_or_else(|| e.name.clone());
                    policy.alloc_calls.iter().any(|c| *c == full || *c == e.name).then_some(full)
                }
                EventKind::MacroUse if policy.alloc_macros.contains(&e.name) => {
                    Some(format!("{}!", e.name))
                }
                _ => None,
            };
            if let Some(what) = what {
                push_ws(
                    models,
                    out,
                    RULE,
                    &f.file,
                    e.line,
                    format!(
                        "{what} allocates on a kernel hot path (reached via \
                         {}) — hoist the buffer or justify with an allow",
                        witness(),
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// atomic-ordering
// ---------------------------------------------------------------------------

/// Atomic method names that observe a value.
const ATOMIC_READS: [&str; 1] = ["load"];

/// Atomic method names that publish a value (stores and RMWs).
const ATOMIC_WRITES: [&str; 10] = [
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One access to a static atomic, as harvested from the call graph.
struct AtomicAccess {
    file: String,
    line: u32,
    fn_idx: usize,
    fn_name: String,
    is_write: bool,
    relaxed: bool,
}

/// Names of `static … : Atomic…` declarations in `model`.
fn static_atomics(model: &SourceModel) -> Vec<String> {
    let toks = &model.tokens;
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_comment() || !t.is_ident("static") {
            continue;
        }
        let Some(mut j) = next_code_idx(toks, i) else { continue };
        if toks[j].is_ident("mut") {
            match next_code_idx(toks, j) {
                Some(k) => j = k,
                None => continue,
            }
        }
        if toks[j].kind != TokKind::Ident {
            continue;
        }
        let Some(colon) = next_code_idx(toks, j) else { continue };
        if !toks[colon].is_op(":") {
            continue;
        }
        // The type may be bare (`AtomicU8`) or path-qualified
        // (`atomic::AtomicU8`): scan the annotation up to `=`/`;`.
        let mut k = colon;
        let mut is_atomic = false;
        while let Some(n) = next_code_idx(toks, k) {
            if toks[n].is_op("=") || toks[n].is_op(";") {
                break;
            }
            if toks[n].kind == TokKind::Ident && toks[n].text.starts_with("Atomic") {
                is_atomic = true;
                break;
            }
            k = n;
        }
        if is_atomic {
            names.push(toks[j].text.clone());
        }
    }
    names
}

fn atomic_ordering(
    ws: &Workspace,
    models: &BTreeMap<&str, &SourceModel>,
    policy: &Policy,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "atomic-ordering";
    // 1. Static atomics declared in the scoped files.
    let mut statics: Vec<String> = Vec::new();
    for (file, model) in models {
        if file_in(file, &policy.atomic_files) {
            statics.extend(static_atomics(model));
        }
    }
    if statics.is_empty() {
        return;
    }
    // 2. Every load/store/RMW whose receiver is one of those statics.
    let mut accesses: BTreeMap<String, Vec<AtomicAccess>> = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if !file_in(&f.file, &policy.atomic_files) {
            continue;
        }
        let Some(model) = models.get(f.file.as_str()) else { continue };
        for e in &f.events {
            let EventKind::Method { recv, .. } = &e.kind else { continue };
            let Some(target) = recv.last().filter(|r| statics.contains(r)) else { continue };
            let is_write = ATOMIC_WRITES.contains(&e.name.as_str());
            if !is_write && !ATOMIC_READS.contains(&e.name.as_str()) {
                continue;
            }
            accesses.entry(target.clone()).or_default().push(AtomicAccess {
                file: f.file.clone(),
                line: e.line,
                fn_idx: i,
                fn_name: f.name.clone(),
                is_write,
                relaxed: call_args_mention(&model.tokens, e.tok, "Relaxed"),
            });
        }
    }
    // 3. Thread lanes: everything reachable from the spawn-allowed files.
    let roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| file_in(&f.file, &policy.spawn_allowed))
        .map(|(i, _)| i)
        .collect();
    let reach = ws.reachable_with_paths(&roots);
    // 4. A static with both sides present, at least one on a thread path,
    //    must not be accessed with Relaxed anywhere.
    for (st, accs) in &accesses {
        if !accs.iter().any(|a| a.is_write) || !accs.iter().any(|a| !a.is_write) {
            continue;
        }
        let Some(threaded) = accs.iter().find(|a| reach.contains_key(&a.fn_idx)) else {
            continue;
        };
        let witness: String = reach[&threaded.fn_idx]
            .iter()
            .map(|&c| ws.fns[c].name.clone())
            .collect::<Vec<_>>()
            .join(" → ");
        for acc in accs.iter().filter(|a| a.relaxed) {
            let (side, want, pair) = if acc.is_write {
                ("store", "Release", "Acquire")
            } else {
                ("load", "Acquire", "Release")
            };
            let opp = accs.iter().find(|a| a.is_write != acc.is_write);
            let opp_at = opp
                .map(|o| {
                    format!(
                        ", {} in `{}` at {}:{}",
                        if o.is_write { "written" } else { "read" },
                        o.fn_name,
                        o.file,
                        o.line
                    )
                })
                .unwrap_or_default();
            push_ws(
                models,
                out,
                RULE,
                &acc.file,
                acc.line,
                format!(
                    "`Ordering::Relaxed` {side} on static `{st}`, which crosses a \
                     spawn boundary (thread witness: {witness}{opp_at}) — use \
                     `Ordering::{want}` pairing with `{pair}` on the other side"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// guard-hold-span (CFG + guard-liveness dataflow)
// ---------------------------------------------------------------------------

/// Whether `file` is equal to or under any of the path prefixes.
fn file_in(file: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| file == p || file.starts_with(&format!("{p}/")))
}

/// Token index of the `;`/`{`/`}` delimiter preceding the statement that
/// contains `at` (naive backward scan matching `symbols::statement_is_let`).
fn stmt_start(toks: &[Token], at: usize) -> usize {
    let mut i = at;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        if t.is_comment() {
            continue;
        }
        if t.is_op(";") || t.is_op("{") || t.is_op("}") {
            break;
        }
    }
    i
}

/// The `let` binding name of the statement containing token `at`, if the
/// statement is a simple `let [mut] name = …;`.
fn let_binding_of(toks: &[Token], at: usize) -> Option<String> {
    let i = stmt_start(toks, at);
    let mut j = next_code_idx(toks, i)?;
    if !toks[j].is_ident("let") {
        return None;
    }
    j = next_code_idx(toks, j)?;
    if toks[j].is_ident("mut") {
        j = next_code_idx(toks, j)?;
    }
    (toks[j].kind == TokKind::Ident).then(|| toks[j].text.clone())
}

/// Whether the call whose name token is `call` has `ident` among its
/// argument tokens (shallow scan of the parenthesized argument list).
fn call_args_mention(toks: &[Token], call: usize, ident: &str) -> bool {
    let Some(open) = (call..toks.len().min(call + 6)).find(|&j| toks[j].is_op("(")) else {
        return false;
    };
    let close = match_paren(toks, open, toks.len().saturating_sub(1));
    toks[open + 1..close].iter().any(|t| t.is_ident(ident))
}

fn guard_hold_span(
    ws: &Workspace,
    models: &BTreeMap<&str, &SourceModel>,
    policy: &Policy,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "guard-hold-span";
    // Transitively-expensive set over the call graph, with witness chains:
    // a function is expensive if it matches a designator or calls an
    // expensive function (same fixpoint shape as may-panic propagation).
    // Exempt designators are never marked, cutting propagation through
    // them — the publish steps a guard exists to cover stay cheap even
    // when name-only resolution wires them to an expensive namesake.
    let exempt: Vec<bool> = ws
        .fns
        .iter()
        .map(|f| policy.expensive_exempt.iter().any(|d| f.matches_designator(d)))
        .collect();
    let mut expensive: Vec<Option<Vec<usize>>> = ws
        .fns
        .iter()
        .zip(&exempt)
        .map(|(f, &ex)| {
            (!ex && policy.expensive_calls.iter().any(|d| f.matches_designator(d))).then(Vec::new)
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..ws.fns.len() {
            if expensive[i].is_some() || exempt[i] {
                continue;
            }
            if let Some(&c) = ws.callees[i].iter().find(|&&c| expensive[c].is_some()) {
                let mut chain = vec![c];
                chain.extend(expensive[c].as_deref().unwrap_or_default().iter().copied());
                expensive[i] = Some(chain);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Bare designator name parts, for calls that resolve to nothing
    // (trait objects, std) but are expensive by name.
    let name_parts: Vec<&str> = policy
        .expensive_calls
        .iter()
        .map(|d| d.split_once("::").map_or(d.as_str(), |(_, n)| n))
        .collect();

    for (i, f) in ws.fns.iter().enumerate() {
        if !file_in(&f.file, &policy.guard_span_files) {
            continue;
        }
        let Some(model) = models.get(f.file.as_str()) else { continue };
        let toks = &model.tokens;
        // One liveness fact per acquisition: gen at the acquisition's
        // method token, kill at `held_until` (statement `;` / block `}`)
        // and at every `drop(binding)` site.
        let acqs: Vec<(&str, LockKind, usize, usize)> = f
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Acquire { lock, kind, held_until, .. } => {
                    Some((lock.as_str(), *kind, e.tok, *held_until))
                }
                _ => None,
            })
            .collect();
        if acqs.is_empty() {
            continue;
        }
        let facts: Vec<FactDef> = acqs
            .iter()
            .map(|&(_, _, tok, held)| {
                let mut kills = vec![held];
                if let Some(binding) = let_binding_of(toks, tok) {
                    kills.extend(f.events.iter().filter_map(|e| {
                        (matches!(e.kind, EventKind::Bare)
                            && e.name == "drop"
                            && call_args_mention(toks, e.tok, &binding))
                        .then_some(e.tok)
                    }));
                }
                FactDef { gen_tok: tok, kill_toks: kills }
            })
            .collect();
        let live = Liveness::compute(&f.cfg, &facts);

        for e in &f.events {
            if !matches!(
                e.kind,
                EventKind::Method { .. } | EventKind::Bare | EventKind::Path { .. }
            ) || e.name == "drop"
            {
                continue;
            }
            let held = live.live_at(&f.cfg, e.tok);
            if held.is_empty() {
                continue;
            }
            // Expensive directly by name, or via a resolved callee chain.
            let witness = if name_parts.contains(&e.name.as_str()) {
                Some(format!("`{}`", e.name))
            } else {
                ws.resolve(i, e).into_iter().find_map(|c| {
                    expensive[c].as_ref().map(|chain| {
                        let mut names = vec![format!("`{}`", ws.fns[c].qualified())];
                        names.extend(chain.iter().map(|&n| format!("`{}`", ws.fns[n].qualified())));
                        names.join(" → ")
                    })
                })
            };
            let Some(witness) = witness else { continue };
            for &fi in &held {
                let (lock, kind, _, _) = acqs[fi];
                push_ws(
                    models,
                    out,
                    RULE,
                    &f.file,
                    e.line,
                    format!(
                        "fn `{}` holds the {} guard on `{lock}` across expensive \
                         call `{}` (→ {witness}) — copy what you need under the \
                         guard, drop it, then compute",
                        f.qualified(),
                        kind.as_str(),
                        e.name,
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// capture-race
// ---------------------------------------------------------------------------

fn capture_race(
    ws: &Workspace,
    models: &BTreeMap<&str, &SourceModel>,
    policy: &Policy,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "capture-race";
    for f in &ws.fns {
        let Some(model) = models.get(f.file.as_str()) else { continue };
        let Some((body_lo, body_hi)) = f.body_span else { continue };
        let toks = &model.tokens;
        for e in &f.events {
            let is_spawn = matches!(
                e.kind,
                EventKind::Method { .. } | EventKind::Bare | EventKind::Path { .. }
            ) && e.name == "spawn";
            if !is_spawn {
                continue;
            }
            let Some(open) = (e.tok..toks.len().min(e.tok + 6)).find(|&j| toks[j].is_op("("))
            else {
                continue;
            };
            let close = match_paren(toks, open, body_hi.saturating_sub(1));
            // Outermost block inside the argument list = the closure body.
            let Some(&(blo, bhi)) = f.block_spans.iter().find(|&&(lo, _)| open < lo && lo < close)
            else {
                continue;
            };
            for (name, line) in mutated_captures(toks, blo, bhi) {
                // Declared with `let` before the closure, in this body?
                let Some(decl) = let_decl_before(toks, body_lo, blo, &name) else { continue };
                // Synchronized declarations are fine.
                let decl_end = statement_end(toks, decl, body_hi.saturating_sub(1));
                let synced = toks[decl..=decl_end.min(toks.len() - 1)].iter().any(|t| {
                    t.kind == TokKind::Ident
                        && policy.sync_types.iter().any(|s| t.text.starts_with(s.as_str()))
                });
                if synced {
                    continue;
                }
                // Read again after the closure body?
                let read_after = (bhi..body_hi.min(toks.len())).any(|j| toks[j].is_ident(&name));
                if !read_after {
                    continue;
                }
                push_ws(
                    models,
                    out,
                    RULE,
                    &f.file,
                    line,
                    format!(
                        "closure passed to `spawn` in fn `{}` mutates captured \
                         `{name}`, which is read again outside the closure with \
                         no synchronization type — return the value through the \
                         join handle or wrap it in a Mutex/Atomic",
                        f.qualified(),
                    ),
                );
            }
        }
    }
}

/// Identifiers written inside `[blo, bhi)`: assignment targets (`x = …`,
/// `x += …`, taking the head of a dotted chain) and `&mut x` borrows.
/// Returns `(name, line)` pairs, deduplicated per name.
fn mutated_captures(toks: &[Token], blo: usize, bhi: usize) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = Vec::new();
    let mut push = |name: &str, line: u32| {
        if !out.iter().any(|(n, _)| n == name) {
            out.push((name.to_owned(), line));
        }
    };
    for j in blo + 1..bhi.min(toks.len()).saturating_sub(1) {
        let t = &toks[j];
        if t.is_comment() {
            continue;
        }
        // `&mut x`
        if t.is_op("&")
            && toks.get(j + 1).is_some_and(|n| n.is_ident("mut"))
            && toks.get(j + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            push(&toks[j + 2].text, toks[j + 2].line);
        }
        // Assignment: ident (possibly `head.field`) followed by = / += / …
        if t.kind == TokKind::Op
            && matches!(t.text.as_str(), "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "|=" | "&=")
        {
            // Walk the dotted chain left of the operator to its head.
            let mut k = j;
            let mut head: Option<usize> = None;
            while k > blo {
                k -= 1;
                let p = &toks[k];
                if p.is_comment() {
                    continue;
                }
                if p.kind == TokKind::Ident && !is_keyword(&p.text) {
                    head = Some(k);
                    // keep walking through `.`-chains
                    match toks[..k].iter().rposition(|q| !q.is_comment()) {
                        Some(q) if toks[q].is_op(".") && q > blo => k = q,
                        _ => break,
                    }
                } else {
                    break;
                }
            }
            if let Some(h) = head {
                // `let x = …` declares a closure-local — not a capture.
                let is_decl = toks[..h]
                    .iter()
                    .rposition(|q| !q.is_comment())
                    .is_some_and(|q| toks[q].is_ident("let") || toks[q].is_ident("mut"));
                if !is_decl {
                    push(&toks[h].text, toks[h].line);
                }
            }
        }
    }
    out
}

/// Token index of a `let [mut] name` declaration between `lo` and `hi`.
fn let_decl_before(toks: &[Token], lo: usize, hi: usize, name: &str) -> Option<usize> {
    for j in lo..hi.min(toks.len()) {
        if !toks[j].is_ident("let") {
            continue;
        }
        let mut k = next_code_idx(toks, j)?;
        if toks[k].is_ident("mut") {
            k = next_code_idx(toks, k)?;
        }
        if toks[k].is_ident(name) {
            return Some(j);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// env-read-confinement
// ---------------------------------------------------------------------------

fn env_read_confinement(
    ws: &Workspace,
    models: &BTreeMap<&str, &SourceModel>,
    policy: &Policy,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "env-read-confinement";
    for f in &ws.fns {
        if file_in(&f.file, &policy.env_allowed_files)
            || policy.env_allowed_fns.iter().any(|d| f.matches_designator(d))
        {
            continue;
        }
        for e in &f.events {
            let hit = match &e.kind {
                EventKind::Path { qual } => qual.last().is_some_and(|q| q == "env"),
                EventKind::MacroUse => e.name == "env" || e.name == "option_env",
                _ => false,
            };
            if !hit {
                continue;
            }
            let allowed = if policy.env_allowed_fns.is_empty() {
                "none declared".to_owned()
            } else {
                policy.env_allowed_fns.join(", ")
            };
            push_ws(
                models,
                out,
                RULE,
                &f.file,
                e.line,
                format!(
                    "`env::{}` read in fn `{}` — ambient environment access is \
                     confined to the designated pin functions ({allowed}); take \
                     the value as explicit configuration instead",
                    e.name,
                    f.qualified(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// range-taint
// ---------------------------------------------------------------------------

/// One tainted variable: introduced at `gen_tok`, carrying the name of
/// the source call that produced it (for the witness message).
struct Taint {
    var: String,
    gen_tok: usize,
    origin: String,
}

fn range_taint(
    ws: &Workspace,
    models: &BTreeMap<&str, &SourceModel>,
    policy: &Policy,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "range-taint";
    let is_call = |e: &crate::symbols::Event| {
        matches!(e.kind, EventKind::Method { .. } | EventKind::Bare | EventKind::Path { .. })
    };
    for f in &ws.fns {
        if !file_in(&f.file, &policy.taint_files) {
            continue;
        }
        let Some(model) = models.get(f.file.as_str()) else { continue };
        let Some((body_lo, body_hi)) = f.body_span else { continue };
        let toks = &model.tokens;
        let body_close = body_hi.saturating_sub(1);

        // Validator call sites, each with the set of identifiers it blesses.
        let validators: Vec<&crate::symbols::Event> = f
            .events
            .iter()
            .filter(|e| is_call(e) && policy.taint_validators.contains(&e.name))
            .collect();
        let stmt_has_validator =
            |lo: usize, hi: usize| validators.iter().any(|v| lo <= v.tok && v.tok < hi);

        // Seed taints: `let v = … source(…) …;` with no validator in the
        // statement. Then propagate through later `let w = … v …;`.
        let mut taints: Vec<Taint> = Vec::new();
        for e in f.events.iter().filter(|e| is_call(e) && policy.taint_sources.contains(&e.name)) {
            let Some(var) = let_binding_of(toks, e.tok) else { continue };
            let end = statement_end(toks, e.tok, body_close);
            if stmt_has_validator(stmt_start(toks, e.tok), end) {
                continue;
            }
            if !taints.iter().any(|t| t.var == var) {
                taints.push(Taint { var, gen_tok: e.tok, origin: e.name.clone() });
            }
        }
        loop {
            let mut changed = false;
            for j in body_lo..body_hi.min(toks.len()) {
                if !toks[j].is_ident("let") {
                    continue;
                }
                let Some(var) = let_binding_of(toks, j + 1) else { continue };
                if taints.iter().any(|t| t.var == var) {
                    continue;
                }
                let end = statement_end(toks, j, body_close);
                if stmt_has_validator(j, end) {
                    continue;
                }
                let rhs_taint = taints.iter().position(|t| {
                    toks[j..=end.min(toks.len() - 1)].iter().any(|tk| tk.is_ident(&t.var))
                });
                if let Some(ti) = rhs_taint {
                    let origin = taints[ti].origin.clone();
                    let gen_tok = toks[j..=end.min(toks.len() - 1)]
                        .iter()
                        .position(|tk| tk.is_ident(&taints[ti].var))
                        .map(|off| j + off)
                        .unwrap_or(j);
                    taints.push(Taint { var, gen_tok, origin });
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if taints.is_empty() {
            continue;
        }

        // Liveness over the CFG: a validator call blessing the variable
        // kills its taint on that path.
        let facts: Vec<FactDef> = taints
            .iter()
            .map(|t| FactDef {
                gen_tok: t.gen_tok,
                kill_toks: validators
                    .iter()
                    .filter(|v| call_args_mention(toks, v.tok, &t.var))
                    .map(|v| v.tok)
                    .collect(),
            })
            .collect();
        let live = Liveness::compute(&f.cfg, &facts);

        for e in f.events.iter().filter(|e| is_call(e) && policy.taint_sinks.contains(&e.name)) {
            for &fi in &live.live_at(&f.cfg, e.tok) {
                let t = &taints[fi];
                if !call_args_mention(toks, e.tok, &t.var) {
                    continue;
                }
                push_ws(
                    models,
                    out,
                    RULE,
                    &f.file,
                    e.line,
                    format!(
                        "`{}` in fn `{}` receives `{}`, tainted by `{}`, without \
                         passing a validator — clamp or validate decoded \
                         sizes/endpoints before range scans and allocations",
                        e.name,
                        f.qualified(),
                        t.var,
                        t.origin,
                    ),
                );
            }
        }
    }
}

/// Reports allow annotations that suppressed nothing, after every other
/// rule has run. Test files and `#[cfg(test)]` regions are exempt — the
/// library rules never fire there, so their annotations are documentation.
pub fn dead_allow(
    models: &[SourceModel],
    by_path: &BTreeMap<&str, &SourceModel>,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "dead-allow";
    for m in models {
        if crate::engine::is_test_path(&m.path) {
            continue;
        }
        let hits = m.hits.borrow().clone();
        for (line, rules) in &m.allows {
            if m.in_test_region(*line) {
                continue;
            }
            for r in rules {
                if r == RULE || hits.contains(&(*line, r.clone())) {
                    continue;
                }
                push_ws(
                    by_path,
                    out,
                    RULE,
                    &m.path,
                    *line,
                    format!(
                        "`skylint: allow({r})` suppresses nothing — delete the \
                         stale escape so future findings are not swallowed"
                    ),
                );
            }
        }
    }
}
