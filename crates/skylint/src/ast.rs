//! AST node types for the lossless parser.
//!
//! Every node carries a [`Span`] — a half-open range of **token indexes**
//! into the file's full token stream (comments included). Children own
//! disjoint sub-ranges of their parent's span; tokens of the parent not
//! covered by any child (keywords, punctuation, attributes, comments) stay
//! "loose" inside the parent. That representation is lossless by
//! construction: re-emitting a node means walking its span and descending
//! into children exactly where their spans begin, which must reproduce the
//! token stream verbatim. `parser::reemit` does that walk and the
//! round-trip selftest pins it against every workspace file.

/// Half-open token-index range `[lo, hi)` into a file's token stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First token index of the node.
    pub lo: usize,
    /// One past the last token index of the node.
    pub hi: usize,
}

impl Span {
    /// Whether token index `i` falls inside the span.
    pub fn contains(&self, i: usize) -> bool {
        self.lo <= i && i < self.hi
    }
}

/// A parsed source file: the root of the AST.
#[derive(Debug)]
pub struct File {
    /// Span covering every token in the file.
    pub span: Span,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item (`fn`, `mod`, `impl`, `struct`, …) with its covering span.
#[derive(Debug)]
pub struct Item {
    /// Tokens of the whole item, qualifiers included.
    pub span: Span,
    /// 1-based line of the item's first token.
    pub line: u32,
    /// `pub` without a restriction (`pub(crate)` does not count).
    pub is_pub: bool,
    /// What the item is, with kind-specific children.
    pub kind: ItemKind,
}

/// Item discriminant. Only the shapes the rules consume are modelled
/// precisely; everything else is [`ItemKind::Other`] (span-only, still
/// lossless).
#[derive(Debug)]
pub enum ItemKind {
    /// `fn name(…) -> … { … }` or a bodiless trait signature.
    Fn(FnItem),
    /// `mod name { items }` (outline `mod name;` is `Other`).
    Mod {
        /// Module name.
        name: String,
        /// Items inside the braces.
        items: Vec<Item>,
    },
    /// `impl [Trait for] Type { items }`.
    Impl {
        /// Last path segment of the self type (`Cache`, `PointBlock`, …).
        self_ty: String,
        /// Items inside the braces.
        items: Vec<Item>,
    },
    /// `trait Name { items }` — default methods live in `items`.
    Trait {
        /// Trait name.
        name: String,
        /// Associated items (signatures and default bodies).
        items: Vec<Item>,
    },
    /// Any other item (`struct`, `enum`, `use`, `const`, `static`, `type`,
    /// `macro_rules!`, outline `mod`, item-position macro invocations, …).
    Other,
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Body block, `None` for bodiless trait signatures.
    pub body: Option<Block>,
}

/// A `{ … }` block. Nested braces become child [`Block`]s; nested `fn`
/// items inside the block become child [`Item`]s (so a parent function's
/// event extraction can exclude them).
#[derive(Debug)]
pub struct Block {
    /// Tokens from the opening `{` through the closing `}` inclusive.
    pub span: Span,
    /// Nested blocks and items, in source order.
    pub children: Vec<BlockChild>,
}

/// One structured child of a [`Block`].
#[derive(Debug)]
pub enum BlockChild {
    /// A nested `{ … }` (control flow, struct literal, match arm, closure
    /// body — the parser does not distinguish; it only needs nesting).
    Block(Block),
    /// A nested item (in practice: `fn` defined inside a function body).
    Item(Item),
}

impl Block {
    /// Spans of nested *items* (not plain blocks), used to exclude a
    /// nested fn's tokens from its parent's analysis, recursively.
    pub fn nested_item_spans(&self, out: &mut Vec<Span>) {
        for c in &self.children {
            match c {
                BlockChild::Item(it) => out.push(it.span),
                BlockChild::Block(b) => b.nested_item_spans(out),
            }
        }
    }
}

impl File {
    /// Depth-first walk over all items, outermost first, handing each
    /// visitor call the chain of enclosing module names and the enclosing
    /// `impl`/`trait` type name (empty for free items).
    pub fn walk_items<'a>(&'a self, visit: &mut dyn FnMut(&'a Item, &[String], &str)) {
        fn go<'a>(
            items: &'a [Item],
            mods: &mut Vec<String>,
            owner: &str,
            visit: &mut dyn FnMut(&'a Item, &[String], &str),
        ) {
            for it in items {
                visit(it, mods, owner);
                match &it.kind {
                    ItemKind::Mod { name, items } => {
                        mods.push(name.clone());
                        go(items, mods, owner, visit);
                        mods.pop();
                    }
                    ItemKind::Impl { self_ty, items } => go(items, mods, self_ty, visit),
                    ItemKind::Trait { name, items } => go(items, mods, name, visit),
                    ItemKind::Fn(f) => {
                        if let Some(body) = &f.body {
                            walk_block_items(body, mods, owner, visit);
                        }
                    }
                    ItemKind::Other => {}
                }
            }
        }
        fn walk_block_items<'a>(
            b: &'a Block,
            mods: &mut Vec<String>,
            owner: &str,
            visit: &mut dyn FnMut(&'a Item, &[String], &str),
        ) {
            for c in &b.children {
                match c {
                    BlockChild::Item(it) => {
                        visit(it, mods, owner);
                        if let ItemKind::Fn(f) = &it.kind {
                            if let Some(body) = &f.body {
                                walk_block_items(body, mods, owner, visit);
                            }
                        }
                    }
                    BlockChild::Block(inner) => walk_block_items(inner, mods, owner, visit),
                }
            }
        }
        go(&self.items, &mut Vec::new(), "", visit)
    }
}
