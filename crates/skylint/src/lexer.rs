//! A hand-rolled Rust lexer.
//!
//! `skylint` deliberately avoids `syn`/`proc-macro2` (the workspace builds
//! offline against vendored dependency subsets, see `vendor/README.md`), so
//! the rule engine works on a token stream produced here. The lexer handles
//! every surface feature the rules need to be *sound* about:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals: plain, raw (`r#"…"#` with any number of hashes),
//!   byte and byte-raw variants;
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * numeric literals, classifying **float** vs. integer (`1.0`, `1.`,
//!   `1e-3`, `2f64` are floats; `1`, `0x1f`, `1.max(2)`'s `1` are not);
//! * multi-character operators (`==`, `!=`, `::`, `->`, `..=`, …).
//!
//! Comments are emitted as tokens (not skipped): the rule engine reads
//! `// skylint: allow(...)`, `// SAFETY:` and `// lock-order:` annotations
//! from them.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Integer literal (including `0x…`, `0b…`, suffixed forms).
    Int,
    /// Floating-point literal (`1.0`, `1.`, `1e-3`, `2.5f32`).
    Float,
    /// String/char-like literal (plain, raw, byte, char).
    Literal,
    /// `//…` line comment, text includes the leading slashes.
    LineComment,
    /// `/*…*/` block comment (possibly nested), full text.
    BlockComment,
    /// Operator or punctuation, possibly multi-character (`==`, `::`, `{`).
    Op,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokKind,
    /// Raw text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the operator/punctuation `s`.
    pub fn is_op(&self, s: &str) -> bool {
        self.kind == TokKind::Op && self.text == s
    }

    /// Whether this token is any comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into tokens. Never fails: unterminated constructs are
/// consumed to end-of-input and malformed bytes become 1-char `Op` tokens,
/// so the rule engine always sees *something* positionally sane.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, toks: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    toks: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'r' | b'b' if self.raw_or_byte_literal(line) => {}
                b'"' => self.string_literal(line),
                b'\'' => self.quote(line),
                b'0'..=b'9' => self.number(line),
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident(line),
                _ => self.operator(line),
            }
            // Defensive: guarantee forward progress whatever the input.
            if self.pos == start && self.line == line {
                self.pos += 1;
            }
        }
        self.toks
    }

    fn peek(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.toks.push(Token { kind, text, line });
    }

    fn bump_line_counter(&mut self, from: usize) {
        self.line += self.src[from..self.pos].iter().filter(|&&b| b == b'\n').count() as u32;
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokKind::LineComment, start, line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.pos += 2; // consume "/*"
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.push(TokKind::BlockComment, start, line);
        self.bump_line_counter(start);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns false
    /// (consuming nothing) when the `r`/`b` starts a plain identifier.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let start = self.pos;
        let mut i = self.pos;
        // Optional b, optional r, then hashes+quote or quote.
        if self.src[i] == b'b' {
            i += 1;
        }
        if self.src.get(i) == Some(&b'r') {
            i += 1;
            let mut hashes = 0usize;
            while self.src.get(i) == Some(&b'#') {
                hashes += 1;
                i += 1;
            }
            if self.src.get(i) != Some(&b'"') {
                return false; // identifier like `ref` / `break` / `r#keyword`?
            }
            // `r#ident` (raw identifier) has hashes==1 and no quote — handled
            // by the return above. Here we are at the opening quote.
            i += 1;
            // Scan to closing quote followed by `hashes` hashes.
            loop {
                match self.src.get(i) {
                    None => break,
                    Some(b'"') => {
                        let mut j = i + 1;
                        let mut h = 0;
                        while h < hashes && self.src.get(j) == Some(&b'#') {
                            h += 1;
                            j += 1;
                        }
                        if h == hashes {
                            i = j;
                            break;
                        }
                        i += 1;
                    }
                    Some(_) => i += 1,
                }
            }
            self.pos = i;
            self.push(TokKind::Literal, start, line);
            self.bump_line_counter(start);
            true
        } else if self.src[self.pos] == b'b' && self.src.get(i) == Some(&b'"') {
            self.pos = i; // at the quote
            self.string_literal_from(start, line);
            true
        } else if self.src[self.pos] == b'b' && self.src.get(i) == Some(&b'\'') {
            // Byte char literal b'x'.
            self.pos = i + 1;
            if self.src.get(self.pos) == Some(&b'\\') {
                self.pos += 2;
            } else {
                self.pos += 1;
            }
            if self.src.get(self.pos) == Some(&b'\'') {
                self.pos += 1;
            }
            self.push(TokKind::Literal, start, line);
            true
        } else {
            false
        }
    }

    fn string_literal(&mut self, line: u32) {
        let start = self.pos;
        self.string_literal_from(start, line);
    }

    fn string_literal_from(&mut self, start: usize, line: u32) {
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.pos = self.pos.min(self.src.len());
        self.push(TokKind::Literal, start, line);
        self.bump_line_counter(start);
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self, line: u32) {
        let start = self.pos;
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match next {
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                // 'a' is a char literal; 'a (no closing quote) a lifetime.
                // Lifetimes are one-or-more ident chars NOT followed by '.
                let mut j = self.pos + 1;
                while self.src.get(j).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
                    j += 1;
                }
                self.src.get(j) != Some(&b'\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.pos += 1;
            while self.src.get(self.pos).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
                self.pos += 1;
            }
            self.push(TokKind::Lifetime, start, line);
            return;
        }
        // Char literal: '…' with escapes ('\'', '\n', '\u{1F600}').
        self.pos += 1;
        match self.src.get(self.pos) {
            Some(b'\\') => {
                self.pos += 2;
                // \u{…}
                while self.pos < self.src.len()
                    && self.src[self.pos] != b'\''
                    && self.src[self.pos] != b'\n'
                {
                    self.pos += 1;
                }
            }
            Some(_) => {
                // Possibly multibyte UTF-8; advance to the closing quote.
                self.pos += 1;
                while self.pos < self.src.len()
                    && self.src[self.pos] != b'\''
                    && self.src[self.pos] != b'\n'
                {
                    self.pos += 1;
                }
            }
            None => {}
        }
        if self.src.get(self.pos) == Some(&b'\'') {
            self.pos += 1;
        }
        let _ = after;
        self.push(TokKind::Literal, start, line);
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        let mut is_float = false;
        if self.src[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
        {
            self.pos += 2;
            while self.src.get(self.pos).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
                self.pos += 1;
            }
            self.push(TokKind::Int, start, line);
            return;
        }
        while self.src.get(self.pos).is_some_and(|c| c.is_ascii_digit() || *c == b'_') {
            self.pos += 1;
        }
        // Fractional part: `.` followed by a digit, or a trailing `.` that
        // is not a method call (`1.max(2)`) or a range (`1..2`).
        if self.src.get(self.pos) == Some(&b'.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    is_float = true;
                    self.pos += 1;
                    while self.src.get(self.pos).is_some_and(|c| c.is_ascii_digit() || *c == b'_') {
                        self.pos += 1;
                    }
                }
                Some(c) if c == b'_' || c.is_ascii_alphabetic() || c == b'.' => {
                    // method call or range: the `.` is not ours
                }
                _ => {
                    is_float = true;
                    self.pos += 1; // trailing dot: `1.`
                }
            }
        }
        // Exponent.
        if matches!(self.src.get(self.pos), Some(b'e' | b'E')) {
            let mut j = self.pos + 1;
            if matches!(self.src.get(j), Some(b'+' | b'-')) {
                j += 1;
            }
            if self.src.get(j).is_some_and(u8::is_ascii_digit) {
                is_float = true;
                self.pos = j;
                while self.src.get(self.pos).is_some_and(|c| c.is_ascii_digit() || *c == b'_') {
                    self.pos += 1;
                }
            }
        }
        // Suffix (f32/f64 force float; u8/i64/usize keep int).
        let suffix_start = self.pos;
        while self.src.get(self.pos).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
            self.pos += 1;
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix == b"f32" || suffix == b"f64" {
            is_float = true;
        }
        self.push(if is_float { TokKind::Float } else { TokKind::Int }, start, line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, start, line);
    }

    fn operator(&mut self, line: u32) {
        let start = self.pos;
        let rest = &self.src[self.pos..];
        for op in OPERATORS {
            if rest.starts_with(op.as_bytes()) {
                self.pos += op.len();
                self.push(TokKind::Op, start, line);
                return;
            }
        }
        self.pos += 1;
        self.push(TokKind::Op, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_operators() {
        let toks = kinds("a == b != c :: d -> e");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "a".into()),
                (TokKind::Op, "==".into()),
                (TokKind::Ident, "b".into()),
                (TokKind::Op, "!=".into()),
                (TokKind::Ident, "c".into()),
                (TokKind::Op, "::".into()),
                (TokKind::Ident, "d".into()),
                (TokKind::Op, "->".into()),
                (TokKind::Ident, "e".into()),
            ]
        );
    }

    #[test]
    fn float_vs_int_classification() {
        assert_eq!(kinds("1.0")[0].0, TokKind::Float);
        assert_eq!(kinds("1.")[0].0, TokKind::Float);
        assert_eq!(kinds("1e-3")[0].0, TokKind::Float);
        assert_eq!(kinds("2.5f32")[0].0, TokKind::Float);
        assert_eq!(kinds("3f64")[0].0, TokKind::Float);
        assert_eq!(kinds("1")[0].0, TokKind::Int);
        assert_eq!(kinds("0x1f")[0].0, TokKind::Int);
        assert_eq!(kinds("1_000u64")[0].0, TokKind::Int);
        // `1.max(2)`: the dot belongs to the method call.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Int, "1".into()));
        assert_eq!(toks[1], (TokKind::Op, ".".into()));
        assert_eq!(toks[2], (TokKind::Ident, "max".into()));
        // Ranges keep both sides integral.
        let toks = kinds("0..10");
        assert_eq!(toks[0].0, TokKind::Int);
        assert_eq!(toks[1], (TokKind::Op, "..".into()));
        assert_eq!(toks[2].0, TokKind::Int);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|(_, t)| t == "'a"));
        let chars: Vec<_> =
            toks.iter().filter(|(k, t)| *k == TokKind::Literal && t.starts_with('\'')).collect();
        assert_eq!(chars.len(), 2, "{toks:?}");
        assert_eq!(chars[0].1, "'a'");
        assert_eq!(chars[1].1, "'\\n'");
    }

    #[test]
    fn static_lifetime_and_multichar_literal() {
        let toks = kinds("&'static str");
        assert_eq!(toks[1], (TokKind::Lifetime, "'static".into()));
        let toks = kinds("'\\u{1F600}'");
        assert_eq!(toks[0].0, TokKind::Literal);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let toks = kinds(r####"let s = r#"a "quoted" == thing"#;"####);
        let lit = toks.iter().find(|(k, _)| *k == TokKind::Literal).unwrap();
        assert!(lit.1.contains("quoted"));
        // The `==` inside the raw string must NOT surface as an operator.
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Op && t == "=="));
        // Double-hash raw string containing `"#`.
        let toks = kinds(r#####"r##"inner "# still"##"#####);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokKind::Literal);
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let toks = kinds(r###"(b"bytes", br#"raw == bytes"#, b'x')"###);
        let lits: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Literal).collect();
        assert_eq!(lits.len(), 3);
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Op && t == "=="));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokKind::BlockComment);
        assert!(toks[1].1.contains("inner"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\n/* c\nc */\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1); // a
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 4); // comment starts on line 4
        assert_eq!(toks[3].line, 6); // b
    }

    #[test]
    fn line_comments_and_doc_comments() {
        let toks = kinds("//! inner\n/// outer\n// skylint: allow(x)\nfn f() {}");
        assert_eq!(toks[0].0, TokKind::LineComment);
        assert!(toks[0].1.starts_with("//!"));
        assert_eq!(toks[1].0, TokKind::LineComment);
        assert_eq!(toks[2].0, TokKind::LineComment);
        assert!(toks[2].1.contains("skylint"));
    }

    #[test]
    fn r_prefixed_identifiers_are_idents() {
        let toks = kinds("ref r2 break b ra");
        assert!(toks.iter().all(|(k, _)| *k == TokKind::Ident));
        assert_eq!(toks.len(), 5);
    }

    #[test]
    fn unterminated_constructs_do_not_hang() {
        assert!(!lex("\"open").is_empty());
        assert!(!lex("/* open").is_empty());
        assert!(!lex("r#\"open").is_empty());
        assert!(!lex("'").is_empty());
    }
}
