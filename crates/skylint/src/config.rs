//! `skylint.toml` — a minimal, dependency-free TOML-subset parser.
//!
//! Supported syntax (all the policy file needs, nothing more):
//!
//! ```toml
//! # comment
//! [section.subsection]
//! key = "string"
//! flag = true
//! names = ["a", "b"]        # single-line or
//! files = [
//!     "one",
//!     "two",
//! ]                         # multi-line arrays
//! ```
//!
//! Values are exposed as strings, bools and string arrays, addressed by
//! `"section.subsection.key"`. Unknown syntax is a hard error: a policy
//! file that cannot be read exactly must not silently weaken the policy.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed configuration value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// An array of quoted strings.
    List(Vec<String>),
}

/// Parsed configuration: a flat map keyed `section.key`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    values: BTreeMap<String, Value>,
}

/// Error raised on malformed configuration input.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "skylint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut values = BTreeMap::new();
        let mut section = String::new();
        let mut lines = src.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unterminated section header: {raw:?}"),
                    });
                };
                section = name.trim().to_owned();
                continue;
            }
            let Some((key, rhs)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`: {raw:?}"),
                });
            };
            let key = key.trim();
            let mut rhs = rhs.trim().to_owned();
            // Multi-line array: keep consuming lines until the bracket closes.
            if rhs.starts_with('[') && !balanced(&rhs) {
                for (_, cont) in lines.by_ref() {
                    rhs.push(' ');
                    rhs.push_str(strip_comment(cont).trim());
                    if balanced(&rhs) {
                        break;
                    }
                }
            }
            let value =
                parse_value(&rhs).map_err(|message| ConfigError { line: lineno, message })?;
            let full = if section.is_empty() { key.to_owned() } else { format!("{section}.{key}") };
            values.insert(full, value);
        }
        Ok(Config { values })
    }

    /// String value at `key`, if present and a string.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.values.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Bool value at `key`; `default` when absent.
    pub fn bool(&self, key: &str, default: bool) -> bool {
        match self.values.get(key) {
            Some(Value::Bool(b)) => *b,
            _ => default,
        }
    }

    /// String-list value at `key`; empty when absent.
    pub fn list(&self, key: &str) -> Vec<String> {
        match self.values.get(key) {
            Some(Value::List(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }

    /// Whether `key` exists at all.
    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// All `section.key` names present, sorted (for strict validation).
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.values.keys()
    }
}

/// Strips a trailing `# comment` that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Whether every `[` has been closed (quote-aware, good enough for the
/// string-array subset).
fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in s.chars() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    depth == 0 && !in_str
}

fn parse_value(rhs: &str) -> Result<Value, String> {
    if rhs == "true" {
        return Ok(Value::Bool(true));
    }
    if rhs == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = parse_string(rhs) {
        return Ok(Value::Str(s));
    }
    if let Some(inner) = rhs.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        for piece in split_top_level(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            match parse_string(piece) {
                Some(s) => items.push(s),
                None => return Err(format!("array items must be quoted strings, got {piece:?}")),
            }
        }
        return Ok(Value::List(items));
    }
    Err(format!("unsupported value syntax: {rhs:?}"))
}

fn parse_string(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Splits on commas that are not inside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in s.chars() {
        match c {
            '"' if !prev_backslash => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => out.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_keys_and_arrays() {
        let cfg = Config::parse(
            r#"
# top comment
top = "level"
[rules.determinism]
enabled = true
names = ["HashMap", "HashSet"] # trailing comment
files = [
    "a/b.rs",
    "c/d.rs",
]
"#,
        )
        .unwrap();
        assert_eq!(cfg.str("top"), Some("level"));
        assert!(cfg.bool("rules.determinism.enabled", false));
        assert_eq!(cfg.list("rules.determinism.names"), vec!["HashMap", "HashSet"]);
        assert_eq!(cfg.list("rules.determinism.files"), vec!["a/b.rs", "c/d.rs"]);
        assert!(!cfg.contains("rules.determinism.missing"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("k = \"a # b\"").unwrap();
        assert_eq!(cfg.str("k"), Some("a # b"));
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(Config::parse("[unterminated").is_err());
        assert!(Config::parse("novalue").is_err());
        assert!(Config::parse("k = [1, 2]").is_err());
        let err = Config::parse("\n\nk = @").unwrap_err();
        assert_eq!(err.line, 3);
    }
}
