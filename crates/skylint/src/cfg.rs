//! Per-function control-flow graphs and the forward dataflow engine.
//!
//! PR 2–3 reasoned about guard lifetimes with a *linear* token-extent
//! heuristic (`symbols::guard_extent`): a let-bound guard lives to the end
//! of its enclosing block, a chained temporary to the end of its
//! statement. That is exact for straight-line code but blind to control
//! flow — it cannot see that `drop(guard)` on one branch kills the guard
//! there, that an early `return` carries the guard out of the function, or
//! that a loop back-edge keeps a fact alive across iterations. This
//! module adds the structure those analyses need:
//!
//! 1. [`Cfg::build`] constructs a control-flow graph over the lossless
//!    AST's token spans: `if`/`else if`/`else` chains branch and re-join,
//!    `loop`/`while`/`for` bodies get a back edge plus an exit edge,
//!    `match` blocks fan out one alternative per braced arm (non-braced
//!    arms, patterns and guards are merged into one extra alternative),
//!    `return`/`break`/`continue` divert the edge and cut fall-through at
//!    their statement's `;`, and `?` adds an early-return edge while
//!    keeping fall-through. Plain blocks, closures and struct literals are
//!    inlined sequentially — a closure created while a guard is held is
//!    conservatively assumed to run there.
//! 2. [`Liveness::compute`] is a small forward **may**-analysis engine:
//!    facts are gen'd and killed at token positions, node transfer applies
//!    those events in token order, and the in-sets are iterated to a
//!    fixpoint over the graph (loop back-edges included). The merge is
//!    set-union, so a fact live on *any* path into a node is live at the
//!    node — the sound direction for everything built on top.
//! 3. [`Liveness::live_at`] answers point queries: which facts are live
//!    just before executing a given token. The guard-hold-span rule feeds
//!    it one fact per lock acquisition (gen at the acquisition, kill at
//!    the `drop`/statement/block boundary) and asks it at every call site.
//!
//! Known approximations, all on the over-reporting side for may-analyses:
//! labeled `break`/`continue` target the innermost loop; `while` / `for`
//! conditions are evaluated once before the head rather than per
//! iteration; a `match` merges its non-braced arms into one node.

use crate::ast::{Block, BlockChild};
use crate::lexer::Token;

/// One CFG node: a set of disjoint token ranges executed straight-line,
/// plus its edges. Ranges are half-open `[lo, hi)` token-index intervals
/// in source order; join/head nodes may own no tokens at all.
#[derive(Clone, Debug, Default)]
pub struct Node {
    /// Token ranges belonging to this node, in execution order.
    pub ranges: Vec<(usize, usize)>,
    /// Successor node ids.
    pub succs: Vec<usize>,
    /// Predecessor node ids (computed once construction finishes).
    pub preds: Vec<usize>,
}

/// A per-function control-flow graph over token indexes.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// All nodes; `entry` and `exit` are always present.
    pub nodes: Vec<Node>,
    /// Function entry node (owns the body's first tokens).
    pub entry: usize,
    /// Single synthetic exit: normal fall-off, `return` and `?` all lead
    /// here.
    pub exit: usize,
}

/// Where a diverting token sends control.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Divert {
    Return,
    Break,
    Continue,
}

struct Builder<'t> {
    toks: &'t [Token],
    nodes: Vec<Node>,
    exit: usize,
    /// Innermost-last stack of `(continue_target, break_target)`.
    loops: Vec<(usize, usize)>,
}

impl Cfg {
    /// Builds the CFG of one function body.
    pub fn build(toks: &[Token], body: &Block) -> Cfg {
        let mut b = Builder {
            toks,
            nodes: vec![Node::default(), Node::default()],
            exit: 1,
            loops: Vec::new(),
        };
        let last = b.block(body, 0);
        b.edge(last, 1);
        let mut cfg = Cfg { nodes: b.nodes, entry: 0, exit: 1 };
        for i in 0..cfg.nodes.len() {
            for s in cfg.nodes[i].succs.clone() {
                if !cfg.nodes[s].preds.contains(&i) {
                    cfg.nodes[s].preds.push(i);
                }
            }
        }
        cfg
    }

    /// An empty CFG (entry → exit) for bodiless signatures.
    pub fn empty() -> Cfg {
        let entry = Node { ranges: Vec::new(), succs: vec![1], preds: Vec::new() };
        let exit = Node { ranges: Vec::new(), succs: Vec::new(), preds: vec![0] };
        Cfg { nodes: vec![entry, exit], entry: 0, exit: 1 }
    }

    /// The node whose ranges contain token index `tok`, if any.
    pub fn node_at(&self, tok: usize) -> Option<usize> {
        self.nodes.iter().position(|n| n.ranges.iter().any(|&(lo, hi)| lo <= tok && tok < hi))
    }
}

impl Builder<'_> {
    fn new_node(&mut self) -> usize {
        self.nodes.push(Node::default());
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
        }
    }

    fn new_succ(&mut self, from: usize) -> usize {
        let n = self.new_node();
        self.edge(from, n);
        n
    }

    fn add_range(&mut self, node: usize, lo: usize, hi: usize) {
        let hi = hi.min(self.toks.len());
        if lo < hi {
            self.nodes[node].ranges.push((lo, hi));
        }
    }

    fn divert_edge(&mut self, from: usize, d: Divert) {
        let to = match d {
            Divert::Return => self.exit,
            // `break`/`continue` outside a loop cannot occur in valid
            // Rust; route to exit so the graph stays connected anyway.
            Divert::Break => self.loops.last().map_or(self.exit, |&(_, brk)| brk),
            Divert::Continue => self.loops.last().map_or(self.exit, |&(cont, _)| cont),
        };
        self.edge(from, to);
    }

    /// Lays a block's children into the graph starting at `cur`, returning
    /// the node control falls out of. The block's closing brace is part of
    /// the final range, so facts killed "at end of block" have a token to
    /// die at.
    fn block(&mut self, block: &Block, mut cur: usize) -> usize {
        let mut pos = block.span.lo + 1;
        let children = &block.children;
        let mut i = 0;
        while i < children.len() {
            let (lo, hi) = match &children[i] {
                BlockChild::Block(b) => (b.span.lo, b.span.hi),
                BlockChild::Item(it) => (it.span.lo, it.span.hi),
            };
            let seg_lo = pos;
            cur = self.loose(pos, lo, cur);
            match &children[i] {
                // Nested items (fns defined in the body) have their own
                // CFGs; their tokens do not execute here.
                BlockChild::Item(_) => {
                    pos = hi;
                    i += 1;
                }
                BlockChild::Block(cb) => match keyword_before(self.toks, seg_lo, lo) {
                    Some("if") => {
                        let (ni, npos, join) = self.if_chain(children, i, cur);
                        i = ni;
                        pos = npos;
                        cur = join;
                    }
                    Some("match") => {
                        cur = self.match_block(cb, cur);
                        pos = hi;
                        i += 1;
                    }
                    Some("loop") | Some("while") | Some("for") => {
                        cur = self.loop_block(cb, cur);
                        pos = hi;
                        i += 1;
                    }
                    _ => {
                        cur = self.block(cb, cur);
                        pos = hi;
                        i += 1;
                    }
                },
            }
        }
        self.loose(pos, block.span.hi, cur)
    }

    /// Emits a run of loose (non-block) tokens into `cur`, splitting the
    /// node when a `return`/`break`/`continue` statement ends (hard
    /// divert: no fall-through) and adding early-exit edges for `?` and
    /// for diverts in tail-expression position (soft: fall-through kept).
    fn loose(&mut self, lo: usize, hi: usize, mut cur: usize) -> usize {
        let hi = hi.min(self.toks.len());
        let mut seg = lo;
        let mut depth = 0i32;
        let mut pending: Option<Divert> = None;
        for i in lo..hi {
            let t = &self.toks[i];
            if t.is_comment() {
                continue;
            }
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "?" => self.divert_edge(cur, Divert::Return),
                "return" => pending = Some(Divert::Return),
                "break" => pending = Some(Divert::Break),
                "continue" => pending = Some(Divert::Continue),
                ";" if depth <= 0 => {
                    if let Some(d) = pending.take() {
                        self.add_range(cur, seg, i + 1);
                        self.divert_edge(cur, d);
                        cur = self.new_node();
                        seg = i + 1;
                    }
                }
                _ => {}
            }
        }
        self.add_range(cur, seg, hi);
        if let Some(d) = pending {
            // Divert in tail position (`=> return e,`, `break` before a
            // `}`): add the edge but keep fall-through, so sibling paths
            // sharing this node are not severed.
            self.divert_edge(cur, d);
        }
        cur
    }

    /// `if`/`else if`/`else` chain starting at the then-block
    /// `children[i]`, whose condition tokens already sit in `cond`.
    /// Returns `(next child index, next token position, join node)`.
    fn if_chain(
        &mut self,
        children: &[BlockChild],
        i: usize,
        cond: usize,
    ) -> (usize, usize, usize) {
        let BlockChild::Block(then_b) = &children[i] else {
            return (i + 1, child_hi(&children[i]), cond);
        };
        let join = self.new_node();
        let then_entry = self.new_succ(cond);
        let then_exit = self.block(then_b, then_entry);
        self.edge(then_exit, join);
        let then_hi = then_b.span.hi;

        // An `else` keyword directly after the then-block chains on.
        let next_lo = children.get(i + 1).map(child_lo).unwrap_or(usize::MAX);
        let is_else = next_code_in(self.toks, then_hi, next_lo.min(self.toks.len()))
            .is_some_and(|j| self.toks[j].is_ident("else"));
        if is_else {
            if let Some(BlockChild::Block(next_b)) = children.get(i + 1) {
                let else_node = self.new_succ(cond);
                let else_cur = self.loose(then_hi, next_b.span.lo, else_node);
                let else_if = next_code_in(self.toks, then_hi, next_b.span.lo)
                    .and_then(|j| next_code_in(self.toks, j + 1, next_b.span.lo))
                    .is_some_and(|j| self.toks[j].is_ident("if"));
                if else_if {
                    let (ni, npos, inner_join) = self.if_chain(children, i + 1, else_cur);
                    self.edge(inner_join, join);
                    return (ni, npos, join);
                }
                let else_exit = self.block(next_b, else_cur);
                self.edge(else_exit, join);
                return (i + 2, next_b.span.hi, join);
            }
        }
        self.edge(cond, join);
        (i + 1, then_hi, join)
    }

    /// A `match` body: each braced arm is one alternative; patterns,
    /// guards and non-braced arms merge into one extra alternative node.
    fn match_block(&mut self, mb: &Block, cur: usize) -> usize {
        let join = self.new_node();
        let misc = self.new_succ(cur);
        let mut misc_cur = misc;
        let mut pos = mb.span.lo + 1;
        for child in &mb.children {
            let (lo, hi) = (child_lo(child), child_hi(child));
            misc_cur = self.loose(pos, lo, misc_cur);
            if let BlockChild::Block(b) = child {
                let entry = self.new_succ(cur);
                let exit = self.block(b, entry);
                self.edge(exit, join);
            }
            pos = hi;
        }
        misc_cur = self.loose(pos, mb.span.hi, misc_cur);
        self.edge(misc_cur, join);
        join
    }

    /// A `loop`/`while`/`for` body: empty head node with a back edge from
    /// the body's exit and an escape edge to the node after the loop.
    fn loop_block(&mut self, b: &Block, cur: usize) -> usize {
        let head = self.new_succ(cur);
        let after = self.new_node();
        self.loops.push((head, after));
        let body_entry = self.new_succ(head);
        let body_exit = self.block(b, body_entry);
        self.edge(body_exit, head);
        self.loops.pop();
        self.edge(head, after);
        after
    }
}

fn child_lo(c: &BlockChild) -> usize {
    match c {
        BlockChild::Block(b) => b.span.lo,
        BlockChild::Item(it) => it.span.lo,
    }
}

fn child_hi(c: &BlockChild) -> usize {
    match c {
        BlockChild::Block(b) => b.span.hi,
        BlockChild::Item(it) => it.span.hi,
    }
}

/// First non-comment token index in `[lo, hi)`.
fn next_code_in(toks: &[Token], lo: usize, hi: usize) -> Option<usize> {
    (lo..hi.min(toks.len())).find(|&j| !toks[j].is_comment())
}

/// The control keyword governing a block that opens at `block_lo`, found
/// by scanning the loose range `[seg_lo, block_lo)` backwards: the
/// nearest of `if`/`match`/`loop`/`while`/`for` before the brace, not
/// separated from it by a `;`. Balanced `(…)`/`[…]` groups are skipped
/// whole so parenthesized conditions don't hide their keyword.
fn keyword_before(toks: &[Token], seg_lo: usize, block_lo: usize) -> Option<&str> {
    let mut i = block_lo;
    while i > seg_lo {
        i -= 1;
        let t = &toks[i];
        if t.is_comment() {
            continue;
        }
        if t.is_op(")") || t.is_op("]") {
            let open = if t.is_op(")") { "(" } else { "[" };
            let close = t.text.as_str();
            let mut depth = 1i32;
            while i > seg_lo && depth > 0 {
                i -= 1;
                if toks[i].is_op(close) {
                    depth += 1;
                } else if toks[i].is_op(open) {
                    depth -= 1;
                }
            }
            continue;
        }
        if t.is_op(";") {
            return None;
        }
        if matches!(t.text.as_str(), "if" | "match" | "loop" | "while" | "for") {
            return Some(match t.text.as_str() {
                "if" => "if",
                "match" => "match",
                "loop" => "loop",
                "while" => "while",
                _ => "for",
            });
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Forward may-dataflow
// ---------------------------------------------------------------------------

/// One dataflow fact: generated at `gen_tok`, killed at any of
/// `kill_toks`. For guard liveness: gen at the acquisition's method
/// token, kill at the guard's drop points (explicit `drop(g)` sites, the
/// statement `;` for temporaries, the block's closing `}` for let-bound
/// guards).
#[derive(Clone, Debug)]
pub struct FactDef {
    /// Token index generating the fact (the fact is live *after* it).
    pub gen_tok: usize,
    /// Token indexes killing the fact (dead *at* each of them).
    pub kill_toks: Vec<usize>,
}

/// Fixpoint solution of a forward may-analysis: per-node fact bitmask at
/// node entry. At most 64 facts are tracked (far above any real
/// function's acquisition count); excess facts are ignored.
pub struct Liveness {
    input: Vec<u64>,
    facts: Vec<FactDef>,
}

impl Liveness {
    /// Runs gen/kill propagation over `cfg` to a fixpoint.
    pub fn compute(cfg: &Cfg, facts: &[FactDef]) -> Liveness {
        let facts: Vec<FactDef> = facts.iter().take(64).cloned().collect();
        let mut input = vec![0u64; cfg.nodes.len()];
        let mut output = vec![0u64; cfg.nodes.len()];
        loop {
            let mut changed = false;
            for (i, node) in cfg.nodes.iter().enumerate() {
                let mut in_bits = 0u64;
                for &p in &node.preds {
                    in_bits |= output[p];
                }
                let out_bits = transfer(node, in_bits, &facts, usize::MAX);
                if in_bits != input[i] || out_bits != output[i] {
                    input[i] = in_bits;
                    output[i] = out_bits;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Liveness { input, facts }
    }

    /// Fact indexes live just before executing token `tok`. Tokens
    /// outside every node (unreachable or structural) report no facts.
    pub fn live_at(&self, cfg: &Cfg, tok: usize) -> Vec<usize> {
        let Some(n) = cfg.node_at(tok) else { return Vec::new() };
        let bits = transfer(&cfg.nodes[n], self.input[n], &self.facts, tok);
        (0..self.facts.len()).filter(|&f| bits & (1u64 << f) != 0).collect()
    }
}

/// Applies a node's gen/kill events in token order to `bits`, stopping
/// before token `until` (exclusive).
fn transfer(node: &Node, mut bits: u64, facts: &[FactDef], until: usize) -> u64 {
    for &(lo, hi) in &node.ranges {
        for tok in lo..hi.min(until) {
            for (f, fact) in facts.iter().enumerate() {
                if fact.gen_tok == tok {
                    bits |= 1u64 << f;
                } else if fact.kill_toks.contains(&tok) {
                    bits &= !(1u64 << f);
                }
            }
        }
        if hi > until {
            break;
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceModel;
    use crate::parser::parse;
    use crate::symbols::{extract_fns, EventKind, FnDef};

    fn defs(src: &str) -> (SourceModel, Vec<FnDef>) {
        let model = SourceModel::build("lib/src/x.rs".into(), src);
        let file = parse(&model.tokens);
        let fns = extract_fns(&model, &file);
        (model, fns)
    }

    fn cfg_of<'a>(fns: &'a [FnDef], name: &str) -> &'a Cfg {
        &fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("no fn {name}")).cfg
    }

    /// Token index of the first occurrence of `text` in the model.
    fn tok(model: &SourceModel, text: &str) -> usize {
        model
            .tokens
            .iter()
            .position(|t| t.text == text)
            .unwrap_or_else(|| panic!("no token {text:?}"))
    }

    #[test]
    fn straight_line_is_one_path() {
        let (_, fns) = defs("fn f() { let a = 1; let b = a + 1; }\n");
        let cfg = cfg_of(&fns, "f");
        // entry flows (possibly through trivial nodes) to exit.
        assert!(cfg.nodes[cfg.entry].succs.contains(&cfg.exit));
        // every body token is owned by exactly one node.
        for i in 0..cfg.nodes.len() {
            for &(lo, hi) in &cfg.nodes[i].ranges {
                for t in lo..hi {
                    assert_eq!(cfg.node_at(t), Some(i), "token {t} multiply owned");
                }
            }
        }
    }

    #[test]
    fn if_else_branches_and_rejoins() {
        let (model, fns) = defs(
            "fn f(c: bool) -> u32 {\n\
                 let mut x = 0;\n\
                 if c { x = then_side(); } else { x = else_side(); }\n\
                 after(x)\n\
             }\n\
             fn then_side() -> u32 { 1 }\n\
             fn else_side() -> u32 { 2 }\n\
             fn after(x: u32) -> u32 { x }\n",
        );
        let cfg = cfg_of(&fns, "f");
        let cond = cfg.node_at(tok(&model, "if")).expect("cond token");
        let then_n = cfg.node_at(tok(&model, "then_side")).expect("then");
        let else_n = cfg.node_at(tok(&model, "else_side")).expect("else");
        let after_n = cfg.node_at(tok(&model, "after")).expect("after");
        assert_ne!(then_n, else_n);
        // The branch reaches both sides (possibly through entry nodes).
        let reaches = |from: usize, to: usize| -> bool {
            let mut seen = vec![false; cfg.nodes.len()];
            let mut stack = vec![from];
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if !std::mem::replace(&mut seen[n], true) {
                    stack.extend(cfg.nodes[n].succs.iter().copied());
                }
            }
            false
        };
        assert!(reaches(cond, then_n));
        assert!(reaches(cond, else_n));
        assert!(reaches(then_n, after_n));
        assert!(reaches(else_n, after_n));
        // The two arms are exclusive: neither reaches the other.
        assert!(!reaches(then_n, else_n));
        assert!(!reaches(else_n, then_n));
    }

    #[test]
    fn loops_have_back_edges() {
        let (model, fns) = defs(
            "fn f(xs: &[u32]) -> u32 {\n\
                 let mut acc = 0;\n\
                 for x in xs { acc += body(*x); }\n\
                 acc\n\
             }\n\
             fn body(x: u32) -> u32 { x }\n",
        );
        let cfg = cfg_of(&fns, "f");
        let body_n = cfg.node_at(tok(&model, "body")).expect("loop body");
        // Some cycle passes through the body node.
        let mut seen = vec![false; cfg.nodes.len()];
        let mut stack = vec![body_n];
        let mut cycles = false;
        while let Some(n) = stack.pop() {
            for &s in &cfg.nodes[n].succs {
                if s == body_n {
                    cycles = true;
                }
                if !std::mem::replace(&mut seen[s], true) {
                    stack.push(s);
                }
            }
        }
        assert!(cycles, "loop body must sit on a cycle");
    }

    #[test]
    fn early_return_cuts_fall_through() {
        let (model, fns) = defs(
            "fn f(c: bool) -> u32 {\n\
                 if c {\n\
                     return early();\n\
                 }\n\
                 late()\n\
             }\n\
             fn early() -> u32 { 1 }\n\
             fn late() -> u32 { 2 }\n",
        );
        let cfg = cfg_of(&fns, "f");
        let ret_n = cfg.node_at(tok(&model, "early")).expect("return node");
        let late_n = cfg.node_at(tok(&model, "late")).expect("late node");
        assert!(cfg.nodes[ret_n].succs.contains(&cfg.exit), "return edges to exit");
        // The return node must not fall through to the code after the if.
        let mut seen = vec![false; cfg.nodes.len()];
        let mut stack: Vec<usize> = cfg.nodes[ret_n].succs.clone();
        while let Some(n) = stack.pop() {
            assert_ne!(n, late_n, "return must not reach the tail");
            if !std::mem::replace(&mut seen[n], true) {
                stack.extend(cfg.nodes[n].succs.iter().copied());
            }
        }
    }

    #[test]
    fn question_mark_keeps_fall_through_and_adds_exit_edge() {
        let (model, fns) = defs(
            "fn f() -> Result<u32, E> {\n\
                 let v = fallible()?;\n\
                 Ok(tail(v))\n\
             }\n\
             fn fallible() -> Result<u32, E> { Ok(1) }\n\
             fn tail(v: u32) -> u32 { v }\n",
        );
        let cfg = cfg_of(&fns, "f");
        let q = cfg.node_at(tok(&model, "fallible")).expect("fallible node");
        assert!(cfg.nodes[q].succs.contains(&cfg.exit), "? adds an exit edge");
        // Fall-through to the tail still exists.
        assert!(cfg.node_at(tok(&model, "tail")).is_some());
    }

    #[test]
    fn match_arms_are_alternatives() {
        let (model, fns) = defs(
            "fn f(x: Option<u32>) -> u32 {\n\
                 match x {\n\
                     Some(v) => { left(v) }\n\
                     None => { right() }\n\
                 }\n\
             }\n\
             fn left(v: u32) -> u32 { v }\n\
             fn right() -> u32 { 0 }\n",
        );
        let cfg = cfg_of(&fns, "f");
        let l = cfg.node_at(tok(&model, "left")).expect("left arm");
        let r = cfg.node_at(tok(&model, "right")).expect("right arm");
        assert_ne!(l, r, "braced arms are distinct alternatives");
    }

    #[test]
    fn liveness_respects_branch_kills() {
        // A guard killed by drop() on one branch only: live after the
        // join (may-analysis), dead only between drop and the join.
        let (model, fns) = defs(
            "fn f(c: bool) {\n\
                 let g = self_lock();\n\
                 if c {\n\
                     drop(g);\n\
                     mid();\n\
                 }\n\
                 tail();\n\
             }\n\
             fn self_lock() -> u32 { 1 }\n\
             fn mid() {}\n\
             fn tail() {}\n",
        );
        let cfg = cfg_of(&fns, "f");
        let gen_tok = tok(&model, "self_lock");
        let drop_tok = tok(&model, "drop");
        let facts = [FactDef { gen_tok, kill_toks: vec![drop_tok] }];
        let live = Liveness::compute(cfg, &facts);
        assert!(!live.live_at(cfg, tok(&model, "drop")).is_empty(), "live entering drop");
        assert!(live.live_at(cfg, tok(&model, "mid")).is_empty(), "dead after drop");
        assert!(
            !live.live_at(cfg, tok(&model, "tail")).is_empty(),
            "live at join (untaken branch)"
        );
    }

    /// Differential check against the linear guard-extent heuristic in
    /// `symbols.rs`: on straight-line code the CFG liveness and the
    /// `held_until` extents must agree token-for-token.
    #[test]
    fn liveness_matches_linear_extents_on_straight_line_code() {
        let (model, fns) = defs(
            "impl Shared {\n\
                 fn protocol(&self) -> usize {\n\
                     let n = {\n\
                         let g = self.inner.read(); // lock-order: read\n\
                         g.len()\n\
                     };\n\
                     let m = self.clock.write().touch(n); // lock-order: write\n\
                     n + m\n\
                 }\n\
             }\n",
        );
        let f = fns.iter().find(|f| f.name == "protocol").expect("protocol fn");
        let acquires: Vec<(usize, usize)> = f
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Acquire { held_until, .. } => Some((e.tok, *held_until)),
                _ => None,
            })
            .collect();
        assert_eq!(acquires.len(), 2, "{:?}", f.events);
        let facts: Vec<FactDef> = acquires
            .iter()
            .map(|&(gen_tok, held)| FactDef { gen_tok, kill_toks: vec![held] })
            .collect();
        let live = Liveness::compute(&f.cfg, &facts);
        let (body_lo, body_hi) = f.body_span.expect("body");
        for t in body_lo..body_hi {
            if f.cfg.node_at(t).is_none() {
                continue; // structural token (opening brace)
            }
            let got = live.live_at(&f.cfg, t);
            for (i, &(gen_tok, held)) in acquires.iter().enumerate() {
                // `held_until` is inclusive: the guard is live *through*
                // that token, dying immediately after it.
                let want = gen_tok < t && t <= held;
                assert_eq!(
                    got.contains(&i),
                    want,
                    "guard {i} at token {t} ({:?}): linear extent ({gen_tok}, {held})",
                    model.tokens[t].text
                );
            }
        }
    }
}
