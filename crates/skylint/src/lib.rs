//! `skylint` — in-repo static analysis for the skycache workspace.
//!
//! Enforces the policies that keep the paper's correctness story intact
//! mechanically rather than by review vigilance:
//!
//! * **no-panic-paths** — library crates surface typed errors, never
//!   panics, on data-dependent failures;
//! * **determinism** — no wall clocks, no hash-iteration order, no raw
//!   float equality in the paths that produce cached results (Thm. 1 /
//!   Cors. 1–2 stability and Thms. 6–7 MPR minimality assume replayed
//!   plans are byte-identical);
//! * **concurrency-hygiene** — thread spawns only in the sanctioned
//!   parallel lanes, annotated-and-ordered lock acquisitions in the shared
//!   cache, `// SAFETY:` on every unsafe block;
//! * **api-hygiene** — lint headers and a documented public surface.
//!
//! The analysis is a hand-rolled lexer, a lossless recursive-descent
//! parser over the token stream, a per-file symbol/event extraction pass
//! and a workspace call graph — no `syn`, no network dependencies —
//! consistent with this workspace's vendored-offline build (see
//! `vendor/README.md`). On top of the call graph run the whole-program
//! rule families: **lock-order** (inter-procedural lock-acquisition
//! graph, cycle detection, annotation verification),
//! **panic-reachability** (transitive may-panic facts into public
//! APIs), **hot-path-alloc** (allocation machinery reachable from
//! designated kernels) and **dead-allow** (escape comments that no
//! longer suppress anything; `check --fix-dead-allows` repairs them).
//! A per-function control-flow graph and forward gen/kill liveness
//! engine ([`cfg`]) power four more: **guard-hold-span** (lock guards
//! live across transitively expensive calls), **capture-race**
//! (spawned closures mutating unsynchronized captured locals read
//! after the spawn), **env-read-confinement** (ambient environment
//! reads outside the sanctioned pin functions) and **range-taint**
//! (decoded sizes reaching allocation sinks unvalidated).
//! Run it with:
//!
//! ```text
//! cargo run -p skylint -- check
//! cargo run -p skylint -- explain determinism
//! ```
//!
//! Policy knobs live in `skylint.toml` at the repository root; per-line
//! escapes use `// skylint: allow(<rule>) — <justification>`. See
//! DESIGN.md §9–§10 and §14 for the rationale of every rule.

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod callgraph;
pub mod cfg;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod report;
pub mod rules;
pub mod symbols;

pub use config::Config;
pub use engine::{scan, scan_source, Policy, ScanError, ScanOutcome};
pub use report::Finding;
