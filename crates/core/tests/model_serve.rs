//! skycheck model-checked harnesses for the service-layer protocols
//! (DESIGN.md §16): singleflight coalescing and epoch publication.
//!
//! Both harnesses explore *every* interleaving at preemption bound 2,
//! written against the same `skycheck::sync` shims the library uses:
//!
//! * **Singleflight** — two concurrent identical queries: no schedule
//!   deadlocks, both observe the correct skyline, and the compute count
//!   always equals `2 − joins` (a joiner never recomputes — it received
//!   the leader's outcome through the flight slot). At least one
//!   explored schedule must actually coalesce, so the property is not
//!   vacuously true.
//! * **Epoch publication** — a writer inserts (publish-then-bump) while
//!   a reader interleaves epoch loads and snapshot reads anywhere: the
//!   epoch is monotone, every snapshot is a complete pre- or post-insert
//!   cache (never torn), an observed epoch ≥ 1 guarantees the snapshot
//!   read after it sees the insert, and a snapshot taken early is
//!   immutable no matter how the writer is scheduled around it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

use skycache_core::engine::QueryRequest;
use skycache_core::{Service, ServiceConfig, Session};
use skycache_geom::{Constraints, Kernel, Point};
use skycache_storage::{Table, TableConfig};
use skycheck::sync::thread;
use skycheck::Explorer;

/// Model runs interleave threads around process-wide statics (the kernel
/// pin); serialize the harnesses (same gate discipline as `model.rs`).
fn serial() -> StdMutexGuard<'static, ()> {
    static GATE: StdMutex<()> = StdMutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn table() -> Table {
    let points: Vec<Point> = (0..3)
        .flat_map(|i| {
            (0..3).map(move |j| Point::from(vec![f64::from(i) / 2.0, f64::from(j) / 2.0]))
        })
        .collect();
    Table::build(points, TableConfig::default()).unwrap()
}

fn sorted(mut sky: Vec<Point>) -> Vec<Point> {
    sky.sort_by_key(|p| (p[0].to_bits(), p[1].to_bits()));
    sky
}

fn run_query(session: &mut Session<'_>, c: &Constraints) -> Vec<Point> {
    sorted(session.execute(&QueryRequest::new(c.clone())).unwrap().skyline)
}

/// Coalescing on, negative cache off: the singleflight protocol is the
/// subject; the TTL clock would only add schedule points.
fn coalescing_config() -> ServiceConfig {
    ServiceConfig { negative_cache: false, ..ServiceConfig::default() }
}

/// Singleflight: two concurrent identical queries → in every schedule,
/// no deadlock, correct results, and exactly `2 − joins` computations;
/// across the exhaustive exploration, at least one schedule coalesces.
#[test]
fn singleflight_two_identical_queries_compute_once_per_leader() {
    let _gate = serial();
    let t = table();
    let c = Constraints::from_pairs(&[(0.0, 0.9), (0.0, 0.9)]).unwrap();
    let want = {
        Kernel::set_active(Kernel::Scalar);
        let service = Service::open(&t, coalescing_config());
        let out = run_query(&mut service.session(), &c);
        Kernel::reset_to_env();
        out
    };

    // Process-level: did ANY schedule coalesce? (Serial schedules finish
    // the first flight before the second query arrives, so per-schedule
    // "exactly one compute" would be wrong — but if no interleaving ever
    // joins a flight, the protocol is dead code and this harness must
    // say so.)
    let schedules_with_join = AtomicU64::new(0);

    let outcome = Explorer::new().with_preemption_bound(2).explore(|| {
        Kernel::set_active(Kernel::Scalar);
        let service = Service::open(&t, coalescing_config());
        let mut sa = service.session();
        let mut sb = service.session();
        let (got_a, got_b) = thread::scope(|s| {
            let c_ref = &c;
            let ha = s.spawn(move || run_query(&mut sa, c_ref));
            let hb = s.spawn(move || run_query(&mut sb, c_ref));
            (ha.join().expect("user a"), hb.join().expect("user b"))
        });
        assert_eq!(got_a, want, "user a's skyline must be correct in every schedule");
        assert_eq!(got_b, want, "a joiner must observe the winner's (correct) outcome");

        let m = service.metrics();
        assert!(m.coalesced <= 1, "with two queries at most one can join");
        assert_eq!(
            m.computes,
            2 - m.coalesced,
            "every join must save exactly one computation (loser reuses \
             the winner's outcome; it never recomputes)"
        );
        // Only *missed* computations insert: a joiner reuses the
        // winner's outcome, and a serial second query scores an exact
        // hit and publishes nothing. The epoch mirrors the insert count.
        let inserted = service.cache().len() as u64;
        assert_eq!(service.cache().epoch(), inserted);
        assert!(inserted >= 1, "the first computation always inserts");
        assert!(inserted <= m.computes, "a joiner provably never runs the insert path");
        if m.coalesced == 1 {
            schedules_with_join.fetch_add(1, Ordering::Relaxed);
        }
    });
    outcome.assert_ok();
    assert!(outcome.exhausted, "schedule space must be exhausted: {:?}", outcome.stats);
    assert!(
        schedules_with_join.load(Ordering::Relaxed) >= 1,
        "exhaustive exploration must include schedules where the queries \
         actually coalesce"
    );
    Kernel::reset_to_env();
}

/// Epoch publication: while a writer session computes-and-publishes, a
/// reader interleaved anywhere sees a monotone epoch and only complete
/// snapshots — publish-before-bump means an observed epoch ≥ 1
/// guarantees the next snapshot contains the insert.
#[test]
fn epoch_publication_is_never_torn() {
    let _gate = serial();
    let t = table();
    let c = Constraints::from_pairs(&[(0.0, 0.9), (0.0, 0.9)]).unwrap();

    let outcome = Explorer::new().with_preemption_bound(2).explore(|| {
        Kernel::set_active(Kernel::Scalar);
        let service = Service::open(&t, coalescing_config());
        let mut writer = service.session();
        let pre_insert = service.cache().snapshot();
        assert!(pre_insert.is_empty());

        let cache = service.cache().clone();
        let reader = thread::spawn(move || {
            for _ in 0..2 {
                let e1 = cache.epoch();
                let snap = cache.snapshot();
                let e2 = cache.epoch();
                assert!(e2 >= e1, "the epoch must be monotone");
                // A snapshot is the complete pre- or post-insert cache —
                // one insert happened at most, so 0 or 1 items, each
                // internally consistent (len agrees with iteration).
                let n = snap.len();
                assert!(n <= 1, "torn snapshot: {n} items from a single insert");
                assert_eq!(snap.iter().count(), n, "snapshot index and items must agree");
                // Publish-before-bump: an epoch observed *before* the
                // snapshot read lower-bounds the snapshot's content.
                assert!(
                    n as u64 >= e1,
                    "reader saw epoch {e1} but a snapshot of {n} items — \
                     the snapshot was bumped before it was published"
                );
            }
        });
        let skyline = writer.execute(&QueryRequest::new(c.clone())).unwrap().skyline;
        assert!(!skyline.is_empty());
        reader.join().expect("reader");

        // However the reader interleaved: exactly one publication, the
        // early snapshot never mutated.
        assert_eq!(service.cache().epoch(), 1);
        assert_eq!(service.cache().snapshot().len(), 1);
        assert!(pre_insert.is_empty(), "published snapshots must be immutable");
    });
    outcome.assert_ok();
    assert!(outcome.exhausted, "schedule space must be exhausted: {:?}", outcome.stats);
    Kernel::reset_to_env();
}
