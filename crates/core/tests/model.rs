//! skycheck model-checked harnesses for the shared-cache protocol.
//!
//! Each test explores *every* interleaving (at preemption bound 2) of a
//! small concurrent scenario written against the `skycheck::sync` shims the
//! library itself uses. The three load-bearing invariants of
//! `core::shared`'s read → compute → write protocol are pinned here:
//!
//! (a) concurrent `touch`/`insert` never violate LRU-clock monotonicity;
//! (b) eviction between an executor's read and write phases never loses
//!     the inserted result or double-counts a hit;
//! (c) the lock-order annotations in `shared.rs` admit no AB/BA schedule —
//!     two full concurrent `execute()` calls cannot deadlock.
//!
//! Plus the satellite pins: the `geom::Kernel` `ACTIVE` publish/observe
//! pair, `SharedCache::with_read` re-entrancy, and a deliberately seeded
//! touch-without-write-lock bug that must yield a byte-reproducible
//! failing trace.
//!
//! Statics (the kernel pin) keep their real value across runs, so every
//! harness that reaches kernel dispatch normalizes it first — run-to-run
//! determinism is what makes trace replay byte-stable.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

use skycache_core::engine::{CbcsConfig, QueryRequest};
use skycache_core::{Cache, ReplacementPolicy, Service, ServiceConfig, SharedCache};
use skycache_geom::{Constraints, Kernel, Point};
use skycache_storage::{Table, TableConfig};
use skycheck::sync::{thread, Arc, RwLock};
use skycheck::{Explorer, FailureKind};

/// Model runs interleave threads around process-wide statics (the kernel
/// pin); running two explorations concurrently would let one run's stores
/// leak into another's schedule. Serialize the harnesses.
fn serial() -> StdMutexGuard<'static, ()> {
    static GATE: StdMutex<()> = StdMutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn table() -> Table {
    let points: Vec<Point> = (0..3)
        .flat_map(|i| {
            (0..3).map(move |j| Point::from(vec![f64::from(i) / 2.0, f64::from(j) / 2.0]))
        })
        .collect();
    Table::build(points, TableConfig::default()).unwrap()
}

fn sorted(mut sky: Vec<Point>) -> Vec<Point> {
    sky.sort_by_key(|p| (p[0].to_bits(), p[1].to_bits()));
    sky
}

/// Service config pinning the raw shared-cache protocol: the service
/// fast paths (singleflight, negative cache) are explored by their own
/// harnesses in `model_serve.rs`; these harnesses want every session to
/// reach `execute`'s read → compute → write protocol itself.
fn raw_config(cbcs: CbcsConfig) -> ServiceConfig {
    ServiceConfig { cbcs, coalesce: false, negative_cache: false, ..ServiceConfig::default() }
}

fn run_query(session: &mut skycache_core::Session<'_>, c: &Constraints) -> (Vec<Point>, bool) {
    let r = session.execute(&QueryRequest::new(c.clone())).unwrap().into_result();
    (sorted(r.skyline), r.stats.cache_hit)
}

/// The sequential answer, for comparison inside the model runs.
fn reference(table: &Table, c: &Constraints) -> Vec<Point> {
    Kernel::set_active(Kernel::Scalar);
    let service = Service::open(table, raw_config(CbcsConfig::default()));
    let out = run_query(&mut service.session(), c).0;
    Kernel::reset_to_env();
    out
}

/// Invariant (a): concurrent `touch` and `insert` through the shim RwLock
/// never violate LRU-clock monotonicity. `Cache` asserts the invariant
/// internally after every mutation (debug builds), so any violating
/// schedule panics inside the model run and surfaces as a failure.
#[test]
fn harness_a_concurrent_touch_insert_keeps_clock_monotone() {
    let _gate = serial();
    let c0 = Constraints::from_pairs(&[(0.0, 0.4), (0.0, 1.0)]).unwrap();
    let c1 = Constraints::from_pairs(&[(0.6, 1.0), (0.0, 1.0)]).unwrap();
    let pts = vec![Point::from(vec![0.1, 0.1])];

    let outcome = Explorer::new().with_preemption_bound(2).explore(|| {
        let cache = Arc::new(RwLock::new(Cache::with_capacity(2, None, ReplacementPolicy::Lru)));
        let id = cache.write().insert(c0.clone(), &pts).expect("Lru admits below capacity");
        let cache2 = cache.clone();
        let h = thread::spawn(move || cache2.write().touch(id));
        cache.write().insert(c1.clone(), &pts);
        h.join().expect("toucher");

        let g = cache.read();
        let touched = g.get(id).expect("untouched items are never evicted");
        assert_eq!(touched.use_count, 1, "exactly one touch must be recorded");
        assert!(touched.last_used > touched.inserted_at, "touch must advance recency");
        // Clock events (2 inserts + 1 touch) are serialized by the write
        // lock: every stamp is unique, no stamp is ever re-issued.
        let mut stamps: Vec<u64> = g.iter().map(|it| it.last_used).collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 2, "recency stamps must stay distinct");
    });
    outcome.assert_ok();
    assert!(outcome.exhausted, "schedule space must be exhausted: {:?}", outcome.stats);
}

/// Invariant (b): with a capacity-1 cache, two concurrent executors with
/// disjoint queries race insert-vs-evict between each other's read and
/// write phases. In every schedule both must return the correct skyline,
/// exactly one eviction happens, and neither counts a spurious hit.
#[test]
fn harness_b_eviction_between_phases_never_loses_or_double_counts() {
    let _gate = serial();
    let t = table();
    let ca = Constraints::from_pairs(&[(0.0, 0.4), (0.0, 1.0)]).unwrap();
    let cb = Constraints::from_pairs(&[(0.6, 1.0), (0.0, 1.0)]).unwrap();
    let ref_a = reference(&t, &ca);
    let ref_b = reference(&t, &cb);

    let config = CbcsConfig { capacity: Some(1), ..Default::default() };
    let outcome = Explorer::new().with_preemption_bound(2).explore(|| {
        Kernel::set_active(Kernel::Scalar);
        let service = Service::open(&t, raw_config(config.clone()));
        let mut sa = service.session();
        let mut sb = service.session();
        let (got_a, got_b) = thread::scope(|s| {
            let (ca_ref, cb_ref) = (&ca, &cb);
            let ha = s.spawn(move || run_query(&mut sa, ca_ref));
            let hb = s.spawn(move || run_query(&mut sb, cb_ref));
            (ha.join().expect("user a"), hb.join().expect("user b"))
        });
        assert_eq!(got_a.0, ref_a, "user a's result must survive the race");
        assert_eq!(got_b.0, ref_b, "user b's result must survive the race");
        assert!(!got_a.1 && !got_b.1, "disjoint queries must never count a hit");
        assert_eq!(service.cache().len(), 1, "capacity-1 cache holds exactly one result");
        service.cache().with_read(|c| {
            assert_eq!(c.evictions(), 1, "exactly one insert is evicted, never both");
        });
    });
    outcome.assert_ok();
    assert!(outcome.exhausted, "schedule space must be exhausted: {:?}", outcome.stats);
}

/// Invariant (c): the `// lock-order: read`/`write` protocol in
/// `shared.rs` holds at most one cache lock at a time, so two full
/// concurrent `execute()` calls admit no AB/BA schedule — exhaustive
/// exploration finds no deadlock, and hit accounting stays consistent.
#[test]
fn harness_c_concurrent_execute_admits_no_deadlock() {
    let _gate = serial();
    let t = table();
    let c = Constraints::from_pairs(&[(0.0, 0.9), (0.0, 0.9)]).unwrap();
    let want = reference(&t, &c);

    let outcome = Explorer::new().with_preemption_bound(2).explore(|| {
        Kernel::set_active(Kernel::Scalar);
        let service = Service::open(&t, raw_config(CbcsConfig::default()));
        let mut sa = service.session();
        let mut sb = service.session();
        let (got_a, got_b) = thread::scope(|s| {
            let c_ref = &c;
            let ha = s.spawn(move || run_query(&mut sa, c_ref));
            let hb = s.spawn(move || run_query(&mut sb, c_ref));
            (ha.join().expect("user a"), hb.join().expect("user b"))
        });
        assert_eq!(got_a.0, want);
        assert_eq!(got_b.0, want);
        let hits = usize::from(got_a.1) + usize::from(got_b.1);
        assert!(hits <= 1, "an empty cache admits at most one hit");
        // Every miss publishes its result; an exact hit touches the
        // existing item instead of re-inserting a duplicate.
        assert_eq!(service.cache().len(), 2 - hits);
        service.cache().with_read(|cache| {
            let touches: u64 = cache.iter().map(|it| it.use_count).sum();
            assert_eq!(touches as usize, hits, "hits and touches must agree");
        });
    });
    outcome.assert_ok();
    assert!(outcome.exhausted, "schedule space must be exhausted: {:?}", outcome.stats);
}

/// Satellite: `SharedCache::with_read` re-entrancy. The shim RwLock grants
/// shared acquisition whenever no writer holds the lock — recursively from
/// the same thread included — so a nested `with_read` is safe even with a
/// concurrent writer waiting.
#[test]
fn with_read_reentrancy_is_safe_under_the_shim_rwlock() {
    let _gate = serial();
    let outcome = Explorer::new().with_preemption_bound(2).explore(|| {
        let shared = SharedCache::new(2, &CbcsConfig::default());
        let observer = shared.clone();
        let h = thread::spawn(move || observer.len());
        let (outer_len, inner_len) = shared.with_read(|outer| {
            // Nested read acquisition of the same lock, while `h` may be
            // interleaved anywhere: must never deadlock.
            let inner_len = shared.with_read(|inner| inner.len());
            (outer.len(), inner_len)
        });
        assert_eq!(outer_len, inner_len);
        assert_eq!(h.join().expect("observer"), 0);
    });
    outcome.assert_ok();
    assert!(outcome.exhausted, "schedule space must be exhausted: {:?}", outcome.stats);
}

/// Satellite: the `geom::Kernel` `ACTIVE` pin. A generation pinned before
/// spawning must be observed by the worker in every schedule — the
/// release store / acquire load pair made model-checkable by the shim.
#[test]
fn kernel_active_pin_is_visible_to_spawned_workers() {
    let _gate = serial();
    let outcome = Explorer::new().with_preemption_bound(2).explore(|| {
        Kernel::set_active(Kernel::Wide);
        let h = thread::spawn(|| Kernel::for_dims(2));
        let seen = h.join().expect("worker");
        assert_eq!(
            seen,
            Kernel::Wide,
            "a pin published before spawn must be visible to the worker"
        );
        Kernel::reset_to_env();
    });
    outcome.assert_ok();
    assert!(outcome.exhausted, "schedule space must be exhausted: {:?}", outcome.stats);
}

/// Seeded bug: perform `touch`'s clock bump the *wrong* way — read the
/// clock under a read lock, drop it, then write the incremented value
/// under a separate write lock (i.e. skip the touch write-lock critical
/// section). skycheck must find the lost update and hand back a
/// byte-reproducible, replayable schedule trace.
#[test]
fn seeded_bug_touch_without_write_lock_yields_reproducible_trace() {
    let _gate = serial();
    let harness = || {
        let clock = Arc::new(RwLock::new(0u64));
        let clock2 = clock.clone();
        let buggy_touch = |clk: &RwLock<u64>| {
            let seen = *clk.read(); // BUG: decide under the read lock…
            *clk.write() = seen + 1; // …publish under a later write lock.
        };
        let h = thread::spawn(move || {
            let seen = *clock2.read();
            *clock2.write() = seen + 1;
        });
        buggy_touch(&clock);
        h.join().expect("toucher");
        assert_eq!(*clock.read(), 2, "lost clock update");
    };

    let first = Explorer::new().with_preemption_bound(2).explore(harness);
    let failure = first.failure.expect("the lost update must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("lost clock update"), "{}", failure.message);

    // Byte-reproducible: a fresh exploration finds the identical trace…
    let second = Explorer::new().with_preemption_bound(2).explore(harness);
    assert_eq!(second.failure.expect("same bug").trace, failure.trace);

    // …and replaying the printed trace reproduces the failure directly.
    let replayed = Explorer::new().replay(&failure.trace, harness);
    let rf = replayed.failure.expect("replay must reproduce the failure");
    assert_eq!(rf.trace, failure.trace);
    assert_eq!(rf.message, failure.message);
}
