//! The in-memory constrained-skyline cache (paper Section 6 / Def. 3).
//!
//! Each cache item is the 3-tuple `⟨Sky(S,C), MBR, C⟩`. Items are indexed
//! by an R\*-tree over the skylines' minimum bounding rectangles; a lookup
//! for new constraints `C′` returns every item with `R_C′ ∩ MBR ≠ ∅`.
//! (For an item whose skyline is *empty*, the MBR is undefined; we index
//! such items by their constraint region instead so the knowledge "this
//! region is empty" stays discoverable — a strict improvement documented
//! in DESIGN.md.)
//!
//! Replacement (Section 6.2 and DESIGN.md §17): insertion and use
//! counters on the items support LRU (least recently used) and LCU
//! (least commonly used) eviction when a capacity is set; the TinyLFU
//! policy adds a frequency-sketch admission gate on top of LRU victim
//! order, and the cost-aware policy evicts the item whose measured
//! benefit per cached point is smallest. Eviction order is maintained
//! incrementally in an ordered victim index — no per-eviction scan.

// BTreeMap/BTreeSet, not HashMap/HashSet: eviction order and the order
// of cache reindexing feed back into query planning, and iteration
// order must not depend on a randomized hasher (determinism lint).
use std::collections::{BTreeMap, BTreeSet};

use skycache_geom::dominance::dominates_raw;
use skycache_geom::{Aabb, Constraints, Point, PointBlock};
use skycache_rtree::RStarTree;

/// Measured benefit recorded when a result is inserted: what it cost to
/// compute the skyline from storage, i.e. what a future exact hit saves.
/// Both components are deterministic (points read from the fetch plan and
/// the storage cost model's *simulated* latency — never wall-clock), so
/// cost-aware eviction order is reproducible across runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ItemCost {
    /// Data points the query read from storage to build this result.
    pub points_read: u64,
    /// Simulated fetch latency (nanoseconds) charged by the cost model.
    pub fetch_ns: u64,
}

/// A cached constrained-skyline result.
#[derive(Clone, Debug)]
pub struct CacheItem {
    /// Unique id within the cache.
    pub id: u64,
    /// The constraints `C` the skyline was computed under.
    pub constraints: Constraints,
    /// The cached result `Sky(S, C)` in columnar form: steady-state
    /// planning copies coordinate rows out of this block instead of
    /// cloning one heap-boxed `Point` per cached result point.
    pub skyline: PointBlock,
    /// Minimum bounding rectangle of the skyline (`None` when empty).
    pub mbr: Option<Aabb>,
    /// Logical insertion time.
    pub inserted_at: u64,
    /// Logical time of last use.
    pub last_used: u64,
    /// Number of times the item answered (part of) a query.
    pub use_count: u64,
    /// What building this result cost (drives [`ReplacementPolicy::CostAware`]).
    pub cost: ItemCost,
    /// Hash of the constraint box — the item's key in the admission
    /// frequency sketch ([`ReplacementPolicy::TinyLfu`]).
    pub key_hash: u64,
}

/// Benefit-per-cached-point score for cost-aware eviction. Non-negative
/// and finite, so `f64::to_bits` is order-preserving and the score can
/// key the ordered victim index directly.
fn cost_score(item: &CacheItem) -> f64 {
    let benefit = item.cost.points_read as f64 + item.cost.fetch_ns as f64 / 1_000.0;
    let footprint = item.skyline.len() as f64 + 1.0;
    benefit / footprint
}

/// The ordered victim-index key for an item under a policy: the victim
/// is always the *smallest* key present. Lower = evicted sooner.
fn victim_key(policy: ReplacementPolicy, item: &CacheItem) -> (u64, u64, u64) {
    match policy {
        // TinyLFU evicts in LRU order; the sketch gates admission instead.
        ReplacementPolicy::Lru | ReplacementPolicy::TinyLfu => {
            (item.last_used, item.inserted_at, item.id)
        }
        ReplacementPolicy::Lcu => (item.use_count, item.inserted_at, item.id),
        ReplacementPolicy::CostAware => (cost_score(item).to_bits(), item.inserted_at, item.id),
    }
}

/// `splitmix64` finalizer — the deterministic zero-dependency hash
/// behind the admission sketch (std's `Hasher` is excluded by the
/// determinism lint; this mixer is fixed for all runs and platforms).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sketch key for a constraint box: fold the corner coordinates' bit
/// patterns through the mixer. Collisions only merge two constraints'
/// frequency estimates — harmless for admission.
fn constraint_key(constraints: &Constraints) -> u64 {
    let aabb = constraints.aabb();
    let mut h = 0x5115_07A1_u64;
    for &v in aabb.lo().iter().chain(aabb.hi().iter()) {
        h = splitmix64(h ^ v.to_bits());
    }
    h
}

/// A 4-bit count-min frequency sketch with periodic halving — the
/// TinyLFU admission filter, hand-rolled with zero dependencies.
///
/// Sixteen 4-bit counters pack into each `u64` word. Every recorded key
/// increments four counters chosen by independent `splitmix64` streams;
/// an estimate reads the minimum of the four (the classic count-min
/// bound). Once the sample cap of increments has been recorded
/// (`10 × counters` by default; `10 × capacity` when sized for a cache,
/// see [`FrequencySketch::with_counters`]), every counter is halved in
/// place, so the sketch tracks *recent* popularity rather than all of
/// history.
#[derive(Clone, Debug)]
pub struct FrequencySketch {
    words: Vec<u64>,
    /// `counters − 1`; the counter count is a power of two.
    mask: u64,
    /// Increments recorded since the last halving.
    sample: u64,
    /// Halving threshold (`10 ×` the counter count).
    sample_cap: u64,
}

/// Per-key index streams: four fixed seeds, one per count-min row.
const SKETCH_SEEDS: [u64; 4] = [0x9E37_79B9, 0xA2C6_8F57, 0xD6E8_FEB8, 0x7FEB_352D];

impl FrequencySketch {
    /// Creates a sketch with at least `counters` 4-bit counters
    /// (rounded up to a power of two, minimum 16).
    pub fn with_counters(counters: usize) -> Self {
        let counters = counters.next_power_of_two().max(16);
        FrequencySketch {
            words: vec![0u64; counters / 16],
            mask: counters as u64 - 1,
            sample: 0,
            sample_cap: counters as u64 * 10,
        }
    }

    /// Sketch sized for a cache holding `capacity` items: ~16 counters
    /// per slot keeps estimate inflation from collisions negligible,
    /// while the halving threshold is `10 × capacity` *accesses* — the
    /// cache-turnover timescale (Caffeine's sample size), not the
    /// counter count. The sketch must forget faster than the cache
    /// churns, or admission keeps favoring formerly-hot keys long after
    /// the popular set has drifted.
    fn for_capacity(capacity: usize) -> Self {
        let mut sketch = Self::with_counters(capacity.saturating_mul(16).max(1024));
        sketch.sample_cap = (capacity as u64).saturating_mul(10).max(64);
        sketch
    }

    /// Counter position of `key` in count-min row `row`.
    fn slot(&self, key: u64, row: usize) -> (usize, u32) {
        let seed = SKETCH_SEEDS.get(row).copied().unwrap_or(0);
        let idx = splitmix64(key ^ seed) & self.mask;
        ((idx / 16) as usize, (idx % 16) as u32 * 4)
    }

    /// Records one occurrence of `key` (saturating at 15 per counter),
    /// halving every counter once the sample threshold is reached.
    pub fn record(&mut self, key: u64) {
        for row in 0..SKETCH_SEEDS.len() {
            let (word, shift) = self.slot(key, row);
            if let Some(w) = self.words.get_mut(word) {
                let nibble = (*w >> shift) & 0xF;
                if nibble < 15 {
                    *w += 1u64 << shift;
                }
            }
        }
        self.sample += 1;
        if self.sample >= self.sample_cap {
            self.halve();
        }
    }

    /// Estimated frequency of `key`: the minimum over the four rows.
    pub fn estimate(&self, key: u64) -> u64 {
        let mut min = u64::MAX;
        for row in 0..SKETCH_SEEDS.len() {
            let (word, shift) = self.slot(key, row);
            let nibble = self.words.get(word).map_or(0, |w| (*w >> shift) & 0xF);
            min = min.min(nibble);
        }
        min
    }

    /// Halves every counter in place (aging), halving the sample count
    /// with them so the window keeps its proportions.
    fn halve(&mut self) {
        for w in &mut self.words {
            *w = (*w >> 1) & 0x7777_7777_7777_7777;
        }
        self.sample /= 2;
    }
}

/// Cache eviction policy (applies only when a capacity is configured).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least recently used item.
    #[default]
    Lru,
    /// Evict the least commonly used item (ties: older first).
    Lcu,
    /// LRU victim order plus a TinyLFU admission gate: a new result is
    /// only admitted (displacing the LRU victim) when its frequency in
    /// the 4-bit count-min sketch exceeds the victim's.
    TinyLfu,
    /// Evict the item whose measured benefit (points read + simulated
    /// fetch time saved, per cached point) is smallest — cheap-to-
    /// recompute results yield first.
    CostAware,
}

/// Result of a [`Cache::lookup`]: the overlapping items plus the work
/// done finding them, so the caller can account for lookup cost (the
/// `cache.overlap_scans` metric) instead of guessing.
#[derive(Debug)]
pub struct LookupOutcome<'a> {
    /// Items whose index box intersects the query region, cover-ordered
    /// (descending overlap with the query; ties by ascending id).
    pub items: Vec<&'a CacheItem>,
    /// Cached items individually tested for overlap (0 when the lookup
    /// short-circuited).
    pub scans: u64,
    /// Whether the cache-wide bounding box proved the lookup empty
    /// without consulting the R\*-tree at all.
    pub short_circuited: bool,
}

/// Work accounting for a scratch-based [`Cache::lookup_into`] — the
/// candidate ids themselves land in the caller's scratch vector.
#[derive(Clone, Copy, Debug)]
pub struct LookupStats {
    /// Cached items individually tested for overlap.
    pub scans: u64,
    /// Whether the cache-wide bounding box proved the lookup empty.
    pub short_circuited: bool,
}

/// The cache: items plus an R\*-tree over their index boxes.
///
/// `Clone` is deliberate: the multi-tenant [`crate::SharedCache`]
/// publishes immutable epoch snapshots by cloning the write-side master
/// — every owned field here is a value type, so a clone is a fully
/// independent, internally consistent cache state.
#[derive(Clone, Debug)]
pub struct Cache {
    items: BTreeMap<u64, CacheItem>,
    index: RStarTree<u64>,
    /// Second R\*-tree, over the items' *constraint* regions (closed
    /// covers of possibly-open boxes). Dynamic-data maintenance probes it
    /// with the inserted point instead of scanning every item; candidates
    /// are re-filtered with the exact [`Constraints::satisfies`] test, so
    /// open boundaries stay correct.
    constraint_index: RStarTree<u64>,
    /// Ordered victim index: one `(rank, inserted_at, id)` key per item,
    /// maintained incrementally on insert/touch/remove so eviction pops
    /// the smallest key in `O(log n)` instead of scanning every item.
    victims: BTreeSet<(u64, u64, u64)>,
    /// TinyLFU admission sketch (present only under that policy).
    sketch: Option<FrequencySketch>,
    clock: u64,
    next_id: u64,
    capacity: Option<usize>,
    policy: ReplacementPolicy,
    dims: usize,
    /// Union of every item's index box, maintained incrementally on
    /// insert and refreshed exactly on removal/reindex — lets lookups
    /// for regions outside everything cached skip the R\*-tree walk.
    bound: Option<Aabb>,
    /// Items evicted by the replacement policy since construction.
    evictions: u64,
    /// Candidate results turned away by the TinyLFU admission gate.
    admission_rejects: u64,
    /// Items individually examined by dynamic-data maintenance
    /// ([`Cache::on_insert`]) — the `cache.maintenance_scans` metric.
    maintenance_scans: u64,
}

impl Cache {
    /// Creates an unbounded cache for `dims`-dimensional data.
    pub fn new(dims: usize) -> Self {
        Self::with_capacity(dims, None, ReplacementPolicy::default())
    }

    /// Creates a cache with an optional capacity and eviction policy.
    ///
    /// # Panics
    /// Panics if `dims == 0` or `capacity == Some(0)`.
    pub fn with_capacity(dims: usize, capacity: Option<usize>, policy: ReplacementPolicy) -> Self {
        assert!(dims > 0, "zero-dimensional cache");
        assert!(capacity != Some(0), "capacity must be at least 1");
        let sketch = (policy == ReplacementPolicy::TinyLfu)
            .then(|| FrequencySketch::for_capacity(capacity.unwrap_or(64)));
        Cache {
            items: BTreeMap::new(),
            index: RStarTree::new(dims),
            constraint_index: RStarTree::new(dims),
            victims: BTreeSet::new(),
            sketch,
            clock: 0,
            next_id: 0,
            capacity,
            policy,
            dims,
            bound: None,
            evictions: 0,
            admission_rejects: 0,
            maintenance_scans: 0,
        }
    }

    /// Number of cached items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the cache holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Dimensionality of cached queries.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// The box an item is indexed under: the skyline MBR, or the
    /// constraint region for empty skylines.
    fn index_box(constraints: &Constraints, mbr: &Option<Aabb>) -> Aabb {
        mbr.clone().unwrap_or_else(|| constraints.aabb().clone())
    }

    /// Inserts a result with no recorded cost, evicting if over
    /// capacity. Returns the item id, or `None` when the TinyLFU
    /// admission gate turns the candidate away.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn insert(&mut self, constraints: Constraints, skyline: &[Point]) -> Option<u64> {
        self.insert_with_cost(constraints, skyline, ItemCost::default())
    }

    /// [`Cache::insert`] with the measured build cost attached — the
    /// signal [`ReplacementPolicy::CostAware`] ranks items by.
    ///
    /// Under [`ReplacementPolicy::TinyLfu`] at capacity, the candidate
    /// is admitted only if its sketch frequency exceeds the current
    /// victim's; a rejected candidate still records one sketch
    /// occurrence, so repeated attempts build up admission pressure.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn insert_with_cost(
        &mut self,
        constraints: Constraints,
        skyline: &[Point],
        cost: ItemCost,
    ) -> Option<u64> {
        assert_eq!(constraints.dims(), self.dims, "constraints dimensionality mismatch");
        let key_hash = constraint_key(&constraints);
        if let Some(sketch) = &mut self.sketch {
            sketch.record(key_hash);
        }
        if let (Some(cap), Some(sketch)) = (self.capacity, &self.sketch) {
            if self.items.len() >= cap {
                let victim_freq = self
                    .victims
                    .iter()
                    .next()
                    .and_then(|&(_, _, id)| self.items.get(&id))
                    .map(|victim| sketch.estimate(victim.key_hash));
                if let Some(victim_freq) = victim_freq {
                    if sketch.estimate(key_hash) <= victim_freq {
                        self.admission_rejects += 1;
                        return None;
                    }
                }
            }
        }
        self.clock += 1;
        let id = self.next_id;
        self.next_id += 1;
        let mbr = Aabb::bounding(skyline);
        let mut block = PointBlock::with_capacity(self.dims, skyline.len())
            // skylint: allow(no-panic-paths) — dims > 0 asserted at construction.
            .expect("cache dimensionality is nonzero");
        for point in skyline {
            block.push(point);
        }
        let key = Self::index_box(&constraints, &mbr);
        match &mut self.bound {
            Some(b) => b.merge(&key),
            None => self.bound = Some(key.clone()),
        }
        self.index.insert(key, id);
        self.constraint_index.insert(constraints.aabb().clone(), id);
        let item = CacheItem {
            id,
            constraints,
            skyline: block,
            mbr,
            inserted_at: self.clock,
            last_used: self.clock,
            use_count: 0,
            cost,
            key_hash,
        };
        self.victims.insert(victim_key(self.policy, &item));
        self.items.insert(id, item);
        if let Some(cap) = self.capacity {
            while self.items.len() > cap {
                self.evict_one(id);
            }
        }
        self.debug_assert_clock_monotone();
        Some(id)
    }

    /// Invariant (debug builds): the logical clock dominates every
    /// timestamp recorded in the cache. Eviction compares `last_used` /
    /// `inserted_at` values; if a stale clock ever re-issued an old
    /// timestamp, LRU ordering would silently rank a fresh use below an
    /// ancient one (the exact bug class fixed in `touch` — see the
    /// `touch_on_unknown_id_does_not_advance_the_clock` regression test).
    fn debug_assert_clock_monotone(&self) {
        debug_assert!(
            self.items
                .values()
                .all(|it| it.last_used <= self.clock && it.inserted_at <= self.clock),
            "logical clock fell behind a recorded timestamp"
        );
        debug_assert_eq!(self.victims.len(), self.items.len(), "victim index out of sync");
    }

    /// Evicts the policy victim — the smallest key in the ordered victim
    /// index — skipping the just-inserted `protect` item. `O(log n)` via
    /// the incrementally maintained index; no per-item scan.
    fn evict_one(&mut self, protect: u64) {
        let victim = self.victims.iter().find(|&&(_, _, id)| id != protect).map(|&(_, _, id)| id);
        if let Some(id) = victim {
            if self.remove(id).is_some() {
                self.evictions += 1;
            }
        }
    }

    /// Removes an item by id, returning it.
    pub fn remove(&mut self, id: u64) -> Option<CacheItem> {
        let item = self.items.remove(&id)?;
        let dropped = self.victims.remove(&victim_key(self.policy, &item));
        debug_assert!(dropped, "victim index out of sync with items");
        let key = Self::index_box(&item.constraints, &item.mbr);
        let removed = self.index.remove(&key, |&v| v == id);
        debug_assert!(removed.is_some(), "index out of sync with items");
        let removed = self.constraint_index.remove(item.constraints.aabb(), |&v| v == id);
        debug_assert!(removed.is_some(), "constraint index out of sync with items");
        self.bound = self.index.mbr();
        Some(item)
    }

    /// Returns an item by id.
    pub fn get(&self, id: u64) -> Option<&CacheItem> {
        self.items.get(&id)
    }

    /// All items whose index box intersects the query region `R_C′`
    /// (the paper's `R_C′ ∩ MBR ≠ ∅` lookup), cover-ordered.
    pub fn overlapping(&self, new: &Constraints) -> Vec<&CacheItem> {
        self.lookup(new).items
    }

    /// [`Cache::overlapping`] with work accounting. Allocates the result
    /// vector; steady-state callers should prefer [`Cache::lookup_into`]
    /// with a reused scratch vector.
    pub fn lookup(&self, new: &Constraints) -> LookupOutcome<'_> {
        let mut ids = Vec::new();
        let stats = self.lookup_into(new, &mut ids);
        let items: Vec<&CacheItem> = ids.iter().filter_map(|id| self.items.get(id)).collect();
        debug_assert_eq!(items.len(), ids.len(), "index out of sync with items");
        LookupOutcome { items, scans: stats.scans, short_circuited: stats.short_circuited }
    }

    /// Cover rank of an item against the query box: exact constraint
    /// matches first (they answer with zero fetch, so they must win the
    /// downstream strategy's first-of-ties argmax), then descending
    /// overlap area between the item's index box and the query box.
    /// Missing ids rank last.
    fn cover_rank(&self, id: u64, query: &Aabb) -> (bool, f64) {
        self.items.get(&id).map_or((false, 0.0), |item| {
            let index_box = item.mbr.as_ref().unwrap_or_else(|| item.constraints.aabb());
            (item.constraints.aabb() == query, index_box.overlap_area(query))
        })
    }

    /// Scratch-based lookup: fills `ids` with every overlapping item's
    /// id, *cover-ordered* — exact constraint matches first, then
    /// descending overlap area between the item's index box and the
    /// query region, ties by ascending id — and
    /// returns the work accounting. The overlap search first tests the
    /// query region against the cache-wide bounding box, so a query
    /// disjoint from everything cached is answered in `O(d)` with zero
    /// per-item scans and no R\*-tree walk.
    ///
    /// Allocation-free in steady state: the R\*-tree walk is a recursive
    /// visitor and the sort is in-place, so a warm `ids` vector is the
    /// only storage used.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn lookup_into(&self, new: &Constraints, ids: &mut Vec<u64>) -> LookupStats {
        assert_eq!(new.dims(), self.dims, "constraints dimensionality mismatch");
        ids.clear();
        let disjoint = match &self.bound {
            None => true,
            Some(b) => !b.intersects(new.aabb()),
        };
        if disjoint {
            return LookupStats { scans: 0, short_circuited: true };
        }
        let query = new.aabb();
        self.index.for_each_in(query, |_, &id| {
            // skylint: allow(hot-path-alloc) — appends into the caller's reused scratch vector; steady state reuses its capacity.
            ids.push(id);
        });
        let scans = ids.len() as u64;
        // Unstable sort: allocation-free, and the ascending-id tiebreak
        // makes the order total, hence deterministic.
        ids.sort_unstable_by(|&a, &b| {
            let (exact_a, area_a) = self.cover_rank(a, query);
            let (exact_b, area_b) = self.cover_rank(b, query);
            exact_b.cmp(&exact_a).then(area_b.total_cmp(&area_a)).then_with(|| a.cmp(&b))
        });
        LookupStats { scans, short_circuited: false }
    }

    /// Union of every cached item's index box (`None` when empty).
    pub fn bound(&self) -> Option<&Aabb> {
        self.bound.as_ref()
    }

    /// Items evicted by the replacement policy since construction
    /// (explicit [`Cache::remove`] calls are not evictions).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Records one demand for `constraints` in the admission sketch
    /// without touching the item store (no-op under the other policies).
    ///
    /// The engine calls this on *exact* hits instead of re-inserting:
    /// the result is already cached under these very constraints, so an
    /// insert would duplicate the item and evict an innocent victim —
    /// but the key's popularity must stay visible to TinyLFU admission,
    /// or resident hot keys would freeze at their admission-time
    /// frequency and eventually be out-climbed by tail keys.
    pub fn note_demand(&mut self, constraints: &Constraints) {
        if let Some(sketch) = &mut self.sketch {
            sketch.record(constraint_key(constraints));
        }
    }

    /// Candidates turned away by the TinyLFU admission gate since
    /// construction — the `cache.admission_rejects` metric.
    pub fn admission_rejects(&self) -> u64 {
        self.admission_rejects
    }

    /// Items individually examined by dynamic-data maintenance since
    /// construction — the `cache.maintenance_scans` metric. With the
    /// constraint R\*-tree this grows with the number of items whose
    /// regions actually contain the inserted points, not with cache size.
    pub fn maintenance_scans(&self) -> u64 {
        self.maintenance_scans
    }

    /// Records a use of the item (updates LRU/LCU counters). A miss on
    /// an unknown id leaves the logical clock untouched, so recency
    /// ordering only advances on real cache events.
    ///
    /// Deliberately does *not* record into the admission sketch: a touch
    /// means the item happened to overlap some query, not that its own
    /// key was demanded again. The sketch tracks demand at *miss* time
    /// (every [`Cache::insert_with_cost`] attempt, admitted or not), so
    /// a repeatedly-demanded key climbs past a resident victim — whose
    /// estimate froze at admission — within a few attempts, while
    /// one-off keys never do. Recording touches would let long-resident
    /// items inflate their estimates through incidental overlap hits and
    /// freeze the cache once the popular set drifts.
    pub fn touch(&mut self, id: u64) {
        let policy = self.policy;
        if let Some(item) = self.items.get_mut(&id) {
            let old_key = victim_key(policy, item);
            self.clock += 1;
            item.last_used = self.clock;
            item.use_count += 1;
            let dropped = self.victims.remove(&old_key);
            debug_assert!(dropped, "victim index out of sync with items");
            self.victims.insert(victim_key(policy, item));
        }
        self.debug_assert_clock_monotone();
    }

    /// Iterates over all items.
    pub fn iter(&self) -> impl Iterator<Item = &CacheItem> {
        self.items.values()
    }

    /// Re-derives an item's MBR and index entry after its skyline changed.
    fn reindex(&mut self, id: u64) {
        let Some(item) = self.items.get_mut(&id) else { return };
        let old_key = Self::index_box(&item.constraints, &item.mbr);
        let new_mbr = Aabb::bounding_rows(item.skyline.rows());
        if new_mbr == item.mbr {
            return;
        }
        item.mbr = new_mbr;
        let new_key = Self::index_box(&item.constraints, &item.mbr);
        let removed = self.index.remove(&old_key, |&v| v == id);
        debug_assert!(removed.is_some(), "index out of sync with items");
        self.index.insert(new_key, id);
        self.bound = self.index.mbr();
    }

    /// Dynamic-data maintenance (paper Section 6.2, "each cache item as a
    /// separate dataset with a continuous skyline query"): integrates a
    /// newly inserted data point into every cached result whose
    /// constraints it satisfies. Returns the number of items updated.
    pub fn on_insert(&mut self, p: &Point) -> usize {
        assert_eq!(p.dims(), self.dims, "point dimensionality mismatch");
        // Probe the constraint R*-tree with the point instead of scanning
        // every item: only items whose constraint region (closed cover)
        // contains p are examined. The exact `satisfies` re-filter keeps
        // open-boundary semantics; ids are sorted so updates run in the
        // same ascending-id order as the old full scan.
        let mut affected: Vec<u64> =
            self.constraint_index.search(&Aabb::from_point(p)).into_iter().copied().collect();
        self.maintenance_scans += affected.len() as u64;
        affected.sort_unstable();
        affected.retain(|id| self.items.get(id).is_some_and(|item| item.constraints.satisfies(p)));
        let policy = self.policy;
        let mut updated = 0;
        for id in affected {
            let Some(item) = self.items.get_mut(&id) else { continue };
            if item.skyline.rows().any(|s| dominates_raw(s, p.coords())) {
                continue; // dominated: the cached skyline is unchanged
            }
            // p enters the skyline; points it dominates leave. The
            // skyline length feeds the cost-aware victim rank, so the
            // victim-index entry moves with it.
            let old_key = victim_key(policy, item);
            item.skyline.retain_rows(|s| !dominates_raw(p.coords(), s));
            item.skyline.push(p);
            let new_key = victim_key(policy, item);
            if new_key != old_key {
                let dropped = self.victims.remove(&old_key);
                debug_assert!(dropped, "victim index out of sync with items");
                self.victims.insert(new_key);
            }
            self.reindex(id);
            updated += 1;
        }
        updated
    }

    /// Dynamic-data maintenance on deletion: cached results whose skyline
    /// contains the deleted point can no longer be trusted (points it
    /// dominated may resurface) and are dropped — the conservative
    /// strategy; exclusive-dominance-region recomputation à la DeltaSky
    /// (paper ref. [21]) is a possible refinement. Returns the number of
    /// items dropped.
    pub fn on_delete(&mut self, p: &Point) -> usize {
        assert_eq!(p.dims(), self.dims, "point dimensionality mismatch");
        let affected: Vec<u64> = self
            .items
            .values()
            .filter(|item| item.skyline.rows().any(|s| s == p.coords()))
            .map(|item| item.id)
            .collect();
        let dropped = affected.len();
        for id in affected {
            self.remove(id);
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(pairs: &[(f64, f64)]) -> Constraints {
        Constraints::from_pairs(pairs).unwrap()
    }

    fn p(coords: &[f64]) -> Point {
        Point::from(coords.to_vec())
    }

    #[test]
    fn insert_and_lookup_by_mbr() {
        let mut cache = Cache::new(2);
        let id =
            cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.2, 0.8]), p(&[0.6, 0.3])]).unwrap();
        assert_eq!(cache.len(), 1);
        // Query overlapping the skyline MBR [0.2,0.6]x[0.3,0.8].
        let hits = cache.overlapping(&c(&[(0.5, 0.9), (0.1, 0.4)]));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, id);
        // Query overlapping the constraint region but not the MBR.
        let misses = cache.overlapping(&c(&[(0.9, 1.0), (0.9, 1.0)]));
        assert!(misses.is_empty());
    }

    #[test]
    fn empty_skyline_indexed_by_constraints() {
        let mut cache = Cache::new(2);
        let id = cache.insert(c(&[(0.4, 0.6), (0.4, 0.6)]), &[]).unwrap();
        let hits = cache.overlapping(&c(&[(0.5, 0.9), (0.5, 0.9)]));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, id);
        assert!(hits[0].mbr.is_none());
    }

    #[test]
    fn lru_eviction() {
        let mut cache = Cache::with_capacity(1, Some(2), ReplacementPolicy::Lru);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]).unwrap();
        let b = cache.insert(c(&[(1.0, 2.0)]), &[p(&[1.5])]).unwrap();
        cache.touch(a); // a is now more recent than b
        let _c = cache.insert(c(&[(2.0, 3.0)]), &[p(&[2.5])]).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get(a).is_some(), "recently used item kept");
        assert!(cache.get(b).is_none(), "LRU item evicted");
    }

    #[test]
    fn lcu_eviction() {
        let mut cache = Cache::with_capacity(1, Some(2), ReplacementPolicy::Lcu);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]).unwrap();
        let b = cache.insert(c(&[(1.0, 2.0)]), &[p(&[1.5])]).unwrap();
        cache.touch(b);
        cache.touch(b);
        cache.touch(a);
        let _c = cache.insert(c(&[(2.0, 3.0)]), &[p(&[2.5])]).unwrap();
        assert!(cache.get(b).is_some(), "commonly used item kept");
        assert!(cache.get(a).is_none(), "LCU item evicted");
    }

    #[test]
    fn newest_item_is_protected_from_eviction() {
        let mut cache = Cache::with_capacity(1, Some(1), ReplacementPolicy::Lru);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]).unwrap();
        let b = cache.insert(c(&[(1.0, 2.0)]), &[p(&[1.5])]).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get(a).is_none());
        assert!(cache.get(b).is_some());
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut cache = Cache::new(2);
        let a = cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.5, 0.5])]).unwrap();
        let b = cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.5, 0.5])]).unwrap();
        assert_eq!(cache.len(), 2);
        let removed = cache.remove(a).unwrap();
        assert_eq!(removed.id, a);
        let hits = cache.overlapping(&c(&[(0.0, 1.0), (0.0, 1.0)]));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, b);
        assert!(cache.remove(a).is_none());
    }

    #[test]
    fn many_unbounded_empty_results_are_cacheable() {
        // Regression: partially-constrained queries (Fig. 7 setup) cache
        // empty skylines indexed by their (±inf) constraint regions; the
        // R*-tree must survive splits/reinserts over such boxes.
        let mut cache = Cache::new(3);
        for i in 0..200 {
            let v = i as f64;
            let cc = Constraints::new(
                vec![v, f64::NEG_INFINITY, f64::NEG_INFINITY],
                vec![v + 0.5, f64::INFINITY, f64::INFINITY],
            )
            .unwrap();
            cache.insert(cc, &[]);
        }
        assert_eq!(cache.len(), 200);
        let probe = Constraints::new(
            vec![10.2, f64::NEG_INFINITY, f64::NEG_INFINITY],
            vec![10.3, f64::INFINITY, f64::INFINITY],
        )
        .unwrap();
        let hits = cache.overlapping(&probe);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn on_insert_updates_affected_items() {
        let mut cache = Cache::new(2);
        let a = cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.5, 0.5])]).unwrap();
        let b = cache.insert(c(&[(2.0, 3.0), (2.0, 3.0)]), &[p(&[2.5, 2.5])]).unwrap();

        // New point inside item a's constraints, dominating its skyline.
        let updated = cache.on_insert(&p(&[0.2, 0.2]));
        assert_eq!(updated, 1);
        assert_eq!(cache.get(a).unwrap().skyline.to_points(), vec![p(&[0.2, 0.2])]);
        assert_eq!(cache.get(b).unwrap().skyline.to_points(), vec![p(&[2.5, 2.5])]);
        // The MBR index moved with the skyline.
        let hits = cache.overlapping(&c(&[(0.1, 0.3), (0.1, 0.3)]));
        assert!(hits.iter().any(|it| it.id == a));

        // A dominated insertion changes nothing.
        assert_eq!(cache.on_insert(&p(&[0.9, 0.9])), 0);
        assert_eq!(cache.get(a).unwrap().skyline.len(), 1);

        // An incomparable insertion joins the skyline.
        assert_eq!(cache.on_insert(&p(&[0.1, 0.9])), 1);
        assert_eq!(cache.get(a).unwrap().skyline.len(), 2);
    }

    #[test]
    fn maintenance_scans_count_only_candidate_items() {
        let mut cache = Cache::new(2);
        // Ten items far from the insertion point, one containing it.
        for i in 0..10 {
            let lo = 10.0 + f64::from(i);
            cache.insert(c(&[(lo, lo + 0.5), (lo, lo + 0.5)]), &[p(&[lo, lo])]);
        }
        let near = cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.8, 0.8])]).unwrap();
        assert_eq!(cache.maintenance_scans(), 0);

        let updated = cache.on_insert(&p(&[0.5, 0.5]));
        assert_eq!(updated, 1);
        assert_eq!(cache.get(near).unwrap().skyline.to_points(), vec![p(&[0.5, 0.5])]);
        // The constraint index pruned the ten distant items: only the
        // containing item was individually examined.
        assert_eq!(cache.maintenance_scans(), 1);

        // Removal keeps the constraint index in sync.
        cache.remove(near).unwrap();
        assert_eq!(cache.on_insert(&p(&[0.5, 0.5])), 0);
        assert_eq!(cache.maintenance_scans(), 1);
    }

    #[test]
    fn on_delete_drops_items_holding_the_point() {
        let mut cache = Cache::new(2);
        let a = cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.5, 0.5])]).unwrap();
        let b =
            cache.insert(c(&[(0.0, 2.0), (0.0, 2.0)]), &[p(&[0.5, 0.5]), p(&[1.5, 0.2])]).unwrap();
        let keep = cache.insert(c(&[(2.0, 3.0), (2.0, 3.0)]), &[p(&[2.5, 2.5])]).unwrap();

        let dropped = cache.on_delete(&p(&[0.5, 0.5]));
        assert_eq!(dropped, 2);
        assert!(cache.get(a).is_none());
        assert!(cache.get(b).is_none());
        assert!(cache.get(keep).is_some());
        // Deleting a non-skyline point is free.
        assert_eq!(cache.on_delete(&p(&[9.0, 9.0])), 0);
    }

    #[test]
    fn lookup_short_circuits_disjoint_queries() {
        let mut cache = Cache::new(2);
        // Empty cache: trivially short-circuited.
        let out = cache.lookup(&c(&[(0.0, 1.0), (0.0, 1.0)]));
        assert!(out.short_circuited);
        assert_eq!(out.scans, 0);
        assert!(out.items.is_empty());

        cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.2, 0.8]), p(&[0.6, 0.3])]);
        cache.insert(c(&[(2.0, 3.0), (2.0, 3.0)]), &[p(&[2.5, 2.5])]);

        // Disjoint from the union of index boxes: answered from the
        // cache-wide bound, zero per-item scans.
        let miss = cache.lookup(&c(&[(8.0, 9.0), (8.0, 9.0)]));
        assert!(miss.short_circuited);
        assert_eq!(miss.scans, 0);
        assert!(miss.items.is_empty());

        // Overlapping: the R*-tree walk scans candidates.
        let hit = cache.lookup(&c(&[(0.5, 0.9), (0.1, 0.4)]));
        assert!(!hit.short_circuited);
        assert_eq!(hit.items.len(), 1);
        assert!(hit.scans >= 1);
        // overlapping() stays the thin façade over lookup().
        assert_eq!(cache.overlapping(&c(&[(0.5, 0.9), (0.1, 0.4)])).len(), 1);
    }

    #[test]
    fn bound_tracks_inserts_and_removals() {
        let mut cache = Cache::new(1);
        assert!(cache.bound().is_none());
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]).unwrap();
        let b = cache.insert(c(&[(5.0, 6.0)]), &[p(&[5.5])]).unwrap();
        let both = cache.bound().unwrap().clone();
        assert!(both.contains_point(&p(&[0.5])));
        assert!(both.contains_point(&p(&[5.5])));

        // Removal refreshes the bound exactly (no stale union).
        cache.remove(b).unwrap();
        let shrunk = cache.bound().unwrap().clone();
        assert!(shrunk.contains_point(&p(&[0.5])));
        assert!(!shrunk.contains_point(&p(&[5.5])));
        assert!(cache.lookup(&c(&[(5.0, 6.0)])).short_circuited);

        cache.remove(a).unwrap();
        assert!(cache.bound().is_none());
    }

    #[test]
    fn evictions_counter_counts_only_policy_evictions() {
        let mut cache = Cache::with_capacity(1, Some(2), ReplacementPolicy::Lru);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]).unwrap();
        cache.insert(c(&[(1.0, 2.0)]), &[p(&[1.5])]);
        assert_eq!(cache.evictions(), 0);
        cache.insert(c(&[(2.0, 3.0)]), &[p(&[2.5])]);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(a).is_none());
        // Explicit removal is not an eviction.
        let survivor = cache.iter().next().unwrap().id;
        cache.remove(survivor).unwrap();
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn touch_updates_counters() {
        let mut cache = Cache::new(1);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]).unwrap();
        let before = cache.get(a).unwrap().last_used;
        cache.touch(a);
        let item = cache.get(a).unwrap();
        assert_eq!(item.use_count, 1);
        assert!(item.last_used > before);
    }

    #[test]
    fn logical_clock_is_strictly_monotone_over_cache_events() {
        // Invariant backing `debug_assert_clock_monotone`: every insert
        // and every successful touch produces a timestamp strictly greater
        // than all timestamps recorded before it, so LRU recency is a
        // total, stable order.
        let mut cache = Cache::new(1);
        let mut seen_max = 0u64;
        let mut ids = Vec::new();
        for i in 0..5 {
            let id = cache.insert(c(&[(f64::from(i), f64::from(i) + 1.0)]), &[]).unwrap();
            let stamp = cache.get(id).unwrap().inserted_at;
            assert!(stamp > seen_max, "insert stamp {stamp} not past {seen_max}");
            seen_max = stamp;
            ids.push(id);
        }
        for &id in ids.iter().rev() {
            cache.touch(id);
            let stamp = cache.get(id).unwrap().last_used;
            assert!(stamp > seen_max, "touch stamp {stamp} not past {seen_max}");
            seen_max = stamp;
        }
        // Failed touches leave the order untouched.
        cache.touch(9999);
        assert!(cache.iter().all(|it| it.last_used <= seen_max));
    }

    #[test]
    fn touch_on_unknown_id_does_not_advance_the_clock() {
        // Regression: touch() used to bump the clock before checking
        // presence, so misses inflated later items' recency timestamps.
        let mut cache = Cache::new(1);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]).unwrap();
        cache.touch(a + 1000); // no such item
        let b = cache.insert(c(&[(1.0, 2.0)]), &[p(&[1.5])]).unwrap();
        assert_eq!(cache.get(a).unwrap().inserted_at, 1);
        assert_eq!(cache.get(b).unwrap().inserted_at, 2);
        assert_eq!(cache.get(a).unwrap().use_count, 0);
    }

    /// The victim the retired `evict_one` full scan would have chosen —
    /// the reference implementation for the differential test below.
    fn scan_victim(cache: &Cache, policy: ReplacementPolicy) -> Option<u64> {
        cache
            .iter()
            .min_by_key(|it| match policy {
                ReplacementPolicy::Lru | ReplacementPolicy::TinyLfu => {
                    (it.last_used, it.inserted_at, it.id)
                }
                ReplacementPolicy::Lcu => (it.use_count, it.inserted_at, it.id),
                ReplacementPolicy::CostAware => (cost_score(it).to_bits(), it.inserted_at, it.id),
            })
            .map(|it| it.id)
    }

    #[test]
    fn victim_index_matches_reference_scan() {
        // Differential pin: the incremental ordered victim index evicts
        // exactly the item the old O(n) min_by_key scan selected, over a
        // deterministic pseudo-random insert/touch schedule. (The newly
        // inserted item is protected in both implementations, so the
        // pre-insert scan predicts the victim.)
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Lcu] {
            let mut cache = Cache::with_capacity(1, Some(4), policy);
            let mut state = 0x2545_F491_4F6C_DD1Du64; // LCG seed
            let mut live: Vec<u64> = Vec::new();
            for i in 0..200 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                // Interleave touches of pseudo-random live items.
                if !live.is_empty() && !state.is_multiple_of(3) {
                    let pick = live[(state >> 33) as usize % live.len()];
                    cache.touch(pick);
                }
                let predicted = (cache.len() == 4).then(|| scan_victim(&cache, policy).unwrap());
                let lo = f64::from(i);
                let id = cache.insert(c(&[(lo, lo + 0.5)]), &[p(&[lo + 0.25])]).unwrap();
                live.push(id);
                if let Some(victim) = predicted {
                    assert!(
                        cache.get(victim).is_none(),
                        "{policy:?}: index evicted a different item than the reference scan"
                    );
                    live.retain(|&v| v != victim);
                }
                assert_eq!(cache.len(), live.len().min(4));
            }
        }
    }

    #[test]
    fn cost_aware_evicts_cheapest_to_recompute() {
        let mut cache = Cache::with_capacity(1, Some(2), ReplacementPolicy::CostAware);
        let cheap = cache
            .insert_with_cost(
                c(&[(0.0, 1.0)]),
                &[p(&[0.5])],
                ItemCost { points_read: 2, fetch_ns: 100 },
            )
            .unwrap();
        let dear = cache
            .insert_with_cost(
                c(&[(1.0, 2.0)]),
                &[p(&[1.5])],
                ItemCost { points_read: 5_000, fetch_ns: 900_000 },
            )
            .unwrap();
        // Recency does not matter under the cost-aware policy: the cheap
        // item yields even though it was used more recently.
        cache.touch(cheap);
        cache
            .insert_with_cost(
                c(&[(2.0, 3.0)]),
                &[p(&[2.5])],
                ItemCost { points_read: 100, fetch_ns: 10_000 },
            )
            .unwrap();
        assert!(cache.get(cheap).is_none(), "cheap-to-recompute item evicted first");
        assert!(cache.get(dear).is_some(), "expensive item kept");
    }

    #[test]
    fn tinylfu_admission_rejects_cold_candidates() {
        let mut cache = Cache::with_capacity(1, Some(2), ReplacementPolicy::TinyLfu);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]).unwrap();
        let b = cache.insert(c(&[(1.0, 2.0)]), &[p(&[1.5])]).unwrap();
        // Touches advance recency but not the sketch: admission compares
        // demand-at-miss frequencies, and the residents were each
        // demanded once (their admitted insert).
        for _ in 0..4 {
            cache.touch(a);
            cache.touch(b);
        }
        // A cold candidate (sketch frequency 1, not *strictly* above the
        // victim's 1) is turned away and counted.
        assert_eq!(cache.insert(c(&[(2.0, 3.0)]), &[p(&[2.5])]), None);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.admission_rejects(), 1);
        assert!(cache.get(a).is_some() && cache.get(b).is_some());

        // Repeated attempts build admission pressure (each rejected
        // attempt still records a sketch occurrence): once the candidate
        // is hotter than the victim, it displaces it.
        let mut admitted = None;
        for _ in 0..8 {
            admitted = cache.insert(c(&[(2.0, 3.0)]), &[p(&[2.5])]);
            if admitted.is_some() {
                break;
            }
        }
        assert!(admitted.is_some(), "hot candidate eventually admitted");
        assert_eq!(cache.len(), 2);
        assert!(cache.admission_rejects() >= 1);
    }

    #[test]
    fn tinylfu_below_capacity_admits_everything() {
        let mut cache = Cache::with_capacity(1, Some(8), ReplacementPolicy::TinyLfu);
        for i in 0..8 {
            let lo = f64::from(i);
            assert!(cache.insert(c(&[(lo, lo + 0.5)]), &[p(&[lo + 0.25])]).is_some());
        }
        assert_eq!(cache.admission_rejects(), 0);
    }

    #[test]
    fn lookup_is_cover_ordered() {
        let mut cache = Cache::new(2);
        // Three items with strictly increasing overlap with the query
        // region, inserted in ascending-overlap order.
        let small = cache
            .insert(c(&[(0.0, 0.2), (0.0, 0.2)]), &[p(&[0.05, 0.05]), p(&[0.15, 0.15])])
            .unwrap();
        let medium = cache
            .insert(c(&[(0.0, 0.5), (0.0, 0.5)]), &[p(&[0.05, 0.45]), p(&[0.45, 0.05])])
            .unwrap();
        let large = cache
            .insert(c(&[(0.0, 0.9), (0.0, 0.9)]), &[p(&[0.05, 0.85]), p(&[0.85, 0.05])])
            .unwrap();
        let out = cache.lookup(&c(&[(0.0, 1.0), (0.0, 1.0)]));
        let order: Vec<u64> = out.items.iter().map(|it| it.id).collect();
        assert_eq!(order, vec![large, medium, small], "descending overlap area");

        // The scratch-based entry point agrees with the façade.
        let mut ids = Vec::new();
        let stats = cache.lookup_into(&c(&[(0.0, 1.0), (0.0, 1.0)]), &mut ids);
        assert_eq!(ids, order);
        assert_eq!(stats.scans, 3);
        assert!(!stats.short_circuited);
    }

    #[test]
    fn sketch_estimates_track_recorded_frequency() {
        let mut sketch = FrequencySketch::with_counters(1024);
        let hot = 0xDEAD_BEEF_u64;
        let cold = 0x0BAD_CAFE_u64;
        for _ in 0..5 {
            sketch.record(hot);
        }
        assert_eq!(sketch.estimate(hot), 5);
        assert_eq!(sketch.estimate(cold), 0);
        // Counters saturate at 15 (4-bit).
        for _ in 0..100 {
            sketch.record(hot);
        }
        assert_eq!(sketch.estimate(hot), 15);
    }

    #[test]
    fn sketch_halves_counters_at_the_sample_cap() {
        // 16 counters → sample cap 160: the 161st record halves every
        // counter, so old popularity decays instead of pinning forever.
        let mut sketch = FrequencySketch::with_counters(16);
        let hot = 0x1234_5678_u64;
        for _ in 0..12 {
            sketch.record(hot);
        }
        let before = sketch.estimate(hot);
        assert!(before >= 12, "pre-halving estimate at least the true count");
        let filler = 0x9999_0000_u64;
        for i in 0..160 {
            sketch.record(filler ^ i);
        }
        let after = sketch.estimate(hot);
        assert!(after < before, "halving decayed the hot key ({before} -> {after})");
    }
}
