//! The in-memory constrained-skyline cache (paper Section 6 / Def. 3).
//!
//! Each cache item is the 3-tuple `⟨Sky(S,C), MBR, C⟩`. Items are indexed
//! by an R\*-tree over the skylines' minimum bounding rectangles; a lookup
//! for new constraints `C′` returns every item with `R_C′ ∩ MBR ≠ ∅`.
//! (For an item whose skyline is *empty*, the MBR is undefined; we index
//! such items by their constraint region instead so the knowledge "this
//! region is empty" stays discoverable — a strict improvement documented
//! in DESIGN.md.)
//!
//! Replacement (Section 6.2): insertion and use counters on the items
//! support LRU (least recently used) and LCU (least commonly used)
//! eviction when a capacity is set.

// BTreeMap, not HashMap: eviction scans and dynamic-data maintenance
// iterate the items, and iteration order must not depend on a randomized
// hasher (determinism lint) — ties in evict_one and the order of cache
// reindexing feed back into query planning.
use std::collections::BTreeMap;

use skycache_geom::dominance::dominates_raw;
use skycache_geom::{Aabb, Constraints, Point, PointBlock};
use skycache_rtree::RStarTree;

/// A cached constrained-skyline result.
#[derive(Clone, Debug)]
pub struct CacheItem {
    /// Unique id within the cache.
    pub id: u64,
    /// The constraints `C` the skyline was computed under.
    pub constraints: Constraints,
    /// The cached result `Sky(S, C)` in columnar form: steady-state
    /// planning copies coordinate rows out of this block instead of
    /// cloning one heap-boxed `Point` per cached result point.
    pub skyline: PointBlock,
    /// Minimum bounding rectangle of the skyline (`None` when empty).
    pub mbr: Option<Aabb>,
    /// Logical insertion time.
    pub inserted_at: u64,
    /// Logical time of last use.
    pub last_used: u64,
    /// Number of times the item answered (part of) a query.
    pub use_count: u64,
}

/// Cache eviction policy (applies only when a capacity is configured).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least recently used item.
    #[default]
    Lru,
    /// Evict the least commonly used item (ties: older first).
    Lcu,
}

/// Result of a [`Cache::lookup`]: the overlapping items plus the work
/// done finding them, so the caller can account for lookup cost (the
/// `cache.overlap_scans` metric) instead of guessing.
#[derive(Debug)]
pub struct LookupOutcome<'a> {
    /// Items whose index box intersects the query region.
    pub items: Vec<&'a CacheItem>,
    /// Cached items individually tested for overlap (0 when the lookup
    /// short-circuited).
    pub scans: u64,
    /// Whether the cache-wide bounding box proved the lookup empty
    /// without consulting the R\*-tree at all.
    pub short_circuited: bool,
}

/// The cache: items plus an R\*-tree over their index boxes.
///
/// `Clone` is deliberate: the multi-tenant [`crate::SharedCache`]
/// publishes immutable epoch snapshots by cloning the write-side master
/// — every owned field here is a value type, so a clone is a fully
/// independent, internally consistent cache state.
#[derive(Clone, Debug)]
pub struct Cache {
    items: BTreeMap<u64, CacheItem>,
    index: RStarTree<u64>,
    /// Second R\*-tree, over the items' *constraint* regions (closed
    /// covers of possibly-open boxes). Dynamic-data maintenance probes it
    /// with the inserted point instead of scanning every item; candidates
    /// are re-filtered with the exact [`Constraints::satisfies`] test, so
    /// open boundaries stay correct.
    constraint_index: RStarTree<u64>,
    clock: u64,
    next_id: u64,
    capacity: Option<usize>,
    policy: ReplacementPolicy,
    dims: usize,
    /// Union of every item's index box, maintained incrementally on
    /// insert and refreshed exactly on removal/reindex — lets lookups
    /// for regions outside everything cached skip the R\*-tree walk.
    bound: Option<Aabb>,
    /// Items evicted by the replacement policy since construction.
    evictions: u64,
    /// Items individually examined by dynamic-data maintenance
    /// ([`Cache::on_insert`]) — the `cache.maintenance_scans` metric.
    maintenance_scans: u64,
}

impl Cache {
    /// Creates an unbounded cache for `dims`-dimensional data.
    pub fn new(dims: usize) -> Self {
        Self::with_capacity(dims, None, ReplacementPolicy::default())
    }

    /// Creates a cache with an optional capacity and eviction policy.
    ///
    /// # Panics
    /// Panics if `dims == 0` or `capacity == Some(0)`.
    pub fn with_capacity(dims: usize, capacity: Option<usize>, policy: ReplacementPolicy) -> Self {
        assert!(dims > 0, "zero-dimensional cache");
        assert!(capacity != Some(0), "capacity must be at least 1");
        Cache {
            items: BTreeMap::new(),
            index: RStarTree::new(dims),
            constraint_index: RStarTree::new(dims),
            clock: 0,
            next_id: 0,
            capacity,
            policy,
            dims,
            bound: None,
            evictions: 0,
            maintenance_scans: 0,
        }
    }

    /// Number of cached items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the cache holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Dimensionality of cached queries.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The box an item is indexed under: the skyline MBR, or the
    /// constraint region for empty skylines.
    fn index_box(constraints: &Constraints, mbr: &Option<Aabb>) -> Aabb {
        mbr.clone().unwrap_or_else(|| constraints.aabb().clone())
    }

    /// Inserts a result, evicting if over capacity. Returns the item id.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn insert(&mut self, constraints: Constraints, skyline: &[Point]) -> u64 {
        assert_eq!(constraints.dims(), self.dims, "constraints dimensionality mismatch");
        self.clock += 1;
        let id = self.next_id;
        self.next_id += 1;
        let mbr = Aabb::bounding(skyline);
        let mut block = PointBlock::with_capacity(self.dims, skyline.len())
            // skylint: allow(no-panic-paths) — dims > 0 asserted at construction.
            .expect("cache dimensionality is nonzero");
        for point in skyline {
            block.push(point);
        }
        let key = Self::index_box(&constraints, &mbr);
        match &mut self.bound {
            Some(b) => b.merge(&key),
            None => self.bound = Some(key.clone()),
        }
        self.index.insert(key, id);
        self.constraint_index.insert(constraints.aabb().clone(), id);
        self.items.insert(
            id,
            CacheItem {
                id,
                constraints,
                skyline: block,
                mbr,
                inserted_at: self.clock,
                last_used: self.clock,
                use_count: 0,
            },
        );
        if let Some(cap) = self.capacity {
            while self.items.len() > cap {
                self.evict_one(id);
            }
        }
        self.debug_assert_clock_monotone();
        id
    }

    /// Invariant (debug builds): the logical clock dominates every
    /// timestamp recorded in the cache. Eviction compares `last_used` /
    /// `inserted_at` values; if a stale clock ever re-issued an old
    /// timestamp, LRU ordering would silently rank a fresh use below an
    /// ancient one (the exact bug class fixed in `touch` — see the
    /// `touch_on_unknown_id_does_not_advance_the_clock` regression test).
    fn debug_assert_clock_monotone(&self) {
        debug_assert!(
            self.items
                .values()
                .all(|it| it.last_used <= self.clock && it.inserted_at <= self.clock),
            "logical clock fell behind a recorded timestamp"
        );
    }

    fn evict_one(&mut self, protect: u64) {
        let victim = self
            .items
            .values()
            .filter(|it| it.id != protect)
            .min_by_key(|it| match self.policy {
                ReplacementPolicy::Lru => (it.last_used, it.inserted_at, it.id),
                ReplacementPolicy::Lcu => (it.use_count, it.inserted_at, it.id),
            })
            .map(|it| it.id);
        if let Some(id) = victim {
            if self.remove(id).is_some() {
                self.evictions += 1;
            }
        }
    }

    /// Removes an item by id, returning it.
    pub fn remove(&mut self, id: u64) -> Option<CacheItem> {
        let item = self.items.remove(&id)?;
        let key = Self::index_box(&item.constraints, &item.mbr);
        let removed = self.index.remove(&key, |&v| v == id);
        debug_assert!(removed.is_some(), "index out of sync with items");
        let removed = self.constraint_index.remove(item.constraints.aabb(), |&v| v == id);
        debug_assert!(removed.is_some(), "constraint index out of sync with items");
        self.bound = self.index.mbr();
        Some(item)
    }

    /// Returns an item by id.
    pub fn get(&self, id: u64) -> Option<&CacheItem> {
        self.items.get(&id)
    }

    /// All items whose index box intersects the query region `R_C′`
    /// (the paper's `R_C′ ∩ MBR ≠ ∅` lookup), in unspecified order.
    pub fn overlapping(&self, new: &Constraints) -> Vec<&CacheItem> {
        self.lookup(new).items
    }

    /// [`Cache::overlapping`] with work accounting: the overlap search
    /// first tests the query region against the cache-wide bounding box
    /// — a query disjoint from everything cached is answered in `O(d)`
    /// with zero per-item scans, skipping the R\*-tree walk entirely.
    pub fn lookup(&self, new: &Constraints) -> LookupOutcome<'_> {
        assert_eq!(new.dims(), self.dims, "constraints dimensionality mismatch");
        let disjoint = match &self.bound {
            None => true,
            Some(b) => !b.intersects(new.aabb()),
        };
        if disjoint {
            return LookupOutcome { items: Vec::new(), scans: 0, short_circuited: true };
        }
        let ids = self.index.search(new.aabb());
        let scans = ids.len() as u64;
        let hits: Vec<&CacheItem> = ids.iter().filter_map(|id| self.items.get(id)).collect();
        debug_assert_eq!(hits.len(), ids.len(), "index out of sync with items");
        LookupOutcome { items: hits, scans, short_circuited: false }
    }

    /// Union of every cached item's index box (`None` when empty).
    pub fn bound(&self) -> Option<&Aabb> {
        self.bound.as_ref()
    }

    /// Items evicted by the replacement policy since construction
    /// (explicit [`Cache::remove`] calls are not evictions).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Items individually examined by dynamic-data maintenance since
    /// construction — the `cache.maintenance_scans` metric. With the
    /// constraint R\*-tree this grows with the number of items whose
    /// regions actually contain the inserted points, not with cache size.
    pub fn maintenance_scans(&self) -> u64 {
        self.maintenance_scans
    }

    /// Records a use of the item (updates LRU/LCU counters). A miss on an
    /// unknown id leaves the logical clock untouched, so recency ordering
    /// only advances on real cache events.
    pub fn touch(&mut self, id: u64) {
        if let Some(item) = self.items.get_mut(&id) {
            self.clock += 1;
            item.last_used = self.clock;
            item.use_count += 1;
        }
        self.debug_assert_clock_monotone();
    }

    /// Iterates over all items.
    pub fn iter(&self) -> impl Iterator<Item = &CacheItem> {
        self.items.values()
    }

    /// Re-derives an item's MBR and index entry after its skyline changed.
    fn reindex(&mut self, id: u64) {
        let Some(item) = self.items.get_mut(&id) else { return };
        let old_key = Self::index_box(&item.constraints, &item.mbr);
        let new_mbr = Aabb::bounding_rows(item.skyline.rows());
        if new_mbr == item.mbr {
            return;
        }
        item.mbr = new_mbr;
        let new_key = Self::index_box(&item.constraints, &item.mbr);
        let removed = self.index.remove(&old_key, |&v| v == id);
        debug_assert!(removed.is_some(), "index out of sync with items");
        self.index.insert(new_key, id);
        self.bound = self.index.mbr();
    }

    /// Dynamic-data maintenance (paper Section 6.2, "each cache item as a
    /// separate dataset with a continuous skyline query"): integrates a
    /// newly inserted data point into every cached result whose
    /// constraints it satisfies. Returns the number of items updated.
    pub fn on_insert(&mut self, p: &Point) -> usize {
        assert_eq!(p.dims(), self.dims, "point dimensionality mismatch");
        // Probe the constraint R*-tree with the point instead of scanning
        // every item: only items whose constraint region (closed cover)
        // contains p are examined. The exact `satisfies` re-filter keeps
        // open-boundary semantics; ids are sorted so updates run in the
        // same ascending-id order as the old full scan.
        let mut affected: Vec<u64> =
            self.constraint_index.search(&Aabb::from_point(p)).into_iter().copied().collect();
        self.maintenance_scans += affected.len() as u64;
        affected.sort_unstable();
        affected.retain(|id| self.items.get(id).is_some_and(|item| item.constraints.satisfies(p)));
        let mut updated = 0;
        for id in affected {
            let Some(item) = self.items.get_mut(&id) else { continue };
            if item.skyline.rows().any(|s| dominates_raw(s, p.coords())) {
                continue; // dominated: the cached skyline is unchanged
            }
            // p enters the skyline; points it dominates leave.
            item.skyline.retain_rows(|s| !dominates_raw(p.coords(), s));
            item.skyline.push(p);
            self.reindex(id);
            updated += 1;
        }
        updated
    }

    /// Dynamic-data maintenance on deletion: cached results whose skyline
    /// contains the deleted point can no longer be trusted (points it
    /// dominated may resurface) and are dropped — the conservative
    /// strategy; exclusive-dominance-region recomputation à la DeltaSky
    /// (paper ref. [21]) is a possible refinement. Returns the number of
    /// items dropped.
    pub fn on_delete(&mut self, p: &Point) -> usize {
        assert_eq!(p.dims(), self.dims, "point dimensionality mismatch");
        let affected: Vec<u64> = self
            .items
            .values()
            .filter(|item| item.skyline.rows().any(|s| s == p.coords()))
            .map(|item| item.id)
            .collect();
        let dropped = affected.len();
        for id in affected {
            self.remove(id);
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(pairs: &[(f64, f64)]) -> Constraints {
        Constraints::from_pairs(pairs).unwrap()
    }

    fn p(coords: &[f64]) -> Point {
        Point::from(coords.to_vec())
    }

    #[test]
    fn insert_and_lookup_by_mbr() {
        let mut cache = Cache::new(2);
        let id = cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.2, 0.8]), p(&[0.6, 0.3])]);
        assert_eq!(cache.len(), 1);
        // Query overlapping the skyline MBR [0.2,0.6]x[0.3,0.8].
        let hits = cache.overlapping(&c(&[(0.5, 0.9), (0.1, 0.4)]));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, id);
        // Query overlapping the constraint region but not the MBR.
        let misses = cache.overlapping(&c(&[(0.9, 1.0), (0.9, 1.0)]));
        assert!(misses.is_empty());
    }

    #[test]
    fn empty_skyline_indexed_by_constraints() {
        let mut cache = Cache::new(2);
        let id = cache.insert(c(&[(0.4, 0.6), (0.4, 0.6)]), &[]);
        let hits = cache.overlapping(&c(&[(0.5, 0.9), (0.5, 0.9)]));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, id);
        assert!(hits[0].mbr.is_none());
    }

    #[test]
    fn lru_eviction() {
        let mut cache = Cache::with_capacity(1, Some(2), ReplacementPolicy::Lru);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]);
        let b = cache.insert(c(&[(1.0, 2.0)]), &[p(&[1.5])]);
        cache.touch(a); // a is now more recent than b
        let _c = cache.insert(c(&[(2.0, 3.0)]), &[p(&[2.5])]);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(a).is_some(), "recently used item kept");
        assert!(cache.get(b).is_none(), "LRU item evicted");
    }

    #[test]
    fn lcu_eviction() {
        let mut cache = Cache::with_capacity(1, Some(2), ReplacementPolicy::Lcu);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]);
        let b = cache.insert(c(&[(1.0, 2.0)]), &[p(&[1.5])]);
        cache.touch(b);
        cache.touch(b);
        cache.touch(a);
        let _c = cache.insert(c(&[(2.0, 3.0)]), &[p(&[2.5])]);
        assert!(cache.get(b).is_some(), "commonly used item kept");
        assert!(cache.get(a).is_none(), "LCU item evicted");
    }

    #[test]
    fn newest_item_is_protected_from_eviction() {
        let mut cache = Cache::with_capacity(1, Some(1), ReplacementPolicy::Lru);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]);
        let b = cache.insert(c(&[(1.0, 2.0)]), &[p(&[1.5])]);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(a).is_none());
        assert!(cache.get(b).is_some());
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut cache = Cache::new(2);
        let a = cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.5, 0.5])]);
        let b = cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.5, 0.5])]);
        assert_eq!(cache.len(), 2);
        let removed = cache.remove(a).unwrap();
        assert_eq!(removed.id, a);
        let hits = cache.overlapping(&c(&[(0.0, 1.0), (0.0, 1.0)]));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, b);
        assert!(cache.remove(a).is_none());
    }

    #[test]
    fn many_unbounded_empty_results_are_cacheable() {
        // Regression: partially-constrained queries (Fig. 7 setup) cache
        // empty skylines indexed by their (±inf) constraint regions; the
        // R*-tree must survive splits/reinserts over such boxes.
        let mut cache = Cache::new(3);
        for i in 0..200 {
            let v = i as f64;
            let cc = Constraints::new(
                vec![v, f64::NEG_INFINITY, f64::NEG_INFINITY],
                vec![v + 0.5, f64::INFINITY, f64::INFINITY],
            )
            .unwrap();
            cache.insert(cc, &[]);
        }
        assert_eq!(cache.len(), 200);
        let probe = Constraints::new(
            vec![10.2, f64::NEG_INFINITY, f64::NEG_INFINITY],
            vec![10.3, f64::INFINITY, f64::INFINITY],
        )
        .unwrap();
        let hits = cache.overlapping(&probe);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn on_insert_updates_affected_items() {
        let mut cache = Cache::new(2);
        let a = cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.5, 0.5])]);
        let b = cache.insert(c(&[(2.0, 3.0), (2.0, 3.0)]), &[p(&[2.5, 2.5])]);

        // New point inside item a's constraints, dominating its skyline.
        let updated = cache.on_insert(&p(&[0.2, 0.2]));
        assert_eq!(updated, 1);
        assert_eq!(cache.get(a).unwrap().skyline.to_points(), vec![p(&[0.2, 0.2])]);
        assert_eq!(cache.get(b).unwrap().skyline.to_points(), vec![p(&[2.5, 2.5])]);
        // The MBR index moved with the skyline.
        let hits = cache.overlapping(&c(&[(0.1, 0.3), (0.1, 0.3)]));
        assert!(hits.iter().any(|it| it.id == a));

        // A dominated insertion changes nothing.
        assert_eq!(cache.on_insert(&p(&[0.9, 0.9])), 0);
        assert_eq!(cache.get(a).unwrap().skyline.len(), 1);

        // An incomparable insertion joins the skyline.
        assert_eq!(cache.on_insert(&p(&[0.1, 0.9])), 1);
        assert_eq!(cache.get(a).unwrap().skyline.len(), 2);
    }

    #[test]
    fn maintenance_scans_count_only_candidate_items() {
        let mut cache = Cache::new(2);
        // Ten items far from the insertion point, one containing it.
        for i in 0..10 {
            let lo = 10.0 + f64::from(i);
            cache.insert(c(&[(lo, lo + 0.5), (lo, lo + 0.5)]), &[p(&[lo, lo])]);
        }
        let near = cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.8, 0.8])]);
        assert_eq!(cache.maintenance_scans(), 0);

        let updated = cache.on_insert(&p(&[0.5, 0.5]));
        assert_eq!(updated, 1);
        assert_eq!(cache.get(near).unwrap().skyline.to_points(), vec![p(&[0.5, 0.5])]);
        // The constraint index pruned the ten distant items: only the
        // containing item was individually examined.
        assert_eq!(cache.maintenance_scans(), 1);

        // Removal keeps the constraint index in sync.
        cache.remove(near).unwrap();
        assert_eq!(cache.on_insert(&p(&[0.5, 0.5])), 0);
        assert_eq!(cache.maintenance_scans(), 1);
    }

    #[test]
    fn on_delete_drops_items_holding_the_point() {
        let mut cache = Cache::new(2);
        let a = cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.5, 0.5])]);
        let b = cache.insert(c(&[(0.0, 2.0), (0.0, 2.0)]), &[p(&[0.5, 0.5]), p(&[1.5, 0.2])]);
        let keep = cache.insert(c(&[(2.0, 3.0), (2.0, 3.0)]), &[p(&[2.5, 2.5])]);

        let dropped = cache.on_delete(&p(&[0.5, 0.5]));
        assert_eq!(dropped, 2);
        assert!(cache.get(a).is_none());
        assert!(cache.get(b).is_none());
        assert!(cache.get(keep).is_some());
        // Deleting a non-skyline point is free.
        assert_eq!(cache.on_delete(&p(&[9.0, 9.0])), 0);
    }

    #[test]
    fn lookup_short_circuits_disjoint_queries() {
        let mut cache = Cache::new(2);
        // Empty cache: trivially short-circuited.
        let out = cache.lookup(&c(&[(0.0, 1.0), (0.0, 1.0)]));
        assert!(out.short_circuited);
        assert_eq!(out.scans, 0);
        assert!(out.items.is_empty());

        cache.insert(c(&[(0.0, 1.0), (0.0, 1.0)]), &[p(&[0.2, 0.8]), p(&[0.6, 0.3])]);
        cache.insert(c(&[(2.0, 3.0), (2.0, 3.0)]), &[p(&[2.5, 2.5])]);

        // Disjoint from the union of index boxes: answered from the
        // cache-wide bound, zero per-item scans.
        let miss = cache.lookup(&c(&[(8.0, 9.0), (8.0, 9.0)]));
        assert!(miss.short_circuited);
        assert_eq!(miss.scans, 0);
        assert!(miss.items.is_empty());

        // Overlapping: the R*-tree walk scans candidates.
        let hit = cache.lookup(&c(&[(0.5, 0.9), (0.1, 0.4)]));
        assert!(!hit.short_circuited);
        assert_eq!(hit.items.len(), 1);
        assert!(hit.scans >= 1);
        // overlapping() stays the thin façade over lookup().
        assert_eq!(cache.overlapping(&c(&[(0.5, 0.9), (0.1, 0.4)])).len(), 1);
    }

    #[test]
    fn bound_tracks_inserts_and_removals() {
        let mut cache = Cache::new(1);
        assert!(cache.bound().is_none());
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]);
        let b = cache.insert(c(&[(5.0, 6.0)]), &[p(&[5.5])]);
        let both = cache.bound().unwrap().clone();
        assert!(both.contains_point(&p(&[0.5])));
        assert!(both.contains_point(&p(&[5.5])));

        // Removal refreshes the bound exactly (no stale union).
        cache.remove(b).unwrap();
        let shrunk = cache.bound().unwrap().clone();
        assert!(shrunk.contains_point(&p(&[0.5])));
        assert!(!shrunk.contains_point(&p(&[5.5])));
        assert!(cache.lookup(&c(&[(5.0, 6.0)])).short_circuited);

        cache.remove(a).unwrap();
        assert!(cache.bound().is_none());
    }

    #[test]
    fn evictions_counter_counts_only_policy_evictions() {
        let mut cache = Cache::with_capacity(1, Some(2), ReplacementPolicy::Lru);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]);
        cache.insert(c(&[(1.0, 2.0)]), &[p(&[1.5])]);
        assert_eq!(cache.evictions(), 0);
        cache.insert(c(&[(2.0, 3.0)]), &[p(&[2.5])]);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(a).is_none());
        // Explicit removal is not an eviction.
        let survivor = cache.iter().next().unwrap().id;
        cache.remove(survivor).unwrap();
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn touch_updates_counters() {
        let mut cache = Cache::new(1);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]);
        let before = cache.get(a).unwrap().last_used;
        cache.touch(a);
        let item = cache.get(a).unwrap();
        assert_eq!(item.use_count, 1);
        assert!(item.last_used > before);
    }

    #[test]
    fn logical_clock_is_strictly_monotone_over_cache_events() {
        // Invariant backing `debug_assert_clock_monotone`: every insert
        // and every successful touch produces a timestamp strictly greater
        // than all timestamps recorded before it, so LRU recency is a
        // total, stable order.
        let mut cache = Cache::new(1);
        let mut seen_max = 0u64;
        let mut ids = Vec::new();
        for i in 0..5 {
            let id = cache.insert(c(&[(f64::from(i), f64::from(i) + 1.0)]), &[]);
            let stamp = cache.get(id).unwrap().inserted_at;
            assert!(stamp > seen_max, "insert stamp {stamp} not past {seen_max}");
            seen_max = stamp;
            ids.push(id);
        }
        for &id in ids.iter().rev() {
            cache.touch(id);
            let stamp = cache.get(id).unwrap().last_used;
            assert!(stamp > seen_max, "touch stamp {stamp} not past {seen_max}");
            seen_max = stamp;
        }
        // Failed touches leave the order untouched.
        cache.touch(9999);
        assert!(cache.iter().all(|it| it.last_used <= seen_max));
    }

    #[test]
    fn touch_on_unknown_id_does_not_advance_the_clock() {
        // Regression: touch() used to bump the clock before checking
        // presence, so misses inflated later items' recency timestamps.
        let mut cache = Cache::new(1);
        let a = cache.insert(c(&[(0.0, 1.0)]), &[p(&[0.5])]);
        cache.touch(a + 1000); // no such item
        let b = cache.insert(c(&[(1.0, 2.0)]), &[p(&[1.5])]);
        assert_eq!(cache.get(a).unwrap().inserted_at, 1);
        assert_eq!(cache.get(b).unwrap().inserted_at, 2);
        assert_eq!(cache.get(a).unwrap().use_count, 0);
    }
}
