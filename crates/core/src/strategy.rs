//! Cache search strategies (paper Section 6.1).
//!
//! When a query's region overlaps several cached items' MBRs, a strategy
//! picks the item to answer from. The paper compares seven; all are
//! implemented here and benchmarked in `skycache-bench` (Figure 11).

use rand::Rng;

use skycache_geom::{Aabb, Constraints};

use crate::cache::CacheItem;
use crate::stability::{classify, is_stable, Overlap};

/// A cache search strategy.
#[derive(Clone, Debug, PartialEq)]
pub enum SearchStrategy {
    /// Uniformly random choice among the overlapping items.
    Random,
    /// Maximum constraint-region overlap volume with the query.
    MaxOverlap,
    /// Like `MaxOverlap`, but stable items (Theorem 1) are always
    /// preferred over unstable ones, regardless of overlap ("SP" =
    /// stability preference).
    MaxOverlapSP,
    /// Prefers simple single-bound cases in the paper's fixed order —
    /// Case 2, Case 3, Case 1, general stable, Case 4, general unstable —
    /// with ties broken by `MaxOverlap`.
    Prioritized1D,
    /// Scores the four case types independently (`weights[0..4]` penalize
    /// case 1–4 changes respectively) and penalizes each changed bound by
    /// its case weight; minimal total penalty wins, ties broken by
    /// `MaxOverlap`. The paper's *Std* variant is `(10, 0, 5, 20)`, the
    /// deliberately bad one `(10, 50, 30, 0)`.
    PrioritizedND {
        /// Penalties for case-1..case-4 bound changes.
        weights: [f64; 4],
    },
    /// Picks the item whose lower constraint corner is closest to the
    /// query's lower corner.
    OptimumDistance,
}

impl SearchStrategy {
    /// The paper's `PrioritizednD (Std)` weights.
    pub fn prioritized_nd_std() -> Self {
        SearchStrategy::PrioritizedND { weights: [10.0, 0.0, 5.0, 20.0] }
    }

    /// The paper's `PrioritizednD (Bad)` weights, included to show that
    /// the case scoring matters.
    pub fn prioritized_nd_bad() -> Self {
        SearchStrategy::PrioritizedND { weights: [10.0, 50.0, 30.0, 0.0] }
    }

    /// Label used in benchmark output.
    pub fn label(&self) -> String {
        match self {
            SearchStrategy::Random => "Random".into(),
            SearchStrategy::MaxOverlap => "MaxOverlap".into(),
            SearchStrategy::MaxOverlapSP => "MaxOverlapSP".into(),
            SearchStrategy::Prioritized1D => "Prioritized1D".into(),
            SearchStrategy::PrioritizedND { weights } => {
                if *weights == [10.0, 0.0, 5.0, 20.0] {
                    "PrioritizednD(Std)".into()
                } else if *weights == [10.0, 50.0, 30.0, 0.0] {
                    "PrioritizednD(Bad)".into()
                } else {
                    format!(
                        "PrioritizednD({},{},{},{})",
                        weights[0], weights[1], weights[2], weights[3]
                    )
                }
            }
            SearchStrategy::OptimumDistance => "OptimumDistance".into(),
        }
    }

    /// Chooses among `candidates` (all overlapping the query per the cache
    /// lookup). Returns an index into `candidates`, or `None` when empty.
    ///
    /// `data_bounds` clamps unbounded constraint dimensions so overlap
    /// volumes and corner distances stay finite.
    pub fn select<R: Rng>(
        &self,
        candidates: &[&CacheItem],
        new: &Constraints,
        data_bounds: &Aabb,
        rng: &mut R,
    ) -> Option<usize> {
        self.select_indexed(candidates.len(), |i| candidates[i], new, data_bounds, rng)
    }

    /// [`SearchStrategy::select`] over an indexed accessor instead of a
    /// materialized slice of references — the scratch-based engine path
    /// resolves candidate ids lazily through the cache without building
    /// a per-query `Vec<&CacheItem>`. Semantics are identical: ties keep
    /// the first (best-covering) candidate.
    pub fn select_indexed<'a, R: Rng>(
        &self,
        n: usize,
        get: impl Fn(usize) -> &'a CacheItem,
        new: &Constraints,
        data_bounds: &Aabb,
        rng: &mut R,
    ) -> Option<usize> {
        if n == 0 {
            return None;
        }
        if n == 1 {
            return Some(0);
        }
        let best = match self {
            SearchStrategy::Random => rng.gen_range(0..n),
            SearchStrategy::MaxOverlap => {
                argmax_by(n, &get, |it| clamped_overlap(it, new, data_bounds))
            }
            SearchStrategy::MaxOverlapSP => {
                argmax_by(n, &get, |it| {
                    let stable = is_stable(&it.constraints, new);
                    // Stability dominates; overlap breaks ties.
                    (u8::from(stable), clamped_overlap(it, new, data_bounds))
                })
            }
            SearchStrategy::Prioritized1D => argmax_by(n, &get, |it| {
                let rank = case_rank(classify(&it.constraints, new));
                (std::cmp::Reverse(rank), clamped_overlap(it, new, data_bounds))
            }),
            SearchStrategy::PrioritizedND { weights } => argmax_by(n, &get, |it| {
                let penalty = nd_penalty(&it.constraints, new, weights);
                (std::cmp::Reverse(FiniteF64(penalty)), clamped_overlap(it, new, data_bounds))
            }),
            SearchStrategy::OptimumDistance => argmax_by(n, &get, |it| {
                std::cmp::Reverse(FiniteF64(corner_distance(it, new, data_bounds)))
            }),
        };
        Some(best)
    }
}

/// Total-order wrapper for scores (IEEE total order, so no panic path
/// even if a score ever degenerates to NaN).
#[derive(PartialEq)]
struct FiniteF64(f64);

impl Eq for FiniteF64 {}

impl Ord for FiniteF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for FiniteF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn argmax_by<'a, K: Ord>(
    n: usize,
    get: impl Fn(usize) -> &'a CacheItem,
    mut key: impl FnMut(&CacheItem) -> K,
) -> usize {
    let mut best = 0;
    let mut best_key = key(get(0));
    for i in 1..n {
        let k = key(get(i));
        if k > best_key {
            best_key = k;
            best = i;
        }
    }
    best
}

fn clamp_box(c: &Constraints, bounds: &Aabb) -> Aabb {
    let lo: Vec<f64> = c.lo().iter().zip(bounds.lo()).map(|(v, b)| v.max(*b)).collect();
    let hi: Vec<f64> =
        c.hi().iter().zip(bounds.hi()).zip(&lo).map(|((v, b), l)| v.min(*b).max(*l)).collect();
    Aabb::new_unchecked(lo, hi)
}

fn clamped_overlap(item: &CacheItem, new: &Constraints, bounds: &Aabb) -> FiniteF64 {
    let a = clamp_box(&item.constraints, bounds);
    let b = clamp_box(new, bounds);
    FiniteF64(a.overlap_area(&b))
}

fn corner_distance(item: &CacheItem, new: &Constraints, bounds: &Aabb) -> f64 {
    let a = clamp_box(&item.constraints, bounds);
    let b = clamp_box(new, bounds);
    a.lo().iter().zip(b.lo()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Rank of a case for `Prioritized1D`: lower is better. Exact hits beat
/// everything; disjoint items are useless.
fn case_rank(overlap: Overlap) -> u8 {
    match overlap {
        Overlap::Exact => 0,
        Overlap::CaseB { .. } => 1,
        Overlap::CaseC { .. } => 2,
        Overlap::CaseA { .. } => 3,
        Overlap::GeneralStable => 4,
        Overlap::CaseD { .. } => 5,
        Overlap::GeneralUnstable => 6,
        Overlap::Disjoint => 7,
    }
}

/// `PrioritizednD` penalty: each changed bound is scored by the case type
/// of that change (lower decrease = case 1, upper decrease = case 2,
/// upper increase = case 3, lower increase = case 4).
fn nd_penalty(old: &Constraints, new: &Constraints, weights: &[f64; 4]) -> f64 {
    let mut penalty = 0.0;
    for i in 0..old.dims() {
        if new.lo()[i] < old.lo()[i] {
            penalty += weights[0];
        } else if new.lo()[i] > old.lo()[i] {
            penalty += weights[3];
        }
        if new.hi()[i] < old.hi()[i] {
            penalty += weights[1];
        } else if new.hi()[i] > old.hi()[i] {
            penalty += weights[2];
        }
    }
    penalty
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use skycache_geom::Point;

    fn bounds() -> Aabb {
        Aabb::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap()
    }

    fn item(id: u64, pairs: &[(f64, f64)]) -> CacheItem {
        let constraints = Constraints::from_pairs(pairs).unwrap();
        let skyline = vec![Point::from(vec![
            (pairs[0].0 + pairs[0].1) / 2.0,
            (pairs[1].0 + pairs[1].1) / 2.0,
        ])];
        let mbr = Aabb::bounding(&skyline);
        let skyline = skycache_geom::PointBlock::from_points(&skyline).unwrap();
        CacheItem {
            id,
            constraints,
            skyline,
            mbr,
            inserted_at: id,
            last_used: id,
            use_count: 0,
            cost: crate::cache::ItemCost::default(),
            key_hash: id,
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn empty_candidates_yield_none() {
        let new = Constraints::from_pairs(&[(0.0, 1.0), (0.0, 1.0)]).unwrap();
        assert_eq!(SearchStrategy::Random.select(&[], &new, &bounds(), &mut rng()), None);
    }

    #[test]
    fn max_overlap_picks_biggest_intersection() {
        let a = item(0, &[(0.0, 2.0), (0.0, 2.0)]);
        let b = item(1, &[(0.0, 5.0), (0.0, 5.0)]);
        let new = Constraints::from_pairs(&[(0.0, 4.0), (0.0, 4.0)]).unwrap();
        let got =
            SearchStrategy::MaxOverlap.select(&[&a, &b], &new, &bounds(), &mut rng()).unwrap();
        assert_eq!(got, 1);
    }

    #[test]
    fn max_overlap_sp_prefers_stability_over_overlap() {
        // `a` overlaps more but is unstable (its lower bound is below the
        // query's: raising the lower bound from a to new is a case-4-ish
        // change). `b` is stable with less overlap.
        let a = item(0, &[(0.0, 5.0), (0.0, 5.0)]); // lo 0 < new lo 1 → unstable
        let b = item(1, &[(1.0, 3.0), (1.0, 3.0)]); // lo == new lo → stable
        let new = Constraints::from_pairs(&[(1.0, 4.5), (1.0, 4.5)]).unwrap();
        assert!(!is_stable(&a.constraints, &new));
        assert!(is_stable(&b.constraints, &new));
        let got =
            SearchStrategy::MaxOverlapSP.select(&[&a, &b], &new, &bounds(), &mut rng()).unwrap();
        assert_eq!(got, 1);
        // Plain MaxOverlap would pick `a`.
        let plain =
            SearchStrategy::MaxOverlap.select(&[&a, &b], &new, &bounds(), &mut rng()).unwrap();
        assert_eq!(plain, 0);
    }

    #[test]
    fn prioritized_1d_prefers_case_b() {
        let new = Constraints::from_pairs(&[(1.0, 3.0), (1.0, 3.0)]).unwrap();
        // Case B item: query shrinks its upper bound in dim 0.
        let case_b = item(0, &[(1.0, 4.0), (1.0, 3.0)]);
        // Case A item: query extends its lower bound in dim 0.
        let case_a = item(1, &[(2.0, 3.0), (1.0, 3.0)]);
        let got = SearchStrategy::Prioritized1D
            .select(&[&case_a, &case_b], &new, &bounds(), &mut rng())
            .unwrap();
        assert_eq!(got, 1);
    }

    #[test]
    fn prioritized_nd_std_favors_upper_decreases() {
        let new = Constraints::from_pairs(&[(1.0, 3.0), (1.0, 3.0)]).unwrap();
        // Item whose two changed bounds are upper decreases (weight 0).
        let cheap = item(0, &[(1.0, 4.0), (1.0, 4.0)]);
        // Item whose two changed bounds are lower increases (weight 20).
        let pricey = item(1, &[(0.0, 3.0), (0.0, 3.0)]);
        let got = SearchStrategy::prioritized_nd_std()
            .select(&[&pricey, &cheap], &new, &bounds(), &mut rng())
            .unwrap();
        assert_eq!(got, 1);
        // The Bad weights invert the preference.
        let got_bad = SearchStrategy::prioritized_nd_bad()
            .select(&[&pricey, &cheap], &new, &bounds(), &mut rng())
            .unwrap();
        assert_eq!(got_bad, 0);
    }

    #[test]
    fn optimum_distance_picks_nearest_corner() {
        let new = Constraints::from_pairs(&[(2.0, 3.0), (2.0, 3.0)]).unwrap();
        let near = item(0, &[(2.1, 5.0), (1.9, 5.0)]);
        let far = item(1, &[(0.0, 5.0), (0.0, 5.0)]);
        let got = SearchStrategy::OptimumDistance
            .select(&[&far, &near], &new, &bounds(), &mut rng())
            .unwrap();
        assert_eq!(got, 1);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let a = item(0, &[(0.0, 2.0), (0.0, 2.0)]);
        let b = item(1, &[(0.0, 5.0), (0.0, 5.0)]);
        let new = Constraints::from_pairs(&[(0.0, 4.0), (0.0, 4.0)]).unwrap();
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..20 {
            let x = SearchStrategy::Random.select(&[&a, &b], &new, &bounds(), &mut r1);
            let y = SearchStrategy::Random.select(&[&a, &b], &new, &bounds(), &mut r2);
            assert_eq!(x, y);
            assert!(x.unwrap() < 2);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(SearchStrategy::prioritized_nd_std().label(), "PrioritizednD(Std)");
        assert_eq!(SearchStrategy::prioritized_nd_bad().label(), "PrioritizednD(Bad)");
        assert_eq!(SearchStrategy::MaxOverlapSP.label(), "MaxOverlapSP");
    }
}
