//! The audited wall-clock site.
//!
//! The `determinism` lint forbids `std::time::Instant` anywhere else in
//! the library crates: the executors' *results* (skylines, cached plans,
//! fetch counters) must be a pure function of inputs, and stray wall-clock
//! reads are how accidental time-dependence creeps in. Timing still has a
//! legitimate consumer — the Figure-10 stage breakdown reported in
//! `QueryStats` — so it is concentrated here, behind a type whose values
//! can only flow into `Duration`s, never into query planning.
//!
//! If a new timing need appears, extend this module rather than importing
//! `Instant` elsewhere; the lint will hold you to it.

// skylint: allow(determinism) — the import this module exists to confine.
use std::time::{Duration, Instant};

/// A started timer; the only way library code reads the clock.
///
/// ```
/// use skycache_core::clock::Stopwatch;
/// let sw = Stopwatch::start();
/// let elapsed: std::time::Duration = sw.elapsed();
/// assert!(elapsed >= std::time::Duration::ZERO);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    // skylint: allow(determinism) — confined here by design; see module docs.
    start: Instant,
}

impl Stopwatch {
    /// Starts a timer.
    #[inline]
    pub fn start() -> Self {
        // skylint: allow(determinism) — the one sanctioned clock read.
        Stopwatch { start: Instant::now() }
    }

    /// Time since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }
}
