//! Query planning: the specialized incremental-case solutions of
//! Section 4.2 (Theorems 2–5) unified with the general MPR.
//!
//! Each theorem's fetch set is exactly what [`missing_points_region`]
//! computes for that overlap class — the geometry degenerates to the
//! paper's special cases automatically:
//!
//! * **Case (a)** (Theorem 2): the only unknown space is `ΔC`, and no
//!   cached dominance region can reach below the old lower bound, so the
//!   MPR is `ΔC` unpruned.
//! * **Case (b)** (Theorem 3): `R_C′ ⊂ R_C` leaves no unknown space, the
//!   removed points' dominance regions miss `R_C′`, and the result is just
//!   the filtered cached skyline — no fetch, no skyline recomputation.
//! * **Case (c)** (Theorem 4): `ΔC` minus the retained dominance regions.
//! * **Case (d)** (Theorem 5): no unknown space, but the removed points'
//!   old dominance regions inside `R_C′` resurface, minus retained
//!   dominance regions.
//!
//! The planner therefore runs true fast paths only where the theorems
//! license skipping work entirely (exact hits and Case (b)); all other
//! classes share the MPR machinery.

use std::collections::BTreeSet;

use skycache_geom::dominance::dominance_box_coords;
use skycache_geom::subtract::{disjoint_union, subtract_box_from_all};
use skycache_geom::{Aabb, Constraints, HyperRect, Kernel, Point, PointBlock};

use crate::mpr::{missing_points_region_multi, prune_regions, MprMode};
use crate::stability::{classify, Overlap};

/// What the engine must do to answer `C′` from a cached item.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Classified relationship between cached and queried constraints.
    pub overlap: Overlap,
    /// Disjoint range queries to fetch from storage.
    pub regions: Vec<HyperRect>,
    /// Cached skyline points that remain candidates under `C′`, as a
    /// columnar block shared with the merge kernels.
    pub retained: PointBlock,
    /// Whether a skyline recomputation over `retained ∪ fetched` is
    /// required (false for exact hits and Case (b), per Theorem 3).
    pub needs_skyline: bool,
    /// Cached skyline points invalidated by `C′`.
    pub removed_points: usize,
    /// Retained points used for dominance pruning.
    pub prune_points_used: usize,
    /// Disjoint pieces contributed by the invalidated (unstable) region.
    pub invalidated_pieces: usize,
}

/// Builds the execution plan for answering `new` from the cached result
/// `(old, cached_skyline)`.
pub fn plan(
    old: &Constraints,
    cached_skyline: &PointBlock,
    new: &Constraints,
    mode: MprMode,
) -> QueryPlan {
    plan_with_extra(old, cached_skyline, &[], new, mode)
}

/// Multi-item planning (the paper's Section 6.3 extension): additionally
/// prunes and merges with `extra_points` harvested from other overlapping
/// cache items (see [`missing_points_region_multi`] for the soundness
/// argument). The exact-hit and Case (b) fast paths ignore the extras —
/// their results are already fully determined by the primary item.
pub fn plan_with_extra(
    old: &Constraints,
    cached_skyline: &PointBlock,
    extra_points: &[Point],
    new: &Constraints,
    mode: MprMode,
) -> QueryPlan {
    let overlap = classify(old, new);
    match overlap {
        Overlap::Exact => QueryPlan {
            overlap,
            regions: Vec::new(),
            retained: cached_skyline.clone(),
            needs_skyline: false,
            removed_points: 0,
            prune_points_used: 0,
            invalidated_pieces: 0,
        },
        Overlap::CaseB { .. } => {
            // Theorem 3: Sky(S, C′) = Sky(S, C) ∩ S_C′. Copy surviving
            // rows into a fresh block; no per-point clones.
            let mut retained = PointBlock::new(new.dims())
                // skylint: allow(no-panic-paths) — Constraints reject zero dimensions.
                .expect("constraints are at least one-dimensional");
            let mut removed = 0usize;
            let kernel = Kernel::for_dims(new.dims());
            for row in cached_skyline.rows() {
                if new.satisfies_coords_k(kernel, row) {
                    retained.push_row(row);
                } else {
                    removed += 1;
                }
            }
            QueryPlan {
                overlap,
                regions: Vec::new(),
                retained,
                needs_skyline: false,
                removed_points: removed,
                prune_points_used: 0,
                invalidated_pieces: 0,
            }
        }
        _ => {
            let out = missing_points_region_multi(old, cached_skyline, extra_points, new, mode);
            QueryPlan {
                overlap,
                regions: out.regions,
                retained: out.retained,
                needs_skyline: true,
                removed_points: out.removed_points,
                prune_points_used: out.prune_points_used,
                invalidated_pieces: out.invalidated_pieces,
            }
        }
    }
}

/// Theorem 3's closed-form Case (b) solution, exposed for direct use:
/// simply drop cached skyline points that violate the new constraints.
pub fn case_b_solution(cached_skyline: &[Point], new: &Constraints) -> Vec<Point> {
    cached_skyline.iter().filter(|p| new.satisfies(p)).cloned().collect()
}

/// A compositional multi-item plan: the [`QueryPlan`] plus how much of
/// the query region the contributing cached items covered.
#[derive(Clone, Debug)]
pub struct ComposedPlan {
    /// The plan — same shape as single-item planning, so the engine's
    /// fetch/merge/skyline pipeline runs unchanged on it.
    pub plan: QueryPlan,
    /// Cached items that actually contributed trusted space (≥ 2; a
    /// composition that degenerates to fewer returns `None` instead).
    pub items_used: usize,
    /// Fraction of the query region's volume (clamped to the data
    /// bounds) covered by the composed items — the
    /// `cache.cover_fraction` metric.
    pub cover_fraction: f64,
}

/// Greedily composes several cached items into one remainder plan for
/// `new` (DESIGN.md §17.3). `parts` must be cover-ordered with the
/// strategy-selected primary first; each item subtracts its *trusted*
/// space — overlap minus the space invalidated by its removed skyline
/// points — from the unknown region, and retained points are pooled
/// (deduplicated by coordinates) for the shared dominance-pruning step.
///
/// Soundness mirrors the single-item MPR per item: for item `i`, any
/// skyline point of `C′` inside `R_Ci ∩ R_C′` is either in `i`'s cached
/// skyline (→ retained) or dominated by a removed point of `i` (→ its
/// dominance region is re-added to the unknown space), so subtracting
/// `trusted_i` never loses a result point, and the final skyline over
/// `retained ∪ fetched` equals the from-scratch recompute bit for bit.
///
/// Returns `None` when fewer than two items contribute — the caller
/// falls back to single-item planning, keeping the pinned single-item
/// geometry (and its metrics) untouched.
///
/// # Panics
/// Panics if dimensionalities differ.
pub fn plan_composed(
    parts: &[(&Constraints, &PointBlock)],
    new: &Constraints,
    mode: MprMode,
    data_bounds: &Aabb,
) -> Option<ComposedPlan> {
    let (primary, _) = parts.first()?;
    if parts.len() < 2 {
        return None;
    }
    let dims = new.dims();
    let kernel = Kernel::for_dims(dims);
    let mut unknown = vec![new.region()];
    let mut retained = PointBlock::new(dims)
        // skylint: allow(no-panic-paths) — Constraints reject zero dimensions.
        .expect("constraints are at least one-dimensional");
    // BTreeSet for the determinism policy: retained points are pooled
    // across items and must dedup in a platform-stable order.
    let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
    let mut removed_points = 0usize;
    let mut invalidated_pieces = 0usize;
    let mut items_used = 0usize;

    for &(old, cached) in parts {
        assert_eq!(old.dims(), dims, "constraints dimensionality mismatch");
        if unknown.is_empty() {
            break; // full cover: later items can only add pruning points
        }
        let Some(overlap) = old.overlap_region(new) else {
            continue; // disjoint item: contributes nothing
        };
        // Partition this item's skyline under C′; pooled retained rows
        // dedup across items so shared points are merged once.
        let mut removed: Vec<usize> = Vec::new();
        for (i, row) in cached.rows().enumerate() {
            if new.satisfies_coords_k(kernel, row) {
                let key: Vec<u64> = row.iter().map(|c| c.to_bits()).collect();
                if seen.insert(key) {
                    retained.push_row(row);
                }
            } else {
                removed.push(i);
            }
        }
        removed_points += removed.len();
        // The space this item invalidates inside R_C′: removed points'
        // old dominance regions (the unstable preprocessing, per item).
        let invalid_boxes: Vec<Aabb> = removed
            .iter()
            .filter_map(|&t| dominance_box_coords(cached.row(t), old))
            .filter_map(|dr| dr.intersection(new.aabb()))
            .collect();
        let pieces = match mode {
            MprMode::Exact => disjoint_union(&invalid_boxes),
            // The aMPR trade again: one conservative cover box instead of
            // a disjoint decomposition (still inside the overlap, so the
            // disjointness of the unknown set survives).
            MprMode::Approximate { .. } => match invalid_boxes.split_first() {
                None => Vec::new(),
                Some((first, rest)) => {
                    let mut cover = first.clone();
                    for b in rest {
                        cover.merge(b);
                    }
                    vec![cover.to_rect()]
                }
            },
        };
        invalidated_pieces += pieces.len();
        unknown = compose_cover(unknown, &overlap, &pieces);
        items_used += 1;
    }
    if items_used < 2 {
        return None;
    }

    // Cover fraction before dominance pruning: how much of the query
    // region the cache itself accounted for, clamped to the data bounds
    // so partially-unbounded constraint boxes still measure finitely.
    let bounds_rect = data_bounds.to_rect();
    let clamped = |r: &HyperRect| r.intersection(&bounds_rect).map_or(0.0, |i| i.volume());
    let total = clamped(&new.region());
    let missing: f64 = unknown.iter().map(clamped).sum();
    let cover_fraction = if total.is_finite() && total > 0.0 {
        ((total - missing) / total).clamp(0.0, 1.0)
    } else if unknown.is_empty() {
        1.0
    } else {
        0.0
    };

    let (regions, prune_points_used) = prune_regions(unknown, &retained, new, mode);
    Some(ComposedPlan {
        plan: QueryPlan {
            overlap: classify(primary, new),
            regions,
            retained,
            needs_skyline: true,
            removed_points,
            prune_points_used,
            invalidated_pieces,
        },
        items_used,
        cover_fraction,
    })
}

/// One cover-composition step: the new unknown set after item `i`,
/// `(unknown ∖ overlap_i) ∪ (unknown ∩ invalid_i)`. The two parts are
/// disjoint because every invalid piece lies inside the overlap box, and
/// each part is internally disjoint because its inputs are.
fn compose_cover(unknown: Vec<HyperRect>, overlap: &Aabb, pieces: &[HyperRect]) -> Vec<HyperRect> {
    // skylint: allow(hot-path-alloc) — output set construction; bounded by |unknown|·|pieces| and consumed immediately by the planner.
    let mut next: Vec<HyperRect> = Vec::new();
    for u in &unknown {
        for piece in pieces {
            if let Some(resurfaced) = u.intersection(piece) {
                if !resurfaced.is_empty() {
                    // skylint: allow(hot-path-alloc) — appends a rect that survives into the next composition round.
                    next.push(resurfaced);
                }
            }
        }
    }
    // skylint: allow(hot-path-alloc) — appends the uncovered remainder; same output set as above.
    next.extend(subtract_box_from_all(unknown, overlap));
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(pairs: &[(f64, f64)]) -> Constraints {
        Constraints::from_pairs(pairs).unwrap()
    }

    fn p(coords: &[f64]) -> Point {
        Point::from(coords.to_vec())
    }

    fn block(points: &[Point]) -> PointBlock {
        PointBlock::from_points(points).unwrap()
    }

    #[test]
    fn exact_plan_is_free() {
        let cc = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let sky = vec![p(&[0.1, 0.9]), p(&[0.5, 0.2])];
        let plan = plan(&cc, &block(&sky), &cc.clone(), MprMode::Exact);
        assert_eq!(plan.overlap, Overlap::Exact);
        assert!(plan.regions.is_empty());
        assert!(!plan.needs_skyline);
        assert_eq!(plan.retained.to_points(), sky);
    }

    #[test]
    fn case_b_plan_filters_without_fetch() {
        let old = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let new = c(&[(0.0, 1.0), (0.0, 0.5)]);
        let sky = vec![p(&[0.1, 0.9]), p(&[0.5, 0.2])];
        let plan = plan(&old, &block(&sky), &new, MprMode::Exact);
        assert_eq!(plan.overlap, Overlap::CaseB { dim: 1 });
        assert!(plan.regions.is_empty());
        assert!(!plan.needs_skyline);
        assert_eq!(plan.retained.to_points(), vec![p(&[0.5, 0.2])]);
        assert_eq!(plan.removed_points, 1);
        assert_eq!(case_b_solution(&sky, &new), vec![p(&[0.5, 0.2])]);
    }

    #[test]
    fn case_a_plan_fetches_delta() {
        let old = c(&[(0.5, 1.0), (0.0, 1.0)]);
        let new = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let sky = vec![p(&[0.6, 0.2])];
        let plan = plan(&old, &block(&sky), &new, MprMode::Exact);
        assert_eq!(plan.overlap, Overlap::CaseA { dim: 0 });
        assert!(plan.needs_skyline);
        assert_eq!(plan.regions.len(), 1);
        // Theorem 2: no pruning of ΔC is possible.
        assert!(plan.regions[0].contains_point(&p(&[0.2, 0.9])));
    }

    #[test]
    fn composed_plan_requires_two_contributors() {
        let bounds = Aabb::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let new = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let a = c(&[(0.0, 0.6), (0.0, 1.0)]);
        let sky_a = block(&[p(&[0.1, 0.1])]);
        // One part: no composition.
        assert!(plan_composed(&[(&a, &sky_a)], &new, MprMode::Exact, &bounds).is_none());
        // Two parts, but the second is disjoint from the query: still
        // only one contributor, so the caller falls back to single-item.
        let far = c(&[(5.0, 6.0), (5.0, 6.0)]);
        let sky_far = block(&[p(&[5.5, 5.5])]);
        assert!(plan_composed(&[(&a, &sky_a), (&far, &sky_far)], &new, MprMode::Exact, &bounds)
            .is_none());
    }

    #[test]
    fn composed_cover_eliminates_the_fetch() {
        // Two items jointly covering the query region: nothing remains
        // unknown, and the retained pool merges both skylines (shared
        // points deduplicated).
        let bounds = Aabb::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let new = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let a = c(&[(0.0, 0.6), (0.0, 1.0)]);
        let b = c(&[(0.4, 1.0), (0.0, 1.0)]);
        let sky_a = block(&[p(&[0.1, 0.3]), p(&[0.5, 0.1])]);
        let sky_b = block(&[p(&[0.5, 0.1]), p(&[0.9, 0.05])]);
        let out = plan_composed(&[(&a, &sky_a), (&b, &sky_b)], &new, MprMode::Exact, &bounds)
            .expect("both items contribute");
        assert_eq!(out.items_used, 2);
        assert!(out.plan.regions.is_empty(), "full cover leaves nothing to fetch");
        assert!((out.cover_fraction - 1.0).abs() < 1e-9);
        // 3 distinct retained rows: the shared (0.5, 0.1) merged once.
        assert_eq!(out.plan.retained.len(), 3);
        assert!(out.plan.needs_skyline);
    }

    #[test]
    fn composed_plan_resurfaces_invalidated_space() {
        // Item a's skyline point violates C′, so the space it dominated
        // inside R_C′ is unknown again even though a's box covers it.
        let bounds = Aabb::new(vec![0.0, 0.0], vec![2.0, 2.0]).unwrap();
        let new = c(&[(1.0, 2.0), (0.0, 2.0)]);
        let a = c(&[(0.0, 2.0), (0.0, 2.0)]);
        let b = c(&[(1.0, 1.5), (0.0, 2.0)]);
        let sky_a = block(&[p(&[0.5, 0.5])]); // removed under C′
        let sky_b = block(&[p(&[1.2, 0.8])]);
        let out = plan_composed(&[(&a, &sky_a), (&b, &sky_b)], &new, MprMode::Exact, &bounds)
            .expect("both items contribute");
        assert_eq!(out.plan.removed_points, 1);
        assert!(out.plan.invalidated_pieces > 0);
        assert!(out.cover_fraction < 1.0, "invalidated space counts as uncovered");
        assert!(!out.plan.regions.is_empty(), "resurfaced space must be fetched");
    }

    #[test]
    fn unstable_plan_reports_invalidation() {
        let old = c(&[(0.0, 2.0), (0.0, 2.0)]);
        let new = c(&[(1.0, 2.0), (0.0, 2.0)]);
        let sky = vec![p(&[0.5, 0.5])];
        let plan = plan(&old, &block(&sky), &new, MprMode::Exact);
        assert_eq!(plan.overlap, Overlap::CaseD { dim: 0 });
        assert!(plan.needs_skyline);
        assert_eq!(plan.removed_points, 1);
        assert!(plan.invalidated_pieces > 0);
        assert!(!plan.regions.is_empty());
    }
}
