//! Query planning: the specialized incremental-case solutions of
//! Section 4.2 (Theorems 2–5) unified with the general MPR.
//!
//! Each theorem's fetch set is exactly what [`missing_points_region`]
//! computes for that overlap class — the geometry degenerates to the
//! paper's special cases automatically:
//!
//! * **Case (a)** (Theorem 2): the only unknown space is `ΔC`, and no
//!   cached dominance region can reach below the old lower bound, so the
//!   MPR is `ΔC` unpruned.
//! * **Case (b)** (Theorem 3): `R_C′ ⊂ R_C` leaves no unknown space, the
//!   removed points' dominance regions miss `R_C′`, and the result is just
//!   the filtered cached skyline — no fetch, no skyline recomputation.
//! * **Case (c)** (Theorem 4): `ΔC` minus the retained dominance regions.
//! * **Case (d)** (Theorem 5): no unknown space, but the removed points'
//!   old dominance regions inside `R_C′` resurface, minus retained
//!   dominance regions.
//!
//! The planner therefore runs true fast paths only where the theorems
//! license skipping work entirely (exact hits and Case (b)); all other
//! classes share the MPR machinery.

use skycache_geom::{Constraints, HyperRect, Kernel, Point, PointBlock};

use crate::mpr::{missing_points_region_multi, MprMode};
use crate::stability::{classify, Overlap};

/// What the engine must do to answer `C′` from a cached item.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Classified relationship between cached and queried constraints.
    pub overlap: Overlap,
    /// Disjoint range queries to fetch from storage.
    pub regions: Vec<HyperRect>,
    /// Cached skyline points that remain candidates under `C′`, as a
    /// columnar block shared with the merge kernels.
    pub retained: PointBlock,
    /// Whether a skyline recomputation over `retained ∪ fetched` is
    /// required (false for exact hits and Case (b), per Theorem 3).
    pub needs_skyline: bool,
    /// Cached skyline points invalidated by `C′`.
    pub removed_points: usize,
    /// Retained points used for dominance pruning.
    pub prune_points_used: usize,
    /// Disjoint pieces contributed by the invalidated (unstable) region.
    pub invalidated_pieces: usize,
}

/// Builds the execution plan for answering `new` from the cached result
/// `(old, cached_skyline)`.
pub fn plan(
    old: &Constraints,
    cached_skyline: &PointBlock,
    new: &Constraints,
    mode: MprMode,
) -> QueryPlan {
    plan_with_extra(old, cached_skyline, &[], new, mode)
}

/// Multi-item planning (the paper's Section 6.3 extension): additionally
/// prunes and merges with `extra_points` harvested from other overlapping
/// cache items (see [`missing_points_region_multi`] for the soundness
/// argument). The exact-hit and Case (b) fast paths ignore the extras —
/// their results are already fully determined by the primary item.
pub fn plan_with_extra(
    old: &Constraints,
    cached_skyline: &PointBlock,
    extra_points: &[Point],
    new: &Constraints,
    mode: MprMode,
) -> QueryPlan {
    let overlap = classify(old, new);
    match overlap {
        Overlap::Exact => QueryPlan {
            overlap,
            regions: Vec::new(),
            retained: cached_skyline.clone(),
            needs_skyline: false,
            removed_points: 0,
            prune_points_used: 0,
            invalidated_pieces: 0,
        },
        Overlap::CaseB { .. } => {
            // Theorem 3: Sky(S, C′) = Sky(S, C) ∩ S_C′. Copy surviving
            // rows into a fresh block; no per-point clones.
            let mut retained = PointBlock::new(new.dims())
                // skylint: allow(no-panic-paths) — Constraints reject zero dimensions.
                .expect("constraints are at least one-dimensional");
            let mut removed = 0usize;
            let kernel = Kernel::for_dims(new.dims());
            for row in cached_skyline.rows() {
                if new.satisfies_coords_k(kernel, row) {
                    retained.push_row(row);
                } else {
                    removed += 1;
                }
            }
            QueryPlan {
                overlap,
                regions: Vec::new(),
                retained,
                needs_skyline: false,
                removed_points: removed,
                prune_points_used: 0,
                invalidated_pieces: 0,
            }
        }
        _ => {
            let out = missing_points_region_multi(old, cached_skyline, extra_points, new, mode);
            QueryPlan {
                overlap,
                regions: out.regions,
                retained: out.retained,
                needs_skyline: true,
                removed_points: out.removed_points,
                prune_points_used: out.prune_points_used,
                invalidated_pieces: out.invalidated_pieces,
            }
        }
    }
}

/// Theorem 3's closed-form Case (b) solution, exposed for direct use:
/// simply drop cached skyline points that violate the new constraints.
pub fn case_b_solution(cached_skyline: &[Point], new: &Constraints) -> Vec<Point> {
    cached_skyline.iter().filter(|p| new.satisfies(p)).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(pairs: &[(f64, f64)]) -> Constraints {
        Constraints::from_pairs(pairs).unwrap()
    }

    fn p(coords: &[f64]) -> Point {
        Point::from(coords.to_vec())
    }

    fn block(points: &[Point]) -> PointBlock {
        PointBlock::from_points(points).unwrap()
    }

    #[test]
    fn exact_plan_is_free() {
        let cc = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let sky = vec![p(&[0.1, 0.9]), p(&[0.5, 0.2])];
        let plan = plan(&cc, &block(&sky), &cc.clone(), MprMode::Exact);
        assert_eq!(plan.overlap, Overlap::Exact);
        assert!(plan.regions.is_empty());
        assert!(!plan.needs_skyline);
        assert_eq!(plan.retained.to_points(), sky);
    }

    #[test]
    fn case_b_plan_filters_without_fetch() {
        let old = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let new = c(&[(0.0, 1.0), (0.0, 0.5)]);
        let sky = vec![p(&[0.1, 0.9]), p(&[0.5, 0.2])];
        let plan = plan(&old, &block(&sky), &new, MprMode::Exact);
        assert_eq!(plan.overlap, Overlap::CaseB { dim: 1 });
        assert!(plan.regions.is_empty());
        assert!(!plan.needs_skyline);
        assert_eq!(plan.retained.to_points(), vec![p(&[0.5, 0.2])]);
        assert_eq!(plan.removed_points, 1);
        assert_eq!(case_b_solution(&sky, &new), vec![p(&[0.5, 0.2])]);
    }

    #[test]
    fn case_a_plan_fetches_delta() {
        let old = c(&[(0.5, 1.0), (0.0, 1.0)]);
        let new = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let sky = vec![p(&[0.6, 0.2])];
        let plan = plan(&old, &block(&sky), &new, MprMode::Exact);
        assert_eq!(plan.overlap, Overlap::CaseA { dim: 0 });
        assert!(plan.needs_skyline);
        assert_eq!(plan.regions.len(), 1);
        // Theorem 2: no pruning of ΔC is possible.
        assert!(plan.regions[0].contains_point(&p(&[0.2, 0.9])));
    }

    #[test]
    fn unstable_plan_reports_invalidation() {
        let old = c(&[(0.0, 2.0), (0.0, 2.0)]);
        let new = c(&[(1.0, 2.0), (0.0, 2.0)]);
        let sky = vec![p(&[0.5, 0.5])];
        let plan = plan(&old, &block(&sky), &new, MprMode::Exact);
        assert_eq!(plan.overlap, Overlap::CaseD { dim: 0 });
        assert!(plan.needs_skyline);
        assert_eq!(plan.removed_points, 1);
        assert!(plan.invalidated_pieces > 0);
        assert!(!plan.regions.is_empty());
    }
}
