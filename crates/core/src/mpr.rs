//! The Missing Points Region (paper Section 5).
//!
//! Given a cached result `⟨Sky(S,C), C⟩` and new constraints `C′`, the MPR
//! is the minimal (possibly disjoint) region whose points can neither be
//! confirmed nor excluded from `Sky(S, C′)` using the cache alone
//! (Definition 5). It is assembled from three ingredients:
//!
//! 1. **Unknown space** — the part of `R_C′` outside the old region
//!    (`R_C′ \ (R_C ∩ R_C′)`); the cache says nothing about it.
//! 2. **Invalidated space** (unstable case only) — for every cached
//!    skyline point `t` that no longer satisfies `C′`, its old constrained
//!    dominance region `DR(t, C)` clipped to `R_C′`: points `t` used to
//!    dominate may resurface. This is the "inverted logic" preprocessing
//!    step described after Algorithm 1. Geometry makes the stable cases
//!    free: a point removed by a lowered upper bound has
//!    `DR(t, C) ∩ R_C′ = ∅`, so no special-casing is needed.
//! 3. **Dominance pruning** — the dominance regions `DR(u, C′)` of cached
//!    skyline points `u` that satisfy `C′` are subtracted: anything there
//!    is dominated by a point we already hold.
//!
//! The exact MPR subtracts *every* retained skyline point's region, which
//! in higher dimensions shatters the result into enormous numbers of
//! range queries (Figure 9 of the paper, reproduced by this crate's
//! benches). The **approximate MPR** ([`MprMode::Approximate`]) subtracts
//! only the `k` retained points nearest to `C̲′` — a conservative
//! superset that trades extra points read for drastically fewer range
//! queries (Section 5.3).

use skycache_geom::dominance::dominance_box_coords;
use skycache_geom::subtract::{disjoint_union, subtract_box, subtract_box_from_all};
use skycache_geom::{Constraints, HyperRect, Kernel, Point, PointBlock};

/// Exact or approximate MPR computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MprMode {
    /// Prune with every retained cached skyline point (minimal region,
    /// maximal number of range queries).
    Exact,
    /// Prune with only the `k` retained points nearest to the queried
    /// region's lower corner (the paper's aMPR; `k = #NN`).
    Approximate {
        /// Number of nearest neighbors used for pruning.
        k: usize,
    },
}

impl MprMode {
    /// Label used in benchmark output, e.g. `MPR` or `aMPR(3p)`.
    pub fn label(self) -> String {
        match self {
            MprMode::Exact => "MPR".to_owned(),
            MprMode::Approximate { k } => format!("aMPR({k}p)"),
        }
    }
}

/// Result of an MPR computation.
#[derive(Clone, Debug)]
pub struct MprOutput {
    /// Pairwise-disjoint range queries covering the (approximate) MPR.
    pub regions: Vec<HyperRect>,
    /// Cached skyline points that still satisfy `C′` (the merge input of
    /// Theorem 6), in cache order — a columnar block, so planning copies
    /// coordinates instead of cloning one `Point` per retained row.
    pub retained: PointBlock,
    /// Number of cached skyline points invalidated by `C′`.
    pub removed_points: usize,
    /// Number of retained points actually used for dominance pruning.
    pub prune_points_used: usize,
    /// Disjoint pieces contributed by the invalidated (unstable) region.
    pub invalidated_pieces: usize,
}

/// Computes the (approximate) Missing Points Region.
///
/// Returns disjoint range queries plus the retained cached points; per
/// Theorem 6, `Sky(S, C′) = Sky(retained ∪ fetch(regions), C′)`.
///
/// # Panics
/// Panics if dimensionalities differ.
pub fn missing_points_region(
    old: &Constraints,
    cached_skyline: &PointBlock,
    new: &Constraints,
    mode: MprMode,
) -> MprOutput {
    missing_points_region_multi(old, cached_skyline, &[], new, mode)
}

/// Multi-item variant (the paper's Section 6.3 extension): `extra_points`
/// are skyline points taken from *other* overlapping cache items.
///
/// Soundness: for any stored point `u` satisfying `C′`, every point of
/// `DR(u, C′)` is dominated by `u` and hence excluded from `Sky(S, C′)` —
/// regardless of which cached query produced `u` — so subtracting its
/// dominance region from the MPR never loses a result point, *provided*
/// `u` itself joins the merge set. Completeness of the final skyline also
/// holds for extra points that are not themselves in `Sky(S, C′)`: if
/// some `v ≺ u` exists in `S_C′`, then `v` is either a retained point, a
/// fetched point, or itself dominated by a pruning point `w` (and then
/// `w ≺ u` with `w` in the merge set), so `u` is always filtered out by
/// the final skyline computation. The returned `retained` therefore
/// includes the surviving extra points.
///
/// # Panics
/// Panics if dimensionalities differ.
pub fn missing_points_region_multi(
    old: &Constraints,
    cached_skyline: &PointBlock,
    extra_points: &[Point],
    new: &Constraints,
    mode: MprMode,
) -> MprOutput {
    assert_eq!(old.dims(), new.dims(), "constraints dimensionality mismatch");

    let new_region = new.region();

    // Step 1: unknown space = R_C′ \ overlap (Algorithm 1 lines 2–12).
    let mut regions = match old.overlap_region(new) {
        Some(overlap) => subtract_box(&new_region, &overlap),
        None => vec![new_region],
    };

    // Partition the cached skyline by the new constraints. Retained rows
    // are copied into a columnar block (two buffer allocations per plan,
    // not one `Point` clone per row); removed rows stay as indices into
    // the cached block.
    let mut retained = PointBlock::new(new.dims())
        // skylint: allow(no-panic-paths) — Constraints reject zero dimensions.
        .expect("constraints are at least one-dimensional");
    let mut removed: Vec<usize> = Vec::new();
    let kernel = Kernel::for_dims(new.dims());
    for (i, row) in cached_skyline.rows().enumerate() {
        if new.satisfies_coords_k(kernel, row) {
            retained.push_row(row);
        } else {
            removed.push(i);
        }
    }

    // Adopt extra pruning points from other cache items (deduplicated
    // against the primary item's retained points by coordinates).
    if !extra_points.is_empty() {
        // BTreeSet for the determinism policy (membership-only here, but
        // keeping hash collections out of planning paths is the point).
        let mut seen: std::collections::BTreeSet<Vec<u64>> =
            retained.rows().map(|r| r.iter().map(|c| c.to_bits()).collect()).collect();
        for p in extra_points {
            if !new.satisfies(p) {
                continue;
            }
            let key: Vec<u64> = p.coords().iter().map(|c| c.to_bits()).collect();
            if seen.insert(key) {
                retained.push_row(p.coords());
            }
        }
    }

    // Step 2: invalidated space (the unstable preprocessing). For each
    // removed point t, DR(t, C) ∩ R_C′. These lie inside the overlap
    // region, hence disjoint from step 1.
    //
    // The exact MPR decomposes the union of these boxes into disjoint
    // pieces — minimal reads, but "cache invalidation yields a
    // prohibitive amount of range queries with subsequent random access
    // latency for MPR" (paper, Section 7.2). The approximate MPR instead
    // covers the union with its bounding box: a conservative superset
    // (completeness is preserved; only extra points may be read) that
    // keeps the number of range queries small, mirroring how aMPR trades
    // reads for fewer queries on the pruning side.
    let invalid_boxes: Vec<_> = removed
        .iter()
        .filter_map(|&t| dominance_box_coords(cached_skyline.row(t), old))
        .filter_map(|dr| dr.intersection(new.aabb()))
        .collect();
    let invalidated = match mode {
        MprMode::Exact => disjoint_union(&invalid_boxes),
        MprMode::Approximate { .. } => match invalid_boxes.split_first() {
            None => Vec::new(),
            Some((first, rest)) => {
                let mut cover = first.clone();
                for b in rest {
                    cover.merge(b);
                }
                vec![cover.to_rect()]
            }
        },
    };
    let invalidated_pieces = invalidated.len();
    regions.extend(invalidated);

    let (regions, prune_points_used) = prune_regions(regions, &retained, new, mode);

    MprOutput {
        regions,
        retained,
        removed_points: removed.len(),
        prune_points_used,
        invalidated_pieces,
    }
}

/// Step 3 of the MPR construction, shared with the compositional
/// planner ([`crate::cases::plan_composed`]): subtract retained
/// dominance regions `DR(u, C′)` from the unknown regions (Algorithm 1
/// lines 13–26). Pruning points are applied nearest-to-`C̲′` first — the
/// near points prune the most (Section 5.3) — and the aMPR stops after
/// `k` of them. Returns the pruned regions (degenerate leftovers
/// dropped) and the number of pruning points actually applied.
pub(crate) fn prune_regions(
    mut regions: Vec<HyperRect>,
    retained: &PointBlock,
    new: &Constraints,
    mode: MprMode,
) -> (Vec<HyperRect>, usize) {
    let mut order: Vec<usize> = (0..retained.len()).collect();
    let corner = new.lo();
    let dist = |row: &[f64]| -> f64 {
        row.iter()
            .zip(corner)
            .map(|(a, b)| {
                // Unconstrained dimensions (−∞ corner) contribute nothing.
                if b.is_finite() {
                    (a - b) * (a - b)
                } else {
                    0.0
                }
            })
            .sum()
    };
    order.sort_by(|&a, &b| dist(retained.row(a)).total_cmp(&dist(retained.row(b))).then(a.cmp(&b)));
    let limit = match mode {
        MprMode::Exact => order.len(),
        MprMode::Approximate { k } => k.min(order.len()),
    };

    let mut prune_points_used = 0;
    for &idx in order.iter().take(limit) {
        if regions.is_empty() {
            break;
        }
        let Some(dr) = dominance_box_coords(retained.row(idx), new) else {
            continue;
        };
        regions = subtract_box_from_all(regions, &dr);
        prune_points_used += 1;
    }

    // Drop any degenerate leftovers.
    regions.retain(|r| !r.is_empty());

    // Invariant (debug builds): the emitted range queries are pairwise
    // disjoint — in both modes. Step 1 splits with strict inequalities
    // (Algorithm 1), step 2 lies inside the overlap (disjoint from step
    // 1; `disjoint_union` or a single cover box internally), and step 3
    // only subtracts. Overlapping regions would double-fetch rows and
    // break the paper's minimality accounting (Thm. 7).
    debug_assert!(
        skycache_geom::subtract::pairwise_disjoint(&regions),
        "MPR emitted overlapping range queries"
    );

    (regions, prune_points_used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycache_geom::subtract::pairwise_disjoint;

    fn c(pairs: &[(f64, f64)]) -> Constraints {
        Constraints::from_pairs(pairs).unwrap()
    }

    fn p(coords: &[f64]) -> Point {
        Point::from(coords.to_vec())
    }

    fn block(points: &[Point]) -> PointBlock {
        PointBlock::from_points(points).unwrap()
    }

    fn covers(regions: &[HyperRect], point: &Point) -> usize {
        regions.iter().filter(|r| r.contains_point(point)).count()
    }

    #[test]
    fn exact_match_yields_empty_mpr() {
        let cc = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let sky = vec![p(&[0.2, 0.3])];
        let out = missing_points_region(&cc, &block(&sky), &cc.clone(), MprMode::Exact);
        assert!(out.regions.is_empty());
        assert_eq!(out.retained.to_points(), sky);
        assert_eq!(out.removed_points, 0);
    }

    #[test]
    fn disjoint_constraints_fetch_everything() {
        let old = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let new = c(&[(2.0, 3.0), (2.0, 3.0)]);
        let out = missing_points_region(&old, &block(&[p(&[0.5, 0.5])]), &new, MprMode::Exact);
        assert_eq!(out.regions.len(), 1);
        assert_eq!(out.regions[0], new.region());
        assert!(out.retained.is_empty());
        assert_eq!(out.removed_points, 1);
        // The removed point's old dominance region misses R_C′ entirely.
        assert_eq!(out.invalidated_pieces, 0);
    }

    #[test]
    fn case_a_fetches_only_delta_c() {
        // Lower bound of dim 0 decreased: ΔC is the new left slab.
        let old = c(&[(1.0, 2.0), (1.0, 2.0)]);
        let new = c(&[(0.5, 2.0), (1.0, 2.0)]);
        let sky = vec![p(&[1.2, 1.1])];
        let out = missing_points_region(&old, &block(&sky), &new, MprMode::Exact);
        // One slab; cached dominance regions cannot intersect ΔC.
        assert_eq!(out.regions.len(), 1);
        let slab = &out.regions[0];
        assert!(slab.contains_point(&p(&[0.7, 1.5])));
        assert!(!slab.contains_point(&p(&[1.0, 1.5]))); // boundary goes to overlap
        assert!(!slab.contains_point(&p(&[1.2, 1.1])));
        assert_eq!(out.retained.to_points(), sky);
    }

    #[test]
    fn case_b_fetches_nothing() {
        let old = c(&[(1.0, 2.0), (1.0, 2.0)]);
        let new = c(&[(1.0, 1.6), (1.0, 2.0)]);
        let sky = vec![p(&[1.2, 1.1]), p(&[1.8, 1.05])];
        let out = missing_points_region(&old, &block(&sky), &new, MprMode::Exact);
        assert!(out.regions.is_empty(), "{:?}", out.regions);
        // The out-of-range skyline point is removed, and its dominance
        // region cannot intersect the shrunk query region.
        assert_eq!(out.retained.to_points(), vec![p(&[1.2, 1.1])]);
        assert_eq!(out.removed_points, 1);
        assert_eq!(out.invalidated_pieces, 0);
    }

    #[test]
    fn case_c_prunes_delta_with_dominance_regions() {
        // Upper bound of dim 0 increased; cached point near the corner
        // shadows part of the new slab.
        let old = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let new = c(&[(0.0, 2.0), (0.0, 1.0)]);
        let sky = vec![p(&[0.5, 0.2])];
        let out = missing_points_region(&old, &block(&sky), &new, MprMode::Exact);
        assert!(pairwise_disjoint(&out.regions));
        // Points in ΔC below y=0.2 must be fetched…
        assert_eq!(covers(&out.regions, &p(&[1.5, 0.1])), 1);
        // …points in ΔC above y=0.2 are dominated by (0.5, 0.2).
        assert_eq!(covers(&out.regions, &p(&[1.5, 0.5])), 0);
        // Overlap region is never fetched.
        assert_eq!(covers(&out.regions, &p(&[0.5, 0.5])), 0);
        assert_eq!(covers(&out.regions, &p(&[0.7, 0.1])), 0);
    }

    #[test]
    fn case_d_fetches_invalidated_region() {
        // Lower bound of dim 0 increased past a cached skyline point:
        // unstable. The removed point's dominance region inside the new
        // constraints must be re-fetched, except where retained points
        // still dominate.
        let old = c(&[(0.0, 2.0), (0.0, 2.0)]);
        let new = c(&[(1.0, 2.0), (0.0, 2.0)]);
        let sky = vec![p(&[0.5, 0.5]), p(&[1.5, 0.1])];
        let out = missing_points_region(&old, &block(&sky), &new, MprMode::Exact);
        assert_eq!(out.removed_points, 1); // (0.5, 0.5) is out
        assert_eq!(out.retained.to_points(), vec![p(&[1.5, 0.1])]);
        assert!(out.invalidated_pieces > 0);
        assert!(pairwise_disjoint(&out.regions));
        // Invalidated: points previously dominated by (0.5,0.5) with x >= 1.
        assert_eq!(covers(&out.regions, &p(&[1.2, 0.8])), 1);
        // Still dominated by the retained (1.5, 0.1):
        assert_eq!(covers(&out.regions, &p(&[1.7, 0.5])), 0);
        // Not in the old dominance region and not newly exposed: y < 0.5
        // and x inside the old region was never invalidated.
        assert_eq!(covers(&out.regions, &p(&[1.2, 0.3])), 0);
    }

    #[test]
    fn unstable_without_removed_points_adds_nothing() {
        let old = c(&[(0.0, 2.0), (0.0, 2.0)]);
        let new = c(&[(1.0, 2.0), (0.0, 2.0)]);
        // The cached skyline point still satisfies C′.
        let sky = vec![p(&[1.5, 0.5])];
        let out = missing_points_region(&old, &block(&sky), &new, MprMode::Exact);
        assert_eq!(out.removed_points, 0);
        assert_eq!(out.invalidated_pieces, 0);
        // Everything in R_C′ is either old-and-valid or dominated.
        assert_eq!(covers(&out.regions, &p(&[1.6, 0.6])), 0);
    }

    #[test]
    fn approximate_mode_is_superset_of_exact() {
        let old = c(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]);
        let new = c(&[(0.0, 1.4), (0.0, 1.2), (0.0, 1.0)]);
        let sky = vec![
            p(&[0.1, 0.8, 0.3]),
            p(&[0.4, 0.4, 0.4]),
            p(&[0.8, 0.1, 0.6]),
            p(&[0.2, 0.6, 0.1]),
        ];
        let exact = missing_points_region(&old, &block(&sky), &new, MprMode::Exact);
        let approx = missing_points_region(&old, &block(&sky), &new, MprMode::Approximate { k: 1 });
        assert!(approx.regions.len() <= exact.regions.len());
        assert_eq!(approx.prune_points_used, 1);
        // Superset: every probe covered by exact is covered by approx.
        let mut x = 0.13_f64;
        for _ in 0..500 {
            x = (x * 97.31).fract();
            let probe = p(&[x * 1.4, (x * 57.17).fract() * 1.2, (x * 31.73).fract()]);
            if covers(&exact.regions, &probe) == 1 {
                assert_eq!(covers(&approx.regions, &probe), 1, "probe {probe:?}");
            }
        }
    }

    #[test]
    fn exact_regions_are_disjoint_in_3d() {
        let old = c(&[(0.2, 0.8), (0.2, 0.8), (0.2, 0.8)]);
        let new = c(&[(0.1, 0.9), (0.2, 0.8), (0.3, 0.9)]);
        let sky = vec![p(&[0.3, 0.3, 0.4]), p(&[0.5, 0.25, 0.5]), p(&[0.25, 0.6, 0.35])];
        let out = missing_points_region(&old, &block(&sky), &new, MprMode::Exact);
        assert!(pairwise_disjoint(&out.regions));
    }

    #[test]
    fn regions_are_pairwise_disjoint_in_every_mode() {
        // Invariant backing the debug_assert in
        // missing_points_region_multi: whatever the mode and however the
        // constraints moved (widened, narrowed, shifted — stable and
        // unstable cases alike), the emitted range queries never overlap.
        let old = c(&[(0.2, 1.0), (0.1, 0.9), (0.0, 0.8)]);
        let sky = vec![p(&[0.3, 0.2, 0.7]), p(&[0.25, 0.8, 0.1]), p(&[0.9, 0.15, 0.4])];
        let news = [
            c(&[(0.0, 1.2), (0.1, 0.9), (0.0, 0.8)]), // widen dim 0 both ways
            c(&[(0.4, 1.0), (0.1, 0.9), (0.0, 0.8)]), // unstable: lower raised
            c(&[(0.2, 1.0), (0.0, 1.1), (0.2, 1.0)]), // mixed shift
            c(&[(1.5, 2.0), (1.5, 2.0), (1.5, 2.0)]), // disjoint from old
        ];
        for new in &news {
            for mode in [
                MprMode::Exact,
                MprMode::Approximate { k: 0 },
                MprMode::Approximate { k: 1 },
                MprMode::Approximate { k: 8 },
            ] {
                let out = missing_points_region(&old, &block(&sky), new, mode);
                assert!(
                    pairwise_disjoint(&out.regions),
                    "overlapping regions for {new:?} under {mode:?}"
                );
            }
        }
    }

    #[test]
    fn more_dimensions_generate_more_regions() {
        // Figure 4's lesson: each extra dimension multiplies the pieces.
        let mut counts = Vec::new();
        for d in 2..=5usize {
            let old = Constraints::from_pairs(&vec![(0.0, 1.0); d]).unwrap();
            let new = Constraints::from_pairs(
                &(0..d).map(|i| (0.0, if i == 0 { 1.5 } else { 1.0 })).collect::<Vec<_>>(),
            )
            .unwrap();
            let sky: Vec<Point> = (0..6)
                .map(|j| {
                    Point::from(
                        (0..d).map(|i| 0.15 + 0.1 * ((i + j) % 5) as f64).collect::<Vec<_>>(),
                    )
                })
                .collect();
            let out = missing_points_region(&old, &block(&sky), &new, MprMode::Exact);
            counts.push(out.regions.len());
        }
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "region counts should not shrink with dimensionality: {counts:?}"
        );
        assert!(counts[3] > counts[0], "{counts:?}");
    }

    #[test]
    fn ampr_k_zero_prunes_nothing() {
        let old = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let new = c(&[(0.0, 1.5), (0.0, 1.0)]);
        let sky = vec![p(&[0.1, 0.1])];
        let out = missing_points_region(&old, &block(&sky), &new, MprMode::Approximate { k: 0 });
        assert_eq!(out.prune_points_used, 0);
        // ΔC is fetched whole.
        assert_eq!(covers(&out.regions, &p(&[1.2, 0.9])), 1);
    }
}
