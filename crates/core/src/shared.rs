//! Multi-user CBCS: a thread-safe cache shared by concurrent executors.
//!
//! The paper's second workload models "independent queries in a
//! multi-user system" — many users benefiting from one cache. This module
//! provides that deployment shape: a [`SharedCache`] (an
//! `Arc<RwLock<Cache>>`) and a [`SharedCbcsExecutor`] per user/session.
//!
//! Locking protocol: the cache is *read*-locked only while searching and
//! while the selected item's contents are cloned out; planning, fetching
//! and the skyline computation — the expensive parts — run without any
//! lock; a short *write* lock then records the use and inserts the new
//! result. Telemetry (spans/counters) is collected into locals under a
//! guard and published only after it drops — skylint's `guard-hold-span`
//! rule enforces that no guard is live across a recorder call. A cached item may be evicted between the read and write phases;
//! that is benign (the executor works on its own clone, and `touch` on a
//! gone item is a no-op), so queries never block each other for longer
//! than the cache search itself.

use rand::rngs::StdRng;
use rand::SeedableRng;

// Shim sync primitives: identical to `std`/`parking_lot` in production,
// schedulable under a `skycheck::Explorer` model run (see DESIGN.md §15).
use skycheck::sync::{Arc, RwLock};

use skycache_algos::{Sfs, SkylineAlgorithm};
use skycache_geom::{Aabb, Point};
use skycache_obs::{names, Phase, QueryRecorder, Recorder};
use skycache_storage::Table;

use crate::cache::Cache;
use crate::cases::plan_with_extra;
use crate::clock::Stopwatch;
use crate::engine::{
    check_dims, query_naive, query_naive_legacy, query_planned, query_planned_legacy, CbcsConfig,
    Executor, Probe, QueryOutcome, QueryRequest, QueryScratch, QueryStats,
};
use crate::Result;

/// A cache shared between executors (and threads).
#[derive(Clone)]
pub struct SharedCache {
    inner: Arc<RwLock<Cache>>,
}

impl SharedCache {
    /// Creates a shared cache with the capacity/policy of `config`.
    pub fn new(dims: usize, config: &CbcsConfig) -> Self {
        SharedCache {
            inner: Arc::new(RwLock::new(Cache::with_capacity(
                dims,
                config.capacity,
                config.policy,
            ))),
        }
    }

    /// Number of cached items (takes a read lock).
    pub fn len(&self) -> usize {
        self.inner.read().len() // lock-order: read
    }

    /// Whether the cache is empty (takes a read lock).
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty() // lock-order: read
    }

    /// Runs a closure with read access to the underlying cache.
    pub fn with_read<R>(&self, f: impl FnOnce(&Cache) -> R) -> R {
        f(&self.inner.read()) // lock-order: read
    }
}

/// A per-user CBCS executor over a [`SharedCache`].
pub struct SharedCbcsExecutor<'t> {
    table: &'t Table,
    cache: SharedCache,
    config: CbcsConfig,
    algo: Box<dyn SkylineAlgorithm>,
    rng: StdRng,
    data_bounds: Aabb,
    scratch: QueryScratch,
}

impl<'t> SharedCbcsExecutor<'t> {
    /// Creates an executor bound to an existing shared cache.
    ///
    /// # Panics
    /// Panics if the cache and table dimensionalities differ.
    pub fn new(table: &'t Table, cache: SharedCache, config: CbcsConfig) -> Self {
        // Hoisted out of the assert so the read guard provably drops before
        // the panic formatting machinery runs.
        let cache_dims = cache.inner.read().dims(); // lock-order: read
        assert_eq!(cache_dims, table.dims(), "cache/table dimensionality mismatch");
        let data_bounds = Aabb::bounding(table.all_points())
            // skylint: allow(no-panic-paths) — Table::build rejects empty point sets.
            .expect("tables are non-empty");
        let rng = StdRng::seed_from_u64(config.seed);
        SharedCbcsExecutor {
            table,
            cache,
            config,
            algo: Box::new(Sfs),
            rng,
            data_bounds,
            scratch: QueryScratch::new(),
        }
    }

    /// Replaces the in-memory skyline component.
    pub fn with_algorithm(mut self, algo: Box<dyn SkylineAlgorithm>) -> Self {
        self.algo = algo;
        self
    }

    /// Handle to the shared cache.
    pub fn cache(&self) -> &SharedCache {
        &self.cache
    }
}

impl Executor for SharedCbcsExecutor<'_> {
    fn name(&self) -> String {
        format!("SharedCBCS[{}]", self.config.mpr.label())
    }

    fn execute(&mut self, req: &QueryRequest) -> Result<QueryOutcome> {
        let c = &req.constraints;
        check_dims(self.table, c)?;
        let exec = req.exec.unwrap_or(self.config.exec);
        let algo: &dyn SkylineAlgorithm = match req.algo {
            Some(choice) => choice.algorithm(),
            None => self.algo.as_ref(),
        };

        let mut stats = QueryStats::default();
        let mut rec = if req.record { Some(QueryRecorder::new()) } else { None };
        let mut probe = Probe::new(&mut stats, rec.as_mut());

        // Phase 1 (read lock): search + clone the selected item out.
        // Timings and counters are collected into locals under the guard
        // and published once it drops — recorder calls are designated
        // expensive (guard-hold-span), so nothing observes telemetry
        // latency while holding the shared lock.
        let (selection, lookup_elapsed, analysis_elapsed, n_candidates, overlap_scans) = {
            let cache = self.cache.inner.read(); // lock-order: read
            let t0 = Stopwatch::start();
            let lookup = cache.lookup(c);
            let candidates = lookup.items;
            let lookup_elapsed = t0.elapsed();

            let t1 = Stopwatch::start();
            let picked = self
                .config
                .strategy
                .select(&candidates, c, &self.data_bounds, &mut self.rng)
                .and_then(|idx| candidates.get(idx))
                .map(|&item| {
                    let extra: Vec<Point> = if self.config.extra_items > 0 {
                        let mut others: Vec<_> =
                            candidates.iter().filter(|it| it.id != item.id).collect();
                        others.sort_by(|a, b| {
                            c.overlap_volume(&b.constraints)
                                .total_cmp(&c.overlap_volume(&a.constraints))
                        });
                        others
                            .into_iter()
                            .take(self.config.extra_items)
                            .flat_map(|it| it.skyline.to_points())
                            .collect()
                    } else {
                        Vec::new()
                    };
                    (item.id, item.constraints.clone(), item.skyline.clone(), extra)
                });
            (picked, lookup_elapsed, t1.elapsed(), candidates.len() as u64, lookup.scans)
        };
        probe.record_span(Phase::CacheLookup, lookup_elapsed);
        probe.record_span(Phase::CaseAnalysis, analysis_elapsed);
        probe.add_counter(names::CACHE_CANDIDATES, n_candidates);
        probe.add_counter(names::CACHE_OVERLAP_SCANS, overlap_scans);

        // Phase 2 (no lock): plan, fetch, merge, skyline. The executor's
        // own scratch buffers carry the block path — they are private to
        // this session, so the shared cache stays the only contended
        // state.
        let skyline = match selection {
            None => {
                probe.add_counter(names::CACHE_MISSES, 1);
                if self.config.block_path {
                    query_naive(self.table, algo, exec, c, &mut self.scratch, &mut probe)
                } else {
                    query_naive_legacy(self.table, algo, exec, c, &mut probe)
                }
            }
            Some((item_id, old_c, old_sky, extra)) => {
                let t2 = Stopwatch::start();
                let plan = plan_with_extra(&old_c, &old_sky, &extra, c, self.config.mpr);
                probe.record_span(Phase::MprCompute, t2.elapsed());
                probe.add_counter(names::CACHE_HITS, 1);
                probe.stats.cache_hit = true;
                self.cache.inner.write().touch(item_id); // lock-order: write
                if self.config.block_path {
                    query_planned(self.table, algo, exec, plan, &mut self.scratch, &mut probe)
                } else {
                    query_planned_legacy(self.table, algo, exec, plan, &mut probe)
                }
            }
        };
        probe.add_counter(names::SKYLINE_RESULT_SIZE, skyline.len() as u64);

        // Phase 3 (write lock): publish the result. Same discipline as
        // Phase 1: the guard covers only the insert; counters go out
        // after it drops.
        if self.config.cache_results {
            let evicted = {
                let mut cache = self.cache.inner.write(); // lock-order: write
                let evictions_before = cache.evictions();
                cache.insert(c.clone(), &skyline);
                cache.evictions() - evictions_before
            };
            probe.add_counter(names::CACHE_INSERTIONS, 1);
            if evicted > 0 {
                probe.add_counter(names::CACHE_EVICTIONS, evicted);
            }
        }

        Ok(QueryOutcome { skyline, stats, report: rec.map(QueryRecorder::into_report) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycache_geom::{Constraints, Point};
    use skycache_storage::TableConfig;

    fn run(ex: &mut impl Executor, c: &Constraints) -> crate::engine::QueryResult {
        ex.execute(&QueryRequest::new(c.clone())).unwrap().into_result()
    }

    fn table() -> Table {
        let points: Vec<Point> = (0..20)
            .flat_map(|i| {
                (0..20).map(move |j| Point::from(vec![f64::from(i) / 10.0, f64::from(j) / 10.0]))
            })
            .collect();
        Table::build(points, TableConfig::default()).unwrap()
    }

    #[test]
    fn second_user_hits_first_users_result() {
        let t = table();
        let shared = SharedCache::new(2, &CbcsConfig::default());
        let mut alice = SharedCbcsExecutor::new(&t, shared.clone(), CbcsConfig::default());
        let mut bob = SharedCbcsExecutor::new(&t, shared.clone(), CbcsConfig::default());

        let c = Constraints::from_pairs(&[(0.2, 1.0), (0.2, 1.0)]).unwrap();
        let r1 = run(&mut alice, &c);
        assert!(!r1.stats.cache_hit);

        let r2 = run(&mut bob, &c);
        assert!(r2.stats.cache_hit, "bob must hit alice's cached result");
        assert_eq!(r2.skyline, r1.skyline);
        assert_eq!(shared.len(), 2); // both results cached
    }

    #[test]
    fn concurrent_users_stay_correct() {
        let t = table();
        let shared = SharedCache::new(2, &CbcsConfig::default());
        let queries: Vec<Constraints> = (0..8)
            .map(|i| {
                let lo = f64::from(i) * 0.05;
                Constraints::from_pairs(&[(lo, lo + 1.0), (0.1, 1.4)]).unwrap()
            })
            .collect();

        // Reference answers, computed single-threaded.
        let mut reference = Vec::new();
        {
            let mut ex = crate::engine::BaselineExecutor::new(&t);
            for c in &queries {
                let mut sky = run(&mut ex, c).skyline;
                sky.sort_by_key(|p| (p[0].to_bits(), p[1].to_bits()));
                reference.push(sky);
            }
        }

        std::thread::scope(|scope| {
            for worker in 0..4 {
                let t = &t;
                let shared = shared.clone();
                let queries = &queries;
                let reference = &reference;
                scope.spawn(move || {
                    let config = CbcsConfig { seed: worker as u64, ..Default::default() };
                    let mut ex = SharedCbcsExecutor::new(t, shared, config);
                    for _round in 0..3 {
                        for (c, want) in queries.iter().zip(reference) {
                            let mut got = run(&mut ex, c).skyline;
                            got.sort_by_key(|p| (p[0].to_bits(), p[1].to_bits()));
                            assert_eq!(&got, want, "worker {worker}");
                        }
                    }
                });
            }
        });
        assert!(shared.len() >= queries.len());
    }
}
