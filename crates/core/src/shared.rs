//! Multi-user CBCS: a thread-safe cache shared by concurrent executors.
//!
//! The paper's second workload models "independent queries in a
//! multi-user system" — many users benefiting from one cache. This module
//! provides that deployment shape: a [`SharedCache`] shared by one
//! [`SharedCbcsExecutor`] per user/session (constructed through
//! [`crate::service::Service::session`]).
//!
//! # Epoch/snapshot protocol
//!
//! The cache state is held twice:
//!
//! * a **master** copy behind a `RwLock` — the authoritative write side
//!   every mutation (`touch`, `insert`) goes through;
//! * a **published snapshot** — an `Arc<Cache>` behind an `RwLock`,
//!   replaced wholesale by `insert` (clone-and-publish), never mutated
//!   in place.
//!
//! Readers call [`SharedCache::snapshot`], which clones the `Arc` under
//! a momentary read lock and releases it before any lookup work begins:
//! the expensive cache search, case analysis, planning, fetching and the
//! skyline computation all run against the immutable snapshot with *no*
//! lock held, so concurrent lookups never serialize on the write side and
//! an in-flight insert never blocks them. A monotone epoch counter is
//! bumped with every publication so observers can tell snapshots apart
//! without comparing contents; because the snapshot is swapped as a whole
//! `Arc`, a reader sees either the pre-insert or the post-insert cache,
//! never a torn intermediate (model-checked in
//! `crates/core/tests/model_serve.rs`).
//!
//! `touch` (LRU bookkeeping on a hit) deliberately mutates only the
//! master: replacement decisions made under the master lock always see
//! it, and skipping republication keeps the hit path O(1) instead of
//! O(cache size). Snapshots therefore carry slightly stale recency
//! metadata — never stale results.
//!
//! Lock order is `master → snap`, only ever in that direction (the
//! publication happens nested under the master guard so two racing
//! inserts cannot publish out of order). Telemetry (spans/counters) is
//! collected into locals and published after guards drop — skylint's
//! `guard-hold-span` rule enforces that no guard is live across a
//! recorder call. A cached item may be evicted between the snapshot read
//! and the write phase; that is benign (the executor works on its own
//! clone, and `touch` on a gone item is a no-op).

use rand::rngs::StdRng;
use rand::SeedableRng;

// Shim sync primitives: identical to `std`/`parking_lot` in production,
// schedulable under a `skycheck::Explorer` model run (see DESIGN.md §15).
use skycheck::sync::{Arc, AtomicU64, Ordering, RwLock};

use skycache_algos::{Sfs, SkylineAlgorithm};
use skycache_geom::{Aabb, Constraints, Point, PointBlock};
use skycache_obs::{names, Phase, QueryRecorder, Recorder};
use skycache_storage::Table;

use crate::cache::{Cache, ItemCost};
use crate::cases::{plan_composed, plan_with_extra};
use crate::clock::Stopwatch;
use crate::engine::{
    check_dims, query_naive, query_naive_legacy, query_planned, query_planned_legacy, CbcsConfig,
    Executor, Probe, QueryOutcome, QueryRequest, QueryScratch, QueryStats,
};
use crate::stability::{classify, Overlap};
use crate::Result;

/// Write side plus published snapshot; see the module docs for the
/// protocol. Private so no caller can reach a raw lock or its guard —
/// all access flows through the sealed [`SharedCache`] methods.
struct SharedCacheInner {
    /// Authoritative cache state; every mutation happens here first.
    /// A `RwLock` so metadata reads (`len`, `with_read`) stay shared and
    /// re-entrant; the query path never read-locks it — it reads `snap`.
    master: RwLock<Cache>,
    /// Immutable snapshot readers clone; replaced wholesale on insert.
    snap: RwLock<Arc<Cache>>,
    /// Publication counter; bumped once per snapshot swap.
    epoch: AtomicU64,
}

/// A cache shared between executors (and threads), sealed behind an
/// epoch/snapshot read protocol.
///
/// Cloning the handle is cheap and shares the same underlying cache.
#[derive(Clone)]
pub struct SharedCache {
    inner: Arc<SharedCacheInner>,
}

impl SharedCache {
    /// Creates a shared cache with the capacity/policy of `config`.
    pub fn new(dims: usize, config: &CbcsConfig) -> Self {
        let master = Cache::with_capacity(dims, config.capacity, config.policy);
        let snap = Arc::new(master.clone());
        SharedCache {
            inner: Arc::new(SharedCacheInner {
                master: RwLock::new(master),
                snap: RwLock::new(snap),
                epoch: AtomicU64::new(0),
            }),
        }
    }

    /// The currently published snapshot.
    ///
    /// The internal read lock is held only for the `Arc` clone — the
    /// returned cache is immutable and can be searched for as long as
    /// the caller likes without blocking writers.
    pub fn snapshot(&self) -> Arc<Cache> {
        self.inner.snap.read().clone() // lock-order: read
    }

    /// The publication epoch: how many snapshots have been published.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Number of cached items (authoritative, reads the master).
    pub fn len(&self) -> usize {
        self.inner.master.read().len() // lock-order: read
    }

    /// Whether the cache is empty (authoritative, reads the master).
    pub fn is_empty(&self) -> bool {
        self.inner.master.read().is_empty() // lock-order: read
    }

    /// Dimensionality of the cached constraint space.
    pub fn dims(&self) -> usize {
        self.inner.master.read().dims() // lock-order: read
    }

    /// Runs a closure with read access to the authoritative cache state.
    ///
    /// This sees master-side bookkeeping (`use_count`, evictions) that
    /// published snapshots deliberately omit. The closure must stay
    /// cheap: it runs under the master read lock (shared and re-entrant,
    /// so nested `with_read` is safe).
    pub fn with_read<R>(&self, f: impl FnOnce(&Cache) -> R) -> R {
        f(&self.inner.master.read()) // lock-order: read
    }

    /// Records a cache hit on the master (LRU bookkeeping only — no
    /// republication, see the module docs). A no-op if the item has
    /// been evicted meanwhile.
    pub(crate) fn touch(&self, id: u64) {
        // skylint: allow(lock-order) — the callee is `Cache::touch` on the guard's own target (lock-free); the name-match to this very method is not a nested acquisition.
        self.inner.master.write().touch(id); // lock-order: write
    }

    /// Records an exact-hit demand in the master's admission sketch
    /// (sketch bookkeeping only — the item store is unchanged, so like
    /// [`SharedCache::touch`] this does not republish).
    pub(crate) fn note_demand(&self, constraints: &Constraints) {
        // skylint: allow(lock-order) — the callee is `Cache::note_demand` on the guard's own target (lock-free); the name-match to this very method is not a nested acquisition.
        self.inner.master.write().note_demand(constraints); // lock-order: write
    }

    /// Inserts a result into the master, publishes a fresh snapshot and
    /// bumps the epoch. Reports whether the admission gate admitted the
    /// item and how many items the insert evicted/rejected.
    pub(crate) fn insert_and_publish(
        &self,
        constraints: Constraints,
        skyline: &[Point],
        cost: ItemCost,
    ) -> PublishOutcome {
        // skylint: allow(lock-order) — `master.insert_with_cost` is a `Cache` method on the guard's own target (lock-free); the bare-name matches to Table/RStarTree/ColumnIndex inserts never run under this guard.
        let mut master = self.inner.master.write(); // lock-order: write
        let evictions_before = master.evictions();
        let rejects_before = master.admission_rejects();
        let admitted = master.insert_with_cost(constraints, skyline, cost).is_some();
        let evicted = master.evictions() - evictions_before;
        let rejected = master.admission_rejects() - rejects_before;
        // Publish nested under the master guard: racing inserts publish
        // in master order, so a newer snapshot is never overwritten by
        // an older one. A rejected insert still publishes — the TinyLFU
        // sketch occupancy changed and the epoch must cover it.
        let published = Arc::new(master.clone());
        *self.inner.snap.write() = published; // lock-order: write
        self.inner.epoch.fetch_add(1, Ordering::Release);
        PublishOutcome { admitted, evicted, rejected }
    }
}

/// What [`SharedCache::insert_and_publish`] did, reported after the
/// guards drop so telemetry never runs under a lock.
pub(crate) struct PublishOutcome {
    /// Whether the item passed the admission gate and was stored.
    pub admitted: bool,
    /// Items the insert evicted.
    pub evicted: u64,
    /// Insert attempts the admission gate rejected (0 or 1 here).
    pub rejected: u64,
}

/// A per-user CBCS executor over a [`SharedCache`].
///
/// Constructed through [`crate::service::Service::session`]; the raw
/// constructor is crate-private so every concurrent deployment goes
/// through the service layer (singleflight, negative cache, snapshot
/// reads) rather than wiring executors ad hoc.
pub struct SharedCbcsExecutor<'t> {
    table: &'t Table,
    cache: SharedCache,
    config: CbcsConfig,
    algo: Box<dyn SkylineAlgorithm>,
    rng: StdRng,
    data_bounds: Aabb,
    scratch: QueryScratch,
}

impl<'t> SharedCbcsExecutor<'t> {
    /// Creates an executor bound to an existing shared cache.
    ///
    /// # Panics
    /// Panics if the cache and table dimensionalities differ.
    pub(crate) fn new(table: &'t Table, cache: SharedCache, config: CbcsConfig) -> Self {
        // Hoisted out of the assert so the lock provably drops before
        // the panic formatting machinery runs.
        let cache_dims = cache.dims();
        assert_eq!(cache_dims, table.dims(), "cache/table dimensionality mismatch");
        let data_bounds = Aabb::bounding(table.all_points())
            // skylint: allow(no-panic-paths) — Table::build rejects empty point sets.
            .expect("tables are non-empty");
        let rng = StdRng::seed_from_u64(config.seed);
        SharedCbcsExecutor {
            table,
            cache,
            config,
            algo: Box::new(Sfs),
            rng,
            data_bounds,
            scratch: QueryScratch::new(),
        }
    }

    /// Replaces the in-memory skyline component.
    pub fn with_algorithm(mut self, algo: Box<dyn SkylineAlgorithm>) -> Self {
        self.algo = algo;
        self
    }

    /// Handle to the shared cache.
    pub fn cache(&self) -> &SharedCache {
        &self.cache
    }
}

impl Executor for SharedCbcsExecutor<'_> {
    fn name(&self) -> String {
        format!("SharedCBCS[{}]", self.config.mpr.label())
    }

    fn execute(&mut self, req: &QueryRequest) -> Result<QueryOutcome> {
        let c = &req.constraints;
        check_dims(self.table, c)?;
        let exec = req.exec.unwrap_or(self.config.exec);
        let algo: &dyn SkylineAlgorithm = match req.algo {
            Some(choice) => choice.algorithm(),
            None => self.algo.as_ref(),
        };

        let mut stats = QueryStats::default();
        let mut rec = if req.record { Some(QueryRecorder::new()) } else { None };
        let mut probe = Probe::new(&mut stats, rec.as_mut());

        // Phase 1 (lock-free): search the published snapshot and clone
        // the selected item(s) out. The snapshot is an immutable `Arc`
        // clone, so no lock is held across the search — concurrent
        // lookups never serialize on the cache write side.
        let (selection, lookup_elapsed, analysis_elapsed, n_candidates, overlap_scans) = {
            let cache = self.cache.snapshot();
            let t0 = Stopwatch::start();
            let lookup = cache.lookup_into(c, &mut self.scratch.lookup_ids);
            let ids: &[u64] = &self.scratch.lookup_ids;
            let lookup_elapsed = t0.elapsed();

            let t1 = Stopwatch::start();
            let picked = self
                .config
                .strategy
                .select_indexed(
                    ids.len(),
                    // skylint: allow(no-panic-paths) — `lookup_into` only emits ids present in the items map, and the cache is not mutated between lookup and resolution.
                    |i| cache.get(ids[i]).expect("lookup ids are live"),
                    c,
                    &self.data_bounds,
                    &mut self.rng,
                )
                .map(|idx| {
                    // skylint: allow(no-panic-paths) — `lookup_into` only emits ids present in the items map, and the cache is not mutated between lookup and resolution.
                    let primary = cache.get(ids[idx]).expect("lookup ids are live");
                    let extra: Vec<Point> = if self.config.extra_items > 0 {
                        let mut others: Vec<u64> =
                            ids.iter().copied().filter(|&id| id != primary.id).collect();
                        others.sort_by(|&a, &b| {
                            let va =
                                cache.get(a).map_or(0.0, |it| c.overlap_volume(&it.constraints));
                            let vb =
                                cache.get(b).map_or(0.0, |it| c.overlap_volume(&it.constraints));
                            vb.total_cmp(&va)
                        });
                        others
                            .into_iter()
                            .take(self.config.extra_items)
                            .filter_map(|id| cache.get(id))
                            .flat_map(|it| it.skyline.to_points())
                            .collect()
                    } else {
                        Vec::new()
                    };
                    // Compositional answering (DESIGN.md §17.3): clone the
                    // cover-ordered contributors out of the snapshot so the
                    // expensive composition itself runs in phase 2 with no
                    // snapshot pinned. The single-item fallback reuses
                    // `parts[0]`, so a failed composition costs nothing
                    // beyond these clones.
                    let compose = self.config.compose
                        && self.config.compose_items >= 2
                        && ids.len() >= 2
                        && !matches!(
                            classify(&primary.constraints, c),
                            Overlap::Exact | Overlap::CaseB { .. }
                        );
                    let mut parts: Vec<(u64, Constraints, PointBlock)> = Vec::new();
                    parts.push((primary.id, primary.constraints.clone(), primary.skyline.clone()));
                    if compose {
                        for &id in ids {
                            if parts.len() >= self.config.compose_items {
                                break;
                            }
                            if id == primary.id {
                                continue;
                            }
                            // skylint: allow(no-panic-paths) — `lookup_into` only emits ids present in the items map, and the cache is not mutated between lookup and resolution.
                            let item = cache.get(id).expect("lookup ids are live");
                            parts.push((item.id, item.constraints.clone(), item.skyline.clone()));
                        }
                    }
                    (parts, extra)
                });
            (picked, lookup_elapsed, t1.elapsed(), ids.len() as u64, lookup.scans)
        };
        probe.record_span(Phase::CacheLookup, lookup_elapsed);
        probe.record_span(Phase::CaseAnalysis, analysis_elapsed);
        probe.add_counter(names::CACHE_CANDIDATES, n_candidates);
        probe.add_counter(names::CACHE_OVERLAP_SCANS, overlap_scans);

        // Phase 2 (no lock): plan, fetch, merge, skyline. The executor's
        // own scratch buffers carry the block path — they are private to
        // this session, so the shared cache stays the only contended
        // state.
        let skyline = match selection {
            None => {
                probe.add_counter(names::CACHE_MISSES, 1);
                if self.config.block_path {
                    query_naive(self.table, algo, exec, c, &mut self.scratch, &mut probe)
                } else {
                    query_naive_legacy(self.table, algo, exec, c, &mut probe)
                }
            }
            Some((parts, extra)) => {
                probe.add_counter(names::CACHE_HITS, 1);
                probe.stats.cache_hit = true;

                let t2 = Stopwatch::start();
                let composed = if parts.len() >= 2 {
                    let refs: Vec<(&Constraints, &PointBlock)> =
                        parts.iter().map(|(_, pc, sky)| (pc, sky)).collect();
                    plan_composed(&refs, c, self.config.mpr, &self.data_bounds)
                } else {
                    None
                };
                let plan = match composed {
                    Some(cp) => {
                        probe.stats.composed_items = cp.items_used;
                        probe.stats.cover_fraction = cp.cover_fraction;
                        probe.add_counter(names::CACHE_COMPOSED_HITS, 1);
                        probe.set_gauge(names::CACHE_COVER_FRACTION, cp.cover_fraction);
                        // Contributors are the first `items_used` parts
                        // (cover order, primary first).
                        for (id, _, _) in parts.iter().take(cp.items_used) {
                            self.cache.touch(*id);
                        }
                        cp.plan
                    }
                    None => {
                        let (primary_id, old_c, old_sky) =
                            // skylint: allow(no-panic-paths) — the selection is built with the primary as its first part, so the vector is never empty here.
                            parts.first().expect("selection carries the primary item");
                        probe.stats.composed_items = 1;
                        self.cache.touch(*primary_id);
                        plan_with_extra(old_c, old_sky, &extra, c, self.config.mpr)
                    }
                };
                probe.record_span(Phase::MprCompute, t2.elapsed());

                if self.config.block_path {
                    query_planned(self.table, algo, exec, plan, &mut self.scratch, &mut probe)
                } else {
                    query_planned_legacy(self.table, algo, exec, plan, &mut probe)
                }
            }
        };
        probe.add_counter(names::SKYLINE_RESULT_SIZE, skyline.len() as u64);

        // Phase 3 (write): record the result on the master and publish a
        // fresh snapshot. The guards live inside `insert_and_publish`;
        // counters go out after it returns.
        if self.config.cache_results {
            if matches!(probe.stats.case, Some(Overlap::Exact)) {
                // Already cached under these very constraints:
                // re-inserting would duplicate the item and evict an
                // innocent victim. Record the demand for admission only.
                self.cache.note_demand(c);
            } else {
                let cost = ItemCost {
                    points_read: probe.stats.points_read,
                    fetch_ns: probe.stats.fetch_sim_ns,
                };
                let outcome = self.cache.insert_and_publish(c.clone(), &skyline, cost);
                if outcome.admitted {
                    probe.add_counter(names::CACHE_INSERTIONS, 1);
                }
                if outcome.evicted > 0 {
                    probe.add_counter(names::CACHE_EVICTIONS, outcome.evicted);
                }
                if outcome.rejected > 0 {
                    probe.add_counter(names::CACHE_ADMISSION_REJECTS, outcome.rejected);
                }
            }
        }

        Ok(QueryOutcome { skyline, stats, report: rec.map(QueryRecorder::into_report) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycache_geom::{Constraints, Point};
    use skycache_storage::TableConfig;

    fn run(ex: &mut impl Executor, c: &Constraints) -> crate::engine::QueryResult {
        ex.execute(&QueryRequest::new(c.clone())).unwrap().into_result()
    }

    fn table() -> Table {
        let points: Vec<Point> = (0..20)
            .flat_map(|i| {
                (0..20).map(move |j| Point::from(vec![f64::from(i) / 10.0, f64::from(j) / 10.0]))
            })
            .collect();
        Table::build(points, TableConfig::default()).unwrap()
    }

    #[test]
    fn second_user_hits_first_users_result() {
        let t = table();
        let shared = SharedCache::new(2, &CbcsConfig::default());
        let mut alice = SharedCbcsExecutor::new(&t, shared.clone(), CbcsConfig::default());
        let mut bob = SharedCbcsExecutor::new(&t, shared.clone(), CbcsConfig::default());

        let c = Constraints::from_pairs(&[(0.2, 1.0), (0.2, 1.0)]).unwrap();
        let r1 = run(&mut alice, &c);
        assert!(!r1.stats.cache_hit);

        let r2 = run(&mut bob, &c);
        assert!(r2.stats.cache_hit, "bob must hit alice's cached result");
        assert_eq!(r2.skyline, r1.skyline);
        // Bob's exact hit does not re-insert: the result is already
        // cached under the identical constraints.
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn epoch_advances_once_per_insert_and_snapshots_are_stable() {
        let t = table();
        let shared = SharedCache::new(2, &CbcsConfig::default());
        assert_eq!(shared.epoch(), 0);
        let before = shared.snapshot();
        assert!(before.is_empty());

        let mut ex = SharedCbcsExecutor::new(&t, shared.clone(), CbcsConfig::default());
        let c = Constraints::from_pairs(&[(0.2, 1.0), (0.2, 1.0)]).unwrap();
        run(&mut ex, &c);

        // One execute on a miss = one insert = one publication.
        assert_eq!(shared.epoch(), 1);
        assert_eq!(shared.snapshot().len(), 1);
        // The pre-insert snapshot is immutable: still empty.
        assert!(before.is_empty());
    }

    #[test]
    fn touch_does_not_republish() {
        let t = table();
        let shared = SharedCache::new(2, &CbcsConfig::default());
        let mut ex = SharedCbcsExecutor::new(&t, shared.clone(), CbcsConfig::default());
        let c = Constraints::from_pairs(&[(0.2, 1.0), (0.2, 1.0)]).unwrap();
        run(&mut ex, &c); // miss + insert → epoch 1
        let config = CbcsConfig { cache_results: false, ..CbcsConfig::default() };
        let mut ro = SharedCbcsExecutor::new(&t, shared.clone(), config);
        let r = run(&mut ro, &c); // hit (touch), result not cached
        assert!(r.stats.cache_hit);
        assert_eq!(shared.epoch(), 1, "a hit must not publish a snapshot");
        // But the master saw the LRU bookkeeping.
        shared.with_read(|cache| {
            assert_eq!(cache.iter().map(|it| it.use_count).sum::<u64>(), 1);
        });
    }

    #[test]
    fn concurrent_users_stay_correct() {
        let t = table();
        let shared = SharedCache::new(2, &CbcsConfig::default());
        let queries: Vec<Constraints> = (0..8)
            .map(|i| {
                let lo = f64::from(i) * 0.05;
                Constraints::from_pairs(&[(lo, lo + 1.0), (0.1, 1.4)]).unwrap()
            })
            .collect();

        // Reference answers, computed single-threaded.
        let mut reference = Vec::new();
        {
            let mut ex = crate::engine::BaselineExecutor::new(&t);
            for c in &queries {
                let mut sky = run(&mut ex, c).skyline;
                sky.sort_by_key(|p| (p[0].to_bits(), p[1].to_bits()));
                reference.push(sky);
            }
        }

        std::thread::scope(|scope| {
            for worker in 0..4 {
                let t = &t;
                let shared = shared.clone();
                let queries = &queries;
                let reference = &reference;
                scope.spawn(move || {
                    let config = CbcsConfig { seed: worker as u64, ..Default::default() };
                    let mut ex = SharedCbcsExecutor::new(t, shared, config);
                    for _round in 0..3 {
                        for (c, want) in queries.iter().zip(reference) {
                            let mut got = run(&mut ex, c).skyline;
                            got.sort_by_key(|p| (p[0].to_bits(), p[1].to_bits()));
                            assert_eq!(&got, want, "worker {worker}");
                        }
                    }
                });
            }
        });
        assert!(shared.len() >= queries.len());
    }
}
