use std::fmt;

use skycache_geom::GeomError;
use skycache_storage::StorageError;

/// Errors produced by the CBCS engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Query dimensionality differs from the table's.
    DimensionMismatch {
        /// The table's dimensionality.
        expected: usize,
        /// The query's dimensionality.
        actual: usize,
    },
    /// Underlying storage failure.
    Storage(StorageError),
    /// Underlying geometry failure.
    Geom(GeomError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionMismatch { expected, actual } => {
                write!(f, "query dimensionality {actual} != table dimensionality {expected}")
            }
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Geom(e) => write!(f, "geometry error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Geom(e) => Some(e),
            CoreError::DimensionMismatch { .. } => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<GeomError> for CoreError {
    fn from(e: GeomError) -> Self {
        CoreError::Geom(e)
    }
}
