//! The multi-tenant query service: [`Service`], [`Session`] and the
//! production-cache machinery around the shared CBCS executor.
//!
//! The paper evaluates the cache one query at a time; a deployed service
//! runs many sessions against one cache. This module is the concurrent
//! entry point for that shape — ad-hoc `SharedCbcsExecutor` wiring is
//! crate-private, so every multi-user deployment flows through here and
//! picks up three protections the raw executor does not have:
//!
//! 1. **Snapshot reads** — lookups run against the epoch-published
//!    `Arc<Cache>` snapshot (see [`crate::shared`]), so concurrent
//!    sessions never serialize on the cache write lock.
//! 2. **Singleflight coalescing** — identical in-flight queries (same
//!    canonicalized constraints and per-query overrides) compute once;
//!    the joiners block on the leader's flight slot and share its
//!    [`QueryOutcome`]. Keyed by [`flight_key`]'s canonical encoding so
//!    `-0.0`/`0.0` bound spellings coalesce.
//! 3. **Negative caching** — constraint regions the per-dimension
//!    indexes prove empty ([`Table::probe_region_empty`]) are remembered
//!    with a deterministic (seeded-jitter) TTL in logical ticks, and
//!    answered with the empty skyline without planning, locking a
//!    flight, or touching the heap.
//!
//! All synchronization uses the `skycheck::sync` shims, so the whole
//! protocol is model-checkable (`crates/core/tests/model_serve.rs`
//! explores the singleflight and epoch-publication invariants
//! exhaustively at preemption bound 2).
//!
//! Lock order is `flights → slot → (master → snap)`: the flight table
//! lock is only ever held to look up/insert/remove a flight (the leader
//! acquires its fresh slot while still holding the table lock, so a
//! joiner can never observe a registered flight whose slot is free);
//! the slot is held across the leader's compute by design — that is the
//! coalescing point — and the cache locks live below it inside
//! [`SharedCbcsExecutor::execute`].

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// Shim sync primitives: identical to `std` in production, schedulable
// under a `skycheck::Explorer` model run (see DESIGN.md §15–16).
use skycheck::sync::{Arc, AtomicU64, Mutex, Ordering};

use skycache_geom::Constraints;
use skycache_obs::{names, QueryRecorder, Recorder};
use skycache_storage::Table;

use crate::engine::{
    check_dims, AlgoChoice, CbcsConfig, ExecMode, Executor, QueryOutcome, QueryRequest, QueryStats,
};
use crate::shared::{SharedCache, SharedCbcsExecutor};
use crate::Result;

/// Bound on remembered provably-empty regions; expired entries are
/// purged lazily once the table grows past it.
const NEGATIVE_CAPACITY: usize = 1024;

/// Service-level configuration: the per-session CBCS configuration plus
/// the production-cache knobs layered on top.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Configuration handed to every session's CBCS executor.
    pub cbcs: CbcsConfig,
    /// Coalesce identical in-flight queries through the singleflight
    /// table (on by default).
    pub coalesce: bool,
    /// Remember provably-empty constraint regions and answer them
    /// without computing (on by default).
    pub negative_cache: bool,
    /// Base lifetime of a negative entry, in logical ticks (one tick per
    /// query the service executes).
    pub negative_ttl: u64,
    /// Upper bound on the deterministic per-entry TTL jitter, drawn from
    /// a `cbcs.seed`-seeded generator so expiries de-synchronize without
    /// wall-clock randomness.
    pub negative_jitter: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cbcs: CbcsConfig::default(),
            coalesce: true,
            negative_cache: true,
            negative_ttl: 256,
            negative_jitter: 32,
        }
    }
}

impl ServiceConfig {
    /// Config with everything default except the CBCS layer.
    pub fn with_cbcs(cbcs: CbcsConfig) -> Self {
        ServiceConfig { cbcs, ..ServiceConfig::default() }
    }
}

/// Point-in-time counters of the service-layer fast paths.
///
/// `coalesced + negative_hits + computes` equals the number of executed
/// queries (every query either joins a flight, hits the negative cache,
/// or computes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Queries that joined another session's in-flight computation.
    pub coalesced: u64,
    /// Queries answered from the negative cache.
    pub negative_hits: u64,
    /// Regions classified provably empty and remembered.
    pub negative_inserts: u64,
    /// Skyline computations actually executed (misses + leaders).
    pub computes: u64,
    /// Logical ticks elapsed (one per query executed while the negative
    /// cache is enabled — the TTL time base).
    pub ticks: u64,
}

impl ServiceMetrics {
    /// Publishes the counters through a [`Recorder`] under the canonical
    /// `serve.*` metric names.
    pub fn record_into(&self, rec: &mut dyn Recorder) {
        rec.add_counter(names::SERVE_COALESCED, self.coalesced);
        rec.add_counter(names::SERVE_NEGATIVE_HITS, self.negative_hits);
        rec.add_counter(names::SERVE_NEGATIVE_INSERTS, self.negative_inserts);
        rec.add_counter(names::SERVE_COMPUTES, self.computes);
    }
}

/// One in-flight computation: the leader holds `slot` while computing
/// and stores the outcome before releasing it; joiners block on `slot`
/// and read the stored outcome. `None` after release means the leader
/// failed — joiners fall back to computing themselves.
struct Flight {
    slot: Mutex<Option<QueryOutcome>>,
}

/// Negative cache: canonical constraint key → expiry tick.
struct NegativeCache {
    entries: BTreeMap<Vec<u64>, u64>,
    /// Deterministic jitter source (seeded from the service config).
    rng: StdRng,
}

/// State shared by the service handle and every session.
struct ServiceShared {
    cache: SharedCache,
    /// Singleflight table: canonical request key → in-flight computation.
    flights: Mutex<BTreeMap<Vec<u64>, Arc<Flight>>>,
    negative: Mutex<NegativeCache>,
    /// Logical clock: one tick per executed query, the time base for
    /// negative-entry TTLs (no wall clock — deterministic under test).
    ticks: AtomicU64,
    sessions: AtomicU64,
    coalesced: AtomicU64,
    negative_hits: AtomicU64,
    negative_inserts: AtomicU64,
    computes: AtomicU64,
}

/// The multi-tenant query service over one table and one shared cache.
///
/// Cheap to share by reference; spawn one [`Session`] per client/thread:
///
/// ```
/// use skycache_core::service::{Service, ServiceConfig};
/// use skycache_core::QueryRequest;
/// use skycache_geom::{Constraints, Point};
/// use skycache_storage::{Table, TableConfig};
///
/// let points: Vec<Point> =
///     (0..100).map(|i| Point::from(vec![f64::from(i % 7), f64::from(i % 11)])).collect();
/// let table = Table::build(points, TableConfig::default()).unwrap();
/// let service = Service::open(&table, ServiceConfig::default());
///
/// let mut session = service.session();
/// let c = Constraints::from_pairs(&[(1.0, 6.0), (1.0, 9.0)]).unwrap();
/// let outcome = session.execute(&QueryRequest::new(c)).unwrap();
/// assert!(!outcome.skyline.is_empty());
/// ```
pub struct Service<'t> {
    table: &'t Table,
    config: ServiceConfig,
    shared: Arc<ServiceShared>,
}

impl<'t> Service<'t> {
    /// Opens a service over `table` with a fresh shared cache.
    pub fn open(table: &'t Table, config: ServiceConfig) -> Self {
        let cache = SharedCache::new(table.dims(), &config.cbcs);
        let shared = Arc::new(ServiceShared {
            cache,
            flights: Mutex::new(BTreeMap::new()),
            negative: Mutex::new(NegativeCache {
                entries: BTreeMap::new(),
                rng: StdRng::seed_from_u64(config.cbcs.seed ^ 0x5EED_CAFE),
            }),
            ticks: AtomicU64::new(0),
            sessions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            negative_hits: AtomicU64::new(0),
            negative_inserts: AtomicU64::new(0),
            computes: AtomicU64::new(0),
        });
        Service { table, config, shared }
    }

    /// Creates a session: the per-client query handle.
    ///
    /// Sessions are `Send` and own their executor scratch; each gets a
    /// distinct deterministic seed derived from the configured one, so
    /// randomized search strategies de-correlate across sessions while
    /// staying reproducible.
    pub fn session(&self) -> Session<'t> {
        let idx = self.shared.sessions.fetch_add(1, Ordering::Relaxed);
        let mut cbcs = self.config.cbcs.clone();
        cbcs.seed = cbcs.seed.wrapping_add(idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let executor = SharedCbcsExecutor::new(self.table, self.shared.cache.clone(), cbcs);
        Session {
            table: self.table,
            config: self.config.clone(),
            shared: self.shared.clone(),
            executor,
        }
    }

    /// The table this service answers queries over.
    pub fn table(&self) -> &'t Table {
        self.table
    }

    /// Handle to the shared cache (snapshot reads, authoritative stats).
    pub fn cache(&self) -> &SharedCache {
        &self.shared.cache
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Insert attempts the cache's admission gate has rejected so far
    /// (authoritative, reads the master; always 0 unless the configured
    /// replacement policy is [`crate::ReplacementPolicy::TinyLfu`]).
    pub fn admission_rejects(&self) -> u64 {
        self.shared.cache.with_read(crate::cache::Cache::admission_rejects)
    }

    /// Snapshot of the service-layer counters.
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            negative_hits: self.shared.negative_hits.load(Ordering::Relaxed),
            negative_inserts: self.shared.negative_inserts.load(Ordering::Relaxed),
            computes: self.shared.computes.load(Ordering::Relaxed),
            ticks: self.shared.ticks.load(Ordering::Relaxed),
        }
    }
}

/// A per-client query handle over a [`Service`].
///
/// Owns its CBCS executor (scratch buffers, strategy RNG) so queries
/// from distinct sessions share only the service state. Obtained from
/// [`Service::session`]; also usable anywhere an [`Executor`] is.
pub struct Session<'t> {
    table: &'t Table,
    config: ServiceConfig,
    shared: Arc<ServiceShared>,
    executor: SharedCbcsExecutor<'t>,
}

impl Session<'_> {
    /// Answers one query through the service fast paths: negative cache,
    /// then singleflight, then the shared-cache CBCS executor.
    pub fn execute(&mut self, req: &QueryRequest) -> Result<QueryOutcome> {
        check_dims(self.table, &req.constraints)?;

        if self.config.negative_cache {
            // The logical TTL clock only runs while the negative cache
            // is on — it is the sole consumer, and skipping the atomic
            // otherwise keeps model-checked schedules small.
            let now = self.shared.ticks.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(outcome) = self.negative_lookup(req, now) {
                return Ok(outcome);
            }
            if self.table.probe_region_empty(&req.constraints.region()) {
                return Ok(self.negative_insert(req, now));
            }
        }

        // Recorded requests bypass coalescing: a joiner would otherwise
        // receive the leader's report (or none), and reports are
        // per-request property.
        if self.config.coalesce && !req.record {
            return self.execute_coalesced(req);
        }
        self.shared.computes.fetch_add(1, Ordering::Relaxed);
        self.executor.execute(req)
    }

    /// Singleflight path: lead a new flight or join an existing one.
    fn execute_coalesced(&mut self, req: &QueryRequest) -> Result<QueryOutcome> {
        let key = flight_key(&req.constraints, req.exec, req.algo);
        // skylint: allow(lock-order) — the `execute` called below is the field's concrete `SharedCbcsExecutor::execute` (flights-free); the bare-name match back to `Session::execute` is not a real call, and the table guard is dropped before any compute.
        let mut flights = self.shared.flights.lock();
        if let Some(flight) = flights.get(&key) {
            // Join: block on the leader's slot, then share its outcome.
            let flight = flight.clone();
            drop(flights);
            self.shared.coalesced.fetch_add(1, Ordering::Relaxed);
            let joined = flight.slot.lock().clone();
            return match joined {
                Some(outcome) => Ok(outcome),
                // The leader failed; compute independently.
                None => {
                    self.shared.computes.fetch_add(1, Ordering::Relaxed);
                    self.executor.execute(req)
                }
            };
        }
        // Lead: register the flight and take its slot *before* releasing
        // the table lock, so every later arrival joins instead of racing
        // to a second compute. The slot guard intentionally spans the
        // computation — that is the coalescing point; joiners block here
        // instead of redoing the work.
        let flight = Arc::new(Flight { slot: Mutex::new(None) });
        flights.insert(key.clone(), flight.clone());
        // skylint: allow(lock-order) — the compute under this slot guard is `SharedCbcsExecutor::execute`, which never touches the flights table; the slot→flights cycle only exists through the bare-name match to `Session::execute`, and the real flights re-lock at the end of this fn happens after the slot guard is dropped.
        let mut slot = flight.slot.lock();
        drop(flights);
        self.shared.computes.fetch_add(1, Ordering::Relaxed);
        // skylint: allow(guard-hold-span) — the flight slot guard exists to span this compute: it is private to this flight (never contended by unrelated queries), and joiners blocking on it is the designed coalescing behavior.
        let computed = self.executor.execute(req);
        if let Ok(outcome) = &computed {
            *slot = Some(outcome.clone());
        }
        drop(slot);
        self.shared.flights.lock().remove(&key);
        computed
    }

    /// Consults the negative cache; `Some` is a hit (the empty skyline).
    fn negative_lookup(&mut self, req: &QueryRequest, now: u64) -> Option<QueryOutcome> {
        let key = constraint_key(&req.constraints);
        let hit = {
            let mut neg = self.shared.negative.lock();
            match neg.entries.get(&key) {
                Some(&expires) if expires >= now => true,
                Some(_) => {
                    neg.entries.remove(&key);
                    false
                }
                None => false,
            }
        };
        if !hit {
            return None;
        }
        self.shared.negative_hits.fetch_add(1, Ordering::Relaxed);
        Some(empty_outcome(req, true))
    }

    /// Records a probed-empty region and returns the empty skyline.
    fn negative_insert(&mut self, req: &QueryRequest, now: u64) -> QueryOutcome {
        let key = constraint_key(&req.constraints);
        {
            let mut neg = self.shared.negative.lock();
            if neg.entries.len() >= NEGATIVE_CAPACITY {
                neg.entries.retain(|_, &mut expires| expires >= now);
            }
            let jitter = if self.config.negative_jitter == 0 {
                0
            } else {
                neg.rng.gen_range(0..=self.config.negative_jitter)
            };
            let expires = now.saturating_add(self.config.negative_ttl).saturating_add(jitter);
            neg.entries.insert(key, expires);
        }
        self.shared.negative_inserts.fetch_add(1, Ordering::Relaxed);
        empty_outcome(req, false)
    }
}

impl Executor for Session<'_> {
    fn name(&self) -> String {
        format!("Service[{}]", self.config.cbcs.mpr.label())
    }

    fn execute(&mut self, req: &QueryRequest) -> Result<QueryOutcome> {
        Session::execute(self, req)
    }
}

/// The outcome of a query proven empty without computing: the empty
/// skyline, one issued-and-empty range query in the stats, and — when
/// the request records — a report carrying the serve-side counter.
fn empty_outcome(req: &QueryRequest, from_negative_cache: bool) -> QueryOutcome {
    let stats =
        QueryStats { range_queries_issued: 1, range_queries_empty: 1, ..QueryStats::default() };
    let report = req.record.then(|| {
        let mut rec = QueryRecorder::new();
        if from_negative_cache {
            rec.add_counter(names::SERVE_NEGATIVE_HITS, 1);
        } else {
            rec.add_counter(names::SERVE_NEGATIVE_INSERTS, 1);
        }
        rec.into_report()
    });
    QueryOutcome { skyline: Vec::new(), stats, report }
}

/// Canonical bit-encoding of constraint bounds: `-0.0` folds onto `0.0`
/// so semantically identical regions key identically.
fn canonical_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

/// Canonical key of a constraint region (geometry only) — the negative
/// cache key: emptiness depends on the region, not on how the query
/// would execute.
fn constraint_key(c: &Constraints) -> Vec<u64> {
    let mut key = Vec::with_capacity(2 * c.dims());
    for dim in 0..c.dims() {
        key.push(canonical_bits(c.lo()[dim]));
        key.push(canonical_bits(c.hi()[dim]));
    }
    key
}

/// Canonical key of a full request — the singleflight key: two queries
/// may only share an outcome if the constraints *and* the per-query
/// overrides (execution mode, algorithm) agree.
fn flight_key(c: &Constraints, exec: Option<ExecMode>, algo: Option<AlgoChoice>) -> Vec<u64> {
    let mut key = constraint_key(c);
    match exec {
        None => key.push(u64::MAX),
        Some(ExecMode::Sequential) => key.push(0),
        Some(ExecMode::Parallel { lanes, dc_threshold }) => {
            key.push(1);
            key.push(lanes as u64);
            key.push(dc_threshold as u64);
        }
    }
    key.push(match algo {
        None => u64::MAX,
        Some(AlgoChoice::Sfs) => 0,
        Some(AlgoChoice::Bnl) => 1,
        Some(AlgoChoice::DivideConquer) => 2,
        Some(AlgoChoice::Salsa) => 3,
    });
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycache_geom::Point;
    use skycache_storage::TableConfig;

    fn table() -> Table {
        let points: Vec<Point> = (0..20)
            .flat_map(|i| {
                (0..20).map(move |j| Point::from(vec![f64::from(i) / 10.0, f64::from(j) / 10.0]))
            })
            .collect();
        Table::build(points, TableConfig::default()).unwrap()
    }

    #[test]
    fn sessions_share_the_cache() {
        let t = table();
        let service = Service::open(&t, ServiceConfig::default());
        let mut alice = service.session();
        let mut bob = service.session();
        let c = Constraints::from_pairs(&[(0.2, 1.0), (0.2, 1.0)]).unwrap();
        let r1 = alice.execute(&QueryRequest::new(c.clone())).unwrap();
        assert!(!r1.stats.cache_hit);
        let r2 = bob.execute(&QueryRequest::new(c)).unwrap();
        assert!(r2.stats.cache_hit, "bob must hit alice's cached result");
        assert_eq!(r2.skyline, r1.skyline);
    }

    #[test]
    fn provably_empty_region_is_negatively_cached() {
        let t = table();
        let service = Service::open(&t, ServiceConfig::default());
        let mut s = service.session();
        // Between grid coordinates: the per-dimension index proves no
        // row can fall in (0.11, 0.19).
        let c = Constraints::from_pairs(&[(0.11, 0.19), (0.11, 0.19)]).unwrap();
        let r1 = s.execute(&QueryRequest::new(c.clone())).unwrap();
        assert!(r1.skyline.is_empty());
        assert_eq!(r1.stats.range_queries_empty, 1);
        let r2 = s.execute(&QueryRequest::new(c).recorded()).unwrap();
        assert!(r2.skyline.is_empty());
        let report = r2.report.expect("recorded");
        assert_eq!(report.counter(names::SERVE_NEGATIVE_HITS), 1);
        let m = service.metrics();
        assert_eq!(m.negative_inserts, 1);
        assert_eq!(m.negative_hits, 1);
        assert_eq!(m.computes, 0, "no skyline computation for a provably-empty region");
        // Nothing was cached positively and nothing published.
        assert!(service.cache().is_empty());
        assert_eq!(service.cache().epoch(), 0);
    }

    #[test]
    fn negative_entries_expire_after_ttl() {
        let t = table();
        let config =
            ServiceConfig { negative_ttl: 2, negative_jitter: 0, ..ServiceConfig::default() };
        let service = Service::open(&t, config);
        let mut s = service.session();
        let empty = Constraints::from_pairs(&[(0.11, 0.19), (0.11, 0.19)]).unwrap();
        let busy = Constraints::from_pairs(&[(0.2, 1.0), (0.2, 1.0)]).unwrap();
        s.execute(&QueryRequest::new(empty.clone())).unwrap(); // insert at tick 1, expires 3
        s.execute(&QueryRequest::new(empty.clone())).unwrap(); // tick 2: hit
        s.execute(&QueryRequest::new(busy.clone())).unwrap(); // tick 3
        s.execute(&QueryRequest::new(busy)).unwrap(); // tick 4
        s.execute(&QueryRequest::new(empty)).unwrap(); // tick 5: expired → re-probed
        let m = service.metrics();
        assert_eq!(m.negative_hits, 1);
        assert_eq!(m.negative_inserts, 2, "expired entry must be re-probed and re-inserted");
    }

    #[test]
    fn negative_ttl_jitter_is_deterministic() {
        let t = table();
        let run = || {
            let service = Service::open(&t, ServiceConfig::default());
            let mut s = service.session();
            for i in 0..8 {
                let lo = 0.101 + f64::from(i) * 0.001;
                let c = Constraints::from_pairs(&[(lo, 0.109), (0.11, 0.19)]).unwrap();
                // Drive the ticks far enough that some entries expire.
                for _ in 0..40 {
                    s.execute(&QueryRequest::new(c.clone())).unwrap();
                }
            }
            service.metrics()
        };
        assert_eq!(run(), run(), "seeded jitter must reproduce exactly");
    }

    #[test]
    fn identical_concurrent_queries_coalesce() {
        let t = table();
        let service = Service::open(&t, ServiceConfig::default());
        let c = Constraints::from_pairs(&[(0.2, 1.3), (0.2, 1.3)]).unwrap();
        let outcomes: Vec<QueryOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let mut s = service.session();
                    let c = c.clone();
                    scope.spawn(move || s.execute(&QueryRequest::new(c)).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let first = &outcomes[0].skyline;
        for o in &outcomes {
            assert_eq!(&o.skyline, first, "joined outcomes must agree with the leader");
        }
        let m = service.metrics();
        assert_eq!(m.coalesced + m.computes, 8);
        assert!(m.computes >= 1);
    }

    #[test]
    fn coalescing_off_never_joins() {
        let t = table();
        let config = ServiceConfig { coalesce: false, ..ServiceConfig::default() };
        let service = Service::open(&t, config);
        let c = Constraints::from_pairs(&[(0.2, 1.3), (0.2, 1.3)]).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let mut s = service.session();
                let c = c.clone();
                scope.spawn(move || s.execute(&QueryRequest::new(c)).unwrap());
            }
        });
        let m = service.metrics();
        assert_eq!(m.coalesced, 0);
        assert_eq!(m.computes, 4);
    }

    #[test]
    fn flight_keys_canonicalize_and_discriminate() {
        let a = Constraints::from_pairs(&[(-0.0, 1.0), (0.0, 2.0)]).unwrap();
        let b = Constraints::from_pairs(&[(0.0, 1.0), (-0.0, 2.0)]).unwrap();
        assert_eq!(flight_key(&a, None, None), flight_key(&b, None, None));
        assert_ne!(
            flight_key(&a, None, Some(AlgoChoice::Bnl)),
            flight_key(&a, None, Some(AlgoChoice::Salsa)),
        );
        assert_ne!(
            flight_key(&a, Some(ExecMode::Sequential), None),
            flight_key(&a, Some(ExecMode::Parallel { lanes: 2, dc_threshold: 64 }), None),
        );
        assert_ne!(flight_key(&a, None, None), flight_key(&a, Some(ExecMode::Sequential), None));
    }

    #[test]
    fn session_is_an_executor() {
        let t = table();
        let service = Service::open(&t, ServiceConfig::default());
        let mut s = service.session();
        let ex: &mut dyn Executor = &mut s;
        assert!(ex.name().starts_with("Service["));
        let c = Constraints::from_pairs(&[(0.2, 1.0), (0.2, 1.0)]).unwrap();
        assert!(!ex.execute(&QueryRequest::new(c)).unwrap().skyline.is_empty());
    }
}
