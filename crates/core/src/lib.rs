//! CBCS — Cache-Based Constrained Skyline queries.
//!
//! This crate implements the contribution of *Efficient caching for
//! constrained skyline queries* (Mortensen, Chester, Assent & Magnani,
//! EDBT 2015):
//!
//! * [`stability`] — the stability theory of Section 4.1 (Definition 4,
//!   Theorem 1) and the classification of a cached-query/new-query pair
//!   into the paper's overlap cases;
//! * [`cases`] — the specialized solutions for the four incremental
//!   single-bound changes (Theorems 2–5);
//! * [`mpr`] — the Missing Points Region of Section 5: the minimal
//!   possibly-disjoint region that must be fetched from disk (Definition
//!   5, complete and minimal per Theorems 6–7), computed by
//!   hyper-rectangle splitting (Algorithm 1, including the inverted-logic
//!   preprocessing for unstable cache items), plus the approximate MPR
//!   that prunes with only the `k` nearest cached skyline points;
//! * [`cache`] — the in-memory constrained-skyline cache of Section 6:
//!   items `⟨Sky(S,C), MBR, C⟩` indexed by an R\*-tree over their MBRs,
//!   with LRU/LCU replacement;
//! * [`strategy`] — the cache search strategies of Section 6.1;
//! * [`engine`] — three executors sharing one interface: the naive
//!   [`BaselineExecutor`], the [`BbsExecutor`] state of the art, and the
//!   caching [`CbcsExecutor`], each reporting the per-query statistics the
//!   paper's evaluation plots — plus the extensions the paper sketches as
//!   future work: [`DynamicCbcsExecutor`] (dynamic data, Section 6.2),
//!   multi-item pruning ([`CbcsConfig::extra_items`], Section 6.3), and a
//!   thread-safe [`SharedCache`] for multi-user deployments.
//!
//! ```
//! use skycache_core::{CbcsConfig, CbcsExecutor, Executor, MprMode, QueryRequest};
//! use skycache_geom::{Constraints, Point};
//! use skycache_storage::{Table, TableConfig};
//!
//! let points: Vec<Point> = (0..1000)
//!     .map(|i| Point::from(vec![f64::from(i % 31), f64::from(i % 37)]))
//!     .collect();
//! let table = Table::build(points, TableConfig::default()).unwrap();
//!
//! let config = CbcsConfig { mpr: MprMode::Exact, ..Default::default() };
//! let mut cbcs = CbcsExecutor::new(&table, config);
//!
//! let c1 = Constraints::from_pairs(&[(5.0, 20.0), (5.0, 20.0)]).unwrap();
//! let miss = cbcs.execute(&QueryRequest::new(c1)).unwrap();
//! assert!(!miss.stats.cache_hit);
//!
//! // Widen one bound: answered from the cache via the MPR (case 3),
//! // with a per-query report capturing the six-phase breakdown.
//! let c2 = Constraints::from_pairs(&[(5.0, 22.0), (5.0, 20.0)]).unwrap();
//! let hit = cbcs.execute(&QueryRequest::new(c2).recorded()).unwrap();
//! assert!(hit.stats.cache_hit);
//! assert!(hit.stats.points_read <= miss.stats.points_read);
//! let report = hit.report.unwrap();
//! assert_eq!(report.counter("cache.hits"), 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(rust_2018_idioms)]

/// The constrained-skyline cache (Section 6): items, index, replacement.
pub mod cache;
/// Specialized solutions for the four single-bound cases (Theorems 2–5).
pub mod cases;
/// The audited wall-clock site ([`clock::Stopwatch`]).
pub mod clock;
/// Query executors: Baseline, BBS and CBCS behind one interface.
pub mod engine;
mod error;
/// The (approximate) Missing Points Region (Section 5).
pub mod mpr;
/// The multi-tenant query service: sessions, singleflight, negative cache.
pub mod service;
/// Thread-safe shared cache for multi-user deployments.
pub mod shared;
/// Stability theory (Definition 4, Theorem 1) and case classification.
pub mod stability;
/// Cache search strategies (Section 6.1).
pub mod strategy;

pub use cache::{
    Cache, CacheItem, FrequencySketch, ItemCost, LookupOutcome, LookupStats, ReplacementPolicy,
};
pub use cases::{plan_composed, ComposedPlan};
pub use engine::{
    skyline_route, AlgoChoice, BaselineExecutor, BbsExecutor, CbcsConfig, CbcsExecutor,
    DynamicCbcsExecutor, ExecMode, Executor, QueryOutcome, QueryRequest, QueryResult, QueryStats,
    SkylineRoute, StageTimes,
};
pub use error::CoreError;
pub use mpr::{missing_points_region, missing_points_region_multi, MprMode, MprOutput};
pub use service::{Service, ServiceConfig, ServiceMetrics, Session};
pub use shared::{SharedCache, SharedCbcsExecutor};
pub use stability::{classify, is_stable, Overlap};
pub use strategy::SearchStrategy;

/// Convenience alias for core results.
pub type Result<T> = std::result::Result<T, CoreError>;
