//! Query executors: Baseline, BBS and CBCS behind one interface.
//!
//! All three answer constrained skyline queries over a
//! [`skycache_storage::Table`] and report the statistics the paper's
//! evaluation plots: points read from disk, range queries
//! issued/executed/empty, dominance tests, and the three-stage time
//! breakdown of Figure 10 (*processing* — main-memory selection of range
//! queries; *fetching* — latency to read points; *skyline* — the in-memory
//! skyline computation).
//!
//! Queries enter through [`Executor::execute`] with a [`QueryRequest`] —
//! constraints plus per-query execution-mode/algorithm overrides and an
//! opt-in recording flag — and return a [`QueryOutcome`]: the skyline, the
//! legacy [`QueryStats`] mirror, and (when recording) a
//! [`skycache_obs::QueryReport`] with the six-phase span breakdown and the
//! full metric registry. Instrumentation flows through the
//! [`skycache_obs::Recorder`] interface; with recording off the pipeline
//! only feeds the plain-struct [`QueryStats`], so the hot path allocates
//! nothing for observability.
//!
//! Wall-clock figures combine measured CPU time with the deterministic
//! simulated I/O latency of the table's [`skycache_storage::CostModel`]
//! (see DESIGN.md: the substitution preserves the paper's cost structure
//! while staying machine-independent).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use skycache_algos::{
    bbs_constrained, BbsStats, Bnl, DivideConquer, ParallelDc, Salsa, Sfs, SkylineAlgorithm,
    SkylineScratch,
};
use skycache_geom::{Aabb, Constraints, Point, PointBlock};
use skycache_obs::{names, Phase, QueryRecorder, QueryReport, Recorder};
use skycache_rtree::{RStarTree, RTreeParams};
use skycache_storage::{FetchBuf, FetchPlan, FetchScratch, Table};

use crate::cache::{Cache, ItemCost, ReplacementPolicy};
use crate::cases::{plan_composed, plan_with_extra, ComposedPlan, QueryPlan};
use crate::clock::Stopwatch;
use crate::mpr::MprMode;
use crate::stability::{classify, Overlap};
use crate::strategy::SearchStrategy;
use crate::{CoreError, Result};

/// How an executor runs the fetch and skyline stages of a query.
///
/// `Sequential` is the paper's single-threaded pipeline and the default.
/// `Parallel` fetches a plan's regions over `lanes` concurrent I/O lanes
/// ([`Table::fetch_plan`] with a multi-lane [`FetchPlan`]) and *offers*
/// the skyline stage to [`ParallelDc`] once the merged input reaches
/// `dc_threshold` points — the split only actually engages when the
/// adaptive cost gate ([`ParallelDc::should_engage`]) predicts a win for
/// the input shape on this host (enough cores, `dims > 2`, input above
/// the calibrated floor); otherwise the sequential block path runs, so
/// parallel mode never loses to sequential. `dims == 2` inputs always
/// take the planar sweep (see [`skyline_route`]). Both modes produce the
/// same skyline *set* and identical fetch counters (`points_read`,
/// `heap_fetches`, `range_queries_*`); only `dominance_tests` and the
/// simulated latency may differ — see DESIGN.md.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-threaded fetching and skyline computation.
    #[default]
    Sequential,
    /// Concurrent fetch lanes plus a parallel skyline kernel.
    Parallel {
        /// Concurrent I/O lanes for multi-region fetches, and the worker
        /// count of the parallel skyline kernel.
        lanes: usize,
        /// Minimum merged input size before [`ParallelDc`] replaces the
        /// configured sequential algorithm.
        dc_threshold: usize,
    },
}

impl ExecMode {
    /// Parallel mode sized to the host: one lane per available core,
    /// default [`ParallelDc`] fallback threshold.
    pub fn parallel_auto() -> Self {
        let lanes = std::thread::available_parallelism().map_or(1, |n| n.get());
        ExecMode::Parallel { lanes, dc_threshold: ParallelDc::DEFAULT_SEQUENTIAL_THRESHOLD }
    }

    /// The fetch-lane count (1 in sequential mode).
    pub fn lanes(&self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel { lanes, .. } => (*lanes).max(1),
        }
    }
}

/// The in-memory skyline algorithm of a [`QueryRequest`] override.
///
/// Executors carry a configured default (SFS, as in the paper's
/// evaluation); a request may swap it per query without rebuilding the
/// executor or its cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AlgoChoice {
    /// Sort-Filter-Skyline (the paper's evaluation default).
    #[default]
    Sfs,
    /// Block-Nested-Loops.
    Bnl,
    /// Divide-and-conquer.
    DivideConquer,
    /// SaLSa (sort and limit skyline algorithm).
    Salsa,
}

impl AlgoChoice {
    /// The algorithm implementation behind this choice.
    pub fn algorithm(self) -> &'static dyn SkylineAlgorithm {
        match self {
            AlgoChoice::Sfs => &Sfs,
            AlgoChoice::Bnl => &Bnl,
            AlgoChoice::DivideConquer => &DivideConquer,
            AlgoChoice::Salsa => &Salsa,
        }
    }
}

/// One constrained-skyline query, as handed to [`Executor::execute`].
///
/// Built with [`QueryRequest::new`] plus the builder methods; the plain
/// `new` form reproduces the executor's configured behavior exactly.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The query constraints `C`.
    pub constraints: Constraints,
    /// Per-query execution-mode override (`None` — use the executor's
    /// configured mode).
    pub exec: Option<ExecMode>,
    /// Per-query skyline-algorithm override (`None` — use the executor's
    /// configured algorithm). Ignored by [`BbsExecutor`], whose traversal
    /// *is* its algorithm.
    pub algo: Option<AlgoChoice>,
    /// Capture a per-query [`QueryReport`] (spans, counters, gauges,
    /// histograms). Off by default: the report costs allocations.
    pub record: bool,
}

impl QueryRequest {
    /// A request answering `Sky(S, C)` with the executor's configuration.
    pub fn new(constraints: Constraints) -> Self {
        QueryRequest { constraints, exec: None, algo: None, record: false }
    }

    /// Overrides the execution mode for this query only.
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Overrides the in-memory skyline algorithm for this query only.
    pub fn with_algo(mut self, algo: AlgoChoice) -> Self {
        self.algo = Some(algo);
        self
    }

    /// Turns on per-query recording ([`QueryOutcome::report`]).
    pub fn recorded(mut self) -> Self {
        self.record = true;
        self
    }
}

/// Everything one query produced.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The constrained skyline `Sky(S, C)`.
    pub skyline: Vec<Point>,
    /// Work and latency counters (always populated).
    pub stats: QueryStats,
    /// The detailed per-query report; `Some` iff the request set
    /// [`QueryRequest::record`].
    pub report: Option<QueryReport>,
}

impl QueryOutcome {
    /// Drops the report and converts to the legacy [`QueryResult`].
    pub fn into_result(self) -> QueryResult {
        QueryResult { skyline: self.skyline, stats: self.stats }
    }
}

/// Observation fan-out for one running query: the always-on
/// [`QueryStats`] mirror plus an optional detailed [`QueryRecorder`].
///
/// The pipeline emits every event exactly once, through this; with
/// recording off the recorder half is `None` and each event is one
/// match-free struct update.
pub(crate) struct Probe<'a> {
    /// Legacy counters, kept exactly as populated by previous releases.
    pub stats: &'a mut QueryStats,
    /// Detailed capture, present only when the request asked to record.
    pub rec: Option<&'a mut QueryRecorder>,
}

impl Recorder for Probe<'_> {
    fn detailed(&self) -> bool {
        self.rec.is_some()
    }

    fn record_span(&mut self, phase: Phase, elapsed: Duration) {
        self.stats.record_span(phase, elapsed);
        if let Some(rec) = self.rec.as_mut() {
            rec.record_span(phase, elapsed);
        }
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        self.stats.add_counter(name, delta);
        if let Some(rec) = self.rec.as_mut() {
            rec.add_counter(name, delta);
        }
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        if let Some(rec) = self.rec.as_mut() {
            rec.set_gauge(name, value);
        }
    }

    fn observe_value(&mut self, name: &'static str, value: f64) {
        if let Some(rec) = self.rec.as_mut() {
            rec.observe_value(name, value);
        }
    }
}

impl<'a> Probe<'a> {
    /// Builds the probe for one query from the request's recording flag.
    pub fn new(stats: &'a mut QueryStats, rec: Option<&'a mut QueryRecorder>) -> Self {
        Probe { stats, rec }
    }
}

/// Reusable per-executor buffers for the block-oriented query hot path.
///
/// One instance lives inside each executor. After a few queries the
/// buffers reach their high-water marks and steady-state queries run
/// (near-)allocation-free: fetched rows land in the columnar
/// [`FetchScratch`], merge and skyline operate on [`PointBlock`]s, and
/// owned [`Point`]s are materialized exactly once — for the returned
/// skyline, at the public-API boundary.
#[derive(Default)]
pub(crate) struct QueryScratch {
    /// Storage-side fetch buffers (row ids + columnar coordinates).
    fetch: FetchScratch,
    /// Skyline-kernel ordering buffer.
    sky: SkylineScratch,
    /// Merge output: retained ∪ fetched rows, deduplicated.
    merged: Option<PointBlock>,
    /// Skyline output block.
    sky_out: Option<PointBlock>,
    /// Indices of retained points sorted by coordinate bit pattern.
    merge_order: Vec<u32>,
    /// Per retained point: fetched duplicate copies still to drop.
    dup_budget: Vec<u32>,
    /// Cache-lookup scratch: cover-ordered candidate item ids, reused
    /// across queries so the lookup path allocates nothing in steady
    /// state (mirrors [`FetchScratch`] on the storage side).
    pub(crate) lookup_ids: Vec<u64>,
}

impl QueryScratch {
    /// An empty scratch; buffers grow to their high-water marks in use.
    pub fn new() -> Self {
        QueryScratch::default()
    }
}

/// Hands out a cleared [`PointBlock`] of the right dimensionality from a
/// lazily initialized scratch slot, reusing its capacity across queries.
fn reuse_block(slot: &mut Option<PointBlock>, dims: usize) -> &mut PointBlock {
    if !matches!(slot, Some(b) if b.dims() == dims) {
        // skylint: allow(no-panic-paths) — Table construction enforces dims > 0.
        *slot = Some(PointBlock::new(dims).expect("tables are at least one-dimensional"));
    }
    // skylint: allow(no-panic-paths) — the slot was just filled above.
    let block = slot.as_mut().expect("slot initialized above");
    block.clear();
    block
}

/// Total order on coordinate rows by bit pattern — the same identity
/// notion as [`merge_dedup`]'s `to_bits` keys (`-0.0 ≠ 0.0`, NaN
/// payloads distinct). Only grouping matters; the order itself is
/// arbitrary but consistent.
fn cmp_bits(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    a.iter().map(|v| v.to_bits()).cmp(b.iter().map(|v| v.to_bits()))
}

/// Block-native [`merge_dedup`]: fills `merged` with the retained points
/// followed by the fetched rows that survive deduplication, dropping one
/// fetched copy per identical retained point. `order` and `budget` are
/// reusable index buffers; output order and drop semantics match the Vec
/// path row for row.
fn merge_rows(
    retained: &PointBlock,
    fetched: &FetchBuf,
    merged: &mut PointBlock,
    order: &mut Vec<u32>,
    budget: &mut Vec<u32>,
) {
    for row in retained.rows() {
        merged.push_row(row);
    }
    if retained.is_empty() {
        for i in 0..fetched.len() {
            merged.push_row(fetched.row(i));
        }
        return;
    }
    order.clear();
    order.extend(0..retained.len() as u32);
    order.sort_unstable_by(|&a, &b| {
        cmp_bits(retained.row(a as usize), retained.row(b as usize)).then(a.cmp(&b))
    });
    budget.clear();
    budget.resize(retained.len(), 1);
    for i in 0..fetched.len() {
        let row = fetched.row(i);
        let lo = order.partition_point(|&idx| cmp_bits(retained.row(idx as usize), row).is_lt());
        let mut taken = false;
        for &idx in &order[lo..] {
            if cmp_bits(retained.row(idx as usize), row).is_ne() {
                break;
            }
            if budget[idx as usize] > 0 {
                budget[idx as usize] -= 1;
                taken = true;
                break;
            }
        }
        if !taken {
            merged.push_row(row);
        }
    }
}

/// Which kernel the skyline stage will run for a given execution mode
/// and input shape — the dispatch decision of [`compute_skyline_rows`]
/// factored out pure so tests can assert it directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkylineRoute {
    /// `dims == 2`: the planar monotone sweep (no pairwise dominance
    /// tests), via the block-capable algorithm's own dispatch.
    Planar,
    /// The [`ParallelDc`] split: the adaptive cost gate predicts a win.
    Parallel {
        /// Resolved worker count the split will use.
        threads: usize,
    },
    /// The configured algorithm's sequential (block) path.
    Sequential,
}

/// Routes the skyline stage: planar for d = 2 always (a sorted sweep
/// beats any dominance-testing kernel, parallel included), the
/// [`ParallelDc`] split when parallel mode is on *and* the adaptive cost
/// gate predicts a win for `(n, dims)` on this host, the sequential
/// block path otherwise.
pub fn skyline_route(exec: ExecMode, n: usize, dims: usize) -> SkylineRoute {
    if skycache_algos::planar_applicable(dims) {
        return SkylineRoute::Planar;
    }
    if let ExecMode::Parallel { lanes, dc_threshold } = exec {
        let pd = ParallelDc { threads: lanes, sequential_threshold: dc_threshold };
        if pd.should_engage(n, dims) {
            return SkylineRoute::Parallel { threads: pd.resolved_threads() };
        }
    }
    SkylineRoute::Sequential
}

/// Block-native skyline stage: runs on flat rows in place, materializing
/// owned points only for the returned skyline. Algorithms without a
/// block kernel ([`SkylineAlgorithm::compute_block`] returning `None`)
/// fall back to the Vec path. Dispatch, counters and output order are
/// identical to [`compute_skyline`].
fn compute_skyline_rows(
    algo: &dyn SkylineAlgorithm,
    exec: ExecMode,
    rows: &[f64],
    dims: usize,
    sky: &mut SkylineScratch,
    out: &mut PointBlock,
    probe: &mut Probe<'_>,
) -> Vec<Point> {
    let n = rows.len() / dims;
    if let (SkylineRoute::Parallel { .. }, ExecMode::Parallel { lanes, dc_threshold }) =
        (skyline_route(exec, n, dims), exec)
    {
        let (tests, report) = ParallelDc { threads: lanes, sequential_threshold: dc_threshold }
            .compute_rows(rows, dims, sky, out);
        if probe.detailed() && report.workers > 0 {
            probe.set_gauge(names::LANES_SKYLINE_WORKERS, report.workers as f64);
            probe.set_gauge(names::LANES_SKYLINE_IMBALANCE, report.imbalance());
        }
        probe.add_counter(names::SKYLINE_DOMINANCE_TESTS, tests);
        return out.to_points();
    }
    match algo.compute_block(rows, dims, sky, out) {
        Some(tests) => {
            probe.add_counter(names::SKYLINE_DOMINANCE_TESTS, tests);
            out.to_points()
        }
        None => {
            // No block kernel (BNL, D&C, SaLSa): materialize and run the
            // Vec-based algorithm.
            let points: Vec<Point> =
                rows.chunks_exact(dims).map(|r| Point::new_unchecked(r.to_vec())).collect();
            let computed = algo.compute(points);
            probe.add_counter(names::SKYLINE_DOMINANCE_TESTS, computed.dominance_tests);
            computed.skyline
        }
    }
}

/// Runs the skyline stage under `exec`: the configured sequential
/// algorithm, or [`ParallelDc`] when parallel mode is on and the input is
/// large enough to amortize thread spawns. Returns the skyline; dominance
/// tests (and, when detailed, parallel-lane gauges) go to the probe.
fn compute_skyline(
    algo: &dyn SkylineAlgorithm,
    exec: ExecMode,
    points: Vec<Point>,
    probe: &mut Probe<'_>,
) -> Vec<Point> {
    let dims = points.first().map_or(0, Point::dims);
    let route = skyline_route(exec, points.len(), dims);
    let out = match exec {
        ExecMode::Parallel { lanes, dc_threshold }
            if matches!(route, SkylineRoute::Parallel { .. }) =>
        {
            let (out, report) = ParallelDc { threads: lanes, sequential_threshold: dc_threshold }
                .compute_with_report(points);
            if probe.detailed() && report.workers > 0 {
                probe.set_gauge(names::LANES_SKYLINE_WORKERS, report.workers as f64);
                probe.set_gauge(names::LANES_SKYLINE_IMBALANCE, report.imbalance());
            }
            out
        }
        _ => algo.compute(points),
    };
    probe.add_counter(names::SKYLINE_DOMINANCE_TESTS, out.dominance_tests);
    out.skyline
}

/// The Figure-10 stage breakdown of one query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Main-memory planning: cache search, case classification, MPR
    /// computation.
    pub processing: Duration,
    /// Reading points from storage (simulated I/O latency plus measured
    /// executor time).
    pub fetching: Duration,
    /// In-memory skyline computation.
    pub skyline: Duration,
}

impl StageTimes {
    /// Total query latency.
    pub fn total(&self) -> Duration {
        self.processing + self.fetching + self.skyline
    }
}

/// Statistics of one executed query.
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Rows of the queried regions read from the heap — the paper's
    /// "points read" metric.
    pub points_read: u64,
    /// Heap tuples fetched by the chosen storage plans (≥ `points_read`;
    /// the latency driver).
    pub heap_fetches: u64,
    /// Range queries handed to storage.
    pub range_queries_issued: u64,
    /// Range queries that touched the heap.
    pub range_queries_executed: u64,
    /// Range queries discarded by index-only emptiness detection.
    pub range_queries_empty: u64,
    /// Candidate range queries absorbed into a neighbor by the coalescing
    /// fetch planner (block path only; 0 without coalescing).
    pub regions_coalesced: u64,
    /// Pairwise dominance tests performed.
    pub dominance_tests: u64,
    /// Stage time breakdown.
    pub stages: StageTimes,
    /// Whether a cached item was used.
    pub cache_hit: bool,
    /// Overlap classification of the used cache item, if any.
    pub case: Option<Overlap>,
    /// Number of overlapping cache items the lookup returned.
    pub candidates: usize,
    /// Cached skyline points merged into the result computation.
    pub retained_points: u64,
    /// Cached skyline points invalidated by the new constraints.
    pub removed_points: u64,
    /// Result cardinality.
    pub result_size: u64,
    /// Simulated storage fetch latency (nanoseconds) charged by the cost
    /// model — deterministic, unlike the wall-clock stage times, so it
    /// can feed cost-aware cache replacement reproducibly.
    pub fetch_sim_ns: u64,
    /// Cached items composed into the answer (0 on misses; 1 on
    /// single-item hits; ≥ 2 on compositional hits).
    pub composed_items: usize,
    /// Fraction of the query region covered by cached items on a
    /// compositional hit (0.0 otherwise).
    pub cover_fraction: f64,
    /// Results turned away by the TinyLFU admission gate while this
    /// query's result was being cached.
    pub admission_rejects: u64,
    /// BBS-specific counters (BBS executor only).
    pub bbs: Option<BbsStats>,
}

/// The legacy mirror: spans fold into the three Figure-10 stages and the
/// canonical counters land in the struct fields previous releases exposed.
/// Events without a corresponding field (index probes, histograms,
/// gauges) are dropped here — the detailed recorder keeps them.
impl Recorder for QueryStats {
    fn record_span(&mut self, phase: Phase, elapsed: Duration) {
        match phase {
            Phase::CacheLookup | Phase::CaseAnalysis | Phase::MprCompute => {
                self.stages.processing += elapsed;
            }
            Phase::Fetch => self.stages.fetching += elapsed,
            Phase::Merge | Phase::Skyline => self.stages.skyline += elapsed,
        }
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        match name {
            names::FETCH_POINTS_READ => self.points_read += delta,
            names::FETCH_HEAP_FETCHES => self.heap_fetches += delta,
            names::FETCH_REGIONS => self.range_queries_issued += delta,
            names::FETCH_RQ_EXECUTED => self.range_queries_executed += delta,
            names::FETCH_RQ_EMPTY => self.range_queries_empty += delta,
            names::FETCH_REGIONS_COALESCED => self.regions_coalesced += delta,
            names::SKYLINE_DOMINANCE_TESTS => self.dominance_tests += delta,
            names::CACHE_RETAINED_POINTS => self.retained_points += delta,
            names::CACHE_REMOVED_POINTS => self.removed_points += delta,
            names::SKYLINE_RESULT_SIZE => self.result_size += delta,
            names::CACHE_CANDIDATES => {
                self.candidates += usize::try_from(delta).unwrap_or(usize::MAX);
            }
            names::CACHE_ADMISSION_REJECTS => self.admission_rejects += delta,
            _ => {}
        }
    }
}

impl QueryStats {
    /// Whether the used cache item was stable w.r.t. the query (None when
    /// no cache item was used).
    pub fn stable(&self) -> Option<bool> {
        self.case.map(Overlap::is_stable)
    }
}

/// Result of one query: the constrained skyline and its statistics.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The constrained skyline `Sky(S, C)`.
    pub skyline: Vec<Point>,
    /// Work and latency counters.
    pub stats: QueryStats,
}

/// A constrained-skyline query executor.
pub trait Executor {
    /// Human-readable method name (used by benchmark output).
    fn name(&self) -> String;

    /// Answers the request: `Sky(S, C)` for its constraints, honoring its
    /// overrides and recording flag.
    fn execute(&mut self, req: &QueryRequest) -> Result<QueryOutcome>;
}

pub(crate) fn check_dims(table: &Table, c: &Constraints) -> Result<()> {
    if table.dims() != c.dims() {
        return Err(CoreError::DimensionMismatch { expected: table.dims(), actual: c.dims() });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// The naive method of Börzsönyi et al.: one range query fetching all of
/// `S_C`, then an in-memory skyline algorithm (SFS by default, as in the
/// paper's evaluation).
pub struct BaselineExecutor<'t> {
    table: &'t Table,
    algo: Box<dyn SkylineAlgorithm>,
    exec: ExecMode,
    scratch: QueryScratch,
}

impl<'t> BaselineExecutor<'t> {
    /// Creates a Baseline executor using SFS.
    pub fn new(table: &'t Table) -> Self {
        BaselineExecutor {
            table,
            algo: Box::new(Sfs),
            exec: ExecMode::default(),
            scratch: QueryScratch::new(),
        }
    }

    /// Replaces the skyline component (the paper argues CBCS's benefit is
    /// independent of this choice; so is Baseline's cost profile).
    pub fn with_algorithm(mut self, algo: Box<dyn SkylineAlgorithm>) -> Self {
        self.algo = algo;
        self
    }
}

impl Executor for BaselineExecutor<'_> {
    fn name(&self) -> String {
        "Baseline".into()
    }

    fn execute(&mut self, req: &QueryRequest) -> Result<QueryOutcome> {
        let c = &req.constraints;
        check_dims(self.table, c)?;
        let exec = req.exec.unwrap_or(self.exec);
        let algo: &dyn SkylineAlgorithm = match req.algo {
            Some(choice) => choice.algorithm(),
            None => self.algo.as_ref(),
        };

        let mut stats = QueryStats::default();
        let mut rec = if req.record { Some(QueryRecorder::new()) } else { None };
        let mut probe = Probe::new(&mut stats, rec.as_mut());
        let skyline = query_naive(self.table, algo, exec, c, &mut self.scratch, &mut probe);
        probe.add_counter(names::SKYLINE_RESULT_SIZE, skyline.len() as u64);

        Ok(QueryOutcome { skyline, stats, report: rec.map(QueryRecorder::into_report) })
    }
}

// ---------------------------------------------------------------------------
// BBS
// ---------------------------------------------------------------------------

/// Configuration of the BBS executor's I/O accounting.
#[derive(Clone, Copy, Debug)]
pub struct BbsConfig {
    /// Simulated latency per R-tree node access (one page read).
    pub node_ns: u64,
    /// R-tree fan-out parameters.
    pub params: RTreeParams,
}

impl Default for BbsConfig {
    fn default() -> Self {
        // A node access is a random page read on a cold cache — same
        // order as the range executor's per-seek charge, scaled down
        // because R-tree traversals enjoy some upper-level locality.
        BbsConfig { node_ns: 2_000_000, params: RTreeParams::default() }
    }
}

/// The I/O-optimal BBS method of Papadias et al. over an STR-bulk-loaded
/// R\*-tree of the dataset.
///
/// BBS's branch-and-bound traversal *is* its algorithm, so
/// [`QueryRequest::algo`] and [`QueryRequest::exec`] overrides are
/// ignored; recording still works (fetch/skyline spans, dominance tests,
/// points read).
pub struct BbsExecutor<'t> {
    table: &'t Table,
    tree: RStarTree<u32>,
    config: BbsConfig,
}

impl<'t> BbsExecutor<'t> {
    /// Builds the dataset R-tree (STR bulk load) and the executor.
    pub fn new(table: &'t Table) -> Self {
        Self::with_config(table, BbsConfig::default())
    }

    /// Creates an executor with explicit I/O accounting parameters.
    pub fn with_config(table: &'t Table, config: BbsConfig) -> Self {
        let tree = RStarTree::bulk_load_points(
            table.all_points().iter().enumerate().map(|(i, p)| (p.clone(), i as u32)),
            config.params,
        );
        BbsExecutor { table, tree, config }
    }
}

impl Executor for BbsExecutor<'_> {
    fn name(&self) -> String {
        "BBS".into()
    }

    fn execute(&mut self, req: &QueryRequest) -> Result<QueryOutcome> {
        let c = &req.constraints;
        check_dims(self.table, c)?;
        let mut stats = QueryStats::default();
        let mut rec = if req.record { Some(QueryRecorder::new()) } else { None };
        let mut probe = Probe::new(&mut stats, rec.as_mut());

        let t0 = Stopwatch::start();
        let out = bbs_constrained(&self.tree, c);
        let wall = t0.elapsed();

        // BBS interleaves I/O and computation; attribute the simulated
        // node-access latency to fetching and the measured CPU time to the
        // skyline stage.
        probe.record_span(
            Phase::Fetch,
            Duration::from_nanos(self.config.node_ns * out.stats.node_accesses),
        );
        probe.record_span(Phase::Skyline, wall);
        probe.add_counter(names::SKYLINE_DOMINANCE_TESTS, out.stats.dominance_tests);
        probe.add_counter(
            names::FETCH_POINTS_READ,
            out.stats.entries_popped - out.stats.node_accesses,
        );
        probe.add_counter(names::SKYLINE_RESULT_SIZE, out.skyline.len() as u64);
        stats.bbs = Some(out.stats);

        Ok(QueryOutcome {
            skyline: out.skyline,
            stats,
            report: rec.map(QueryRecorder::into_report),
        })
    }
}

// ---------------------------------------------------------------------------
// CBCS
// ---------------------------------------------------------------------------

/// Configuration of the CBCS executor.
#[derive(Clone, Debug)]
pub struct CbcsConfig {
    /// Exact MPR or the approximate MPR with `k` nearest neighbors.
    pub mpr: MprMode,
    /// Cache search strategy (Section 6.1).
    pub strategy: SearchStrategy,
    /// Cache capacity (`None` = unbounded, as in the paper's experiments).
    pub capacity: Option<usize>,
    /// Eviction policy when a capacity is set.
    pub policy: ReplacementPolicy,
    /// Seed for the `Random` strategy.
    pub seed: u64,
    /// Whether every query result is inserted into the cache.
    pub cache_results: bool,
    /// Multi-item processing (the paper's Section 6.3 extension): harvest
    /// pruning points from up to this many *additional* overlapping cache
    /// items (by descending constraint overlap). `0` — the paper's
    /// single-item CBCS — is the default.
    pub extra_items: usize,
    /// Compositional multi-item hits (DESIGN.md §17.3): when the primary
    /// item is neither an exact hit nor Case (b), compose up to
    /// [`CbcsConfig::compose_items`] cover-ordered cached items into one
    /// remainder plan and fetch only the jointly uncovered space. `false`
    /// — the paper's single-item answering — is the default.
    pub compose: bool,
    /// Maximum cached items composed per query (primary included).
    pub compose_items: usize,
    /// Sequential or parallel execution of the fetch and skyline stages.
    pub exec: ExecMode,
    /// Run the block-oriented zero-copy hot path: fetches fill reusable
    /// columnar scratch buffers, the fetch planner coalesces overlapping
    /// index ranges, and merge/skyline run on [`PointBlock`]s. `false`
    /// selects the legacy per-point materializing pipeline (same results
    /// and counters, minus coalescing savings) — kept for benchmarking
    /// the block path against its baseline.
    pub block_path: bool,
}

impl Default for CbcsConfig {
    fn default() -> Self {
        CbcsConfig {
            mpr: MprMode::Approximate { k: 1 },
            strategy: SearchStrategy::MaxOverlapSP,
            capacity: None,
            policy: ReplacementPolicy::Lru,
            seed: 0xC0FFEE,
            cache_results: true,
            extra_items: 0,
            compose: false,
            compose_items: 4,
            exec: ExecMode::Sequential,
            block_path: true,
        }
    }
}

/// The paper's contribution: Cache-Based Constrained Skyline.
///
/// Flow per query (Section 6): R\*-tree cache lookup → search strategy →
/// case classification → specialized solution or (a)MPR → fetch the
/// missing regions → merge with retained cached points → skyline → cache
/// the result.
pub struct CbcsExecutor<'t> {
    table: &'t Table,
    cache: Cache,
    config: CbcsConfig,
    algo: Box<dyn SkylineAlgorithm>,
    rng: StdRng,
    data_bounds: Aabb,
    scratch: QueryScratch,
}

impl<'t> CbcsExecutor<'t> {
    /// Creates a CBCS executor with an empty cache.
    pub fn new(table: &'t Table, config: CbcsConfig) -> Self {
        let cache = Cache::with_capacity(table.dims(), config.capacity, config.policy);
        let data_bounds = Aabb::bounding(table.all_points())
            // skylint: allow(no-panic-paths) — Table::build rejects empty point sets.
            .expect("tables are non-empty");
        let rng = StdRng::seed_from_u64(config.seed);
        CbcsExecutor {
            table,
            cache,
            config,
            algo: Box::new(Sfs),
            rng,
            data_bounds,
            scratch: QueryScratch::new(),
        }
    }

    /// Replaces the in-memory skyline component.
    pub fn with_algorithm(mut self, algo: Box<dyn SkylineAlgorithm>) -> Self {
        self.algo = algo;
        self
    }

    /// Read access to the cache (for inspection and tests).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Drops all cached items.
    pub fn clear_cache(&mut self) {
        self.cache =
            Cache::with_capacity(self.table.dims(), self.config.capacity, self.config.policy);
    }

    /// The active configuration.
    pub fn config(&self) -> &CbcsConfig {
        &self.config
    }
}

impl Executor for CbcsExecutor<'_> {
    fn name(&self) -> String {
        format!("CBCS[{}]", self.config.mpr.label())
    }

    fn execute(&mut self, req: &QueryRequest) -> Result<QueryOutcome> {
        execute_cbcs_query(
            self.table,
            &mut self.cache,
            &self.config,
            self.algo.as_ref(),
            &mut self.rng,
            &self.data_bounds,
            &mut self.scratch,
            req,
        )
    }
}

/// The CBCS query pipeline (paper Section 6), shared by the borrowing
/// [`CbcsExecutor`] and the owning [`DynamicCbcsExecutor`].
///
/// Spans: cache-lookup (R\*-tree search + bounding-box short-circuit),
/// case-analysis (strategy selection + extra-item harvest), mpr-compute
/// (plan construction); the fetch/merge/skyline spans are recorded by
/// [`query_naive`]/[`query_planned`].
#[allow(clippy::too_many_arguments)]
fn execute_cbcs_query(
    table: &Table,
    cache: &mut Cache,
    config: &CbcsConfig,
    algo: &dyn SkylineAlgorithm,
    rng: &mut StdRng,
    data_bounds: &Aabb,
    scratch: &mut QueryScratch,
    req: &QueryRequest,
) -> Result<QueryOutcome> {
    let c = &req.constraints;
    check_dims(table, c)?;
    let exec = req.exec.unwrap_or(config.exec);
    let algo: &dyn SkylineAlgorithm = match req.algo {
        Some(choice) => choice.algorithm(),
        None => algo,
    };

    let mut stats = QueryStats::default();
    let mut rec = if req.record { Some(QueryRecorder::new()) } else { None };
    let mut probe = Probe::new(&mut stats, rec.as_mut());

    // Processing stage: cache lookup, strategy, classification, MPR.
    // The lookup fills the reused id scratch (cover-ordered); candidate
    // items are resolved lazily through the cache, so no per-query
    // `Vec<&CacheItem>` is built.
    let selection: Option<Selection> = {
        let t0 = Stopwatch::start();
        let lookup = cache.lookup_into(c, &mut scratch.lookup_ids);
        let ids: &[u64] = &scratch.lookup_ids;
        let items: &Cache = cache;
        probe.record_span(Phase::CacheLookup, t0.elapsed());
        probe.add_counter(names::CACHE_CANDIDATES, ids.len() as u64);
        probe.add_counter(names::CACHE_OVERLAP_SCANS, lookup.scans);

        let t1 = Stopwatch::start();
        let picked = config
            .strategy
            .select_indexed(
                ids.len(),
                // skylint: allow(no-panic-paths) — `lookup_into` only emits ids present in the items map, and the cache is not mutated between lookup and resolution.
                |i| items.get(ids[i]).expect("lookup ids are live"),
                c,
                data_bounds,
                rng,
            )
            // skylint: allow(no-panic-paths) — `lookup_into` only emits ids present in the items map, and the cache is not mutated between lookup and resolution.
            .map(|idx| items.get(ids[idx]).expect("lookup ids are live"));
        probe.record_span(Phase::CaseAnalysis, t1.elapsed());

        picked.map(|primary| {
            // Compositional answering (DESIGN.md §17.3): when enabled and
            // the primary has no free-solution fast path, try composing
            // the cover-ordered candidates into one remainder plan.
            // `plan_composed` reports `None` when fewer than two items
            // contribute — then the single-item path below runs, so the
            // pinned single-item geometry is untouched.
            if config.compose
                && config.compose_items >= 2
                && ids.len() >= 2
                && !matches!(
                    classify(&primary.constraints, c),
                    Overlap::Exact | Overlap::CaseB { .. }
                )
            {
                let mut parts: Vec<(&Constraints, &PointBlock)> =
                    Vec::with_capacity(config.compose_items);
                let mut part_ids: Vec<u64> = Vec::with_capacity(config.compose_items);
                parts.push((&primary.constraints, &primary.skyline));
                part_ids.push(primary.id);
                for &id in ids {
                    if parts.len() >= config.compose_items {
                        break;
                    }
                    if id == primary.id {
                        continue;
                    }
                    // skylint: allow(no-panic-paths) — `lookup_into` only emits ids present in the items map, and the cache is not mutated between lookup and resolution.
                    let item = items.get(id).expect("lookup ids are live");
                    parts.push((&item.constraints, &item.skyline));
                    part_ids.push(id);
                }
                let t2 = Stopwatch::start();
                let composed = plan_composed(&parts, c, config.mpr, data_bounds);
                probe.record_span(Phase::MprCompute, t2.elapsed());
                if let Some(composed) = composed {
                    // Every candidate overlaps the query, so contributors
                    // are exactly the first `items_used` parts in order.
                    part_ids.truncate(composed.items_used);
                    return Selection::Composed(part_ids, composed);
                }
            }

            // Section 6.3 extension: harvest extra pruning points
            // from the next-best items by constraint overlap.
            let extra: Vec<Point> = if config.extra_items > 0 {
                let mut others: Vec<u64> =
                    ids.iter().copied().filter(|&id| id != primary.id).collect();
                others.sort_by(|&a, &b| {
                    // total_cmp: overlap volumes of partially
                    // unbounded regions may be inf or NaN (0·inf).
                    let va = items.get(a).map_or(0.0, |it| c.overlap_volume(&it.constraints));
                    let vb = items.get(b).map_or(0.0, |it| c.overlap_volume(&it.constraints));
                    vb.total_cmp(&va)
                });
                others
                    .into_iter()
                    .take(config.extra_items)
                    .filter_map(|id| items.get(id))
                    .flat_map(|it| it.skyline.to_points())
                    .collect()
            } else {
                Vec::new()
            };
            let t2 = Stopwatch::start();
            let plan =
                plan_with_extra(&primary.constraints, &primary.skyline, &extra, c, config.mpr);
            probe.record_span(Phase::MprCompute, t2.elapsed());
            Selection::Single(primary.id, plan)
        })
    };

    let skyline = match selection {
        None => {
            probe.add_counter(names::CACHE_MISSES, 1);
            if config.block_path {
                query_naive(table, algo, exec, c, scratch, &mut probe)
            } else {
                query_naive_legacy(table, algo, exec, c, &mut probe)
            }
        }
        Some(Selection::Single(item_id, query_plan)) => {
            probe.add_counter(names::CACHE_HITS, 1);
            probe.stats.cache_hit = true;
            probe.stats.composed_items = 1;
            cache.touch(item_id);
            if config.block_path {
                query_planned(table, algo, exec, query_plan, scratch, &mut probe)
            } else {
                query_planned_legacy(table, algo, exec, query_plan, &mut probe)
            }
        }
        Some(Selection::Composed(part_ids, composed)) => {
            probe.add_counter(names::CACHE_HITS, 1);
            probe.add_counter(names::CACHE_COMPOSED_HITS, 1);
            probe.stats.cache_hit = true;
            probe.stats.composed_items = composed.items_used;
            probe.stats.cover_fraction = composed.cover_fraction;
            probe.set_gauge(names::CACHE_COVER_FRACTION, composed.cover_fraction);
            for &id in &part_ids {
                cache.touch(id);
            }
            if config.block_path {
                query_planned(table, algo, exec, composed.plan, scratch, &mut probe)
            } else {
                query_planned_legacy(table, algo, exec, composed.plan, &mut probe)
            }
        }
    };
    probe.add_counter(names::SKYLINE_RESULT_SIZE, skyline.len() as u64);

    if config.cache_results {
        if matches!(probe.stats.case, Some(Overlap::Exact)) {
            // The result is already cached under these very constraints;
            // re-inserting would duplicate the item and evict an
            // innocent victim on every repeat. Keep the key's popularity
            // visible to the admission sketch instead.
            cache.note_demand(c);
        } else {
            let evictions_before = cache.evictions();
            let rejects_before = cache.admission_rejects();
            let cost = ItemCost {
                points_read: probe.stats.points_read,
                fetch_ns: probe.stats.fetch_sim_ns,
            };
            if cache.insert_with_cost(c.clone(), &skyline, cost).is_some() {
                probe.add_counter(names::CACHE_INSERTIONS, 1);
            }
            let evicted = cache.evictions() - evictions_before;
            if evicted > 0 {
                probe.add_counter(names::CACHE_EVICTIONS, evicted);
            }
            let rejected = cache.admission_rejects() - rejects_before;
            if rejected > 0 {
                probe.add_counter(names::CACHE_ADMISSION_REJECTS, rejected);
            }
        }
    }

    Ok(QueryOutcome { skyline, stats, report: rec.map(QueryRecorder::into_report) })
}

/// What the processing stage decided for one query: answer from a single
/// cached item (with optional harvested pruning points folded into its
/// plan) or compose several cached items' trusted space.
enum Selection {
    /// Primary item id plus its single-item plan.
    Single(u64, QueryPlan),
    /// Contributing item ids (cover-ordered, primary first) plus the
    /// composed remainder plan.
    Composed(Vec<u64>, ComposedPlan),
}

/// The cache-miss path on the block-oriented hot path: one constraint
/// range query into the reusable fetch scratch, then the skyline kernel
/// directly over the columnar rows. Results and counters are identical
/// to [`query_naive_legacy`]; only allocation behavior differs.
pub(crate) fn query_naive(
    table: &Table,
    algo: &dyn SkylineAlgorithm,
    exec: ExecMode,
    c: &Constraints,
    scratch: &mut QueryScratch,
    probe: &mut Probe<'_>,
) -> Vec<Point> {
    let t0 = Stopwatch::start();
    let outcome = table.fetch_plan_into(&FetchPlan::constrained(c), &mut scratch.fetch);
    probe.stats.fetch_sim_ns += outcome.simulated_latency.as_nanos() as u64;
    probe.record_span(Phase::Fetch, t0.elapsed() + outcome.simulated_latency);
    outcome.record_into(probe);
    if probe.detailed() {
        probe.add_counter(
            names::FETCH_PAGES_TOUCHED,
            table.pages_touched_ids(scratch.fetch.rows().ids()),
        );
    }

    let t1 = Stopwatch::start();
    let dims = table.dims();
    let QueryScratch { fetch, sky, sky_out, .. } = scratch;
    let out = reuse_block(sky_out, dims);
    let skyline = compute_skyline_rows(algo, exec, fetch.rows().coords(), dims, sky, out, probe);
    probe.record_span(Phase::Skyline, t1.elapsed());
    skyline
}

/// The cache-miss path: one constraint range query plus a full skyline.
pub(crate) fn query_naive_legacy(
    table: &Table,
    algo: &dyn SkylineAlgorithm,
    exec: ExecMode,
    c: &Constraints,
    probe: &mut Probe<'_>,
) -> Vec<Point> {
    let t0 = Stopwatch::start();
    let fetch = table.fetch_plan(&FetchPlan::constrained(c));
    probe.stats.fetch_sim_ns += fetch.simulated_latency.as_nanos() as u64;
    probe.record_span(Phase::Fetch, t0.elapsed() + fetch.simulated_latency);
    fetch.record_into(probe);
    if probe.detailed() {
        probe.add_counter(names::FETCH_PAGES_TOUCHED, table.pages_touched(&fetch.rows));
    }

    let t1 = Stopwatch::start();
    let points: Vec<Point> = fetch.rows.into_iter().map(|r| r.point).collect();
    let skyline = compute_skyline(algo, exec, points, probe);
    probe.record_span(Phase::Skyline, t1.elapsed());
    skyline
}

/// The cache-hit path on the block-oriented hot path: fetch the plan's
/// regions with a *coalescing* plan (overlapping or abutting index
/// ranges merge into one range query; rows are deduplicated across
/// regions), block-merge with the retained points, and run the skyline
/// kernel over the merged block. The skyline and all non-coalescing
/// counters match [`query_planned_legacy`]; `fetch.regions_coalesced`
/// additionally reports the planner's savings.
pub(crate) fn query_planned(
    table: &Table,
    algo: &dyn SkylineAlgorithm,
    exec: ExecMode,
    plan: QueryPlan,
    scratch: &mut QueryScratch,
    probe: &mut Probe<'_>,
) -> Vec<Point> {
    probe.stats.case = Some(plan.overlap);
    probe.add_counter(names::CACHE_RETAINED_POINTS, plan.retained.len() as u64);
    probe.add_counter(names::CACHE_REMOVED_POINTS, plan.removed_points as u64);
    probe.add_counter(names::MPR_REGIONS, plan.regions.len() as u64);
    probe.add_counter(names::MPR_PRUNE_POINTS, plan.prune_points_used as u64);
    probe.add_counter(names::MPR_INVALIDATED_PIECES, plan.invalidated_pieces as u64);

    let t0 = Stopwatch::start();
    let fetch_plan = FetchPlan::remainder(plan.regions).with_lanes(exec.lanes());
    let outcome = table.fetch_plan_into(&fetch_plan, &mut scratch.fetch);
    probe.stats.fetch_sim_ns += outcome.simulated_latency.as_nanos() as u64;
    probe.record_span(Phase::Fetch, t0.elapsed() + outcome.simulated_latency);
    outcome.record_into(probe);
    if probe.detailed() {
        probe.add_counter(
            names::FETCH_PAGES_TOUCHED,
            table.pages_touched_ids(scratch.fetch.rows().ids()),
        );
    }

    if plan.needs_skyline {
        let dims = table.dims();
        let t1 = Stopwatch::start();
        let QueryScratch { fetch, sky, merged, sky_out, merge_order, dup_budget, .. } = scratch;
        let merged = reuse_block(merged, dims);
        merge_rows(&plan.retained, fetch.rows(), merged, merge_order, dup_budget);
        probe.record_span(Phase::Merge, t1.elapsed());

        let t2 = Stopwatch::start();
        let out = reuse_block(sky_out, dims);
        let skyline = compute_skyline_rows(algo, exec, merged.as_flat(), dims, sky, out, probe);
        probe.record_span(Phase::Skyline, t2.elapsed());
        skyline
    } else {
        // Exact hit or Case (b): the retained points are the answer.
        plan.retained.to_points()
    }
}

/// The cache-hit path: fetch the plan's regions, merge, recompute.
///
/// In parallel mode the MPR/aMPR regions are fetched over `exec.lanes()`
/// concurrent lanes; rows and fetch counters are identical to the
/// sequential path, and the simulated latency is the slowest lane.
pub(crate) fn query_planned_legacy(
    table: &Table,
    algo: &dyn SkylineAlgorithm,
    exec: ExecMode,
    plan: QueryPlan,
    probe: &mut Probe<'_>,
) -> Vec<Point> {
    probe.stats.case = Some(plan.overlap);
    probe.add_counter(names::CACHE_RETAINED_POINTS, plan.retained.len() as u64);
    probe.add_counter(names::CACHE_REMOVED_POINTS, plan.removed_points as u64);
    probe.add_counter(names::MPR_REGIONS, plan.regions.len() as u64);
    probe.add_counter(names::MPR_PRUNE_POINTS, plan.prune_points_used as u64);
    probe.add_counter(names::MPR_INVALIDATED_PIECES, plan.invalidated_pieces as u64);

    let t0 = Stopwatch::start();
    let fetch = table.fetch_plan(&FetchPlan::new(plan.regions).with_lanes(exec.lanes()));
    probe.stats.fetch_sim_ns += fetch.simulated_latency.as_nanos() as u64;
    probe.record_span(Phase::Fetch, t0.elapsed() + fetch.simulated_latency);
    fetch.record_into(probe);
    if probe.detailed() {
        probe.add_counter(names::FETCH_PAGES_TOUCHED, table.pages_touched(&fetch.rows));
    }

    if plan.needs_skyline {
        let t1 = Stopwatch::start();
        let fetched: Vec<Point> = fetch.rows.into_iter().map(|r| r.point).collect();
        let merged = merge_dedup(plan.retained.to_points(), fetched);
        probe.record_span(Phase::Merge, t1.elapsed());

        let t2 = Stopwatch::start();
        let skyline = compute_skyline(algo, exec, merged, probe);
        probe.record_span(Phase::Skyline, t2.elapsed());
        skyline
    } else {
        // Exact hit or Case (b): the retained points are the answer.
        plan.retained.to_points()
    }
}

// ---------------------------------------------------------------------------
// Dynamic CBCS (paper Section 6.2: dynamic data)
// ---------------------------------------------------------------------------

/// CBCS over a table it owns and may mutate.
///
/// The paper sketches dynamic-data support "by viewing each cache item as
/// a separate dataset with a continuous skyline query": on
/// [`insert`](DynamicCbcsExecutor::insert) the new point is folded into
/// every cached skyline whose constraints it satisfies; on
/// [`delete`](DynamicCbcsExecutor::delete), cached results holding the
/// deleted point are dropped (the conservative maintenance policy — see
/// [`Cache::on_delete`]). Query answering is identical to
/// [`CbcsExecutor`].
pub struct DynamicCbcsExecutor {
    table: Table,
    cache: Cache,
    config: CbcsConfig,
    algo: Box<dyn SkylineAlgorithm>,
    rng: StdRng,
    data_bounds: Aabb,
    scratch: QueryScratch,
}

impl DynamicCbcsExecutor {
    /// Takes ownership of the table and starts with an empty cache.
    pub fn new(table: Table, config: CbcsConfig) -> Self {
        let cache = Cache::with_capacity(table.dims(), config.capacity, config.policy);
        let data_bounds = Aabb::bounding(table.all_points())
            // skylint: allow(no-panic-paths) — Table::build rejects empty point sets.
            .expect("tables are non-empty");
        let rng = StdRng::seed_from_u64(config.seed);
        DynamicCbcsExecutor {
            table,
            cache,
            config,
            algo: Box::new(Sfs),
            rng,
            data_bounds,
            scratch: QueryScratch::new(),
        }
    }

    /// Replaces the in-memory skyline component.
    pub fn with_algorithm(mut self, algo: Box<dyn SkylineAlgorithm>) -> Self {
        self.algo = algo;
        self
    }

    /// Read access to the table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Read access to the cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Inserts a data point, maintaining both the storage indexes and
    /// every affected cached skyline. Returns the new row id.
    pub fn insert(&mut self, p: Point) -> Result<skycache_storage::RowId> {
        let row = self.table.insert(p.clone())?;
        self.data_bounds.merge(&Aabb::from_point(&p));
        self.cache.on_insert(&p);
        Ok(row)
    }

    /// Deletes a row, dropping cached results that can no longer be
    /// trusted. Returns the deleted point.
    pub fn delete(&mut self, row: skycache_storage::RowId) -> Option<Point> {
        let p = self.table.delete(row)?;
        self.cache.on_delete(&p);
        Some(p)
    }
}

impl Executor for DynamicCbcsExecutor {
    fn name(&self) -> String {
        format!("DynamicCBCS[{}]", self.config.mpr.label())
    }

    fn execute(&mut self, req: &QueryRequest) -> Result<QueryOutcome> {
        execute_cbcs_query(
            &self.table,
            &mut self.cache,
            &self.config,
            self.algo.as_ref(),
            &mut self.rng,
            &self.data_bounds,
            &mut self.scratch,
            req,
        )
    }
}

/// Merges retained cached points with fetched rows, dropping one fetched
/// copy per identical retained point: with the approximate MPR, regions
/// not pruned by a retained point `u` may re-fetch `u`'s stored row, and
/// keeping both copies would duplicate `u` in the result.
fn merge_dedup(retained: Vec<Point>, fetched: Vec<Point>) -> Vec<Point> {
    // BTreeMap for the determinism policy; the map is lookup-only, so
    // only code shape (not behavior) depends on the choice.
    use std::collections::BTreeMap;
    if retained.is_empty() {
        return fetched;
    }
    let mut counts: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
    for p in &retained {
        let key: Vec<u64> = p.coords().iter().map(|c| c.to_bits()).collect();
        *counts.entry(key).or_insert(0) += 1;
    }
    let mut merged = retained;
    merged.reserve(fetched.len());
    for p in fetched {
        let key: Vec<u64> = p.coords().iter().map(|c| c.to_bits()).collect();
        match counts.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1, // drop this duplicate copy
            _ => merged.push(p),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycache_storage::TableConfig;

    fn p(coords: &[f64]) -> Point {
        Point::from(coords.to_vec())
    }

    fn grid_table() -> Table {
        // 20x20 grid over [0, 1.9]^2 with step 0.1.
        let points: Vec<Point> = (0..20)
            .flat_map(|i| (0..20).map(move |j| p(&[f64::from(i) / 10.0, f64::from(j) / 10.0])))
            .collect();
        Table::build(points, TableConfig::default()).unwrap()
    }

    fn c(pairs: &[(f64, f64)]) -> Constraints {
        Constraints::from_pairs(pairs).unwrap()
    }

    fn run(ex: &mut impl Executor, cc: &Constraints) -> QueryResult {
        ex.execute(&QueryRequest::new(cc.clone())).unwrap().into_result()
    }

    #[test]
    fn baseline_computes_constrained_skyline() {
        let table = grid_table();
        let mut ex = BaselineExecutor::new(&table);
        let res = run(&mut ex, &c(&[(0.5, 1.0), (0.5, 1.0)]));
        // The grid's constrained skyline is the single corner (0.5, 0.5).
        assert_eq!(res.skyline, vec![p(&[0.5, 0.5])]);
        assert!(res.stats.points_read > 0);
        assert_eq!(res.stats.range_queries_issued, 1);
    }

    #[test]
    fn skyline_route_planar_wins_at_two_dims() {
        // d = 2 always takes the planar sweep, even under parallel exec
        // with thresholds that would otherwise engage the split.
        let par = ExecMode::Parallel { lanes: 8, dc_threshold: 1 };
        assert_eq!(skyline_route(par, 1 << 20, 2), SkylineRoute::Planar);
        assert_eq!(skyline_route(ExecMode::Sequential, 10, 2), SkylineRoute::Planar);
    }

    #[test]
    fn skyline_route_gates_the_parallel_split() {
        // Sequential mode never routes to the split.
        assert_eq!(skyline_route(ExecMode::Sequential, 1 << 20, 5), SkylineRoute::Sequential);
        // Tiny inputs fall back to the sequential block path even in
        // parallel mode: the spawn overhead can't amortize.
        let par = ExecMode::Parallel { lanes: 4, dc_threshold: 16 };
        assert_eq!(skyline_route(par, 100, 5), SkylineRoute::Sequential);
        // A single lane has nothing to split across.
        let one = ExecMode::Parallel { lanes: 1, dc_threshold: 16 };
        assert_eq!(skyline_route(one, 1 << 20, 5), SkylineRoute::Sequential);
        // Large high-dimensional inputs engage exactly when the host can
        // actually run lanes concurrently — the same decision the gate
        // makes, asserted here against the route.
        let engaged = skyline_route(par, 1 << 20, 5);
        let pd = ParallelDc { threads: 4, sequential_threshold: 16 };
        if pd.should_engage(1 << 20, 5) {
            assert_eq!(engaged, SkylineRoute::Parallel { threads: pd.resolved_threads() });
        } else {
            assert_eq!(engaged, SkylineRoute::Sequential);
        }
    }

    #[test]
    fn executors_agree() {
        let table = grid_table();
        let mut baseline = BaselineExecutor::new(&table);
        let mut bbs = BbsExecutor::new(&table);
        let mut cbcs = CbcsExecutor::new(&table, CbcsConfig::default());
        for cc in [
            c(&[(0.3, 1.2), (0.2, 0.8)]),
            c(&[(0.35, 1.2), (0.2, 0.8)]),
            c(&[(0.35, 1.4), (0.2, 0.8)]),
            c(&[(0.0, 1.9), (0.0, 1.9)]),
        ] {
            let mut a = run(&mut baseline, &cc).skyline;
            let mut b = run(&mut bbs, &cc).skyline;
            let mut d = run(&mut cbcs, &cc).skyline;
            let key = |x: &Point| (x[0].to_bits(), x[1].to_bits());
            a.sort_by_key(key);
            b.sort_by_key(key);
            d.sort_by_key(key);
            assert_eq!(a, b, "BBS diverged on {cc:?}");
            assert_eq!(a, d, "CBCS diverged on {cc:?}");
        }
    }

    #[test]
    fn cbcs_first_query_misses_then_hits() {
        let table = grid_table();
        let mut cbcs = CbcsExecutor::new(&table, CbcsConfig::default());
        let c1 = c(&[(0.2, 1.0), (0.2, 1.0)]);
        let r1 = run(&mut cbcs, &c1);
        assert!(!r1.stats.cache_hit);
        assert_eq!(cbcs.cache().len(), 1);

        // Case (c): widen the upper bound of dim 0.
        let c2 = c(&[(0.2, 1.2), (0.2, 1.0)]);
        let r2 = run(&mut cbcs, &c2);
        assert!(r2.stats.cache_hit);
        assert_eq!(r2.stats.case, Some(Overlap::CaseC { dim: 0 }));
        assert!(r2.stats.points_read < r1.stats.points_read);
    }

    #[test]
    fn cbcs_case_b_needs_no_fetch() {
        let table = grid_table();
        let mut cbcs = CbcsExecutor::new(&table, CbcsConfig::default());
        let c1 = c(&[(0.2, 1.0), (0.2, 1.0)]);
        run(&mut cbcs, &c1);
        let c2 = c(&[(0.2, 0.8), (0.2, 1.0)]);
        let r2 = run(&mut cbcs, &c2);
        assert_eq!(r2.stats.case, Some(Overlap::CaseB { dim: 0 }));
        assert_eq!(r2.stats.points_read, 0);
        assert_eq!(r2.stats.range_queries_issued, 0);
        assert_eq!(r2.stats.dominance_tests, 0);
    }

    #[test]
    fn cbcs_exact_hit_is_free() {
        let table = grid_table();
        let mut cbcs = CbcsExecutor::new(&table, CbcsConfig::default());
        let c1 = c(&[(0.2, 1.0), (0.2, 1.0)]);
        let r1 = run(&mut cbcs, &c1);
        let r2 = run(&mut cbcs, &c1);
        assert_eq!(r2.stats.case, Some(Overlap::Exact));
        assert_eq!(r2.stats.points_read, 0);
        assert_eq!(r2.skyline, r1.skyline);
    }

    #[test]
    fn cbcs_composes_two_cached_items_and_matches_single_item_path() {
        // Two primed halves jointly cover the third query's region; with
        // composition on, both contribute and the merged skyline equals
        // the single-item (compose-off) answer on the same sequence.
        // (The spanning box keeps both cached skyline corners — (0,0)
        // and (0.9,0) — inside it, so the MBR index surfaces both items
        // as candidates.)
        let left = c(&[(0.0, 0.9), (0.0, 1.9)]);
        let right = c(&[(0.9, 1.9), (0.0, 1.9)]);
        let spanning = c(&[(0.0, 1.5), (0.0, 1.9)]);

        let table = grid_table();
        let mut plain = CbcsExecutor::new(&table, CbcsConfig::default());
        let mut composed =
            CbcsExecutor::new(&table, CbcsConfig { compose: true, ..CbcsConfig::default() });
        for ex in [&mut plain, &mut composed] {
            run(ex, &left);
            run(ex, &right);
        }

        let a = run(&mut plain, &spanning);
        let b = run(&mut composed, &spanning);
        assert_eq!(a.stats.composed_items, 1, "compose off must stay single-item");
        assert!(b.stats.composed_items >= 2, "got {} items", b.stats.composed_items);
        assert!(b.stats.cover_fraction > 0.9, "got cover {}", b.stats.cover_fraction);
        let key = |x: &Point| (x[0].to_bits(), x[1].to_bits());
        let mut sa = a.skyline;
        let mut sb = b.skyline;
        sa.sort_by_key(key);
        sb.sort_by_key(key);
        assert_eq!(sa, sb, "composed answer diverged from single-item answer");
        // The composed cover leaves a smaller remainder to fetch.
        assert!(b.stats.points_read <= a.stats.points_read);
    }

    #[test]
    fn cbcs_matches_baseline_on_unstable_chain() {
        let table = grid_table();
        let mut baseline = BaselineExecutor::new(&table);
        let mut cbcs = CbcsExecutor::new(&table, CbcsConfig::default());
        let chain = [
            c(&[(0.0, 1.5), (0.0, 1.5)]),
            c(&[(0.3, 1.5), (0.0, 1.5)]), // case (d): lower increased
            c(&[(0.3, 1.5), (0.4, 1.5)]), // case (d) again
            c(&[(0.2, 1.5), (0.4, 1.5)]), // case (a)
        ];
        for cc in &chain {
            let mut a = run(&mut baseline, cc).skyline;
            let mut b = run(&mut cbcs, cc).skyline;
            let key = |x: &Point| (x[0].to_bits(), x[1].to_bits());
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "diverged on {cc:?}");
        }
    }

    #[test]
    fn cbcs_no_duplicates_with_small_k() {
        // aMPR(0) prunes nothing: every retained point's region is
        // re-fetched, and dedup must kill the copies.
        let table = grid_table();
        let config = CbcsConfig { mpr: MprMode::Approximate { k: 0 }, ..CbcsConfig::default() };
        let mut cbcs = CbcsExecutor::new(&table, config);
        run(&mut cbcs, &c(&[(0.2, 1.0), (0.2, 1.0)]));
        let res = run(&mut cbcs, &c(&[(0.1, 1.0), (0.2, 1.0)]));
        let mut sky = res.skyline.clone();
        sky.sort_by_key(|x| (x[0].to_bits(), x[1].to_bits()));
        sky.dedup();
        assert_eq!(sky.len(), res.skyline.len(), "duplicate points in result");
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let table = grid_table();
        let mut ex = BaselineExecutor::new(&table);
        let bad = Constraints::from_pairs(&[(0.0, 1.0)]).unwrap();
        assert!(matches!(
            ex.execute(&QueryRequest::new(bad)),
            Err(CoreError::DimensionMismatch { expected: 2, actual: 1 })
        ));
    }

    #[test]
    fn block_and_legacy_paths_agree_on_chains() {
        // The block path must be a pure performance change: same skyline
        // set, same non-coalescing counters, same case classification.
        let table = grid_table();
        let mut block = CbcsExecutor::new(&table, CbcsConfig::default());
        let legacy_cfg = CbcsConfig { block_path: false, ..CbcsConfig::default() };
        let mut legacy = CbcsExecutor::new(&table, legacy_cfg);
        let chain = [
            c(&[(0.0, 1.5), (0.0, 1.5)]),
            c(&[(0.3, 1.5), (0.0, 1.5)]), // case (d)
            c(&[(0.3, 1.5), (0.4, 1.5)]), // case (d)
            c(&[(0.2, 1.5), (0.4, 1.5)]), // case (a)
            c(&[(0.1, 1.2), (0.3, 1.4)]),
            c(&[(0.1, 1.2), (0.3, 1.4)]), // exact hit
        ];
        for cc in &chain {
            let b = run(&mut block, cc);
            let l = run(&mut legacy, cc);
            let key = |x: &Point| (x[0].to_bits(), x[1].to_bits());
            let mut bs = b.skyline.clone();
            let mut ls = l.skyline.clone();
            bs.sort_by_key(key);
            ls.sort_by_key(key);
            assert_eq!(bs, ls, "skyline diverged on {cc:?}");
            assert_eq!(b.stats.points_read, l.stats.points_read, "points_read on {cc:?}");
            assert_eq!(b.stats.case, l.stats.case, "case on {cc:?}");
            assert_eq!(b.stats.result_size, l.stats.result_size);
            assert_eq!(b.stats.retained_points, l.stats.retained_points);
            assert_eq!(b.stats.cache_hit, l.stats.cache_hit);
            // Coalescing can only save range queries, never add them.
            assert!(b.stats.range_queries_executed <= l.stats.range_queries_executed);
            assert_eq!(l.stats.regions_coalesced, 0, "legacy path never coalesces");
        }
    }

    #[test]
    fn merge_rows_matches_merge_dedup() {
        // Rows fetched into the columnar scratch, merged block-natively,
        // must equal the Vec-based merge point for point — including the
        // duplicate-budget semantics with repeated retained points.
        let table = grid_table();
        let mut fetch_scratch = skycache_storage::FetchScratch::new();
        let cc = c(&[(0.2, 0.5), (0.2, 0.5)]);
        table.fetch_plan_into(&FetchPlan::constrained(&cc), &mut fetch_scratch);
        let buf = fetch_scratch.rows();
        let fetched: Vec<Point> = (0..buf.len()).map(|i| p(buf.row(i))).collect();

        for retained in [
            vec![],
            vec![p(&[0.3, 0.4]), p(&[9.0, 9.0])],
            vec![p(&[0.3, 0.4]), p(&[0.3, 0.4]), p(&[0.2, 0.2])],
        ] {
            let want = merge_dedup(retained.clone(), fetched.clone());
            let mut merged = PointBlock::new(2).unwrap();
            let mut order = Vec::new();
            let mut budget = Vec::new();
            let mut retained_block = PointBlock::new(2).unwrap();
            for rp in &retained {
                retained_block.push(rp);
            }
            merge_rows(&retained_block, buf, &mut merged, &mut order, &mut budget);
            assert_eq!(merged.to_points(), want, "retained = {retained:?}");
        }
    }

    #[test]
    fn regions_coalesced_maps_into_stats() {
        let mut stats = QueryStats::default();
        stats.add_counter(names::FETCH_REGIONS_COALESCED, 3);
        assert_eq!(stats.regions_coalesced, 3);
    }

    #[test]
    fn merge_dedup_drops_one_copy_per_retained() {
        let retained = vec![p(&[1.0, 1.0]), p(&[2.0, 2.0])];
        let fetched = vec![p(&[1.0, 1.0]), p(&[1.0, 1.0]), p(&[3.0, 3.0])];
        let merged = merge_dedup(retained, fetched);
        // 2 retained + (1 duplicate of [1,1] kept — the data really holds
        // two copies) + [3,3].
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn stage_times_total() {
        let t = StageTimes {
            processing: Duration::from_millis(1),
            fetching: Duration::from_millis(2),
            skyline: Duration::from_millis(3),
        };
        assert_eq!(t.total(), Duration::from_millis(6));
    }

    #[test]
    fn request_without_recording_has_no_report() {
        let table = grid_table();
        let mut cbcs = CbcsExecutor::new(&table, CbcsConfig::default());
        let out = cbcs.execute(&QueryRequest::new(c(&[(0.2, 1.0), (0.2, 1.0)]))).unwrap();
        assert!(out.report.is_none());
    }

    #[test]
    fn recorded_request_reports_spans_and_counters() {
        let table = grid_table();
        let mut cbcs = CbcsExecutor::new(&table, CbcsConfig::default());
        let c1 = c(&[(0.2, 1.0), (0.2, 1.0)]);
        let miss = cbcs.execute(&QueryRequest::new(c1.clone()).recorded()).unwrap().report.unwrap();
        assert_eq!(miss.counter(names::CACHE_MISSES), 1);
        assert_eq!(miss.counter(names::CACHE_HITS), 0);
        assert_eq!(miss.counter(names::CACHE_INSERTIONS), 1);
        assert!(miss.counter(names::FETCH_POINTS_READ) > 0);
        assert!(miss.counter(names::FETCH_PAGES_TOUCHED) > 0);
        assert!(miss.phase_ns(Phase::Skyline) > 0);

        // Case (a) hit (lower bound widened): MPR regions must be
        // fetched, and the cache counters appear.
        let c2 = c(&[(0.1, 1.0), (0.2, 1.0)]);
        let hit = cbcs.execute(&QueryRequest::new(c2).recorded()).unwrap().report.unwrap();
        assert_eq!(hit.counter(names::CACHE_HITS), 1);
        assert_eq!(hit.counter(names::CACHE_MISSES), 0);
        assert!(hit.counter(names::CACHE_RETAINED_POINTS) > 0);
        assert!(hit.counter(names::MPR_REGIONS) > 0);
        // The report carries the same totals as the legacy stats mirror.
        let out = cbcs.execute(&QueryRequest::new(c1).recorded()).unwrap();
        let report = out.report.unwrap();
        assert_eq!(report.counter(names::FETCH_POINTS_READ), out.stats.points_read);
        assert_eq!(report.counter(names::SKYLINE_RESULT_SIZE), out.stats.result_size);
    }

    #[test]
    fn request_overrides_exec_and_algo() {
        let table = grid_table();
        let cc = c(&[(0.0, 1.9), (0.0, 1.9)]);
        let mut ex = BaselineExecutor::new(&table);
        let base = run(&mut ex, &cc);
        for req in [
            QueryRequest::new(cc.clone()).with_algo(AlgoChoice::Bnl),
            QueryRequest::new(cc.clone()).with_algo(AlgoChoice::DivideConquer),
            QueryRequest::new(cc.clone()).with_algo(AlgoChoice::Salsa),
            QueryRequest::new(cc.clone())
                .with_exec(ExecMode::Parallel { lanes: 4, dc_threshold: 1 }),
        ] {
            let mut got = ex.execute(&req).unwrap().skyline;
            let mut want = base.skyline.clone();
            let key = |x: &Point| (x[0].to_bits(), x[1].to_bits());
            got.sort_by_key(key);
            want.sort_by_key(key);
            assert_eq!(got, want, "override {req:?} diverged");
        }
    }

    #[test]
    fn recording_reports_evictions() {
        let table = grid_table();
        let config = CbcsConfig { capacity: Some(1), ..CbcsConfig::default() };
        let mut cbcs = CbcsExecutor::new(&table, config);
        run(&mut cbcs, &c(&[(0.2, 1.0), (0.2, 1.0)]));
        // Disjoint constraints: a miss whose insert evicts the first item.
        let out =
            cbcs.execute(&QueryRequest::new(c(&[(1.2, 1.9), (1.2, 1.9)])).recorded()).unwrap();
        let report = out.report.unwrap();
        assert_eq!(report.counter(names::CACHE_EVICTIONS), 1);
        assert_eq!(cbcs.cache().evictions(), 1);
    }
}
