//! Skyline stability (paper Section 4.1) and overlap classification.
//!
//! A cached result `Sky(S, C)` is *stable* relative to new constraints
//! `C′` when every point of `S_C` known to be dominated stays dominated:
//! no point can sneak into `Sky(S, C′)` from inside the old region other
//! than the cached skyline points themselves (Definition 4). Theorem 1
//! gives the syntactic characterization: stability is guaranteed iff the
//! new lower constraints do not cut above the old ones in any dimension
//! (`∀i: C̲′[i] ≤ C̲[i]`), or the regions are disjoint. Only raising a
//! lower bound can remove a cached skyline point *and* keep alive points
//! it used to dominate.

use skycache_geom::Constraints;

/// How new constraints `C′` relate to cached constraints `C`.
///
/// The four single-bound cases mirror Figure 3 of the paper (and the
/// `Case 1..4` numbering used in its Figures 10–11):
/// [`Overlap::CaseA`] = case 1 (decrease a lower constraint),
/// [`Overlap::CaseB`] = case 2 (decrease an upper constraint),
/// [`Overlap::CaseC`] = case 3 (increase an upper constraint),
/// [`Overlap::CaseD`] = case 4 (increase a lower constraint).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Overlap {
    /// The constraint regions share no point: the cache item is useless.
    Disjoint,
    /// Identical constraints: the cached result answers the query as-is.
    Exact,
    /// One lower bound decreased (stable; Theorem 2).
    CaseA {
        /// The changed dimension.
        dim: usize,
    },
    /// One upper bound decreased (stable; Theorem 3 — no fetch needed).
    CaseB {
        /// The changed dimension.
        dim: usize,
    },
    /// One upper bound increased (stable; Theorem 4).
    CaseC {
        /// The changed dimension.
        dim: usize,
    },
    /// One lower bound increased (unstable; Theorem 5).
    CaseD {
        /// The changed dimension.
        dim: usize,
    },
    /// Arbitrary overlapping change, stable per Theorem 1.
    GeneralStable,
    /// Arbitrary overlapping change, potentially unstable per Theorem 1.
    GeneralUnstable,
}

impl Overlap {
    /// Whether the cached skyline is guaranteed stable relative to the new
    /// constraints (Theorem 1).
    pub fn is_stable(self) -> bool {
        !matches!(self, Overlap::CaseD { .. } | Overlap::GeneralUnstable)
    }

    /// Short label used in benchmark output (paper case numbering).
    pub fn label(self) -> &'static str {
        match self {
            Overlap::Disjoint => "disjoint",
            Overlap::Exact => "exact",
            Overlap::CaseA { .. } => "case1",
            Overlap::CaseB { .. } => "case2",
            Overlap::CaseC { .. } => "case3",
            Overlap::CaseD { .. } => "case4",
            Overlap::GeneralStable => "general-stable",
            Overlap::GeneralUnstable => "general-unstable",
        }
    }
}

/// Theorem 1: `Sky(S, C)` is guaranteed stable relative to `C′` iff the
/// regions are disjoint or no lower constraint increased.
pub fn is_stable(old: &Constraints, new: &Constraints) -> bool {
    if !old.overlaps(new) {
        return true;
    }
    old.lo().iter().zip(new.lo()).all(|(o, n)| n <= o)
}

/// Classifies the relationship between cached constraints `old` and
/// queried constraints `new`.
///
/// # Panics
/// Panics if the dimensionalities differ.
pub fn classify(old: &Constraints, new: &Constraints) -> Overlap {
    assert_eq!(old.dims(), new.dims(), "constraints dimensionality mismatch");
    if !old.overlaps(new) {
        return Overlap::Disjoint;
    }

    // Locate changed bounds.
    let mut changed: Vec<(usize, bool /* is_lower */, bool /* increased */)> = Vec::new();
    for i in 0..old.dims() {
        if old.lo()[i] != new.lo()[i] {
            changed.push((i, true, new.lo()[i] > old.lo()[i]));
        }
        if old.hi()[i] != new.hi()[i] {
            changed.push((i, false, new.hi()[i] > old.hi()[i]));
        }
    }

    match changed.as_slice() {
        [] => Overlap::Exact,
        [(dim, true, false)] => Overlap::CaseA { dim: *dim },
        [(dim, false, false)] => Overlap::CaseB { dim: *dim },
        [(dim, false, true)] => Overlap::CaseC { dim: *dim },
        [(dim, true, true)] => Overlap::CaseD { dim: *dim },
        _ => {
            if is_stable(old, new) {
                Overlap::GeneralStable
            } else {
                Overlap::GeneralUnstable
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(pairs: &[(f64, f64)]) -> Constraints {
        Constraints::from_pairs(pairs).unwrap()
    }

    #[test]
    fn exact_match() {
        let a = c(&[(0.0, 1.0), (0.0, 1.0)]);
        assert_eq!(classify(&a, &a.clone()), Overlap::Exact);
        assert!(is_stable(&a, &a));
    }

    #[test]
    fn disjoint_regions() {
        let a = c(&[(0.0, 1.0), (0.0, 1.0)]);
        let b = c(&[(2.0, 3.0), (0.0, 1.0)]);
        assert_eq!(classify(&a, &b), Overlap::Disjoint);
        // Disjoint is trivially stable (Theorem 1 [R]).
        assert!(is_stable(&a, &b));
    }

    #[test]
    fn four_single_bound_cases() {
        let old = c(&[(1.0, 2.0), (1.0, 2.0)]);
        assert_eq!(classify(&old, &c(&[(0.5, 2.0), (1.0, 2.0)])), Overlap::CaseA { dim: 0 });
        assert_eq!(classify(&old, &c(&[(1.0, 1.5), (1.0, 2.0)])), Overlap::CaseB { dim: 0 });
        assert_eq!(classify(&old, &c(&[(1.0, 2.0), (1.0, 2.5)])), Overlap::CaseC { dim: 1 });
        assert_eq!(classify(&old, &c(&[(1.0, 2.0), (1.5, 2.0)])), Overlap::CaseD { dim: 1 });
    }

    #[test]
    fn case_stability_flags() {
        assert!(Overlap::CaseA { dim: 0 }.is_stable());
        assert!(Overlap::CaseB { dim: 0 }.is_stable());
        assert!(Overlap::CaseC { dim: 0 }.is_stable());
        assert!(!Overlap::CaseD { dim: 0 }.is_stable());
        assert!(Overlap::GeneralStable.is_stable());
        assert!(!Overlap::GeneralUnstable.is_stable());
        assert!(Overlap::Exact.is_stable());
        assert!(Overlap::Disjoint.is_stable());
    }

    #[test]
    fn general_cases() {
        let old = c(&[(1.0, 2.0), (1.0, 2.0)]);
        // Two bounds changed, both "safe" directions → stable.
        let stable = c(&[(0.5, 2.5), (1.0, 2.0)]);
        assert_eq!(classify(&old, &stable), Overlap::GeneralStable);
        // Lower bound raised among the changes → unstable.
        let unstable = c(&[(1.5, 2.5), (1.0, 2.0)]);
        assert_eq!(classify(&old, &unstable), Overlap::GeneralUnstable);
        assert!(!is_stable(&old, &unstable));
    }

    #[test]
    fn one_dim_both_bounds_changed_is_general() {
        let old = c(&[(1.0, 2.0), (1.0, 2.0)]);
        let new = c(&[(0.5, 2.5), (1.0, 2.0)]);
        // Same dimension, both bounds — not a single-bound case.
        assert!(matches!(classify(&old, &new), Overlap::GeneralStable));
    }

    #[test]
    fn theorem1_matches_classification() {
        let old = c(&[(1.0, 2.0), (1.0, 2.0)]);
        for new in [
            c(&[(0.9, 2.0), (0.8, 1.9)]),
            c(&[(1.1, 2.0), (1.0, 2.0)]),
            c(&[(1.0, 3.0), (0.0, 2.0)]),
            c(&[(1.5, 1.8), (1.5, 1.8)]),
        ] {
            assert_eq!(classify(&old, &new).is_stable(), is_stable(&old, &new));
        }
    }
}
