//! Scheduler self-tests: the explorer must find classic bugs and certify
//! classic non-bugs, deterministically.

use skycheck::sync::{thread, Arc, AtomicU64, Mutex, Ordering, RwLock};
use skycheck::{Explorer, FailureKind};

#[test]
fn mutex_counter_is_sound() {
    let outcome = Explorer::new().explore(|| {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = m.clone();
        let h = thread::spawn(move || *m2.lock() += 1);
        *m.lock() += 1;
        h.join().expect("worker");
        assert_eq!(*m.lock(), 2);
    });
    outcome.assert_ok();
    assert!(outcome.exhausted, "small space must be exhausted");
    assert!(outcome.stats.schedules >= 2, "must explore both orders");
}

#[test]
fn atomic_read_modify_write_race_is_found() {
    // Unsynchronised load/store pairs lose updates under some schedule.
    let outcome = Explorer::new().explore(|| {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = a.clone();
        let h = thread::spawn(move || {
            let v = a2.load(Ordering::SeqCst);
            a2.store(v + 1, Ordering::SeqCst);
        });
        let v = a.load(Ordering::SeqCst);
        a.store(v + 1, Ordering::SeqCst);
        h.join().expect("worker");
        assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = outcome.failure.expect("explorer must find the lost update");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("lost update"), "{}", failure.message);
}

#[test]
fn ab_ba_deadlock_is_found() {
    let outcome = Explorer::new().explore(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let h = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        h.join().expect("worker");
    });
    let failure = outcome.failure.expect("explorer must find the AB/BA deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

#[test]
fn read_write_upgrade_deadlocks_and_nested_reads_do_not() {
    // Nested reads are fine under the shim's recursive-read semantics…
    let outcome = Explorer::new().explore(|| {
        let l = Arc::new(RwLock::new(7u32));
        let g1 = l.read();
        let g2 = l.read();
        assert_eq!(*g1 + *g2, 14);
    });
    outcome.assert_ok();
    assert!(outcome.exhausted);

    // …but a read→write upgrade on the same thread is a deadlock.
    let outcome = Explorer::new().explore(|| {
        let l = Arc::new(RwLock::new(7u32));
        let _g = l.read();
        let _w = l.write();
    });
    let failure = outcome.failure.expect("upgrade must deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

#[test]
fn failure_traces_are_byte_reproducible_and_replayable() {
    let harness = || {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = a.clone();
        let h = thread::spawn(move || {
            let v = a2.load(Ordering::SeqCst);
            a2.store(v + 1, Ordering::SeqCst);
        });
        let v = a.load(Ordering::SeqCst);
        a.store(v + 1, Ordering::SeqCst);
        h.join().expect("worker");
        assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
    };
    let first = Explorer::new().explore(harness).failure.expect("bug");
    let second = Explorer::new().explore(harness).failure.expect("bug");
    assert_eq!(first.trace, second.trace, "exploration must be deterministic");

    let replayed = Explorer::new().replay(&first.trace, harness);
    let rf = replayed.failure.expect("replay must reproduce the failure");
    assert_eq!(rf.trace, first.trace);
    assert_eq!(rf.message, first.message);
}

#[test]
fn scoped_threads_and_preemption_bound_zero() {
    // Under preemption bound 0 only cooperative switches happen; the
    // schedule count collapses but the harness still completes.
    let outcome = Explorer::new().with_preemption_bound(0).explore(|| {
        let total = Arc::new(Mutex::new(0u64));
        thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let total = total.clone();
                    s.spawn(move || *total.lock() += i)
                })
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
        });
        assert_eq!(*total.lock(), 3);
    });
    outcome.assert_ok();
    assert!(outcome.exhausted);
}

#[test]
fn sleep_sets_prune_commuting_interleavings() {
    let outcome = Explorer::new().explore(|| {
        // Two threads touching two different mutexes commute entirely:
        // DPOR should prune a chunk of the naive interleaving space.
        let a = Arc::new(Mutex::new(0u64));
        let b = Arc::new(Mutex::new(0u64));
        let a2 = a.clone();
        let h = thread::spawn(move || *a2.lock() += 1);
        *b.lock() += 1;
        h.join().expect("worker");
        assert_eq!(*a.lock() + *b.lock(), 2);
    });
    outcome.assert_ok();
    assert!(outcome.exhausted);
    assert!(
        outcome.stats.pruned_sleep > 0,
        "expected sleep-set pruning, stats: {:?}",
        outcome.stats
    );
}

#[test]
fn passthrough_mode_works_outside_explorer() {
    let m = Mutex::new(1u32);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 2);
    let l = RwLock::new(3u32);
    assert_eq!(*l.read(), 3);
    *l.write() += 1;
    assert_eq!(*l.read(), 4);
    let a = AtomicU64::new(0);
    a.store(9, Ordering::Release);
    assert_eq!(a.load(Ordering::Acquire), 9);
    let h = thread::spawn(|| 21u32);
    assert_eq!(h.join().expect("thread"), 21);
    let sum: u32 = thread::scope(|s| {
        let h1 = s.spawn(|| 1u32);
        let h2 = s.spawn(|| 2u32);
        h1.join().expect("t1") + h2.join().expect("t2")
    });
    assert_eq!(sum, 3);
}
