//! Cooperative token-passing scheduler and DFS schedule explorer.
//!
//! Execution model: every modelled thread is a real OS thread, but only the
//! thread holding the *token* runs at any instant. At each schedule point the
//! running thread declares its pending [`Op`] and calls [`advance`], which
//! picks the next thread to run (replaying a decision prefix, or applying the
//! default pick-the-caller policy), applies the chosen op's effect on the
//! model state, and hands the token over. Everything else parks on a condvar.
//!
//! Exploration is a depth-first search over the decision points of repeated
//! runs, with two reductions:
//!
//! * a **bounded-preemption budget** — schedules needing more than `bound`
//!   involuntary context switches are pruned;
//! * **DPOR-lite sleep sets** (Godefroid) — after a branch is explored, the
//!   chosen thread is put to sleep for sibling branches and woken only by a
//!   dependent operation, pruning interleavings that commute.
//!
//! A failing run yields a [`Failure`] carrying a replayable decision trace
//! (thread ids joined by `.`), reproducible via [`Explorer::replay`] or the
//! `SKYCHECK_REPLAY` environment variable.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Default cap on the number of runs per [`Explorer::explore`] call.
pub(crate) const DEFAULT_MAX_SCHEDULES: u64 = 100_000;

/// Default involuntary-context-switch budget.
pub(crate) const DEFAULT_PREEMPTION_BOUND: usize = 2;

/// Count of model runs currently active anywhere in the process. A relaxed
/// zero check lets the shims skip the thread-local lookup entirely when no
/// explorer is running (the common production path).
static MODEL_RUNS: AtomicUsize = AtomicUsize::new(0);

/// Globally unique epoch per run; lets `ObjCell`-registered statics detect a
/// stale registration from an earlier run and re-register.
static NEXT_EPOCH: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Per-thread handle into the active model run.
#[derive(Clone)]
pub(crate) struct ThreadCtx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) tid: usize,
}

/// The calling thread's model context, or `None` outside a model run.
pub(crate) fn current_ctx() -> Option<ThreadCtx> {
    if MODEL_RUNS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CTX.with(|c| c.borrow().clone())
}

fn install_ctx(ctx: ThreadCtx) {
    CTX.with(|c| *c.borrow_mut() = Some(ctx));
}

fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Panic payload used to unwind parked threads when a run aborts. Raised via
/// `resume_unwind` so the panic hook stays silent for routine prunes.
pub(crate) struct AbortPayload;

fn abort_unwind() -> ! {
    panic::resume_unwind(Box::new(AbortPayload));
}

/// A schedulable operation, declared by a thread at its schedule point and
/// applied to the model state when that thread is granted the token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Op {
    /// First step of a freshly spawned thread.
    Start,
    /// Acquire object `.0` shared (read lock).
    AcqShared(u32),
    /// Acquire object `.0` exclusive (write lock / mutex).
    AcqExcl(u32),
    /// Release a shared hold on object `.0`.
    RelShared(u32),
    /// Release an exclusive hold on object `.0`.
    RelExcl(u32),
    /// Atomic load from object `.0`.
    AtLoad(u32),
    /// Atomic store / read-modify-write on object `.0`.
    AtStore(u32),
    /// Join thread `.0`; enabled once it has finished.
    Join(usize),
}

impl Op {
    fn object(self) -> Option<u32> {
        match self {
            Op::AcqShared(l)
            | Op::AcqExcl(l)
            | Op::RelShared(l)
            | Op::RelExcl(l)
            | Op::AtLoad(l)
            | Op::AtStore(l) => Some(l),
            Op::Start | Op::Join(_) => None,
        }
    }

    fn is_shared_class(self) -> bool {
        matches!(self, Op::AcqShared(_) | Op::AtLoad(_))
    }

    /// Two ops are independent iff they commute: they touch different
    /// objects, or both only observe (shared acquire / atomic load) the same
    /// object. Objectless ops are conservatively dependent with everything.
    fn independent(self, other: Op) -> bool {
        match (self.object(), other.object()) {
            (Some(a), Some(b)) if a != b => true,
            (Some(_), Some(_)) => self.is_shared_class() && other.is_shared_class(),
            _ => false,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TState {
    Live,
    Finished,
}

struct ThreadSlot {
    state: TState,
    pending: Option<Op>,
    granted: bool,
}

#[derive(Default)]
struct LockState {
    /// Reader tids; may contain duplicates for recursive shared holds.
    readers: Vec<usize>,
    writer: Option<usize>,
}

/// Why a run was cut short without being a bug.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum PruneKind {
    /// Every enabled thread was in the sleep set.
    Sleep,
    /// The only progress required exceeding the preemption budget.
    Preempt,
}

/// A fresh (beyond-prefix) decision point recorded during a run; becomes a
/// DFS stack entry in the explorer.
#[derive(Clone)]
pub(crate) struct PointRecord {
    /// Enabled threads and their pending ops at this point.
    enabled: Vec<(usize, Op)>,
    caller: usize,
    caller_enabled: bool,
    /// Preemptions spent strictly before this point.
    preemptions_before: usize,
    /// Sleep set (Godefroid `Z`) on arrival; grows as children are explored.
    sleep: Vec<usize>,
    /// Child currently/last explored from this point.
    choice: usize,
}

struct Inner {
    threads: Vec<ThreadSlot>,
    locks: Vec<LockState>,
    current: usize,
    decisions: Vec<usize>,
    prefix: Vec<usize>,
    seed_sleep: Vec<usize>,
    sleep: Vec<usize>,
    points: Vec<PointRecord>,
    preemptions: usize,
    bound: usize,
    failure: Option<Failure>,
    prune: Option<PruneKind>,
    aborting: bool,
    /// Threads whose wrapper has not yet returned (model-finished or not).
    live_wrappers: usize,
}

/// Per-run state shared by every modelled thread.
pub(crate) struct Shared {
    pub(crate) epoch: u32,
    inner: Mutex<Inner>,
    cv: Condvar,
}

fn lock(shared: &Shared) -> MutexGuard<'_, Inner> {
    shared.inner.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn new(prefix: Vec<usize>, seed_sleep: Vec<usize>, bound: usize) -> Self {
        Shared {
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            inner: Mutex::new(Inner {
                threads: Vec::new(),
                locks: Vec::new(),
                current: 0,
                decisions: Vec::new(),
                prefix,
                seed_sleep,
                sleep: Vec::new(),
                points: Vec::new(),
                preemptions: 0,
                bound,
                failure: None,
                prune: None,
                aborting: false,
                live_wrappers: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Register a lock/atomic object; returns its model id. Deterministic
    /// because only the token holder can reach a first-use site.
    pub(crate) fn register_object(&self) -> u32 {
        let mut g = lock(self);
        let id = g.locks.len() as u32;
        g.locks.push(LockState::default());
        id
    }

    /// Register a new thread slot (at spawn time, before the OS thread runs).
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = lock(self);
        let tid = g.threads.len();
        g.threads.push(ThreadSlot {
            state: TState::Live,
            pending: Some(Op::Start),
            granted: false,
        });
        g.live_wrappers += 1;
        tid
    }
}

fn op_enabled(g: &Inner, op: Op) -> bool {
    match op {
        Op::Start | Op::RelShared(_) | Op::RelExcl(_) | Op::AtLoad(_) | Op::AtStore(_) => true,
        // Shared acquires are granted whenever no writer holds the object,
        // even recursively from the same thread — the recursive-read
        // semantics `SharedCache::with_read` re-entrancy relies on.
        Op::AcqShared(l) => g.locks[l as usize].writer.is_none(),
        Op::AcqExcl(l) => {
            let ls = &g.locks[l as usize];
            ls.writer.is_none() && ls.readers.is_empty()
        }
        Op::Join(t) => g.threads[t].state == TState::Finished,
    }
}

fn apply_effect(g: &mut Inner, tid: usize, op: Op) {
    match op {
        Op::AcqShared(l) => g.locks[l as usize].readers.push(tid),
        Op::AcqExcl(l) => g.locks[l as usize].writer = Some(tid),
        Op::RelShared(l) => {
            let readers = &mut g.locks[l as usize].readers;
            if let Some(pos) = readers.iter().position(|&t| t == tid) {
                readers.remove(pos);
            }
        }
        Op::RelExcl(l) => g.locks[l as usize].writer = None,
        Op::Start | Op::AtLoad(_) | Op::AtStore(_) | Op::Join(_) => {}
    }
}

fn encode_trace(decisions: &[usize]) -> String {
    decisions.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(".")
}

fn decode_trace(trace: &str) -> Vec<usize> {
    if trace.is_empty() {
        return Vec::new();
    }
    trace
        .split('.')
        .map(|tok| {
            tok.parse::<usize>().unwrap_or_else(|_| panic!("skycheck: invalid trace token {tok:?}"))
        })
        .collect()
}

fn begin_prune(g: &mut Inner, cv: &Condvar, kind: PruneKind) {
    g.prune = Some(kind);
    g.aborting = true;
    cv.notify_all();
}

fn begin_failure(g: &mut Inner, cv: &Condvar, kind: FailureKind, message: String) {
    if g.failure.is_none() {
        g.failure = Some(Failure { kind, message, trace: encode_trace(&g.decisions) });
    }
    g.aborting = true;
    cv.notify_all();
}

/// Pick and grant the next thread. Must be called by the token holder (or by
/// a finishing thread handing the token off). Sets `aborting` on deadlock or
/// prune instead of granting.
fn advance(g: &mut Inner, cv: &Condvar, caller: usize, caller_live: bool) {
    let mut enabled: Vec<(usize, Op)> = Vec::new();
    let mut any_live = false;
    for (t, slot) in g.threads.iter().enumerate() {
        if slot.state == TState::Live {
            any_live = true;
            if let Some(op) = slot.pending {
                if op_enabled(g, op) {
                    enabled.push((t, op));
                }
            }
        }
    }
    if !any_live {
        // Last thread finished; nothing to grant.
        return;
    }
    if enabled.is_empty() {
        let mut msg = String::from("deadlock: no enabled thread; pending ");
        for (t, slot) in g.threads.iter().enumerate() {
            if slot.state == TState::Live {
                msg.push_str(&format!("t{t}={:?} ", slot.pending));
            }
        }
        begin_failure(g, cv, FailureKind::Deadlock, msg.trim_end().to_string());
        return;
    }

    let idx = g.decisions.len();
    let caller_enabled = caller_live && enabled.iter().any(|&(t, _)| t == caller);
    let chosen: usize;
    if idx < g.prefix.len() {
        chosen = g.prefix[idx];
        if !enabled.iter().any(|&(t, _)| t == chosen) {
            begin_failure(
                g,
                cv,
                FailureKind::Panic,
                format!("replay diverged: t{chosen} not enabled at decision {idx}"),
            );
            return;
        }
        if caller_enabled && chosen != caller {
            g.preemptions += 1;
        }
    } else {
        if idx == g.prefix.len() {
            g.sleep = g.seed_sleep.clone();
        }
        // Drop finished threads from the sleep set.
        let threads = &g.threads;
        let mut sleep = std::mem::take(&mut g.sleep);
        sleep.retain(|&t| threads[t].state == TState::Live && threads[t].pending.is_some());
        g.sleep = sleep;

        let awake: Vec<usize> =
            enabled.iter().map(|&(t, _)| t).filter(|t| !g.sleep.contains(t)).collect();
        if awake.is_empty() {
            begin_prune(g, cv, PruneKind::Sleep);
            return;
        }
        if caller_enabled && awake.contains(&caller) {
            chosen = caller;
        } else {
            // Forced switch past an enabled caller: a preemption.
            if caller_enabled && g.preemptions >= g.bound {
                begin_prune(g, cv, PruneKind::Preempt);
                return;
            }
            chosen = awake[0];
        }
        let chosen_op = enabled
            .iter()
            .find(|&&(t, _)| t == chosen)
            .map(|&(_, op)| op)
            .expect("chosen is enabled");
        g.points.push(PointRecord {
            enabled: enabled.clone(),
            caller,
            caller_enabled,
            preemptions_before: g.preemptions,
            sleep: g.sleep.clone(),
            choice: chosen,
        });
        if caller_enabled && chosen != caller {
            g.preemptions += 1;
        }
        // In-run sleep propagation: a sleeper stays asleep only while the
        // executed ops remain independent of its own.
        let threads = &g.threads;
        let mut sleep = std::mem::take(&mut g.sleep);
        sleep.retain(|&t| match threads[t].pending {
            Some(op_t) => op_t.independent(chosen_op),
            None => false,
        });
        g.sleep = sleep;
    }

    g.decisions.push(chosen);
    let op = g.threads[chosen].pending.take().expect("chosen has pending");
    apply_effect(g, chosen, op);
    g.threads[chosen].granted = true;
    g.current = chosen;
    cv.notify_all();
}

fn wait_for_grant(mut g: MutexGuard<'_, Inner>, ctx: &ThreadCtx) {
    loop {
        if g.aborting {
            drop(g);
            abort_unwind();
        }
        if g.threads[ctx.tid].granted {
            g.threads[ctx.tid].granted = false;
            return;
        }
        g = ctx.shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Declare `op` and yield the token until this thread is granted to execute
/// it. The op's model effect is applied at grant time; the caller performs
/// the real operation immediately after this returns.
pub(crate) fn schedule_point(ctx: &ThreadCtx, op: Op) {
    let mut g = lock(&ctx.shared);
    if g.aborting {
        drop(g);
        abort_unwind();
    }
    g.threads[ctx.tid].pending = Some(op);
    if g.current == ctx.tid {
        advance(&mut g, &ctx.shared.cv, ctx.tid, true);
    }
    wait_for_grant(g, ctx);
}

/// First park of a freshly spawned thread: its `Start` op was registered at
/// spawn time; wait until some schedule point grants it.
fn initial_wait(ctx: &ThreadCtx) {
    let g = lock(&ctx.shared);
    wait_for_grant(g, ctx);
}

/// Mark the thread model-finished and hand the token off.
fn thread_finish(ctx: &ThreadCtx) {
    let mut g = lock(&ctx.shared);
    g.threads[ctx.tid].state = TState::Finished;
    g.threads[ctx.tid].pending = None;
    if !g.aborting && g.current == ctx.tid {
        advance(&mut g, &ctx.shared.cv, ctx.tid, false);
    }
}

/// Wrapper bookkeeping after the user closure ended (normally or by panic).
/// Returns the closure's value, or `None` if the run aborted under us.
pub(crate) fn handle_thread_end<T>(
    ctx: &ThreadCtx,
    result: Result<T, Box<dyn std::any::Any + Send>>,
) -> Option<T> {
    match result {
        Ok(v) => {
            thread_finish(ctx);
            Some(v)
        }
        Err(payload) => {
            let mut g = lock(&ctx.shared);
            g.threads[ctx.tid].state = TState::Finished;
            g.threads[ctx.tid].pending = None;
            if payload.downcast_ref::<AbortPayload>().is_none() {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                begin_failure(
                    &mut g,
                    &ctx.shared.cv,
                    FailureKind::Panic,
                    format!("thread t{} panicked: {msg}", ctx.tid),
                );
            }
            None
        }
    }
}

fn thread_exit(ctx: &ThreadCtx) {
    let mut g = lock(&ctx.shared);
    g.live_wrappers -= 1;
    ctx.shared.cv.notify_all();
}

/// Run the body of a modelled thread: install the context, park for the
/// first grant, run `f`, then do finish/exit bookkeeping.
pub(crate) fn run_thread<T>(shared: Arc<Shared>, tid: usize, f: impl FnOnce() -> T) -> Option<T> {
    let ctx = ThreadCtx { shared, tid };
    install_ctx(ctx.clone());
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        initial_wait(&ctx);
        f()
    }));
    let out = handle_thread_end(&ctx, result);
    thread_exit(&ctx);
    clear_ctx();
    out
}

enum RunEnd {
    Completed,
    Pruned(PruneKind),
    Failed(Failure),
}

struct RunResult {
    end: RunEnd,
    points: Vec<PointRecord>,
    depth: usize,
}

fn run_once<F: Fn() + Send + Sync>(
    f: &F,
    prefix: Vec<usize>,
    seed_sleep: Vec<usize>,
    bound: usize,
) -> RunResult {
    let shared = Arc::new(Shared::new(prefix, seed_sleep, bound));
    MODEL_RUNS.fetch_add(1, Ordering::SeqCst);
    let root = shared.register_thread();
    {
        // Bootstrap: the root starts granted, its Start op pre-consumed.
        let mut g = lock(&shared);
        g.threads[root].pending = None;
        g.threads[root].granted = true;
        g.current = root;
    }
    std::thread::scope(|s| {
        let shared_root = shared.clone();
        s.spawn(move || run_thread(shared_root, root, f));
    });
    // Non-scoped shim spawns outlive the root scope briefly; wait for every
    // wrapper to fully exit so the next run sees a quiescent world.
    {
        let mut g = lock(&shared);
        while g.live_wrappers > 0 {
            g = shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
    MODEL_RUNS.fetch_sub(1, Ordering::SeqCst);
    let mut g = lock(&shared);
    let end = if let Some(failure) = g.failure.take() {
        RunEnd::Failed(failure)
    } else if let Some(kind) = g.prune.take() {
        RunEnd::Pruned(kind)
    } else {
        RunEnd::Completed
    };
    RunResult { end, points: std::mem::take(&mut g.points), depth: g.decisions.len() }
}

/// What kind of bug a failing schedule exhibited.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// Live threads exist but none is enabled.
    Deadlock,
    /// A modelled thread panicked (assertion failure, lost update, …).
    Panic,
}

/// A failing schedule: what went wrong and how to replay it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Bug class.
    pub kind: FailureKind,
    /// Human-readable description (panic message or deadlock pending set).
    pub message: String,
    /// Decision trace (thread ids joined by `.`) for [`Explorer::replay`].
    pub trace: String,
}

/// Exploration counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Completed (non-pruned) schedules executed.
    pub schedules: u64,
    /// Runs cut short because every enabled thread was asleep (DPOR).
    pub pruned_sleep: u64,
    /// Runs cut short by the preemption budget.
    pub pruned_preempt: u64,
    /// Longest decision sequence seen.
    pub max_depth: usize,
    /// Wall-clock time of the whole exploration, in milliseconds.
    pub wall_ms: u64,
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Counters for reporting (`BENCH_check.json`).
    pub stats: Stats,
    /// First failing schedule, if any.
    pub failure: Option<Failure>,
    /// True iff the schedule space was exhausted under the configured bounds.
    pub exhausted: bool,
}

impl Outcome {
    /// Panic with the failure message and replay trace if a bug was found.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "skycheck found a failing schedule ({:?}): {}\n  replay trace: {}",
                f.kind, f.message, f.trace
            );
        }
    }
}

/// Configurable DFS schedule explorer.
///
/// ```
/// use skycheck::sync::{Arc, Mutex};
/// let outcome = skycheck::Explorer::new().explore(|| {
///     let m = Arc::new(Mutex::new(0u32));
///     let m2 = m.clone();
///     let h = skycheck::sync::thread::spawn(move || *m2.lock() += 1);
///     *m.lock() += 1;
///     h.join().unwrap();
///     assert_eq!(*m.lock(), 2);
/// });
/// outcome.assert_ok();
/// assert!(outcome.exhausted);
/// ```
pub struct Explorer {
    preemption_bound: usize,
    max_schedules: u64,
}

impl Default for Explorer {
    fn default() -> Self {
        Self::new()
    }
}

impl Explorer {
    /// Explorer with preemption bound 2 and the schedule cap from
    /// `SKYCHECK_MAX_SCHEDULES` (default 100 000).
    pub fn new() -> Self {
        let max_schedules = std::env::var("SKYCHECK_MAX_SCHEDULES")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_MAX_SCHEDULES);
        Explorer { preemption_bound: DEFAULT_PREEMPTION_BOUND, max_schedules }
    }

    /// Set the involuntary-context-switch budget per schedule.
    pub fn with_preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Set the cap on total runs (completed + pruned).
    pub fn with_max_schedules(mut self, max: u64) -> Self {
        self.max_schedules = max;
        self
    }

    /// Exhaustively explore the interleavings of `f` under the configured
    /// bounds. If `SKYCHECK_REPLAY` is set, runs that single trace instead.
    pub fn explore<F: Fn() + Send + Sync>(&self, f: F) -> Outcome {
        if let Ok(trace) = std::env::var("SKYCHECK_REPLAY") {
            if !trace.is_empty() {
                return self.replay(&trace, f);
            }
        }
        let start = Instant::now();
        let mut stats = Stats::default();
        let mut stack: Vec<PointRecord> = Vec::new();
        let mut prefix: Vec<usize> = Vec::new();
        let mut seed_sleep: Vec<usize> = Vec::new();
        let mut failure = None;
        let mut exhausted = true;
        loop {
            if stats.schedules + stats.pruned_sleep + stats.pruned_preempt >= self.max_schedules {
                exhausted = false;
                break;
            }
            let run = run_once(&f, prefix.clone(), seed_sleep.clone(), self.preemption_bound);
            stats.max_depth = stats.max_depth.max(run.depth);
            match run.end {
                RunEnd::Completed => stats.schedules += 1,
                RunEnd::Pruned(PruneKind::Sleep) => stats.pruned_sleep += 1,
                RunEnd::Pruned(PruneKind::Preempt) => stats.pruned_preempt += 1,
                RunEnd::Failed(f) => {
                    stats.schedules += 1;
                    failure = Some(f);
                    break;
                }
            }
            stack.extend(run.points);
            // Backtrack: find the deepest point with an unexplored,
            // budget-respecting, awake sibling.
            let mut next_prefix = None;
            while let Some(entry) = stack.last_mut() {
                if !entry.sleep.contains(&entry.choice) {
                    entry.sleep.push(entry.choice);
                }
                let mut candidate = None;
                for &(t, _) in &entry.enabled {
                    if entry.sleep.contains(&t) {
                        continue;
                    }
                    let cost = usize::from(entry.caller_enabled && t != entry.caller);
                    if entry.preemptions_before + cost > self.preemption_bound {
                        continue;
                    }
                    candidate = Some(t);
                    break;
                }
                match candidate {
                    Some(c) => {
                        let op_c = entry
                            .enabled
                            .iter()
                            .find(|&&(t, _)| t == c)
                            .map(|&(_, op)| op)
                            .expect("candidate is enabled");
                        // Godefroid: child sleep keeps only sleepers whose
                        // op is independent of the branch being taken.
                        let ops = &entry.enabled;
                        let child_sleep = entry
                            .sleep
                            .iter()
                            .copied()
                            .filter(|&t| {
                                ops.iter()
                                    .find(|&&(u, _)| u == t)
                                    .is_some_and(|&(_, op_t)| op_t.independent(op_c))
                            })
                            .collect::<Vec<_>>();
                        entry.choice = c;
                        next_prefix =
                            Some((stack.iter().map(|e| e.choice).collect::<Vec<_>>(), child_sleep));
                        break;
                    }
                    None => {
                        stack.pop();
                    }
                }
            }
            match next_prefix {
                Some((p, s)) => {
                    prefix = p;
                    seed_sleep = s;
                }
                None => break, // space exhausted
            }
        }
        stats.wall_ms = start.elapsed().as_millis() as u64;
        Outcome { stats, failure, exhausted }
    }

    /// Re-execute the single schedule described by `trace` (as printed in a
    /// [`Failure`]); decisions beyond the trace fall back to the default
    /// deterministic policy.
    pub fn replay<F: Fn() + Send + Sync>(&self, trace: &str, f: F) -> Outcome {
        let start = Instant::now();
        let run = run_once(&f, decode_trace(trace), Vec::new(), usize::MAX);
        let failure = match run.end {
            RunEnd::Failed(fl) => Some(fl),
            _ => None,
        };
        Outcome {
            stats: Stats {
                schedules: 1,
                pruned_sleep: 0,
                pruned_preempt: 0,
                max_depth: run.depth,
                wall_ms: start.elapsed().as_millis() as u64,
            },
            failure,
            exhausted: false,
        }
    }
}

/// Epoch-tagged object-id cell; lets `const`-initialised statics re-register
/// with whichever run is touching them. Packs `epoch << 32 | id`.
pub(crate) struct ObjCell(std::sync::atomic::AtomicU64);

impl ObjCell {
    pub(crate) const fn new() -> Self {
        ObjCell(std::sync::atomic::AtomicU64::new(0))
    }

    /// The object's id in `ctx`'s run, registering it on first use.
    pub(crate) fn resolve(&self, ctx: &ThreadCtx) -> u32 {
        let v = self.0.load(Ordering::Relaxed);
        if (v >> 32) as u32 == ctx.shared.epoch {
            return v as u32;
        }
        let id = ctx.shared.register_object();
        self.0.store((u64::from(ctx.shared.epoch) << 32) | u64::from(id), Ordering::Relaxed);
        id
    }
}
