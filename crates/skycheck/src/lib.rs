//! skycheck — a zero-dependency, loom-style deterministic concurrency model
//! checker for the skycache workspace.
//!
//! The crate has two halves:
//!
//! * [`sync`] — shim primitives (`Mutex`, `RwLock`, `AtomicU8`/`AtomicU64`,
//!   `Arc`, `thread`) that behave exactly like their `std`/`parking_lot`
//!   counterparts in production, and become schedulable under a model run;
//! * [`Explorer`] — a DFS schedule explorer with a bounded-preemption budget
//!   and DPOR-lite sleep-set reduction that exhaustively interleaves code
//!   written against the shims, detecting deadlocks, lost updates and
//!   assertion failures, and printing a replayable decision trace on
//!   failure.
//!
//! Replay a printed trace with [`Explorer::replay`] or by exporting
//! `SKYCHECK_REPLAY=<trace>` around the same harness; bound the exploration
//! with `SKYCHECK_MAX_SCHEDULES=<n>`. See DESIGN.md §15 for the scheduler
//! architecture and the soundness argument.

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(rust_2018_idioms)]

mod sched;
pub mod sync;

pub use sched::{Explorer, Failure, FailureKind, Outcome, Stats};
