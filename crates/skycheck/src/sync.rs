//! Shim synchronization primitives.
//!
//! Outside a model run these compile down to the plain `std::sync` types
//! (non-poisoning, `parking_lot`-style APIs: `lock()`/`read()`/`write()`
//! return guards, not `Result`s). Inside an [`crate::Explorer`] run, every
//! acquire/release/load/store/spawn/join first passes through the
//! cooperative scheduler as a schedule point, so the explorer can enumerate
//! interleavings. The real operation is then performed by the token holder,
//! which makes it trivially race-free and guarantees the `try_*` variants
//! succeed whenever the model granted the operation.
//!
//! Atomics are modelled under sequential consistency (interleaving
//! exploration, not weak memory); `Ordering` arguments are honoured verbatim
//! on the passthrough path and recorded for the `atomic-ordering` lint, not
//! by the scheduler. Statics are supported: object identity is re-registered
//! per run via an epoch-tagged cell.

pub use std::sync::atomic::Ordering;
pub use std::sync::Arc;

use std::ops::{Deref, DerefMut};
use std::sync::{PoisonError, TryLockError};

use crate::sched::{self, ObjCell, Op, ThreadCtx};

fn strip<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

fn strip_try<G>(r: Result<G, TryLockError<G>>, what: &str) -> G {
    match r {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            panic!("skycheck: real {what} contended despite model grant")
        }
    }
}

/// Mutual-exclusion lock; `std::sync::Mutex` with a `parking_lot`-style
/// non-poisoning API, schedulable under a model run.
pub struct Mutex<T: ?Sized> {
    cell: ObjCell,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// New unlocked mutex (usable in `static` position).
    pub const fn new(value: T) -> Self {
        Mutex { cell: ObjCell::new(), inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        strip(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire exclusively, blocking (or yielding to the scheduler).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match sched::current_ctx() {
            Some(ctx) => {
                let id = self.cell.resolve(&ctx);
                sched::schedule_point(&ctx, Op::AcqExcl(id));
                MutexGuard {
                    inner: Some(strip_try(self.inner.try_lock(), "Mutex")),
                    model: Some((ctx, id)),
                }
            }
            None => MutexGuard { inner: Some(strip(self.inner.lock())), model: None },
        }
    }

    /// Exclusive access through `&mut self` — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        strip(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(ThreadCtx, u32)>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the real guard first so the model release finds reality free.
        self.inner.take();
        if let Some((ctx, id)) = self.model.take() {
            if !std::thread::panicking() {
                sched::schedule_point(&ctx, Op::RelExcl(id));
            }
        }
    }
}

/// Reader-writer lock; `std::sync::RwLock` with a `parking_lot`-style
/// non-poisoning API, schedulable under a model run.
///
/// Under the model, shared acquisition is granted whenever no writer holds
/// the lock — including recursively from the thread itself — so nested
/// `read()` calls are safe by construction; a read→write upgrade on the
/// other hand is never enabled and surfaces as a detected deadlock.
pub struct RwLock<T: ?Sized> {
    cell: ObjCell,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// New unlocked lock (usable in `static` position).
    pub const fn new(value: T) -> Self {
        RwLock { cell: ObjCell::new(), inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        strip(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared, blocking (or yielding to the scheduler).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match sched::current_ctx() {
            Some(ctx) => {
                let id = self.cell.resolve(&ctx);
                sched::schedule_point(&ctx, Op::AcqShared(id));
                RwLockReadGuard {
                    inner: Some(strip_try(self.inner.try_read(), "RwLock (read)")),
                    model: Some((ctx, id)),
                }
            }
            None => RwLockReadGuard { inner: Some(strip(self.inner.read())), model: None },
        }
    }

    /// Acquire exclusive, blocking (or yielding to the scheduler).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match sched::current_ctx() {
            Some(ctx) => {
                let id = self.cell.resolve(&ctx);
                sched::schedule_point(&ctx, Op::AcqExcl(id));
                RwLockWriteGuard {
                    inner: Some(strip_try(self.inner.try_write(), "RwLock (write)")),
                    model: Some((ctx, id)),
                }
            }
            None => RwLockWriteGuard { inner: Some(strip(self.inner.write())), model: None },
        }
    }

    /// Exclusive access through `&mut self` — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        strip(self.inner.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<(ThreadCtx, u32)>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((ctx, id)) = self.model.take() {
            if !std::thread::panicking() {
                sched::schedule_point(&ctx, Op::RelShared(id));
            }
        }
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<(ThreadCtx, u32)>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((ctx, id)) = self.model.take() {
            if !std::thread::panicking() {
                sched::schedule_point(&ctx, Op::RelExcl(id));
            }
        }
    }
}

macro_rules! shim_atomic {
    ($name:ident, $real:path, $prim:ty) => {
        /// Schedulable atomic. Under a model run, loads and stores (and
        /// read-modify-writes) are schedule points explored under sequential
        /// consistency; the `Ordering` argument is applied verbatim on the
        /// passthrough path.
        pub struct $name {
            cell: ObjCell,
            real: $real,
        }

        impl $name {
            /// New atomic (usable in `static` position).
            pub const fn new(value: $prim) -> Self {
                Self { cell: ObjCell::new(), real: <$real>::new(value) }
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> $prim {
                match sched::current_ctx() {
                    Some(ctx) => {
                        let id = self.cell.resolve(&ctx);
                        sched::schedule_point(&ctx, Op::AtLoad(id));
                        self.real.load(Ordering::SeqCst)
                    }
                    None => self.real.load(order),
                }
            }

            /// Atomic store.
            pub fn store(&self, value: $prim, order: Ordering) {
                match sched::current_ctx() {
                    Some(ctx) => {
                        let id = self.cell.resolve(&ctx);
                        sched::schedule_point(&ctx, Op::AtStore(id));
                        self.real.store(value, Ordering::SeqCst);
                    }
                    None => self.real.store(value, order),
                }
            }

            /// Atomic fetch-add, returning the previous value.
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                match sched::current_ctx() {
                    Some(ctx) => {
                        let id = self.cell.resolve(&ctx);
                        sched::schedule_point(&ctx, Op::AtStore(id));
                        self.real.fetch_add(value, Ordering::SeqCst)
                    }
                    None => self.real.fetch_add(value, order),
                }
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                match sched::current_ctx() {
                    Some(ctx) => {
                        let id = self.cell.resolve(&ctx);
                        sched::schedule_point(&ctx, Op::AtStore(id));
                        self.real.swap(value, Ordering::SeqCst)
                    }
                    None => self.real.swap(value, order),
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$prim>::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.real.fmt(f)
            }
        }
    };
}

shim_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

/// Schedulable subset of `std::thread`: `spawn`, `scope`, and the
/// `available_parallelism` passthrough.
pub mod thread {
    pub use std::thread::available_parallelism;

    use std::panic;
    use std::sync::Arc;

    use crate::sched::{self, Op, Shared, ThreadCtx};

    fn finish_join<T>(r: std::thread::Result<Option<T>>, modelled: bool) -> std::thread::Result<T> {
        match r {
            Ok(Some(v)) => Ok(v),
            // The child unwound from a run abort; propagate the abort so the
            // joiner unwinds too (it is parked in an aborting run anyway).
            Ok(None) => {
                debug_assert!(modelled);
                panic::resume_unwind(Box::new(crate::sched::AbortPayload))
            }
            Err(e) => Err(e),
        }
    }

    /// Handle for a detached spawned thread.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<Option<T>>,
        tid: Option<usize>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish, returning its value (or the panic
        /// payload, as with `std::thread::JoinHandle::join`).
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(tid) = self.tid {
                let ctx = sched::current_ctx()
                    .expect("skycheck: joining a modelled thread outside its run");
                sched::schedule_point(&ctx, Op::Join(tid));
            }
            finish_join(self.inner.join(), self.tid.is_some())
        }
    }

    /// Spawn a thread; a schedulable drop-in for `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match sched::current_ctx() {
            Some(ctx) => {
                let tid = ctx.shared.register_thread();
                let shared: Arc<Shared> = ctx.shared.clone();
                JoinHandle {
                    inner: std::thread::spawn(move || sched::run_thread(shared, tid, f)),
                    tid: Some(tid),
                }
            }
            None => JoinHandle { inner: std::thread::spawn(move || Some(f())), tid: None },
        }
    }

    /// Scope for spawning threads that borrow non-`'static` data; a
    /// schedulable drop-in for `std::thread::scope`.
    ///
    /// The closure receives `&Scope<'scope, 'env>` (the receiver borrow is
    /// decoupled from `'scope`, unlike `std`, to wrap the inner scope
    /// without unsafe code) — call sites are source-compatible.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(|real| {
            let scope = Scope {
                real,
                ctx: sched::current_ctx(),
                pending: Arc::new(std::sync::Mutex::new(Vec::new())),
            };
            let out = f(&scope);
            // Model-join children the closure never joined explicitly, in
            // spawn order, before the real scope's implicit join.
            if let Some(ctx) = &scope.ctx {
                let kids: Vec<usize> = std::mem::take(
                    &mut *scope.pending.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
                );
                for tid in kids {
                    sched::schedule_point(ctx, Op::Join(tid));
                }
            }
            out
        })
    }

    /// Schedulable wrapper around `std::thread::Scope`.
    pub struct Scope<'scope, 'env> {
        real: &'scope std::thread::Scope<'scope, 'env>,
        ctx: Option<ThreadCtx>,
        /// Children spawned but not yet explicitly joined (model tids).
        pending: Arc<std::sync::Mutex<Vec<usize>>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; a schedulable drop-in for
        /// `std::thread::Scope::spawn`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            match &self.ctx {
                Some(ctx) => {
                    let tid = ctx.shared.register_thread();
                    let shared: Arc<Shared> = ctx.shared.clone();
                    self.pending
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(tid);
                    ScopedJoinHandle {
                        inner: self.real.spawn(move || sched::run_thread(shared, tid, f)),
                        tid: Some(tid),
                        pending: Some(self.pending.clone()),
                    }
                }
                None => ScopedJoinHandle {
                    inner: self.real.spawn(move || Some(f())),
                    tid: None,
                    pending: None,
                },
            }
        }
    }

    /// Handle for a scoped spawned thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
        tid: Option<usize>,
        pending: Option<Arc<std::sync::Mutex<Vec<usize>>>>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, returning its value (or the panic
        /// payload, as with `std::thread::ScopedJoinHandle::join`).
        pub fn join(self) -> std::thread::Result<T> {
            if let (Some(tid), Some(pending)) = (self.tid, &self.pending) {
                pending
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .retain(|&t| t != tid);
                let ctx = sched::current_ctx()
                    .expect("skycheck: joining a modelled thread outside its run");
                sched::schedule_point(&ctx, Op::Join(tid));
            }
            finish_join(self.inner.join(), self.tid.is_some())
        }
    }
}
