//! Property tests for the skyline algorithms: all four implementations
//! (BNL, SFS, D&C, BBS) must agree with the naive quadratic definition on
//! arbitrary inputs, including duplicates and degenerate geometry.

use proptest::prelude::*;

use skycache_algos::{bbs_constrained, Bnl, DivideConquer, Salsa, Sfs, SkylineAlgorithm};
use skycache_geom::{dominates, Constraints, Point};
use skycache_rtree::{RStarTree, RTreeParams};

fn coord() -> impl Strategy<Value = f64> {
    (0..=10u8).prop_map(|v| f64::from(v) / 10.0)
}

fn points(dims: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(coord(), dims).prop_map(Point::from), 0..200)
}

fn naive(points: &[Point]) -> Vec<Point> {
    points.iter().filter(|t| !points.iter().any(|s| dominates(s, t))).cloned().collect()
}

fn sorted(mut v: Vec<Point>) -> Vec<Point> {
    v.sort_by_key(|p| p.coords().iter().map(|c| c.to_bits()).collect::<Vec<_>>());
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// BNL, SFS and D&C compute the exact skyline multiset.
    #[test]
    fn inmem_algorithms_match_naive(pts in points(3)) {
        let want = sorted(naive(&pts));
        for algo in [&Bnl as &dyn SkylineAlgorithm, &Sfs, &DivideConquer, &Salsa] {
            let got = sorted(algo.compute(pts.clone()).skyline);
            prop_assert_eq!(&got, &want, "{} diverged", algo.name());
        }
    }

    /// The skyline is invariant under input permutation (spot check via
    /// reversal, which flips BNL's window order and SFS's tie order).
    #[test]
    fn order_invariance(pts in points(2)) {
        let mut reversed = pts.clone();
        reversed.reverse();
        for algo in [&Bnl as &dyn SkylineAlgorithm, &Sfs, &DivideConquer, &Salsa] {
            prop_assert_eq!(
                sorted(algo.compute(pts.clone()).skyline),
                sorted(algo.compute(reversed.clone()).skyline),
                "{} is order-sensitive", algo.name()
            );
        }
    }

    /// Idempotence: the skyline of a skyline is itself.
    #[test]
    fn skyline_is_idempotent(pts in points(3)) {
        let once = Sfs.compute(pts).skyline;
        let twice = Sfs.compute(once.clone()).skyline;
        prop_assert_eq!(sorted(once), sorted(twice));
    }

    /// BBS over the R*-tree equals filter-then-SFS for arbitrary
    /// constraints, and its dominance-test count is consistent.
    #[test]
    fn bbs_matches_reference(
        pts in points(2).prop_filter("nonempty", |p| !p.is_empty()),
        a in prop::collection::vec(coord(), 2),
        b in prop::collection::vec(coord(), 2),
    ) {
        let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
        let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
        let c = Constraints::new(lo, hi).unwrap();

        let tree = RStarTree::bulk_load_points(
            pts.iter().cloned().zip(0u32..),
            RTreeParams::default(),
        );
        let out = bbs_constrained(&tree, &c);
        let want = sorted(Sfs.compute(
            pts.iter().filter(|p| c.satisfies(p)).cloned().collect(),
        ).skyline);
        prop_assert_eq!(sorted(out.skyline.clone()), want);
        // Every reported skyline point satisfies the constraints.
        prop_assert!(out.skyline.iter().all(|p| c.satisfies(p)));
    }

    /// Monotonicity: adding a point never *adds* other points to the
    /// skyline (it can only displace them or join it).
    #[test]
    fn adding_a_point_never_promotes_others(pts in points(2), extra in prop::collection::vec(coord(), 2)) {
        let before = Sfs.compute(pts.clone()).skyline;
        let mut bigger = pts.clone();
        bigger.push(Point::from(extra.clone()));
        let after = Sfs.compute(bigger).skyline;
        let extra_p = Point::from(extra);
        for p in &after {
            if *p != extra_p {
                prop_assert!(
                    before.contains(p),
                    "{p:?} appeared only after adding {extra_p:?}"
                );
            }
        }
    }
}
