//! Skyline cardinality estimation and adaptive algorithm selection.
//!
//! The paper's related work (its ref. [4], Chaudhuri et al., ICDE 2006)
//! estimates constrained-skyline cardinality "to assess which skyline
//! algorithm to apply in the naive approach". This module provides both
//! ingredients:
//!
//! * [`expected_skyline_size`] — the classical closed form for
//!   independent dimensions, `E[|Sky|] ≈ (ln n)^(d−1) / (d−1)!`
//!   (Bentley/Buchta), exact in its leading term for continuous
//!   independent attributes;
//! * [`sample_skyline_fraction`] — a distribution-free estimate from a
//!   deterministic sample, robust to correlation;
//! * [`Adaptive`] — a [`SkylineAlgorithm`] that picks its inner routine
//!   per input: BNL for tiny inputs (no sort overhead), SaLSa when the
//!   sampled skyline fraction is small (its early termination pays off),
//!   SFS otherwise (anti-correlated-like inputs, where nothing
//!   terminates early and presorting is the best one can do).

use skycache_geom::Point;

use crate::inmem::{Bnl, Salsa, Sfs, SkylineAlgorithm, SkylineOutput};

/// Expected skyline size of `n` points with `d` independent, continuous
/// dimensions: `(ln n)^(d−1) / (d−1)!`.
pub fn expected_skyline_size(n: usize, d: usize) -> f64 {
    if n == 0 || d == 0 {
        return 0.0;
    }
    if d == 1 {
        return 1.0;
    }
    let ln_n = (n as f64).ln().max(1.0);
    let mut result = 1.0;
    for i in 1..d {
        result *= ln_n / i as f64;
    }
    result.min(n as f64)
}

/// Estimates the skyline fraction of `points` from a deterministic
/// stride sample of at most `sample_cap` points. Returns a value in
/// `[0, 1]`; 0 for empty input.
pub fn sample_skyline_fraction(points: &[Point], sample_cap: usize) -> f64 {
    if points.is_empty() || sample_cap == 0 {
        return 0.0;
    }
    let stride = (points.len() / sample_cap).max(1);
    let sample: Vec<Point> = points.iter().step_by(stride).cloned().collect();
    let sample_len = sample.len();
    let sky = Bnl.compute(sample).skyline.len();
    sky as f64 / sample_len as f64
}

/// Input sizes below this skip estimation entirely (BNL wins outright).
const TINY: usize = 64;
/// Sample size for fraction estimation.
const SAMPLE: usize = 256;
/// Sampled skyline fraction below which SaLSa's early termination is
/// expected to pay for its more expensive sort key.
const SALSA_THRESHOLD: f64 = 0.10;

/// Cardinality-guided skyline routine (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct Adaptive;

impl Adaptive {
    /// The routine [`compute`](SkylineAlgorithm::compute) would delegate
    /// to for this input (exposed for tests and diagnostics).
    pub fn choice(points: &[Point]) -> &'static str {
        if points.len() < TINY {
            return "BNL";
        }
        if sample_skyline_fraction(points, SAMPLE) < SALSA_THRESHOLD {
            "SaLSa"
        } else {
            "SFS"
        }
    }
}

impl SkylineAlgorithm for Adaptive {
    fn name(&self) -> &'static str {
        "Adaptive"
    }

    fn compute(&self, points: Vec<Point>) -> SkylineOutput {
        match Self::choice(&points) {
            "BNL" => Bnl.compute(points),
            "SaLSa" => Salsa.compute(points),
            _ => Sfs.compute(points),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{naive_skyline, sorted};

    fn pseudo(n: usize, dims: usize, seed: u64) -> Vec<Point> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::from((0..dims).map(|_| next()).collect::<Vec<_>>())).collect()
    }

    #[test]
    fn closed_form_basics() {
        assert_eq!(expected_skyline_size(0, 3), 0.0);
        assert_eq!(expected_skyline_size(1_000, 1), 1.0);
        // 2-D: ~ln n.
        let e2 = expected_skyline_size(10_000, 2);
        assert!((e2 - (10_000f64).ln()).abs() < 1e-9);
        // Monotone in d for fixed large n.
        assert!(expected_skyline_size(100_000, 4) > expected_skyline_size(100_000, 3));
        // Never exceeds n.
        assert!(expected_skyline_size(10, 10) <= 10.0);
    }

    #[test]
    fn closed_form_matches_measurement_on_independent_data() {
        let pts = pseudo(20_000, 3, 5);
        let measured = naive_skyline(&pts).len() as f64;
        let predicted = expected_skyline_size(20_000, 3);
        let ratio = measured / predicted;
        assert!((0.4..2.5).contains(&ratio), "measured {measured}, predicted {predicted}");
    }

    #[test]
    fn sampled_fraction_discriminates() {
        // A dominance chain: fraction near zero.
        let chain: Vec<Point> = (0..5_000).map(|i| Point::from(vec![i as f64, i as f64])).collect();
        assert!(sample_skyline_fraction(&chain, 256) < 0.02);
        // An anti-chain: fraction 1.
        let anti: Vec<Point> =
            (0..5_000).map(|i| Point::from(vec![i as f64, (5_000 - i) as f64])).collect();
        assert!(sample_skyline_fraction(&anti, 256) > 0.99);
        assert_eq!(sample_skyline_fraction(&[], 256), 0.0);
    }

    #[test]
    fn adaptive_matches_naive_and_chooses_sensibly() {
        // Tiny input → BNL.
        let tiny = pseudo(20, 3, 1);
        assert_eq!(Adaptive::choice(&tiny), "BNL");
        assert_eq!(sorted(Adaptive.compute(tiny.clone()).skyline), sorted(naive_skyline(&tiny)));

        // Independent 3-D at 10k: skyline fraction ≪ 10% → SaLSa.
        let indep = pseudo(10_000, 3, 2);
        assert_eq!(Adaptive::choice(&indep), "SaLSa");
        assert_eq!(sorted(Adaptive.compute(indep.clone()).skyline), sorted(naive_skyline(&indep)));

        // Anti-chain: everything is skyline → SFS.
        let anti: Vec<Point> =
            (0..1_000).map(|i| Point::from(vec![i as f64, (1_000 - i) as f64])).collect();
        assert_eq!(Adaptive::choice(&anti), "SFS");
        assert_eq!(Adaptive.compute(anti.clone()).skyline.len(), 1_000);
    }
}
