//! Parallel divide & conquer skyline over scoped threads.
//!
//! [`ParallelDc`] splits the input into one contiguous chunk per worker,
//! computes each chunk's local skyline independently (SFS per chunk),
//! then cross-filters the union of local skylines — also in parallel —
//! to drop points dominated by another chunk's skyline. Both phases run
//! on `std::thread::scope`, so no thread pool or external runtime is
//! needed, and all data is borrowed rather than `Arc`-wrapped.
//!
//! The result is *set-identical* to every sequential algorithm in this
//! crate (including keep-duplicates semantics: equal points never
//! dominate each other, so all copies survive). `dominance_tests` is
//! deterministic for a fixed `(threads, sequential_threshold)` but
//! differs from the sequential algorithms' counts — partitioning changes
//! which comparisons happen, not what the skyline is.

// Shim threads: identical to `std::thread` in production, schedulable
// under a `skycheck::Explorer` model run (see DESIGN.md §15).
use skycheck::sync::thread;

use skycache_geom::{retain_nondominated, Kernel, Point, PointBlock};

use crate::planar::PLANAR_DIMS;
use crate::{DivideConquer, Sfs, SkylineAlgorithm, SkylineOutput, SkylineScratch};

/// Scalar work-distribution facts of one [`ParallelDc`] run, returned by
/// value so observability layers can record them *outside* the kernel —
/// the kernel itself never calls a recorder (hot-path-alloc policy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneReport {
    /// Workers actually used (0 when the sequential fallback ran).
    pub workers: u64,
    /// Input cardinality.
    pub input_len: u64,
    /// Size of the union of chunk-local skylines (the merge input).
    pub union_len: u64,
    /// Largest chunk-local skyline.
    pub largest_local: u64,
    /// Smallest chunk-local skyline.
    pub smallest_local: u64,
}

impl LaneReport {
    /// Load imbalance across workers: largest local skyline divided by
    /// the mean local skyline size (1.0 = perfectly balanced; 1.0 also
    /// for the degenerate cases of zero workers or an empty union).
    pub fn imbalance(&self) -> f64 {
        if self.workers == 0 || self.union_len == 0 {
            return 1.0;
        }
        let mean = self.union_len as f64 / self.workers as f64;
        self.largest_local as f64 / mean
    }
}

/// Parallel divide & conquer: local skylines per chunk, then a parallel
/// cross-filter merge.
#[derive(Clone, Copy, Debug)]
pub struct ParallelDc {
    /// Worker count; `0` resolves to `std::thread::available_parallelism()`.
    pub threads: usize,
    /// Inputs smaller than this run sequential [`DivideConquer`] instead
    /// (thread spawn + merge overhead beats the win on small inputs).
    pub sequential_threshold: usize,
}

impl ParallelDc {
    /// Default sequential-fallback threshold.
    pub const DEFAULT_SEQUENTIAL_THRESHOLD: usize = 4096;

    /// Auto-sized worker count, default threshold.
    pub fn new() -> Self {
        ParallelDc { threads: 0, sequential_threshold: Self::DEFAULT_SEQUENTIAL_THRESHOLD }
    }

    /// Fixed worker count, default threshold.
    pub fn with_threads(threads: usize) -> Self {
        ParallelDc { threads, ..Self::new() }
    }

    /// The worker count this instance will actually use.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// Per-worker scoped spawn + join overhead in nanoseconds, as
    /// measured by `repro parallel` on commodity Linux hosts (each run
    /// spawns two scopes: local skylines, then the cross-filter).
    pub const SPAWN_OVERHEAD_NS: u64 = 60_000;

    /// Sequential block-SFS cost per coordinate cell (point × dimension)
    /// in nanoseconds, calibrated from the `seq_ms` column of
    /// BENCH_parallel.json (50k–100k points, 5–7 dims).
    pub const SEQ_NS_PER_CELL: f64 = 20.0;

    /// Fraction of the ideal `threads×` speedup the two-phase split
    /// retains after the sequential union build and canonical re-sort
    /// (measured ratio of phase-parallel time to total).
    pub const PARALLEL_EFFICIENCY: f64 = 0.6;

    /// Minimum input size (points) at which the cost model predicts the
    /// D&C split beats the sequential block path for `dims`-dimensional
    /// data on `threads` workers; `usize::MAX` when it never can (fewer
    /// than two effective workers).
    ///
    /// Derivation: the split wins when
    /// `2·threads·SPAWN < seq·(1 − 1/(threads·EFF))` with
    /// `seq = n·dims·SEQ_NS_PER_CELL`, solved for `n`.
    pub fn min_parallel_points(threads: usize, dims: usize) -> usize {
        let effective = threads as f64 * Self::PARALLEL_EFFICIENCY;
        if effective <= 1.0 {
            return usize::MAX;
        }
        let spawn_ns = (2 * threads) as f64 * Self::SPAWN_OVERHEAD_NS as f64;
        let per_point_ns = dims.max(1) as f64 * Self::SEQ_NS_PER_CELL;
        let n = spawn_ns / (per_point_ns * (1.0 - 1.0 / effective));
        n.ceil() as usize
    }

    /// The adaptive cost gate: whether the D&C split is predicted to
    /// beat the sequential block path for an input of `n` points in
    /// `dims` dimensions *on this host*. The split only engages when
    /// every factor lines up:
    ///
    /// * at least two workers **and** at least two host cores — scoped
    ///   threads on a single core always lose (BENCH_parallel.json
    ///   recorded 0.28–0.71× before this gate existed);
    /// * `dims > 2` — planar inputs take the d = 2 sweep instead;
    /// * `n` at or above both the configured
    ///   [`ParallelDc::sequential_threshold`] and the calibrated
    ///   [`ParallelDc::min_parallel_points`] for this shape.
    ///
    /// Callers that want the split unconditionally (tests, calibration
    /// runs) skip the gate and call
    /// [`ParallelDc::compute_rows`] / [`ParallelDc::compute_with_report`]
    /// directly — those stay gate-free.
    pub fn should_engage(&self, n: usize, dims: usize) -> bool {
        let threads = self.resolved_threads();
        let host = thread::available_parallelism().map_or(1, |c| c.get());
        threads >= 2
            && host >= 2
            && dims > PLANAR_DIMS
            && n >= self.sequential_threshold.max(2)
            && n >= Self::min_parallel_points(threads, dims)
    }

    /// Gated block entry point: runs the D&C split only when
    /// [`ParallelDc::should_engage`] predicts a win, falling back to the
    /// sequential block path (SFS, with its planar d = 2 dispatch)
    /// otherwise — the "never loses" contract.
    pub fn compute_rows_adaptive(
        &self,
        rows: &[f64],
        dims: usize,
        scratch: &mut SkylineScratch,
        out: &mut PointBlock,
    ) -> (u64, LaneReport) {
        let n = rows.len() / dims.max(1);
        if self.should_engage(n, dims) {
            self.compute_rows(rows, dims, scratch, out)
        } else {
            let tests = Sfs.compute_block_into(rows, dims, scratch, out);
            (tests, LaneReport { input_len: n as u64, ..LaneReport::default() })
        }
    }
}

impl Default for ParallelDc {
    fn default() -> Self {
        Self::new()
    }
}

impl SkylineAlgorithm for ParallelDc {
    fn name(&self) -> &'static str {
        "ParallelD&C"
    }

    fn compute(&self, points: Vec<Point>) -> SkylineOutput {
        self.compute_with_report(points).0
    }
}

impl ParallelDc {
    /// [`SkylineAlgorithm::compute`] plus the [`LaneReport`] describing
    /// how the work was distributed (all scalars — recording them is the
    /// caller's business, so the kernel stays recorder-free).
    pub fn compute_with_report(&self, points: Vec<Point>) -> (SkylineOutput, LaneReport) {
        let threads = self.resolved_threads();
        let input_len = points.len() as u64;
        if threads <= 1 || points.len() < self.sequential_threshold.max(2) {
            let report = LaneReport { input_len, ..LaneReport::default() };
            return (DivideConquer.compute(points), report);
        }
        let dims = points[0].dims();
        let Ok(input) = PointBlock::from_points(&points) else {
            let report = LaneReport { input_len, ..LaneReport::default() };
            // skylint: allow(hot-path-alloc) — empty-result construction, not per point
            return (SkylineOutput { skyline: Vec::new(), dominance_tests: 0 }, report);
        };
        let mut scratch = SkylineScratch::new();
        // skylint: allow(no-panic-paths) — dims >= 1: taken from a non-empty input point.
        let mut out = PointBlock::new(dims).expect("dims > 0");
        let (tests, report) = self.compute_rows(input.as_flat(), dims, &mut scratch, &mut out);
        // skylint: allow(hot-path-alloc) — materializes the owned skyline once, after the kernel
        (SkylineOutput { skyline: out.to_points(), dominance_tests: tests }, report)
    }

    /// Block-native core: computes the skyline of the row-major
    /// coordinate block `rows` (`dims` columns per row) into `out`,
    /// emitting rows in SFS's canonical order (ascending coordinate sum,
    /// stable) so a caller caching the result plans the same follow-up
    /// regions whether it computed sequentially or in parallel. Returns
    /// the dominance-test count and the [`LaneReport`].
    ///
    /// Inputs below [`ParallelDc::sequential_threshold`] (or a resolved
    /// single thread) run block-native SFS sequentially instead of
    /// spawning workers.
    pub fn compute_rows(
        &self,
        rows: &[f64],
        dims: usize,
        scratch: &mut SkylineScratch,
        out: &mut PointBlock,
    ) -> (u64, LaneReport) {
        debug_assert!(dims > 0 && rows.len().is_multiple_of(dims));
        debug_assert_eq!(out.dims(), dims);
        let n = rows.len() / dims;
        let input_len = n as u64;
        let threads = self.resolved_threads();
        if threads <= 1 || n < self.sequential_threshold.max(2) {
            let tests = Sfs.compute_block_into(rows, dims, scratch, out);
            return (tests, LaneReport { input_len, ..LaneReport::default() });
        }
        out.clear();

        // Phase 1: local skyline per contiguous chunk, one worker each.
        let chunk_len = n.div_ceil(threads);
        let locals: Vec<(PointBlock, u64)> = thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .filter_map(|t| {
                    let lo = t * chunk_len;
                    if lo >= n {
                        return None;
                    }
                    let hi = ((t + 1) * chunk_len).min(n);
                    Some(s.spawn(move || {
                        let mut local_scratch = SkylineScratch::new();
                        // skylint: allow(no-panic-paths) — dims >= 1 by the debug contract above.
                        let mut local = PointBlock::with_capacity(dims, hi - lo).expect("dims > 0");
                        let tests = Sfs.compute_block_into(
                            &rows[lo * dims..hi * dims],
                            dims,
                            &mut local_scratch,
                            &mut local,
                        );
                        (local, tests)
                    }))
                })
                // skylint: allow(hot-path-alloc) — one spawn handle per worker
                .collect();
            handles
                .into_iter()
                // join() only fails if a worker panicked; propagating is correct.
                // skylint: allow(no-panic-paths) — worker panic propagation.
                .map(|h| h.join().expect("local skyline worker panicked"))
                // skylint: allow(hot-path-alloc) — gathers one output per worker
                .collect()
        });
        let mut tests: u64 = locals.iter().map(|&(_, t)| t).sum();
        let report = LaneReport {
            workers: locals.len() as u64,
            input_len,
            union_len: locals.iter().map(|(b, _)| b.len() as u64).sum(),
            largest_local: locals.iter().map(|(b, _)| b.len() as u64).max().unwrap_or(0),
            smallest_local: locals.iter().map(|(b, _)| b.len() as u64).min().unwrap_or(0),
        };

        // Union of local skylines, in chunk order, as one flat block.
        let union_len: usize = locals.iter().map(|(b, _)| b.len()).sum();
        // skylint: allow(no-panic-paths) — dims >= 1 as above.
        let mut union = PointBlock::with_capacity(dims, union_len).expect("dims > 0");
        for (local, _) in &locals {
            for row in local.rows() {
                union.push_row(row);
            }
        }

        // Phase 2: cross-filter. A union row survives iff no union row
        // strictly dominates it — self-comparison and duplicates are
        // harmless because strict dominance is irreflexive. Each worker
        // filters its span of candidates against the whole (shared) union.
        let m = union.len();
        let span = m.div_ceil(threads).max(1);
        let union_ref = &union;
        let filtered: Vec<(PointBlock, u64)> = thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .filter_map(|t| {
                    let lo = t * span;
                    if lo >= m {
                        return None;
                    }
                    let hi = ((t + 1) * span).min(m);
                    Some(s.spawn(move || {
                        // skylint: allow(no-panic-paths) — dims >= 1 as above.
                        let mut cand = PointBlock::with_capacity(dims, hi - lo).expect("dims > 0");
                        for i in lo..hi {
                            cand.push_row(union_ref.row(i));
                        }
                        let stats =
                            retain_nondominated(&mut cand, union_ref, Kernel::for_dims(dims));
                        (cand, stats.dominance_tests)
                    }))
                })
                // skylint: allow(hot-path-alloc) — one spawn handle per worker
                .collect();
            handles
                .into_iter()
                // skylint: allow(no-panic-paths) — join() only fails on a worker panic.
                .map(|h| h.join().expect("merge filter worker panicked"))
                // skylint: allow(hot-path-alloc) — gathers one output per worker
                .collect()
        });

        // Reuse the union block as the unsorted result staging area, then
        // emit into `out` via a stable index sort on the coordinate sum —
        // identical order to sorting materialized points, without the
        // per-point allocations.
        union.clear();
        for (block, block_tests) in &filtered {
            tests += block_tests;
            for row in block.rows() {
                union.push_row(row);
            }
        }
        scratch.order.clear();
        for (i, row) in union.rows().enumerate() {
            let sum: f64 = row.iter().sum();
            scratch.order.push((sum, i as u32)); // skylint: allow(hot-path-alloc) — amortized index-sort buffer
        }
        scratch.order.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(_, i) in &scratch.order {
            out.push_row(union.row(i as usize));
        }
        (tests, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{naive_skyline, sorted};
    use crate::Bnl;

    fn pseudo_random_points(n: usize, dims: usize, seed: u64) -> Vec<Point> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::from((0..dims).map(|_| next()).collect::<Vec<_>>())).collect()
    }

    /// Forces the scoped-thread path regardless of host core count.
    fn forced() -> ParallelDc {
        ParallelDc { threads: 4, sequential_threshold: 8 }
    }

    #[test]
    fn matches_sequential_on_random_data() {
        let pts = pseudo_random_points(700, 4, 99);
        let want = sorted(Bnl.compute(pts.clone()).skyline);
        let got = sorted(forced().compute(pts).skyline);
        assert_eq!(got, want);
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let algo = ParallelDc::new();
        let pts = pseudo_random_points(100, 3, 5);
        let want = sorted(naive_skyline(&pts));
        assert_eq!(sorted(algo.compute(pts).skyline), want);
    }

    #[test]
    fn empty_and_single() {
        assert!(forced().compute(vec![]).skyline.is_empty());
        let one = vec![Point::from(vec![1.0, 2.0])];
        assert_eq!(forced().compute(one.clone()).skyline, one);
    }

    #[test]
    fn duplicates_survive_across_chunks() {
        // Two identical skyline points far apart in the input land in
        // different chunks; both must be kept.
        let mut pts = pseudo_random_points(200, 2, 17);
        let dup = Point::from(vec![0.0, 0.0]);
        pts.insert(0, dup.clone());
        pts.push(dup.clone());
        let sky = forced().compute(pts).skyline;
        assert_eq!(sky.iter().filter(|p| **p == dup).count(), 2);
    }

    #[test]
    fn deterministic_tests_count_for_fixed_config() {
        let pts = pseudo_random_points(500, 3, 3);
        let a = forced().compute(pts.clone());
        let b = forced().compute(pts);
        assert_eq!(a.dominance_tests, b.dominance_tests);
        assert_eq!(sorted(a.skyline), sorted(b.skyline));
    }

    #[test]
    fn lane_report_describes_the_run() {
        let pts = pseudo_random_points(400, 3, 11);
        let (out, report) = forced().compute_with_report(pts.clone());
        assert_eq!(report.input_len, 400);
        assert_eq!(report.workers, 4);
        assert!(report.union_len >= out.skyline.len() as u64);
        assert!(report.largest_local >= report.smallest_local);
        assert!(report.imbalance() >= 1.0);

        // The sequential fallback reports zero workers and imbalance 1.
        let small = pseudo_random_points(4, 2, 1);
        let (_, seq) = ParallelDc::new().compute_with_report(small);
        assert_eq!(seq.workers, 0);
        assert_eq!(seq.input_len, 4);
        assert_eq!(seq.imbalance(), 1.0);
    }

    /// The block-native entry point must match the `Vec<Point>` one row
    /// for row, including the lane report and test count.
    #[test]
    fn compute_rows_matches_compute_with_report() {
        let pts = pseudo_random_points(600, 3, 23);
        let (want, want_report) = forced().compute_with_report(pts.clone());
        let input = PointBlock::from_points(&pts).unwrap();
        let mut scratch = SkylineScratch::new();
        let mut out = PointBlock::new(3).unwrap();
        let (tests, report) = forced().compute_rows(input.as_flat(), 3, &mut scratch, &mut out);
        assert_eq!(tests, want.dominance_tests);
        assert_eq!(report, want_report);
        assert_eq!(out.to_points(), want.skyline, "same rows in the same order");

        // Below the threshold the block path runs sequential SFS.
        let small = pseudo_random_points(6, 2, 2);
        let small_block = PointBlock::from_points(&small).unwrap();
        let mut out2 = PointBlock::new(2).unwrap();
        let (_, seq_report) =
            forced().compute_rows(small_block.as_flat(), 2, &mut scratch, &mut out2);
        assert_eq!(seq_report.workers, 0);
        assert_eq!(sorted(out2.to_points()), sorted(naive_skyline(&small)));
    }

    #[test]
    fn gate_rejects_planar_small_and_single_threaded_shapes() {
        let pd = ParallelDc { threads: 4, sequential_threshold: 8 };
        // d = 2 always goes planar, whatever the size.
        assert!(!pd.should_engage(10_000_000, 2));
        // Below the calibrated floor the split cannot amortize spawns.
        assert!(!pd.should_engage(100, 5));
        // One worker (or one effective worker) can never split.
        assert!(!ParallelDc { threads: 1, sequential_threshold: 8 }.should_engage(1 << 20, 5));
        assert_eq!(ParallelDc::min_parallel_points(1, 5), usize::MAX);
        // On a multicore host a big high-dimensional input engages; on a
        // single-core host nothing does.
        let host = thread::available_parallelism().map_or(1, |c| c.get());
        assert_eq!(pd.should_engage(1 << 20, 5), host >= 2);
        // The calibrated floor is monotone: more dims amortize sooner.
        assert!(
            ParallelDc::min_parallel_points(4, 7) <= ParallelDc::min_parallel_points(4, 3),
            "higher-dimensional rows cost more per point, so the floor drops"
        );
    }

    #[test]
    fn adaptive_path_matches_forced_output() {
        // Whatever the gate decides, the adaptive entry point must return
        // the same rows in the same canonical order as the forced paths.
        let pts = pseudo_random_points(600, 3, 23);
        let input = PointBlock::from_points(&pts).unwrap();
        let mut scratch = SkylineScratch::new();
        let mut want = PointBlock::new(3).unwrap();
        Sfs.compute_block_into(input.as_flat(), 3, &mut scratch, &mut want);
        let mut out = PointBlock::new(3).unwrap();
        let (_, report) =
            forced().compute_rows_adaptive(input.as_flat(), 3, &mut scratch, &mut out);
        assert_eq!(out.to_points(), want.to_points(), "same rows in the same order");
        assert_eq!(report.input_len, 600);
    }

    #[test]
    fn more_threads_than_points_is_fine() {
        let algo = ParallelDc { threads: 16, sequential_threshold: 2 };
        let pts = pseudo_random_points(9, 2, 77);
        let want = sorted(naive_skyline(&pts));
        assert_eq!(sorted(algo.compute(pts).skyline), want);
    }
}
