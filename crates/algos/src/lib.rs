//! Skyline algorithms.
//!
//! The paper's evaluation uses three computational components, all
//! implemented here from scratch:
//!
//! * [`Sfs`] — Sort-Filter Skyline (Chomicki et al.), the in-memory
//!   skyline routine inside both the Baseline method and CBCS ("we use the
//!   Sort-Filter Skyline algorithm in both", Section 7);
//! * [`Bnl`] — Block-Nested-Loops (Börzsönyi et al.), the original
//!   skyline algorithm, kept as a second pluggable component to
//!   demonstrate that CBCS is "independent of the skyline algorithm used"
//!   (Section 7.3);
//! * [`bbs`] — Branch-and-Bound Skyline (Papadias et al.) over the
//!   workspace R\*-tree, the I/O-optimal non-caching state of the art that
//!   CBCS is compared against;
//! * [`DivideConquer`] — the D&C scheme of Börzsönyi et al. in its basic
//!   two-way form, included for completeness of the in-memory suite;
//! * [`Salsa`] — the Sort-and-Limit variant (Bartolini et al.), whose
//!   early-termination behaviour rounds out the pluggable-component study;
//! * [`ParallelDc`] — divide & conquer across scoped threads: local
//!   skylines per chunk plus a parallel cross-filter merge, set-identical
//!   to the sequential algorithms.
//!
//! Every routine counts its dominance tests — the paper's proxy for
//! skyline computation cost.
//!
//! ```
//! use skycache_algos::{Sfs, SkylineAlgorithm};
//! use skycache_geom::Point;
//!
//! let hotels = vec![
//!     Point::from(vec![1.0, 180.0]), // near, pricey   — skyline
//!     Point::from(vec![6.0, 90.0]),  // far, cheap     — skyline
//!     Point::from(vec![3.0, 120.0]), // balanced       — skyline
//!     Point::from(vec![4.0, 200.0]), // dominated by (3.0, 120.0)
//! ];
//! let out = Sfs.compute(hotels);
//! assert_eq!(out.skyline.len(), 3);
//! // Two-dimensional inputs take the planar monotone sweep, which
//! // needs no pairwise dominance tests at all (see [`planar`]).
//! assert_eq!(out.dominance_tests, 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(rust_2018_idioms)]

pub mod bbs;
pub mod cardinality;
mod inmem;
mod parallel;
pub mod planar;

pub use bbs::{bbs_constrained, BbsOutput, BbsStats};
pub use cardinality::{expected_skyline_size, sample_skyline_fraction, Adaptive};
pub use inmem::{Bnl, DivideConquer, Salsa, Sfs, SkylineAlgorithm, SkylineOutput, SkylineScratch};
pub use parallel::{LaneReport, ParallelDc};
pub use planar::{planar_applicable, planar_skyline_into, PLANAR_DIMS};

#[cfg(test)]
pub(crate) mod testutil {
    use skycache_geom::{dominates, Point};

    /// Reference `O(n²)` skyline with keep-duplicates semantics.
    pub fn naive_skyline(points: &[Point]) -> Vec<Point> {
        points.iter().filter(|t| !points.iter().any(|s| dominates(s, t))).cloned().collect()
    }

    /// Sorts points lexicographically for set comparison.
    pub fn sorted(mut pts: Vec<Point>) -> Vec<Point> {
        pts.sort_by(|a, b| a.coords().partial_cmp(b.coords()).expect("NaN-free"));
        pts
    }
}
